"""Helpers for summarising the efficiency sweeps of Figs. 6 and 7."""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.core.perf import EfficiencyPoint


def efficiency_by_size(
    points: Iterable[EfficiencyPoint],
    prediction_enabled: bool | None = None,
    active_nodes: int | None = None,
) -> Dict[int, float]:
    """Map matrix size -> efficiency for a filtered subset of sweep points."""
    selected: Dict[int, float] = {}
    for point in points:
        if prediction_enabled is not None and point.prediction_enabled != prediction_enabled:
            continue
        if active_nodes is not None and point.active_nodes != active_nodes:
            continue
        selected[point.matrix_size] = point.efficiency
    return selected


def efficiency_gap(points: Iterable[EfficiencyPoint]) -> Dict[int, float]:
    """Per-size efficiency gap between prediction-on and prediction-off (Fig. 6)."""
    points = list(points)
    with_prediction = efficiency_by_size(points, prediction_enabled=True)
    without_prediction = efficiency_by_size(points, prediction_enabled=False)
    gaps = {}
    for size, value in with_prediction.items():
        if size in without_prediction:
            gaps[size] = value - without_prediction[size]
    return gaps


def average_gap(points: Iterable[EfficiencyPoint]) -> float:
    """Average Fig. 6 gap across matrix sizes."""
    gaps = efficiency_gap(points)
    if not gaps:
        raise ValueError("no overlapping sizes between the two sweeps")
    return sum(gaps.values()) / len(gaps)


def summarize_scalability(points: Iterable[EfficiencyPoint]) -> Dict[int, Dict[str, float]]:
    """Per-node-count summary of the Fig. 7 sweep: min/mean/max per-node efficiency."""
    buckets: Dict[int, List[float]] = {}
    for point in points:
        buckets.setdefault(point.active_nodes, []).append(point.efficiency)
    summary = {}
    for nodes, values in sorted(buckets.items()):
        summary[nodes] = {
            "min": min(values),
            "mean": sum(values) / len(values),
            "max": max(values),
        }
    return summary
