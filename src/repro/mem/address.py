"""Address arithmetic helpers shared by the TLB, cache and mATLB models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

DEFAULT_PAGE_SIZE = 4096
DEFAULT_LINE_SIZE = 64


def _check_power_of_two(value: int, name: str) -> None:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{name} must be a positive power of two, got {value}")


def align_down(address: int, alignment: int) -> int:
    """Round ``address`` down to a multiple of ``alignment`` (a power of two)."""
    _check_power_of_two(alignment, "alignment")
    return address & ~(alignment - 1)


def align_up(address: int, alignment: int) -> int:
    """Round ``address`` up to a multiple of ``alignment`` (a power of two)."""
    _check_power_of_two(alignment, "alignment")
    return (address + alignment - 1) & ~(alignment - 1)


def page_number(address: int, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Virtual/physical page number containing ``address``."""
    _check_power_of_two(page_size, "page_size")
    return address >> page_size.bit_length() - 1


def page_offset(address: int, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Offset of ``address`` within its page."""
    _check_power_of_two(page_size, "page_size")
    return address & (page_size - 1)


def cache_index(address: int, line_size: int, num_sets: int) -> int:
    """Set index of ``address`` for a cache with the given geometry.

    ``num_sets`` may be any positive integer (the paper's 48 KB four-way L1
    caches have 192 sets); the index is the line number modulo the set count.
    """
    _check_power_of_two(line_size, "line_size")
    if num_sets <= 0:
        raise ValueError(f"num_sets must be positive, got {num_sets}")
    return (address // line_size) % num_sets


def cache_tag(address: int, line_size: int, num_sets: int) -> int:
    """Tag of ``address`` for a cache with the given geometry."""
    _check_power_of_two(line_size, "line_size")
    if num_sets <= 0:
        raise ValueError(f"num_sets must be positive, got {num_sets}")
    return address // (line_size * num_sets)


@dataclass(frozen=True)
class AddressRange:
    """A half-open byte range ``[start, start + length)``."""

    start: int
    length: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"range start must be non-negative, got {self.start}")
        if self.length <= 0:
            raise ValueError(f"range length must be positive, got {self.length}")

    @property
    def end(self) -> int:
        """One past the last byte of the range."""
        return self.start + self.length

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end

    def overlaps(self, other: "AddressRange") -> bool:
        return self.start < other.end and other.start < self.end

    def pages(self, page_size: int = DEFAULT_PAGE_SIZE) -> List[int]:
        """Page numbers touched by this range, in ascending order."""
        first = page_number(self.start, page_size)
        last = page_number(self.end - 1, page_size)
        return list(range(first, last + 1))

    def lines(self, line_size: int = DEFAULT_LINE_SIZE) -> List[int]:
        """Cache-line-aligned addresses touched by this range, in ascending order."""
        _check_power_of_two(line_size, "line_size")
        first = align_down(self.start, line_size)
        last = align_down(self.end - 1, line_size)
        return list(range(first, last + 1, line_size))

    def split_by_page(self, page_size: int = DEFAULT_PAGE_SIZE) -> Iterator["AddressRange"]:
        """Yield sub-ranges that each stay within a single page."""
        cursor = self.start
        while cursor < self.end:
            boundary = align_down(cursor, page_size) + page_size
            chunk_end = min(boundary, self.end)
            yield AddressRange(cursor, chunk_end - cursor)
            cursor = chunk_end


def matrix_row_ranges(
    base_address: int,
    row_start: int,
    row_count: int,
    col_start: int,
    col_count: int,
    row_stride_elements: int,
    element_bytes: int,
) -> List[AddressRange]:
    """Byte ranges of a rectangular sub-block of a row-major matrix.

    This is the access pattern the MMAE's DMA engines issue for a tile, and the
    pattern the mATLB analyses to predict which pages will be touched
    (paper Fig. 4): row ``r`` of the block starts at
    ``base + ((row_start + r) * row_stride + col_start) * element_bytes``.
    """
    if row_count <= 0 or col_count <= 0:
        raise ValueError("block dimensions must be positive")
    if row_stride_elements < col_start + col_count:
        raise ValueError("block exceeds the matrix row stride")
    ranges = []
    row_bytes = col_count * element_bytes
    for row in range(row_start, row_start + row_count):
        start = base_address + (row * row_stride_elements + col_start) * element_bytes
        ranges.append(AddressRange(start, row_bytes))
    return ranges
