"""Tile-granular timing model of a GEMM executed by one MMAE.

This module is the cycle-approximate engine behind the evaluation figures: it
walks the two-level tile schedule, computes per-first-level-tile systolic
array occupancy and DMA transfer time, overlaps them (double buffering), adds
the exposed address-translation stalls from :mod:`repro.mmae.matlb`, and
produces a :class:`GEMMTimingBreakdown` with enough detail for the benchmark
harnesses to report where time went.

The memory system surrounding the MMAE is abstracted into a
:class:`MemoryEnvironment` (L3 share, per-node DRAM bandwidth share, memory
round-trip latencies) that :mod:`repro.core.perf` derives from the system
configuration and the NoC contention model; this keeps the per-node model
independent of how many nodes are active.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.gemm.precision import Precision
from repro.gemm.tiling import TileConfig, TwoLevelTiling
from repro.gemm.workloads import GEMMShape
from repro.mmae.matlb import (
    TranslationStallEstimate,
    TranslationTimingParameters,
    estimate_translation_stalls,
)
from repro.mmae.systolic_array import SystolicArray


@dataclass(frozen=True)
class MMAETimingParameters:
    """Fixed architectural timing constants of one MMAE (paper Table IV / Fig. 2)."""

    frequency_hz: float = 2.5e9
    sa_rows: int = 4
    sa_cols: int = 4
    dma_engines: int = 2
    dma_peak_bytes_per_cycle: float = 32.0       # per engine (256-bit interface)
    dma_outstanding_lines: int = 32              # per engine
    line_size: int = 64
    task_setup_cycles: int = 6000                # MA_CFG handshake + STQ parse + AC configure
    tile_setup_cycles: int = 400                 # per first-level tile reconfiguration
    drain_cycles: int = 2000                     # final C write-back / completion response
    translation: TranslationTimingParameters = field(default_factory=TranslationTimingParameters)

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0 or self.dma_engines <= 0:
            raise ValueError("invalid MMAE timing parameters")


@dataclass(frozen=True)
class MemoryEnvironment:
    """What the memory system looks like from one MMAE's point of view.

    ``l3_share_bytes`` is the slice of the distributed L3 this node can
    effectively keep resident (total capacity divided by the active nodes);
    ``dram_bandwidth_share_bytes_per_s`` is the node's share of the DDR
    controllers; the two round-trip latencies already include any queueing
    added by other active nodes.
    """

    l3_share_bytes: float = 32 * 1024 * 1024
    dram_bandwidth_share_bytes_per_s: float = 150e9
    noc_node_bandwidth_bytes_per_s: float = 128e9
    l3_round_trip_ns: float = 60.0
    dram_round_trip_ns: float = 95.0

    def __post_init__(self) -> None:
        if self.l3_share_bytes <= 0 or self.dram_bandwidth_share_bytes_per_s <= 0:
            raise ValueError("memory environment shares must be positive")
        if self.noc_node_bandwidth_bytes_per_s <= 0:
            raise ValueError("NoC bandwidth must be positive")


@dataclass
class TileSchedule:
    """Static per-GEMM schedule statistics (counts and traffic volumes)."""

    shape: GEMMShape
    level1: TileConfig
    level2: TileConfig
    num_level1_tiles: int
    num_level2_tiles: int
    compute_cycles: float
    l3_traffic_bytes: float
    dram_traffic_bytes: float

    @property
    def arithmetic_intensity_l3(self) -> float:
        """FLOPs per byte of L3 traffic (reuse achieved by the on-chip buffers)."""
        return self.shape.flops / self.l3_traffic_bytes if self.l3_traffic_bytes else float("inf")

    @property
    def arithmetic_intensity_dram(self) -> float:
        """FLOPs per byte of DRAM traffic (reuse achieved by the L3)."""
        return self.shape.flops / self.dram_traffic_bytes if self.dram_traffic_bytes else float("inf")


@dataclass(frozen=True)
class GEMMTimingBreakdown:
    """Where the cycles of one GEMM went."""

    shape: GEMMShape
    prediction_enabled: bool
    frequency_hz: float
    peak_gflops: float
    compute_cycles: float = 0.0
    dma_l3_cycles: float = 0.0
    dma_dram_cycles: float = 0.0
    exposed_dma_cycles: float = 0.0
    translation_stall_cycles: float = 0.0
    setup_cycles: float = 0.0
    fill_cycles: float = 0.0
    total_cycles: float = 0.0
    translation: Optional[TranslationStallEstimate] = None

    @property
    def seconds(self) -> float:
        return self.total_cycles / self.frequency_hz

    @property
    def achieved_gflops(self) -> float:
        return self.shape.flops / self.seconds / 1e9 if self.seconds > 0 else 0.0

    @property
    def efficiency(self) -> float:
        """Achieved fraction of the MMAE's theoretical peak for this precision."""
        return self.achieved_gflops / self.peak_gflops if self.peak_gflops else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "total_cycles": self.total_cycles,
            "compute_cycles": self.compute_cycles,
            "exposed_dma_cycles": self.exposed_dma_cycles,
            "translation_stall_cycles": self.translation_stall_cycles,
            "setup_cycles": self.setup_cycles,
            "fill_cycles": self.fill_cycles,
            "achieved_gflops": self.achieved_gflops,
            "efficiency": self.efficiency,
        }


def _level1_tile_compute_cycles(
    array: SystolicArray, tile_rows: int, tile_cols: int, tile_depth: int,
    level2: TileConfig, precision: Precision,
) -> float:
    """Systolic-array cycles for one first-level tile, summed over its level-2 tiles.

    The level-2 grid contains at most two distinct extents per dimension (the
    full tile size and one edge remainder), so the sum is computed from the
    up-to-eight distinct (rows, cols, depth) combinations instead of iterating
    every micro tile.
    """
    def split(extent: int, tile: int) -> List[tuple[int, int]]:
        full, remainder = divmod(extent, tile)
        parts = []
        if full:
            parts.append((tile, full))
        if remainder:
            parts.append((remainder, 1))
        return parts

    total = 0.0
    for rows, rows_count in split(tile_rows, level2.rows):
        for cols, cols_count in split(tile_cols, level2.cols):
            for depth, depth_count in split(tile_depth, level2.k_block):
                count = rows_count * cols_count * depth_count
                total += count * array.tile_cycles(rows, cols, depth, precision)
    return total


def build_tile_schedule(
    shape: GEMMShape,
    level1: TileConfig,
    level2: TileConfig,
    params: MMAETimingParameters,
    env: MemoryEnvironment,
) -> TileSchedule:
    """Compute the static schedule statistics (compute cycles and traffic volumes)."""
    array = SystolicArray(params.sa_rows, params.sa_cols, params.frequency_hz)
    tiling = TwoLevelTiling(shape, level1, level2)
    element = shape.precision.bytes_per_element

    compute_cycles = 0.0
    l3_traffic = 0.0
    dram_traffic = 0.0
    num_level1 = 0
    num_level2 = 0
    for tile in tiling.level1_tiles():
        num_level1 += 1
        num_level2 += tiling.num_level2_tiles(tile)
        compute_cycles += _level1_tile_compute_cycles(
            array, tile.rows, tile.cols, tile.depth, level2, shape.precision
        )
        reloads_a = math.ceil(tile.cols / level2.cols)
        reloads_b = math.ceil(tile.rows / level2.rows)
        a_panel = tile.rows * tile.depth * element
        b_panel = tile.depth * tile.cols * element
        c_tile = tile.rows * tile.cols * element
        tile_l3 = reloads_a * a_panel + reloads_b * b_panel + 2 * c_tile
        # DRAM traffic: the compulsory panel reads plus the fraction of the
        # re-reads that do not fit in this node's share of the L3.
        compulsory = a_panel + b_panel + 2 * c_tile
        working_set = a_panel + b_panel + c_tile
        reuse_fraction = min(1.0, env.l3_share_bytes / working_set) if working_set else 1.0
        tile_dram = compulsory + (tile_l3 - compulsory) * (1.0 - reuse_fraction)
        l3_traffic += tile_l3
        dram_traffic += tile_dram

    return TileSchedule(
        shape=shape,
        level1=level1,
        level2=level2,
        num_level1_tiles=num_level1,
        num_level2_tiles=num_level2,
        compute_cycles=compute_cycles,
        l3_traffic_bytes=l3_traffic,
        dram_traffic_bytes=dram_traffic,
    )


def _dma_bandwidth_bytes_per_cycle(
    params: MMAETimingParameters, env: MemoryEnvironment, dram_fraction: float
) -> float:
    """Sustained aggregate DMA bandwidth of the node in bytes per MMAE cycle.

    The engines are latency-limited (Little's law over their outstanding-line
    windows) with the round-trip latency weighted by how much of the traffic
    has to travel beyond the L3, and capped by both the engines' datapaths and
    the node's NoC port.
    """
    cycle_ns = 1e9 / params.frequency_hz
    round_trip_ns = env.l3_round_trip_ns + dram_fraction * env.dram_round_trip_ns
    round_trip_cycles = round_trip_ns / cycle_ns
    window_bytes = params.dma_outstanding_lines * params.line_size
    per_engine = min(params.dma_peak_bytes_per_cycle, window_bytes / round_trip_cycles)
    aggregate = per_engine * params.dma_engines
    noc_cap = env.noc_node_bandwidth_bytes_per_s / params.frequency_hz
    return min(aggregate, noc_cap)


def estimate_gemm_timing(
    shape: GEMMShape,
    level1: TileConfig = TileConfig(1024, 1024),
    level2: TileConfig = TileConfig(64, 64),
    params: MMAETimingParameters = MMAETimingParameters(),
    env: MemoryEnvironment = MemoryEnvironment(),
    prediction_enabled: bool = True,
    page_size: int = 4096,
) -> GEMMTimingBreakdown:
    """Estimate the execution time of one GEMM on one MMAE.

    The per-first-level-tile time is ``max(compute, dma)`` (double buffering
    overlaps transfers with computation); the first tile's buffer fill, the
    task setup/drain handshakes, and the exposed translation stalls are serial.
    """
    array = SystolicArray(params.sa_rows, params.sa_cols, params.frequency_hz)
    schedule = build_tile_schedule(shape, level1, level2, params, env)

    dram_fraction = (
        schedule.dram_traffic_bytes / schedule.l3_traffic_bytes
        if schedule.l3_traffic_bytes
        else 0.0
    )
    dma_bpc = _dma_bandwidth_bytes_per_cycle(params, env, dram_fraction)
    dram_bpc = env.dram_bandwidth_share_bytes_per_s / params.frequency_hz

    dma_l3_cycles = schedule.l3_traffic_bytes / dma_bpc
    dma_dram_cycles = schedule.dram_traffic_bytes / dram_bpc
    dma_cycles = max(dma_l3_cycles, dma_dram_cycles)

    # Per-tile overlap: both compute and DMA scale uniformly over tiles in this
    # closed form, so the overlapped total is max of the two sums plus the
    # per-tile reconfiguration cost.
    overlapped = max(schedule.compute_cycles, dma_cycles)
    exposed_dma = max(0.0, dma_cycles - schedule.compute_cycles)

    translation = estimate_translation_stalls(
        shape, level1, level2,
        page_size=page_size,
        prediction_enabled=prediction_enabled,
        params=params.translation,
    )

    # First fill: the first level-2 tile's A and B blocks cannot be overlapped.
    element = shape.precision.bytes_per_element
    ttr = min(level2.rows, shape.m)
    ttc = min(level2.cols, shape.n)
    ttk = min(level2.k_block, shape.k)
    fill_bytes = (ttr * ttk + ttk * ttc) * element
    fill_cycles = fill_bytes / dma_bpc

    setup_cycles = (
        params.task_setup_cycles
        + params.drain_cycles
        + params.tile_setup_cycles * schedule.num_level1_tiles
    )

    total = overlapped + translation.stall_cycles + fill_cycles + setup_cycles

    return GEMMTimingBreakdown(
        shape=shape,
        prediction_enabled=prediction_enabled,
        frequency_hz=params.frequency_hz,
        peak_gflops=array.peak_gflops(shape.precision),
        compute_cycles=schedule.compute_cycles,
        dma_l3_cycles=dma_l3_cycles,
        dma_dram_cycles=dma_dram_cycles,
        exposed_dma_cycles=exposed_dma,
        translation_stall_cycles=translation.stall_cycles,
        setup_cycles=setup_cycles,
        fill_cycles=fill_cycles,
        total_cycles=total,
        translation=translation,
    )
