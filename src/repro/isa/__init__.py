"""MPAIS: the Matrix Processing Assist Instruction Set (paper Section III.B).

MPAIS is a non-privileged extension of ARMv8 with seven instructions grouped
into three functions:

* data migration — ``MA_MOVE`` (copy), ``MA_INIT`` (zero-fill), ``MA_STASH``
  (prefetch into the L3 cache);
* GEMM computing — ``MA_CFG`` (allocate an MTQ entry and submit a tile-GEMM
  task to the MMAE);
* task management — ``MA_READ`` (query state), ``MA_STATE`` (query state and
  release the MTQ entry), ``MA_CLEAR`` (clear an entry after an exception).

This package provides instruction objects, register-level parameter packing,
a binary encoding in an unused ARMv8 opcode space, a small assembler, and a
functional executor that drives the MTQ/MMAE handshake.
"""

from repro.isa.registers import RegisterFile
from repro.isa.instructions import (
    Opcode,
    Instruction,
    GEMMDescriptor,
    MoveDescriptor,
    InitDescriptor,
    StashDescriptor,
    INSTRUCTION_TABLE,
    InstructionInfo,
)
from repro.isa.encoding import encode_instruction, decode_instruction, MPAIS_OPCODE_SPACE
from repro.isa.assembler import assemble, assemble_program, AssemblyError, Program
from repro.isa.executor import MPAISExecutor, ExecutionTrace, MMAEPort

__all__ = [
    "RegisterFile",
    "Opcode",
    "Instruction",
    "GEMMDescriptor",
    "MoveDescriptor",
    "InitDescriptor",
    "StashDescriptor",
    "INSTRUCTION_TABLE",
    "InstructionInfo",
    "encode_instruction",
    "decode_instruction",
    "MPAIS_OPCODE_SPACE",
    "assemble",
    "assemble_program",
    "AssemblyError",
    "Program",
    "MPAISExecutor",
    "ExecutionTrace",
    "MMAEPort",
]
