"""Per-node router model with virtual channels.

The router model tracks per-output-port occupancy in flit-cycles, which is all
the transaction-level network needs to estimate queueing delay; it does not
simulate individual flit pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.noc.flit import Packet


@dataclass
class VirtualChannel:
    """Occupancy bookkeeping for one virtual channel of one output port."""

    index: int
    depth_flits: int = 8
    occupied_until: float = 0.0
    flits_forwarded: int = 0

    def earliest_free(self, now: float) -> float:
        return max(now, self.occupied_until)

    def reserve(self, start: float, duration: float) -> float:
        """Occupy the channel for ``duration`` starting no earlier than ``start``."""
        begin = max(start, self.occupied_until)
        self.occupied_until = begin + duration
        return begin


class Router:
    """A mesh router: one set of virtual channels per output direction.

    Output ports are identified by the neighbouring node id (or ``-1`` for the
    local ejection port).
    """

    def __init__(
        self,
        node_id: int,
        num_virtual_channels: int = 4,
        pipeline_latency_cycles: int = 3,
    ) -> None:
        if num_virtual_channels <= 0:
            raise ValueError("need at least one virtual channel")
        self.node_id = node_id
        self.num_virtual_channels = num_virtual_channels
        self.pipeline_latency_cycles = pipeline_latency_cycles
        self._ports: Dict[int, List[VirtualChannel]] = {}
        self.packets_routed = 0

    def port(self, next_hop: int) -> List[VirtualChannel]:
        """The virtual channels of the output port towards ``next_hop`` (lazily built)."""
        if next_hop not in self._ports:
            self._ports[next_hop] = [
                VirtualChannel(index) for index in range(self.num_virtual_channels)
            ]
        return self._ports[next_hop]

    def select_channel(self, next_hop: int, now: float, preferred: Optional[int] = None) -> VirtualChannel:
        """Pick the virtual channel that frees up earliest (or the preferred one)."""
        channels = self.port(next_hop)
        if preferred is not None:
            return channels[preferred % len(channels)]
        return min(channels, key=lambda channel: channel.earliest_free(now))

    def forward(self, packet: Packet, next_hop: int, now: float, cycle_time: float) -> float:
        """Forward a packet towards ``next_hop``; returns the time the tail flit leaves.

        The packet occupies the selected virtual channel for ``num_flits`` link
        cycles after a fixed router pipeline delay.
        """
        channel = self.select_channel(next_hop, now, preferred=packet.virtual_channel or None)
        serialization = packet.num_flits * cycle_time
        start = channel.reserve(now + self.pipeline_latency_cycles * cycle_time, serialization)
        channel.flits_forwarded += packet.num_flits
        self.packets_routed += 1
        return start + serialization

    def utilization(self, now: float) -> float:
        """Fraction of output channels still busy at time ``now``."""
        channels = [channel for port in self._ports.values() for channel in port]
        if not channels:
            return 0.0
        busy = sum(1 for channel in channels if channel.occupied_until > now)
        return busy / len(channels)
