"""Exception events raised during MMAE task execution.

The paper (Table III, Fig. 3) records an ``exception_en`` flag and an
``exception_type`` field in each MTQ entry; a task that hits an exception is
terminated by the MMAE and the user must issue MA_CLEAR on the entry before it
can be reused.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class ExceptionType(enum.IntEnum):
    """Exception events an MMAE task can raise (encoded in the MTQ entry)."""

    NONE = 0
    PAGE_FAULT = 1            # DMA address with no valid translation
    BUS_ERROR = 2             # NoC / memory access failure
    INVALID_CONFIG = 3        # malformed GEMM descriptor (e.g. zero dimension)
    BUFFER_OVERFLOW = 4       # tile does not fit the A/B/C buffers
    PRECISION_UNSUPPORTED = 5 # requested compute mode not implemented
    TIMEOUT = 6               # task watchdog expired

    @property
    def is_recoverable(self) -> bool:
        """Whether software can retry the task after fixing the cause."""
        return self in (
            ExceptionType.PAGE_FAULT,
            ExceptionType.INVALID_CONFIG,
            ExceptionType.BUFFER_OVERFLOW,
            ExceptionType.PRECISION_UNSUPPORTED,
        )


@dataclass
class MMAETaskException(Exception):
    """Raised by the MMAE models when a task cannot complete.

    The accelerator controller catches it, marks the STQ/MTQ entry with the
    exception type, and terminates the task, mirroring state (4) of Fig. 3.
    """

    exception_type: ExceptionType
    detail: str = ""
    faulting_address: Optional[int] = None

    def __str__(self) -> str:
        message = f"MMAE task exception: {self.exception_type.name}"
        if self.detail:
            message += f" ({self.detail})"
        if self.faulting_address is not None:
            message += f" at {self.faulting_address:#x}"
        return message
