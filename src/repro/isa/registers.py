"""The general-purpose register file seen by MPAIS instructions.

MPAIS instructions reference ARMv8 64-bit general registers X0..X30 (X31 reads
as the zero register, as in AArch64).  The MA_CFG family reads six successive
registers Rn..Rn+5 holding the packed task parameters and writes the allocated
MAID into Rd.
"""

from __future__ import annotations

from typing import List

NUM_REGISTERS = 32
ZERO_REGISTER = 31
REGISTER_MASK = (1 << 64) - 1


class RegisterFile:
    """Thirty-one 64-bit general registers plus the hardwired zero register."""

    def __init__(self) -> None:
        self._values: List[int] = [0] * NUM_REGISTERS

    @staticmethod
    def _check_index(index: int) -> None:
        if not 0 <= index < NUM_REGISTERS:
            raise ValueError(f"register index {index} out of range 0..{NUM_REGISTERS - 1}")

    def read(self, index: int) -> int:
        """Read register ``X<index>`` (X31 always reads zero)."""
        self._check_index(index)
        if index == ZERO_REGISTER:
            return 0
        return self._values[index]

    def write(self, index: int, value: int) -> None:
        """Write register ``X<index>`` (writes to X31 are discarded)."""
        self._check_index(index)
        if index == ZERO_REGISTER:
            return
        if value < 0:
            raise ValueError(f"register values are unsigned 64-bit, got {value}")
        self._values[index] = value & REGISTER_MASK

    def read_block(self, start: int, count: int) -> List[int]:
        """Read ``count`` successive registers starting at ``X<start>``.

        MA_CFG and the data-migration instructions read six successive
        registers; the block must not wrap past X30.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if start + count > ZERO_REGISTER:
            raise ValueError(
                f"register block X{start}..X{start + count - 1} exceeds X{ZERO_REGISTER - 1}"
            )
        return [self.read(start + offset) for offset in range(count)]

    def write_block(self, start: int, values: List[int]) -> None:
        """Write successive registers starting at ``X<start>``."""
        if start + len(values) > ZERO_REGISTER:
            raise ValueError("register block exceeds X30")
        for offset, value in enumerate(values):
            self.write(start + offset, value)

    def snapshot(self) -> List[int]:
        """Copy of all register values (used by context switching)."""
        return list(self._values)

    def restore(self, values: List[int]) -> None:
        if len(values) != NUM_REGISTERS:
            raise ValueError(f"snapshot must have {NUM_REGISTERS} values")
        self._values = [value & REGISTER_MASK for value in values]
        self._values[ZERO_REGISTER] = 0

    def reset(self) -> None:
        self._values = [0] * NUM_REGISTERS
