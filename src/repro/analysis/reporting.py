"""Plain-text table and series rendering used by the benchmark harnesses.

The benchmark scripts regenerate the paper's tables and figures as text: a
table becomes an aligned ASCII table, a figure becomes one row per series with
the x-axis values as columns, so the output can be diffed against the numbers
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
import io
import math
from typing import Dict, Iterable, Sequence

import numpy as np

#: Below this sample size ``sorted`` beats the array round-trip, so the
#: scalar path stays the default for the small per-tenant samples.
_VECTOR_THRESHOLD = 1024


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in 0..100).

    Nearest-rank (rather than interpolating) keeps the result an element of
    the sample and is monotone in ``q``, so p99 >= p95 >= p50 holds by
    construction — the property the serving report's regression tests rely on.

    Large samples (and anything already an ``ndarray``) go through
    ``np.partition``, which places the rank-th smallest element at its sorted
    index in O(n) — it selects exactly the element ``sorted`` would, so both
    paths are bit-identical.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in 0..100, got {q}")
    size = len(values)
    if size == 0:
        raise ValueError("cannot take a percentile of an empty sample")
    rank = max(1, math.ceil(q / 100.0 * size))
    if isinstance(values, np.ndarray) or size >= _VECTOR_THRESHOLD:
        return np.partition(np.asarray(values), rank - 1)[rank - 1].item()
    return sorted(values)[rank - 1]


def latency_summary(values: Sequence[float]) -> Dict[str, float]:
    """Mean plus the p50/p95/p99 nearest-rank percentiles of a latency sample."""
    if len(values) == 0:
        raise ValueError("cannot summarise an empty latency sample")
    if isinstance(values, np.ndarray) or len(values) >= _VECTOR_THRESHOLD:
        data = np.asarray(values, dtype=float)
        mean = float(data.mean())
    else:
        data = values
        mean = sum(values) / len(values)
    return {
        "mean": mean,
        "p50": percentile(data, 50),
        "p95": percentile(data, 95),
        "p99": percentile(data, 99),
    }


def format_percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string (0.915 -> \"91.5%\")."""
    return f"{value * 100:.{digits}f}%"


def format_gflops(value: float, digits: int = 1) -> str:
    """Format a GFLOPS value, switching to TFLOPS above 1000."""
    if value >= 1000:
        return f"{value / 1000:.2f} TFLOPS"
    return f"{value:.{digits}f} GFLOPS"


def render_table(headers: Sequence[str], rows: Iterable[Sequence[str]], title: str = "") -> str:
    """Render an aligned ASCII table."""
    rows = [list(map(str, row)) for row in rows]
    headers = list(map(str, headers))
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row {row} does not match header width {len(headers)}")
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(headers))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(format_row(row) for row in rows)
    return "\n".join(lines)


def render_csv(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render headers + rows as CSV text (for ``repro.cli explore --format csv``)."""
    rows = [list(row) for row in rows]
    headers = list(headers)
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row {row} does not match header width {len(headers)}")
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue().rstrip("\n")


def render_series(
    x_label: str,
    x_values: Sequence,
    series: Dict[str, Sequence[float]],
    value_formatter=None,
    title: str = "",
) -> str:
    """Render a figure as a table: one row per series, one column per x value."""
    formatter = value_formatter if value_formatter is not None else (lambda value: f"{value:.3g}")
    headers = [x_label] + [str(x) for x in x_values]
    rows = []
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(f"series {name!r} has {len(values)} values for {len(x_values)} x points")
        rows.append([name] + [formatter(value) for value in values])
    return render_table(headers, rows, title=title)
