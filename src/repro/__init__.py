"""Reproduction of MACO: GEMM acceleration on a loosely-coupled multi-core processor.

The package is organised as a set of substrates (simulation kernel, memory
hierarchy, network-on-chip, ISA, CPU core, MMAE accelerator, GEMM algorithms,
deep-learning workloads, baselines) topped by :mod:`repro.core`, which
assembles them into the MACO system described in the paper.

Quickstart::

    from repro.core import MACOSystem, maco_default_config
    from repro.gemm import GEMMShape, Precision

    system = MACOSystem(maco_default_config(num_nodes=4))
    result = system.run_gemm(GEMMShape(2048, 2048, 2048, Precision.FP64))
    print(result.gflops, result.efficiency)

The parallelism API (:class:`~repro.parallel.ParallelismSpec`, ``tp2d``
grids, :func:`~repro.parallel.plan_parallel`) is re-exported here lazily so
``import repro`` stays cheap.
"""

from repro.version import __version__

#: Names resolved lazily from :mod:`repro.parallel` (PEP 562) so that bare
#: ``import repro`` does not pay for the planner's NumPy-backed dependencies.
_PARALLEL_EXPORTS = (
    "OverheadBreakdown",
    "PARALLELISM_STRATEGIES",
    "ParallelPlan",
    "ParallelismSpec",
    "node_groups",
    "plan_parallel",
)

__all__ = ["__version__", *_PARALLEL_EXPORTS]


def __getattr__(name: str):
    if name in _PARALLEL_EXPORTS:
        import repro.parallel as _parallel

        return getattr(_parallel, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list:
    return sorted(set(globals()) | set(_PARALLEL_EXPORTS))
