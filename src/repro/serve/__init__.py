"""Trace-driven multi-tenant inference serving on the MACO model.

This package layers a request-level serving simulator over the system timing
model: :mod:`repro.serve.trace` generates or replays tenant request arrivals,
:mod:`repro.serve.scheduler` provides the dispatch policies (FCFS, SJF,
round-robin per tenant), :mod:`repro.serve.simulator` runs the discrete-event
loop against a :class:`~repro.core.maco.MACOSystem`, and
:mod:`repro.serve.report` aggregates per-tenant and fleet-wide throughput,
utilization, queue depth and p50/p95/p99 latency.

Typical use (also exposed as ``python -m repro.cli serve``)::

    from repro.serve import ServeSimulator, default_tenants, poisson_trace

    sim = ServeSimulator(scheduler="rr")
    tenants = sim.suggest_rates(default_tenants(3))
    trace = poisson_trace(tenants, duration_s=2.0, seed=7)
    report = sim.run(trace)
    print(report.render())
"""

from repro.serve.report import NodeStats, ServeReport, TenantStats, build_report
from repro.serve.scheduler import (
    SCHEDULER_NAMES,
    FCFSScheduler,
    RoundRobinScheduler,
    Scheduler,
    SJFScheduler,
    scheduler_by_name,
)
from repro.serve.simulator import (
    TENANT_SWITCH_FLUSH_CYCLES,
    ServeSimulator,
    estimate_phase_service_seconds,
    estimate_service_seconds,
)
from repro.serve.trace import (
    Request,
    RequestTrace,
    TenantSpec,
    bursty_trace,
    default_tenants,
    llm_tenants,
    poisson_trace,
    replay_trace,
)

__all__ = [
    "Request",
    "RequestTrace",
    "TenantSpec",
    "default_tenants",
    "llm_tenants",
    "poisson_trace",
    "bursty_trace",
    "replay_trace",
    "Scheduler",
    "FCFSScheduler",
    "SJFScheduler",
    "RoundRobinScheduler",
    "SCHEDULER_NAMES",
    "scheduler_by_name",
    "ServeSimulator",
    "estimate_phase_service_seconds",
    "estimate_service_seconds",
    "TENANT_SWITCH_FLUSH_CYCLES",
    "TenantStats",
    "NodeStats",
    "ServeReport",
    "build_report",
]
