"""Tests for the parallel/cached sweep subsystem (repro.core.batch)."""

from dataclasses import dataclass

import pytest

from repro.baselines import CPUOnlyBaseline, RASALikeBaseline, compare_systems
from repro.core import (
    DesignPoint,
    DesignSpaceExplorer,
    SweepRunner,
    TimingCache,
    config_fingerprint,
    estimate_node_gemm,
    estimate_node_gemm_cached,
    maco_default_config,
    pareto_front,
    sweep_prediction,
    sweep_scalability,
)
from repro.gemm import GEMMShape, GEMMWorkload, Precision

SIZES = [256, 512, 1024]


class TestTimingCache:
    def test_cached_result_is_bit_identical(self, small_config):
        shape = GEMMShape(1024, 1024, 1024)
        cache = TimingCache()
        direct = estimate_node_gemm(small_config, shape, active_nodes=2)
        cached = estimate_node_gemm_cached(small_config, shape, active_nodes=2, cache=cache)
        assert cached == direct

    def test_hit_and_miss_counting(self, small_config):
        cache = TimingCache()
        shape = GEMMShape(512, 512, 512)
        for _ in range(3):
            estimate_node_gemm_cached(small_config, shape, cache=cache)
        assert cache.misses == 1
        assert cache.hits == 2
        assert cache.hit_rate == pytest.approx(2 / 3)
        assert len(cache) == 1

    def test_distinct_keys_not_conflated(self, small_config):
        cache = TimingCache()
        shape = GEMMShape(512, 512, 512)
        estimate_node_gemm_cached(small_config, shape, active_nodes=1, cache=cache)
        estimate_node_gemm_cached(small_config, shape, active_nodes=2, cache=cache)
        estimate_node_gemm_cached(small_config, shape, active_nodes=2,
                                  prediction_enabled=False, cache=cache)
        other_config = maco_default_config(num_nodes=8)
        estimate_node_gemm_cached(other_config, shape, active_nodes=2, cache=cache)
        assert cache.misses == 4
        assert cache.hits == 0

    def test_fingerprint_tracks_config_changes(self, small_config):
        assert config_fingerprint(small_config) == config_fingerprint(small_config)
        assert config_fingerprint(small_config) != config_fingerprint(small_config.with_nodes(2))

    def test_eviction_bounds_entries(self, small_config):
        cache = TimingCache(max_entries=2)
        for size in (128, 256, 384):
            estimate_node_gemm_cached(small_config, GEMMShape(size, size, size), cache=cache)
        assert len(cache) == 2

    def test_clear_resets_counters(self, small_config):
        cache = TimingCache()
        estimate_node_gemm_cached(small_config, GEMMShape(256, 256, 256), cache=cache)
        cache.clear()
        assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)

    def test_invalid_max_entries_rejected(self):
        with pytest.raises(ValueError):
            TimingCache(max_entries=0)


class TestSweepRunner:
    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)

    def test_parallel_fig6_bit_identical_to_serial(self):
        config = maco_default_config()
        serial = sweep_prediction(config, SIZES)
        parallel = sweep_prediction(config, SIZES, jobs=4)
        assert parallel == serial  # EfficiencyPoint dataclass equality is exact

    def test_parallel_fig7_bit_identical_to_serial(self):
        config = maco_default_config()
        serial = sweep_scalability(config, SIZES, [1, 2, 4])
        parallel = sweep_scalability(config, SIZES, [1, 2, 4], jobs=4)
        assert parallel == serial

    def test_parallel_design_grid_bit_identical_to_serial(self):
        explorer = DesignSpaceExplorer()
        points = DesignSpaceExplorer.grid(
            sa_dims=(2, 4), buffer_kbs=(32, 64), node_counts=(4, 8))
        shape = GEMMShape(1024, 1024, 1024)
        serial = explorer.explore(points, shape)
        parallel = explorer.explore(points, shape, jobs=4)
        assert [(r.point, r.seconds, r.gflops, r.efficiency) for r in serial] == \
               [(r.point, r.seconds, r.gflops, r.efficiency) for r in parallel]

    def test_serial_sweep_counts_cache_hits(self):
        config = maco_default_config()
        cache = TimingCache()
        runner = SweepRunner(jobs=1, cache=cache)
        runner.sweep_prediction(config, SIZES)
        cold_misses = cache.misses
        assert cold_misses == 2 * len(SIZES)
        assert cache.hits == 0
        runner.sweep_prediction(config, SIZES)  # warm rerun: all hits
        assert cache.misses == cold_misses
        assert cache.hits == cold_misses

    def test_repeated_layer_shapes_hit_cache(self):
        # A workload repeating one layer shape should walk the tile schedule
        # once per distinct partition sub-shape, not once per layer.
        cache = TimingCache()
        runner = SweepRunner(jobs=1, cache=cache)
        workload = GEMMWorkload("repeat", [GEMMShape(1024, 1024, 1024)] * 6)
        runner_results = runner.evaluate_points(
            [DesignPoint(name="p", num_nodes=4)], workload)
        assert runner_results[0].seconds > 0
        assert cache.misses <= 2  # at most two distinct sub-shapes per plan
        assert cache.hits >= 4

    def test_run_workloads_matches_direct_calls(self, small_config):
        workloads = [
            GEMMWorkload("w1", [GEMMShape(512, 512, 512, Precision.FP32)]),
            GEMMWorkload("w2", [GEMMShape(256, 1024, 256, Precision.FP32)]),
        ]
        runner = SweepRunner(jobs=2)
        results = runner.run_workloads(
            [(CPUOnlyBaseline, small_config), (RASALikeBaseline, small_config)],
            workloads, num_nodes=2)
        direct = [
            model.run_workload(workload, num_nodes=2)
            for model in (CPUOnlyBaseline(small_config), RASALikeBaseline(small_config))
            for workload in workloads
        ]
        assert [(r.system, r.name, r.seconds, r.gflops) for r in results] == \
               [(r.system, r.name, r.seconds, r.gflops) for r in direct]

    def test_pool_initializer_installs_cache_snapshot(self):
        # The parallel path seeds each worker with the runner's cache via the
        # pool initializer; the payload cache (serial path) takes precedence.
        from repro.core import batch

        cache = TimingCache()
        batch._seed_worker_cache(cache)
        try:
            assert batch._task_cache(None) is cache
            explicit = TimingCache()
            assert batch._task_cache(explicit) is explicit
        finally:
            batch._seed_worker_cache(None)

    def test_parallel_with_warmed_cache_still_identical(self):
        config = maco_default_config()
        cache = TimingCache()
        runner_serial = SweepRunner(jobs=1, cache=cache)
        serial = runner_serial.sweep_prediction(config, SIZES)
        runner_parallel = SweepRunner(jobs=2, cache=cache)
        assert runner_parallel.sweep_prediction(config, SIZES) == serial

    def test_compare_systems_parallel_matches_serial(self, small_config):
        workloads = [GEMMWorkload("w", [GEMMShape(512, 512, 512, Precision.FP32)])]
        systems = [CPUOnlyBaseline(small_config), RASALikeBaseline(small_config)]
        serial = compare_systems(systems, workloads, num_nodes=2)
        parallel = compare_systems(systems, workloads, num_nodes=2, jobs=2)
        assert serial.systems() == parallel.systems()
        for system in serial.systems():
            assert serial.throughput(system, "w") == parallel.throughput(system, "w")


class TestSampling:
    def test_random_sample_deterministic_and_sized(self):
        a = DesignSpaceExplorer.random_sample(16, seed=42)
        b = DesignSpaceExplorer.random_sample(16, seed=42)
        assert a == b
        assert len(a) == 16
        assert len({point.name for point in a}) == 16

    def test_random_sample_respects_knob_domains(self):
        points = DesignSpaceExplorer.random_sample(
            32, sa_dims=(2, 4), buffer_kbs=(32,), node_counts=(4, 8), seed=0)
        assert all(point.sa_rows in (2, 4) for point in points)
        assert all(point.buffer_kb == 32 for point in points)
        assert all(point.num_nodes in (4, 8) for point in points)

    def test_latin_hypercube_covers_every_choice_once(self):
        # With count == len(choices) each stratum maps to exactly one choice,
        # so every value appears exactly once per knob.
        choices = (16, 32, 64, 128)
        points = DesignSpaceExplorer.latin_hypercube(
            4, sa_dims=(2, 4, 8, 16), buffer_kbs=choices,
            node_counts=(1, 2, 4, 8), seed=5)
        assert sorted(point.buffer_kb for point in points) == sorted(choices)
        assert sorted(point.sa_rows for point in points) == [2, 4, 8, 16]
        assert sorted(point.num_nodes for point in points) == [1, 2, 4, 8]

    def test_latin_hypercube_deterministic(self):
        assert DesignSpaceExplorer.latin_hypercube(8, seed=9) == \
               DesignSpaceExplorer.latin_hypercube(8, seed=9)

    def test_sample_dispatcher(self):
        assert len(DesignSpaceExplorer.sample("random", 5, seed=1)) == 5
        assert len(DesignSpaceExplorer.sample("lhs", 5, seed=1)) == 5
        assert len(DesignSpaceExplorer.sample("grid")) == 27
        with pytest.raises(ValueError):
            DesignSpaceExplorer.sample("sobol", 5)

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            DesignSpaceExplorer.random_sample(0)
        with pytest.raises(ValueError):
            DesignSpaceExplorer.latin_hypercube(-1)


@dataclass
class _FakeResult:
    gflops: float
    gflops_per_watt: float


def _brute_force_front(results, metrics):
    """Reference implementation: the seed's O(n^2) pairwise dominance check."""
    front = []
    for index, candidate in enumerate(results):
        candidate_scores = [metric(candidate) for metric in metrics]
        dominated = False
        for other_index, other in enumerate(results):
            if other_index == index:
                continue
            other_scores = [metric(other) for metric in metrics]
            if all(o >= c for o, c in zip(other_scores, candidate_scores)) and any(
                o > c for o, c in zip(other_scores, candidate_scores)
            ):
                dominated = True
                break
        if not dominated:
            front.append(candidate)
    return front


class TestParetoFront:
    METRICS = (lambda r: r.gflops, lambda r: r.gflops_per_watt)

    def test_matches_brute_force_on_random_sets(self):
        import random

        rng = random.Random(1234)
        for trial in range(20):
            results = [
                _FakeResult(rng.randint(0, 12), rng.randint(0, 12)) for _ in range(60)
            ]
            fast = pareto_front(results, self.METRICS)
            reference = _brute_force_front(results, self.METRICS)
            assert [(r.gflops, r.gflops_per_watt) for r in fast] == \
                   [(r.gflops, r.gflops_per_watt) for r in reference], f"trial {trial}"

    def test_duplicates_all_kept(self):
        results = [_FakeResult(3.0, 1.0), _FakeResult(3.0, 1.0), _FakeResult(1.0, 5.0)]
        front = pareto_front(results, self.METRICS)
        assert len(front) == 3

    def test_preserves_input_order(self):
        results = [_FakeResult(1.0, 5.0), _FakeResult(5.0, 1.0), _FakeResult(3.0, 3.0)]
        front = pareto_front(results, self.METRICS)
        assert [r.gflops for r in front] == [1.0, 5.0, 3.0]

    def test_three_metric_fallback(self):
        results = [_FakeResult(2.0, 2.0), _FakeResult(1.0, 1.0), _FakeResult(3.0, 1.0)]
        metrics = (lambda r: r.gflops, lambda r: r.gflops_per_watt, lambda r: -r.gflops)
        front = pareto_front(results, metrics)
        reference = _brute_force_front(results, metrics)
        assert front == reference
