"""Aggregated results of a serving simulation.

:class:`ServeReport` is the single artefact a simulation run produces: fleet
throughput and tail latency, per-tenant and per-node breakdowns, queueing and
context-switch statistics.  It renders as aligned ASCII tables (for eyeballs
and diffs) or a stable JSON document (``to_json`` sorts keys, so two runs with
the same seed produce byte-identical output — the determinism tests compare
these strings directly).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Sequence

from repro.analysis.reporting import latency_summary, render_table

__all__ = ["TenantStats", "NodeStats", "ServeReport", "build_report"]


@dataclass(frozen=True)
class TenantStats:
    """Per-tenant serving outcome: request counts, throughput, tail latency."""

    name: str
    requests: int
    throughput_rps: float
    latency_mean_s: float
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    wait_mean_s: float


@dataclass(frozen=True)
class NodeStats:
    """Per-node serving outcome: completions, utilization, tenant switches."""

    node_id: int
    completed: int
    busy_s: float
    utilization: float
    tenant_switches: int
    switch_s: float


@dataclass(frozen=True)
class ServeReport:
    """Everything a serving simulation measured, in one frozen record."""

    trace: str
    scheduler: str
    num_nodes: int
    total_requests: int
    makespan_s: float
    throughput_rps: float
    latency_mean_s: float
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    queue_depth_mean: float
    queue_depth_max: int
    context_switch_s: float
    tenants: List[TenantStats] = field(default_factory=list)
    nodes: List[NodeStats] = field(default_factory=list)

    @property
    def mean_utilization(self) -> float:
        """Average busy fraction across the fleet's nodes."""
        if not self.nodes:
            return 0.0
        return sum(node.utilization for node in self.nodes) / len(self.nodes)

    def to_dict(self) -> dict:
        """The report as plain nested dicts/lists (JSON-able, round-trips)."""
        return asdict(self)

    def to_json(self, indent: int = 2) -> str:
        """Stable JSON text: sorted keys, so identical runs compare equal."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Render the report as ASCII tables plus a fleet summary line."""
        def ms(seconds: float) -> str:
            return f"{seconds * 1e3:.2f}"

        tenant_rows = [
            [stats.name, stats.requests, f"{stats.throughput_rps:.2f}",
             ms(stats.latency_p50_s), ms(stats.latency_p95_s), ms(stats.latency_p99_s),
             ms(stats.wait_mean_s)]
            for stats in self.tenants
        ]
        node_rows = [
            [stats.node_id, stats.completed, f"{stats.busy_s * 1e3:.1f}",
             f"{stats.utilization * 100:.1f}%", stats.tenant_switches]
            for stats in self.nodes
        ]
        sections = [
            f"Serve report - {self.scheduler} scheduler, trace {self.trace}: "
            f"{self.total_requests} requests on {self.num_nodes} nodes "
            f"in {self.makespan_s:.3f} s ({self.throughput_rps:.2f} req/s)",
            render_table(
                ["tenant", "requests", "req/s", "p50 (ms)", "p95 (ms)", "p99 (ms)", "mean wait (ms)"],
                tenant_rows, title="Per-tenant latency and throughput"),
            render_table(
                ["node", "completed", "busy (ms)", "utilization", "tenant switches"],
                node_rows, title="Per-node utilization"),
            (f"fleet: p50 {ms(self.latency_p50_s)} ms, p95 {ms(self.latency_p95_s)} ms, "
             f"p99 {ms(self.latency_p99_s)} ms | mean utilization "
             f"{self.mean_utilization * 100:.1f}% | queue depth mean {self.queue_depth_mean:.2f} "
             f"max {self.queue_depth_max} | context-switch time {self.context_switch_s * 1e3:.3f} ms"),
        ]
        return "\n\n".join(sections)


def build_report(
    trace_name: str,
    scheduler_name: str,
    num_nodes: int,
    completions: Sequence[dict],
    node_stats: Sequence[NodeStats],
    queue_depth_mean: float,
    queue_depth_max: int,
) -> ServeReport:
    """Assemble a :class:`ServeReport` from raw per-request completion records.

    ``completions`` entries carry ``tenant``, ``arrival_s``, ``start_s``,
    ``finish_s`` and ``switch_s``; latency is ``finish - arrival`` and wait is
    ``start - arrival``.  The makespan is the last finish time, and every
    throughput figure divides by it, so per-tenant throughputs sum exactly to
    the fleet throughput.
    """
    makespan = max((entry["finish_s"] for entry in completions), default=0.0)
    latencies = [entry["finish_s"] - entry["arrival_s"] for entry in completions]
    by_tenant: Dict[str, List[dict]] = {}
    for entry in completions:
        by_tenant.setdefault(entry["tenant"], []).append(entry)

    tenants = []
    for name in sorted(by_tenant):
        entries = by_tenant[name]
        tenant_latencies = [entry["finish_s"] - entry["arrival_s"] for entry in entries]
        waits = [entry["start_s"] - entry["arrival_s"] for entry in entries]
        summary = latency_summary(tenant_latencies)
        tenants.append(TenantStats(
            name=name,
            requests=len(entries),
            throughput_rps=len(entries) / makespan if makespan else 0.0,
            latency_mean_s=summary["mean"],
            latency_p50_s=summary["p50"],
            latency_p95_s=summary["p95"],
            latency_p99_s=summary["p99"],
            wait_mean_s=sum(waits) / len(waits),
        ))

    if latencies:
        fleet = latency_summary(latencies)
    else:
        fleet = {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
    return ServeReport(
        trace=trace_name,
        scheduler=scheduler_name,
        num_nodes=num_nodes,
        total_requests=len(completions),
        makespan_s=makespan,
        throughput_rps=len(completions) / makespan if makespan else 0.0,
        latency_mean_s=fleet["mean"],
        latency_p50_s=fleet["p50"],
        latency_p95_s=fleet["p95"],
        latency_p99_s=fleet["p99"],
        queue_depth_mean=queue_depth_mean,
        queue_depth_max=queue_depth_max,
        context_switch_s=sum(node.switch_s for node in node_stats),
        tenants=tenants,
        nodes=list(node_stats),
    )
