"""Tests for the elastic serve fleet (repro.serve.autoscale).

Covers the hysteresis controller's decision rules, the capacity-derived KV
budget (DRAM capacity minus sharded resident weights, per DESIGN.md section
11), the feasibility-error provenance, and the end-to-end elasticity story:
an autoscaled bursty overload run must match the fixed max-fleet's SLO
attainment on strictly fewer node-seconds, stay byte-identical across
``shards``/``jobs``, and degenerate to the fixed-fleet report when
``min_groups == max_groups``.
"""

import dataclasses

import pytest

from repro.core import maco_default_config
from repro.gemm import Precision
from repro.mem.dram import DRAMModel
from repro.serve import (
    AutoscalePolicy,
    Autoscaler,
    KVBudget,
    ServeSimulator,
    WindowStats,
    bursty_trace,
    derive_kv_budget,
    llm_tenants,
    poisson_trace,
)
from repro.workloads import workload_graph_by_name

#: Small LLaMA proxy shared with test_continuous_batching.py: fast enough for
#: dozens of step-mode runs, heavy enough that four groups matter.
VARIANT = "llama-7b@layers=2,prompt=128,decode=32,block=8"


def overload_trace(seed=7, utilization=1.1, requests=60, bursty=True,
                   ttft_slo_s=15.0, tpot_slo_s=1.0):
    """A 110%-overload LLM trace with loose (but real) SLO targets.

    The loose targets keep attainment comparable between the elastic and the
    pinned fleet (both can meet them); the node-seconds comparison is where
    the elastic fleet must win.
    """
    config = maco_default_config(num_nodes=4)
    sizing = ServeSimulator(config=config)
    specs = [
        spec.with_slo(ttft_slo_s=ttft_slo_s, tpot_slo_s=tpot_slo_s)
        for spec in sizing.suggest_rates(
            llm_tenants(2, variant=VARIANT), utilization=utilization)
    ]
    duration = requests / sum(spec.rate_rps for spec in specs)
    generate = bursty_trace if bursty else poisson_trace
    return generate(specs, duration, seed=seed)


def elastic_simulator(min_groups=1, max_groups=4, jobs=None, **overrides):
    policy = AutoscalePolicy(min_groups=min_groups, max_groups=max_groups)
    defaults = dict(config=maco_default_config(num_nodes=4), scheduler="fcfs",
                    batching="step", max_batch=4, autoscale=policy, jobs=jobs)
    defaults.update(overrides)
    return ServeSimulator(**defaults)


def shrunk_capacity_config(node_capacity_bytes, num_nodes=4):
    """The default config with per-node DRAM capacity pinned to a byte count.

    With four channels and four nodes each node's capacity share equals one
    channel's capacity, so the pin is exact.
    """
    config = maco_default_config(num_nodes=num_nodes)
    dram = dataclasses.replace(
        config.memory.dram, channel_capacity_bytes=int(node_capacity_bytes))
    return dataclasses.replace(
        config, memory=dataclasses.replace(config.memory, dram=dram))


# ------------------------------------------------------------------- policy
class TestPolicyValidation:
    def test_bounds_are_validated(self):
        with pytest.raises(ValueError, match="min_groups"):
            AutoscalePolicy(min_groups=0)
        with pytest.raises(ValueError, match="max_groups"):
            AutoscalePolicy(min_groups=3, max_groups=2)
        with pytest.raises(ValueError, match="sustain_windows"):
            AutoscalePolicy(sustain_windows=0)
        with pytest.raises(ValueError, match="hysteresis"):
            AutoscalePolicy(scale_in_queue_depth=4.0, scale_out_queue_depth=4.0)
        with pytest.raises(ValueError, match="negative"):
            AutoscalePolicy(cooldown_s=-1.0)

    def test_autoscale_requires_step_batching(self):
        with pytest.raises(ValueError, match="step"):
            ServeSimulator(autoscale=AutoscalePolicy())

    def test_max_groups_bounded_by_fleet(self):
        with pytest.raises(ValueError, match="max_groups"):
            ServeSimulator(config=maco_default_config(num_nodes=2),
                           batching="step",
                           autoscale=AutoscalePolicy(max_groups=3))


class TestController:
    POLICY = AutoscalePolicy(min_groups=1, max_groups=3, window_s=1.0,
                             sustain_windows=2, cooldown_s=2.0)

    def test_sustained_depth_pressure_scales_out(self):
        scaler = Autoscaler(self.POLICY)
        deep = WindowStats(queue_depth_peak=9, served=0, slo_misses=0)
        assert scaler.evaluate(1.0, deep, 1) is None  # one window is not sustained
        assert scaler.evaluate(2.0, deep, 1) == ("out", "queue-pressure")

    def test_sustained_slo_pressure_wins_the_reason(self):
        scaler = Autoscaler(self.POLICY)
        missing = WindowStats(queue_depth_peak=0, served=10, slo_misses=5)
        assert scaler.evaluate(1.0, missing, 1) is None
        assert scaler.evaluate(2.0, missing, 1) == ("out", "slo-pressure")

    def test_cooldown_suppresses_flapping(self):
        scaler = Autoscaler(self.POLICY)
        deep = WindowStats(queue_depth_peak=20, served=0, slo_misses=0)
        assert scaler.evaluate(2.0, deep, 1) is None
        assert scaler.evaluate(3.0, deep, 1) == ("out", "queue-pressure")
        # Pressure persists but the cooldown (until t=5) holds the line.
        assert scaler.evaluate(4.0, deep, 2) is None
        assert scaler.evaluate(4.9, deep, 2) is None
        assert scaler.evaluate(5.0, deep, 2) == ("out", "queue-pressure")

    def test_idle_windows_scale_in_but_never_below_min(self):
        scaler = Autoscaler(self.POLICY)
        idle = WindowStats(queue_depth_peak=0, served=0, slo_misses=0)
        assert scaler.evaluate(1.0, idle, 2) is None
        assert scaler.evaluate(2.0, idle, 2) == ("in", "idle")
        assert scaler.evaluate(5.0, idle, 1) is None
        assert scaler.evaluate(6.0, idle, 1) is None  # at min_groups: held

    def test_out_bounded_by_committed_in_bounded_by_serving(self):
        scaler = Autoscaler(self.POLICY)
        deep = WindowStats(queue_depth_peak=20, served=0, slo_misses=0)
        scaler.evaluate(1.0, deep, 3)
        # Committed at max (even with one group draining): no scale-out.
        assert scaler.evaluate(2.0, deep, 3, draining_groups=1) is None
        scaler = Autoscaler(self.POLICY)
        idle = WindowStats(queue_depth_peak=0, served=0, slo_misses=0)
        scaler.evaluate(1.0, idle, 2, draining_groups=1)
        # Serving (committed - draining) is already at min: no stacked drain.
        assert scaler.evaluate(2.0, idle, 2, draining_groups=1) is None

    def test_band_between_thresholds_resets_streaks(self):
        scaler = Autoscaler(self.POLICY)
        idle = WindowStats(queue_depth_peak=0, served=0, slo_misses=0)
        band = WindowStats(queue_depth_peak=2, served=4, slo_misses=0)
        assert scaler.evaluate(1.0, idle, 2) is None
        assert scaler.evaluate(2.0, band, 2) is None  # streak broken
        assert scaler.evaluate(3.0, idle, 2) is None  # must re-sustain
        assert scaler.evaluate(4.0, idle, 2) == ("in", "idle")


# ------------------------------------------------------------ KV budget math
class TestKVBudgetSizing:
    CONFIG = maco_default_config(num_nodes=4)

    def node_capacity(self):
        return DRAMModel(config=self.CONFIG.memory.dram).node_capacity_bytes(4)

    @pytest.mark.parametrize("sharers", [1, 4])
    def test_auto_budget_is_capacity_minus_sharded_weights(self, sharers):
        weights = workload_graph_by_name(VARIANT, Precision.FP32).weight_bytes
        kv = derive_kv_budget(self.CONFIG, [(VARIANT, Precision.FP32)],
                              sharers=sharers, num_nodes=4)
        assert kv.source == "auto"
        assert kv.sharers == sharers
        assert kv.budget_bytes == self.node_capacity() - (-(-weights // sharers))
        assert "auto-derived" in kv.describe()

    @pytest.mark.parametrize("parallel,degree", [
        (None, 1), ("tp:4", 4), ("tp2d:2x2", 4),
    ])
    def test_simulator_resolves_auto_budget_per_parallelism(self, parallel, degree):
        trace = overload_trace(requests=8)
        simulator = ServeSimulator(config=self.CONFIG, batching="step",
                                   kv_budget_bytes="auto", parallelism=parallel)
        weights = workload_graph_by_name(VARIANT, Precision.FP32).weight_bytes
        kv = simulator.resolved_kv_budget(trace)
        assert kv.sharers == degree
        assert kv.budget_bytes == self.node_capacity() - (-(-weights // degree))

    def test_co_resident_workloads_subtract_the_largest_share(self):
        small = "llama-7b@layers=1,prompt=64,decode=16,block=8"
        pairs = [(VARIANT, Precision.FP32), (small, Precision.FP32)]
        kv = derive_kv_budget(self.CONFIG, pairs, sharers=1, num_nodes=4)
        assert kv.workload == VARIANT  # the two-layer stack dominates
        weights = workload_graph_by_name(VARIANT, Precision.FP32).weight_bytes
        assert kv.budget_bytes == self.node_capacity() - weights

    def test_weights_exceeding_capacity_raise_with_provenance(self):
        # llama-13b keeps ~10.2 GB resident; a 16-node fleet owns ~4.3 GB of
        # DRAM per node, so the weights alone cannot fit.
        with pytest.raises(ValueError, match="exceed the node DRAM capacity"):
            derive_kv_budget(maco_default_config(num_nodes=16),
                             [("llama-13b", Precision.FP32)],
                             sharers=1, num_nodes=16)
        # Sharding the weights four ways makes the same model fit.
        kv = derive_kv_budget(maco_default_config(num_nodes=16),
                              [("llama-13b", Precision.FP32)],
                              sharers=4, num_nodes=16)
        assert kv.budget_bytes > 0

    def test_explicit_and_default_budgets_pass_through(self):
        trace = overload_trace(requests=8)
        explicit = ServeSimulator(config=self.CONFIG, batching="step",
                                  kv_budget_bytes=123.0e6)
        kv = explicit.resolved_kv_budget(trace)
        assert (kv.budget_bytes, kv.source) == (123.0e6, "explicit")
        default = ServeSimulator(config=self.CONFIG, batching="step")
        assert default.resolved_kv_budget(trace).source == "default"
        with pytest.raises(ValueError, match="auto"):
            ServeSimulator(batching="step", kv_budget_bytes="automatic")

    def test_describe_states_the_provenance(self):
        assert "(explicit)" in KVBudget(8e6, "explicit").describe()
        auto = derive_kv_budget(self.CONFIG, [(VARIANT, Precision.FP32)],
                                sharers=2, num_nodes=4)
        text = auto.describe()
        assert "auto-derived" in text and "sharded 2x" in text


class TestFeasibilityProvenance:
    def test_explicit_budget_error_names_the_knob(self):
        trace = overload_trace(requests=8)
        simulator = ServeSimulator(config=maco_default_config(num_nodes=4),
                                   batching="step", kv_budget_bytes=1.0e6)
        with pytest.raises(ValueError, match="kv_budget_bytes"):
            simulator.run(trace)

    def test_auto_budget_error_reports_the_derivation(self):
        # Capacity one MB above the resident weights: the budget is positive
        # but no request fits, and the error must explain where the budget
        # came from, not just its byte count.
        weights = workload_graph_by_name(VARIANT, Precision.FP32).weight_bytes
        config = shrunk_capacity_config(weights + 1_000_000)
        simulator = ServeSimulator(config=config, batching="step",
                                   kv_budget_bytes="auto")
        trace = overload_trace(requests=8)
        with pytest.raises(ValueError, match="auto-derived"):
            simulator.run(trace)


# -------------------------------------------------------------- elastic runs
class TestElasticServing:
    def test_bursty_overload_matches_attainment_on_fewer_node_seconds(self):
        trace = overload_trace(seed=7, utilization=1.1)
        elastic = elastic_simulator(min_groups=1, max_groups=4).run(trace)
        pinned = elastic_simulator(min_groups=4, max_groups=4).run(trace)
        assert elastic.slo_attainment >= pinned.slo_attainment
        assert elastic.autoscale.node_seconds < pinned.autoscale.node_seconds
        assert (elastic.autoscale.goodput_per_node_second
                > pinned.autoscale.goodput_per_node_second)
        assert any(event.direction == "out" for event in elastic.autoscale.events)

    def test_steady_low_utilization_never_scales(self):
        trace = overload_trace(seed=11, utilization=0.15, bursty=False)
        report = elastic_simulator(min_groups=1, max_groups=4).run(trace)
        assert report.autoscale.events == ()
        assert all(groups == 1 for _, groups in report.autoscale.timeline)

    def test_timeline_stays_in_bounds_and_reconstructs_from_events(self):
        trace = overload_trace(seed=7, utilization=1.1)
        auto = elastic_simulator(min_groups=1, max_groups=4).run(trace).autoscale
        assert auto.events  # the overload must actually exercise the fleet
        for _, groups in auto.timeline:
            assert 1 <= groups <= 4
        changes = []
        for event in auto.events:
            assert event.groups_after == event.groups_before + (
                1 if event.direction == "out" else -1)
            if event.direction == "out":
                assert event.serving_from_s == pytest.approx(
                    event.time_s + auto.provision_delay_s)
                changes.append((event.time_s, 1))
            else:
                assert event.stopped_s >= event.time_s
                changes.append((event.stopped_s, -1))
        fleet = auto.min_groups
        rebuilt = [auto.timeline[0]]
        for time_s, delta in sorted(changes):
            fleet += delta
            rebuilt.append((time_s, fleet))
        assert tuple(rebuilt) == auto.timeline

    def test_reports_identical_across_shards_and_jobs(self):
        trace = overload_trace(seed=7, utilization=1.1)
        reference = elastic_simulator().run(trace, shards=1).to_json()
        for shards in (2, 5):
            assert elastic_simulator().run(trace, shards=shards).to_json() == reference
        pooled = elastic_simulator(jobs=2).run(trace, shards=3).to_json()
        assert pooled == reference

    def test_pinned_fleet_matches_fixed_fleet_byte_for_byte(self):
        trace = overload_trace(seed=7, utilization=1.1)
        pinned = elastic_simulator(min_groups=4, max_groups=4).run(trace)
        fixed = ServeSimulator(config=maco_default_config(num_nodes=4),
                               scheduler="fcfs", batching="step",
                               max_batch=4).run(trace)
        assert pinned.autoscale is not None and fixed.autoscale is None
        stripped = dataclasses.replace(pinned, autoscale=None)
        assert stripped.to_json() == fixed.to_json()

    def test_autoscale_section_renders(self):
        trace = overload_trace(seed=7, utilization=1.1, requests=20)
        report = elastic_simulator().run(trace)
        text = report.render()
        assert "autoscale: 1..4 groups" in text
        assert "node-seconds" in text
