"""A software-style runtime on top of the MPAIS instruction set.

The paper exposes MACO to programmers through MPAIS; this module is the thin
"user library" a programmer would link against: it hides register packing and
MTQ polling behind NumPy-level calls, supports asynchronous task handles (the
MAID), and demonstrates multi-process submission — the scenarios Section III.B
and III.C describe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import MACOConfig, maco_default_config
from repro.core.maco import MACOSystem
from repro.cpu.exceptions import ExceptionType
from repro.cpu.mtq import StatusWord
from repro.gemm.precision import Precision
from repro.isa.assembler import assemble_program
from repro.isa.instructions import GEMMDescriptor


@dataclass
class AsyncHandle:
    """Handle for a GEMM submitted with :meth:`MACORuntime.gemm_async`."""

    node_id: int
    maid: int
    c_address: int
    c_array: np.ndarray


class MACORuntime:
    """NumPy-level convenience API over a :class:`~repro.core.maco.MACOSystem`."""

    def __init__(self, system: Optional[MACOSystem] = None, config: Optional[MACOConfig] = None) -> None:
        if system is not None and config is not None:
            raise ValueError("pass either a system or a config, not both")
        if system is None:
            system = MACOSystem(config if config is not None else maco_default_config(num_nodes=4))
        self.system = system

    # ------------------------------------------------------------------ blocking
    def gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: Optional[np.ndarray] = None,
        precision: Precision = Precision.FP64,
        node_id: int = 0,
        tile: int = 64,
    ) -> np.ndarray:
        """Compute ``C + A @ B`` on one MMAE through the MPAIS path and return C."""
        node = self.system.node(node_id)
        result, submission = node.run_gemm_functional(a, b, c, precision, ttr=tile, ttc=tile)
        if submission.exception is not ExceptionType.NONE:
            raise RuntimeError(f"GEMM failed with exception {submission.exception.name}")
        return result

    # --------------------------------------------------------------- asynchronous
    def gemm_async(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: Optional[np.ndarray] = None,
        precision: Precision = Precision.FP64,
        node_id: int = 0,
        tile: int = 64,
    ) -> AsyncHandle:
        """Submit a GEMM without waiting; returns a handle to poll with :meth:`wait`.

        Mirrors the hardware flow: MA_CFG allocates the MTQ entry and queues the
        task; the caller later polls MA_READ / MA_STATE.
        """
        node = self.system.node(node_id)
        m, k = a.shape
        _, n = b.shape
        addr_a, _ = node.allocate_matrix(m, k, precision, data=a)
        addr_b, _ = node.allocate_matrix(k, n, precision, data=b)
        addr_c, array_c = node.allocate_matrix(m, n, precision, data=c)
        descriptor = GEMMDescriptor(
            addr_a=addr_a, addr_b=addr_b, addr_c=addr_c, m=m, n=n, k=k,
            precision=precision,
            tile_rows=max(m, tile), tile_cols=max(n, tile),
            ttr=min(tile, m), ttc=min(tile, n),
        )
        submission = node.submit_gemm(descriptor, execute=False)
        return AsyncHandle(node_id=node_id, maid=submission.maid, c_address=addr_c, c_array=array_c)

    def poll(self, handle: AsyncHandle) -> StatusWord:
        """MA_READ: query the task state without releasing the MTQ entry."""
        node = self.system.node(handle.node_id)
        node.cpu.registers.write(1, handle.maid)
        trace = node.executor.execute_program(assemble_program("MA_READ X4, X1"))[0]
        return StatusWord.unpack(trace.status_word)

    def wait(self, handle: AsyncHandle) -> np.ndarray:
        """Drive the accelerator to completion, release the entry, and return C."""
        node = self.system.node(handle.node_id)
        node.mmae.execute_pending()
        node.cpu.registers.write(1, handle.maid)
        trace = node.executor.execute_program(assemble_program("MA_STATE X4, X1"))[0]
        status = StatusWord.unpack(trace.status_word)
        if status.exception_en:
            raise RuntimeError(f"GEMM failed with exception {status.exception_type.name}")
        return handle.c_array

    # --------------------------------------------------------------- housekeeping
    def clear(self, handle: AsyncHandle) -> None:
        """MA_CLEAR the task's MTQ entry (required after an exception)."""
        node = self.system.node(handle.node_id)
        node.cpu.registers.write(1, handle.maid)
        node.executor.execute_program(assemble_program("MA_CLEAR X1"))

    def outstanding_tasks(self, node_id: int = 0) -> int:
        """Number of MTQ entries still occupied on ``node_id``."""
        return self.system.node(node_id).cpu.mtq.outstanding_tasks()
