"""Trace-driven multi-tenant inference serving on the MACO model.

This package layers a serving simulator over the system timing model:
:mod:`repro.serve.trace` generates or replays tenant request arrivals (with
optional per-tenant priorities and TTFT/TPOT SLO targets),
:mod:`repro.serve.scheduler` provides the batching policies (FCFS, SJF,
round-robin per tenant, priority tiers, SLO-aware EDF),
:mod:`repro.serve.simulator` runs the discrete-event loop against a
:class:`~repro.core.maco.MACOSystem` — either whole-request dispatch or
iteration-level continuous batching with a paged KV budget and preemption —
and :mod:`repro.serve.report` aggregates per-tenant and fleet-wide
throughput, utilization, queue depth, p50/p95/p99 latency, TTFT/TPOT
percentiles, SLO attainment and goodput.  :mod:`repro.serve.autoscale` adds
the elastic-fleet pieces: a windowed hysteresis autoscaler that grows and
shrinks the committed node groups against the trace, and a per-node KV
budget derived from the DRAM capacity model minus the resident (sharded)
model weights.

Typical use (also exposed as ``python -m repro.cli serve``)::

    from repro.serve import ServeSimulator, llm_tenants, poisson_trace

    sim = ServeSimulator(scheduler="slo", batching="step", max_batch=8)
    tenants = [spec.with_slo(ttft_slo_s=0.5, tpot_slo_s=0.1)
               for spec in sim.suggest_rates(llm_tenants(3), utilization=1.1)]
    trace = poisson_trace(tenants, duration_s=2.0, seed=7)
    report = sim.run(trace)
    print(report.render())
"""

from repro.serve.autoscale import (
    AutoscalePolicy,
    Autoscaler,
    AutoscaleStats,
    KVBudget,
    ScaleEvent,
    WindowStats,
    derive_kv_budget,
)
from repro.serve.engine import ENGINE_NAMES
from repro.serve.report import (
    NodeStats,
    ServeReport,
    TenantStats,
    build_report,
    build_report_from_columns,
)
from repro.serve.scheduler import (
    SCHEDULER_NAMES,
    BatchingPolicy,
    FCFSScheduler,
    PriorityScheduler,
    RoundRobinScheduler,
    Scheduler,
    SJFScheduler,
    SLOScheduler,
    scheduler_by_name,
)
from repro.serve.simulator import (
    DEFAULT_KV_BUDGET_BYTES,
    TENANT_SWITCH_FLUSH_CYCLES,
    ServeSimulator,
    ServiceProfile,
    StepSpec,
    estimate_phase_service_seconds,
    estimate_service_seconds,
)
from repro.serve.trace import (
    Request,
    RequestTrace,
    TenantSpec,
    TraceColumns,
    bursty_trace,
    bursty_trace_scalar,
    default_tenants,
    llm_tenants,
    poisson_trace,
    poisson_trace_scalar,
    replay_trace,
)

__all__ = [
    "Request",
    "RequestTrace",
    "TenantSpec",
    "TraceColumns",
    "default_tenants",
    "llm_tenants",
    "poisson_trace",
    "poisson_trace_scalar",
    "bursty_trace",
    "bursty_trace_scalar",
    "replay_trace",
    "BatchingPolicy",
    "Scheduler",
    "FCFSScheduler",
    "SJFScheduler",
    "RoundRobinScheduler",
    "PriorityScheduler",
    "SLOScheduler",
    "SCHEDULER_NAMES",
    "scheduler_by_name",
    "ServeSimulator",
    "ServiceProfile",
    "StepSpec",
    "estimate_phase_service_seconds",
    "estimate_service_seconds",
    "TENANT_SWITCH_FLUSH_CYCLES",
    "DEFAULT_KV_BUDGET_BYTES",
    "AutoscalePolicy",
    "Autoscaler",
    "WindowStats",
    "ScaleEvent",
    "AutoscaleStats",
    "KVBudget",
    "derive_kv_budget",
    "ENGINE_NAMES",
    "TenantStats",
    "NodeStats",
    "ServeReport",
    "build_report",
    "build_report_from_columns",
]
