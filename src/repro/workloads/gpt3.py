"""GPT-3 inference as a GEMM stream (Brown et al., NeurIPS 2020).

Running the full 175-billion-parameter GPT-3 is outside what a 16-node MACO
evaluates; the paper necessarily benchmarks a truncated/proxy configuration
(it reports ~1.1 TFLOPS on the workload, i.e. a few tens of milliseconds of
work).  The reproduction therefore models GPT-3-style decoder layers with the
published hidden sizes and exposes the layer count so experiments can pick a
proxy depth; the default uses the GPT-3 2.7B configuration (hidden 2560,
32 layers), whose large square-ish GEMMs are what give Fig. 8 its biggest
bars.  The prompt-processing (prefill) phase is modelled, which is the
GEMM-dominant phase relevant to a matrix engine.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from repro.gemm.precision import Precision
from repro.gemm.workloads import GEMMWorkload
from repro.workloads.bert import TransformerConfig, encoder_layer_phase
from repro.workloads.graph import WorkloadGraph
from repro.workloads.llm import kv_cache_bytes

#: Published GPT-3 model family configurations (Brown et al., Table 2.1).
GPT3_CONFIGS: Dict[str, TransformerConfig] = {
    "gpt3-small": TransformerConfig("gpt3-small", layers=12, hidden=768, heads=12, intermediate=3072),
    "gpt3-medium": TransformerConfig("gpt3-medium", layers=24, hidden=1024, heads=16, intermediate=4096),
    "gpt3-large": TransformerConfig("gpt3-large", layers=24, hidden=1536, heads=16, intermediate=6144),
    # GPT-3 XL's published head count (24) does not divide its hidden size; the
    # model here uses 16 heads so head_dim stays integral.
    "gpt3-xl": TransformerConfig("gpt3-xl", layers=24, hidden=2048, heads=16, intermediate=8192),
    "gpt3-2.7b": TransformerConfig("gpt3-2.7b", layers=32, hidden=2560, heads=32, intermediate=10240),
    "gpt3-6.7b": TransformerConfig("gpt3-6.7b", layers=32, hidden=4096, heads=32, intermediate=16384),
    "gpt3-175b": TransformerConfig("gpt3-175b", layers=96, hidden=12288, heads=96, intermediate=49152),
}


def gpt3_graph(
    variant: str = "gpt3-2.7b",
    batch: int = 4,
    seq_len: int = 1024,
    num_layers: int | None = None,
    precision: Precision = Precision.FP32,
) -> WorkloadGraph:
    """GPT-3 prompt processing as a single PREFILL phase graph.

    ``num_layers`` overrides the variant's depth (useful for a fixed-work proxy);
    attention is causal but the GEMM shapes are the same as full attention, which
    is how matrix engines execute the prefill phase.  ``state_bytes`` carries
    the KV cache the prefill leaves behind for a subsequent decode.
    """
    if variant not in GPT3_CONFIGS:
        raise ValueError(f"unknown GPT-3 variant {variant!r}; options: {sorted(GPT3_CONFIGS)}")
    if batch <= 0 or seq_len <= 0:
        raise ValueError("batch and sequence length must be positive")
    config = GPT3_CONFIGS[variant]
    layers = num_layers if num_layers is not None else config.layers
    if layers <= 0:
        raise ValueError("layer count must be positive")
    proxy = replace(config, layers=layers)
    base = encoder_layer_phase(proxy, batch, seq_len, precision, name=f"prefill[{seq_len}]")
    # The prefill leaves a KV cache behind for a subsequent decode.
    phase = replace(base, state_bytes=kv_cache_bytes(proxy, batch, seq_len, layers, precision))
    return WorkloadGraph(
        name=f"{config.name}-b{batch}-s{seq_len}-l{layers}",
        phases=[phase],
        params={"variant": config.name, "batch": batch, "seq_len": seq_len,
                "layers": layers, "precision": precision.value},
    )


def gpt3_workload(
    variant: str = "gpt3-2.7b",
    batch: int = 4,
    seq_len: int = 1024,
    num_layers: int | None = None,
    precision: Precision = Precision.FP32,
) -> GEMMWorkload:
    """GPT-3 prefill for a batch of prompts, expressed as a flat GEMM workload."""
    return gpt3_graph(variant, batch, seq_len, num_layers, precision).flatten()
