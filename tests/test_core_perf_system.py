"""Tests for the system performance model, the MACO system object and result metrics.

These tests pin the *shape* of the paper's evaluation results (Figs. 6 and 7):
who wins, in which direction efficiency moves, and the approximate magnitudes
of the headline claims.  Exact values are recorded in EXPERIMENTS.md.
"""

import pytest

from repro.core import (
    average_efficiency,
    estimate_node_gemm,
    geometric_mean,
    maco_default_config,
    memory_environment,
    node_peak_gflops,
    speedup,
    sweep_prediction,
    sweep_scalability,
)
from repro.core.metrics import WorkloadResult
from repro.gemm import GEMMShape, Precision
from repro.gemm.workloads import FIG6_MATRIX_SIZES


class TestMemoryEnvironment:
    def test_l3_share_shrinks_with_active_nodes(self):
        config = maco_default_config()
        assert memory_environment(config, 16).l3_share_bytes == pytest.approx(
            memory_environment(config, 1).l3_share_bytes / 16
        )

    def test_dram_share_shrinks_with_active_nodes(self):
        config = maco_default_config()
        assert (
            memory_environment(config, 16).dram_bandwidth_share_bytes_per_s
            < memory_environment(config, 2).dram_bandwidth_share_bytes_per_s
        )

    def test_latency_grows_with_active_nodes(self):
        config = maco_default_config()
        assert (
            memory_environment(config, 16).l3_round_trip_ns
            > memory_environment(config, 1).l3_round_trip_ns
        )

    def test_invalid_active_count(self):
        config = maco_default_config(num_nodes=4)
        with pytest.raises(ValueError):
            memory_environment(config, 5)


class TestNodeGEMMTiming:
    def test_peak_lookup(self):
        config = maco_default_config()
        assert node_peak_gflops(config, Precision.FP64) == pytest.approx(80.0)
        assert node_peak_gflops(config, Precision.FP16) == pytest.approx(320.0)

    def test_single_node_large_gemm_efficiency_matches_paper_band(self):
        config = maco_default_config()
        timing = estimate_node_gemm(config, GEMMShape(4096, 4096, 4096), active_nodes=1)
        assert timing.efficiency > 0.93

    def test_contended_node_is_slower(self):
        config = maco_default_config()
        shape = GEMMShape(2048, 2048, 2048)
        alone = estimate_node_gemm(config, shape, active_nodes=1)
        crowded = estimate_node_gemm(config, shape, active_nodes=16)
        assert crowded.seconds > alone.seconds


class TestFig6Shape:
    def test_prediction_always_helps_or_ties(self):
        config = maco_default_config()
        points = sweep_prediction(config, list(FIG6_MATRIX_SIZES))
        by_size = {}
        for point in points:
            by_size.setdefault(point.matrix_size, {})[point.prediction_enabled] = point.efficiency
        for size, values in by_size.items():
            assert values[True] >= values[False]

    def test_gap_small_below_512_and_peaks_at_1024(self):
        config = maco_default_config()
        points = sweep_prediction(config, [256, 512, 1024])
        by = {(p.matrix_size, p.prediction_enabled): p.efficiency for p in points}
        gap_256 = by[(256, True)] - by[(256, False)]
        gap_1024 = by[(1024, True)] - by[(1024, False)]
        assert gap_256 < 0.02          # paper: below 2% for sizes under 512
        assert 0.04 < gap_1024 < 0.09  # paper: maximum ~6.5% at 1024
        assert gap_1024 > gap_256


class TestFig7Shape:
    def test_sixteen_node_efficiency_near_90_percent(self):
        config = maco_default_config()
        points = sweep_scalability(config, [1024, 4096, 9216], [16])
        for point in points:
            assert 0.85 <= point.efficiency <= 1.0

    def test_efficiency_monotonically_non_increasing_with_nodes(self):
        config = maco_default_config()
        shape_sizes = [2048]
        points = sweep_scalability(config, shape_sizes, [1, 2, 4, 8, 16])
        efficiencies = [p.efficiency for p in sorted(points, key=lambda p: p.active_nodes)]
        assert all(later <= earlier + 1e-9 for earlier, later in zip(efficiencies, efficiencies[1:]))

    def test_average_loss_under_15_percent(self):
        """Paper: ~10% average loss going from one node to sixteen."""
        config = maco_default_config()
        sizes = [1024, 2048, 4096]
        single = sweep_scalability(config, sizes, [1])
        sixteen = sweep_scalability(config, sizes, [16])
        loss = (sum(p.efficiency for p in single) - sum(p.efficiency for p in sixteen)) / len(sizes)
        assert 0.03 < loss < 0.15


class TestMACOSystem:
    def test_run_gemm_partitions_and_reports(self, small_system):
        result = small_system.run_gemm(GEMMShape(2048, 2048, 2048))
        assert result.num_nodes == 4
        assert result.seconds > 0
        assert 0 < result.efficiency <= 1.0
        assert len(result.node_results) == 4

    def test_multi_node_beats_single_node_on_large_gemm(self, small_system):
        shape = GEMMShape(4096, 4096, 4096)
        single = small_system.run_gemm(shape, num_nodes=1)
        quad = small_system.run_gemm(shape, num_nodes=4)
        assert quad.seconds < single.seconds
        assert quad.gflops > 2.5 * single.gflops

    def test_independent_gemms_flops_scale_with_nodes(self, small_system):
        shape = GEMMShape(1024, 1024, 1024)
        result = small_system.run_independent_gemms(shape, num_nodes=4)
        assert result.flops == 4 * shape.flops
        assert result.per_node_efficiency > 0.9

    def test_prediction_flag_passthrough(self, small_system):
        shape = GEMMShape(2048, 2048, 2048)
        with_pred = small_system.run_gemm(shape, num_nodes=1, prediction_enabled=True)
        without = small_system.run_gemm(shape, num_nodes=1, prediction_enabled=False)
        assert without.seconds > with_pred.seconds

    def test_node_count_validation(self, small_system):
        with pytest.raises(ValueError):
            small_system.run_gemm(GEMMShape(64, 64, 64), num_nodes=9)

    def test_peak_gflops_scales_with_requested_nodes(self, small_system):
        assert small_system.peak_gflops(Precision.FP64, 2) == pytest.approx(160.0)


class TestWorkloadRun:
    def test_run_workload_reports_throughput(self, small_system):
        from repro.workloads import resnet50_workload

        workload = resnet50_workload(batch=2)
        result = small_system.run_workload(workload, num_nodes=4)
        assert result.gflops > 0
        assert result.efficiency <= 1.0
        assert result.gemm_seconds > 0

    def test_mapping_scheme_improves_throughput(self, small_system):
        from repro.workloads import resnet50_workload

        workload = resnet50_workload(batch=2)
        mapped = small_system.run_workload(workload, num_nodes=4, mapping_enabled=True)
        unmapped = small_system.run_workload(workload, num_nodes=4, mapping_enabled=False)
        assert mapped.gflops > unmapped.gflops


class TestMetrics:
    def _result(self, name, gflops_seconds):
        seconds, flops = gflops_seconds
        return WorkloadResult(
            name=name, system=name, num_nodes=1, seconds=seconds,
            gemm_flops=flops, total_flops=flops, peak_gflops=100.0,
        )

    def test_speedup(self):
        fast = self._result("fast", (1.0, 100e9))
        slow = self._result("slow", (2.0, 100e9))
        assert speedup(fast, slow) == pytest.approx(2.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_average_efficiency_requires_results(self):
        with pytest.raises(ValueError):
            average_efficiency([])

    def test_workload_result_properties(self):
        result = self._result("x", (0.5, 50e9))
        assert result.gflops == pytest.approx(100.0)
        assert result.tflops == pytest.approx(0.1)
        assert result.efficiency == pytest.approx(1.0)
