"""Tests for design-space exploration, roofline analysis and the energy model."""

import pytest

from repro.analysis import (
    EnergyModel,
    PowerParameters,
    Roofline,
    node_roofline,
    place_gemm,
    roofline_sweep,
)
from repro.core import DesignPoint, DesignSpaceExplorer, maco_default_config, pareto_front
from repro.core.metrics import WorkloadResult
from repro.gemm import GEMMShape, GEMMWorkload, Precision


class TestDesignPoint:
    def test_default_point_matches_paper_config(self):
        config = DesignPoint(name="paper").to_config()
        assert config.mmae.sa_rows == 4
        assert config.mmae.total_buffer_bytes == 192 * 1024
        assert config.mmae.area_mm2 == pytest.approx(1.58, rel=0.02)

    def test_bigger_array_costs_area_and_power(self):
        small = DesignPoint(name="s", sa_rows=4, sa_cols=4).to_config()
        big = DesignPoint(name="b", sa_rows=8, sa_cols=8).to_config()
        assert big.mmae.area_mm2 > small.mmae.area_mm2
        assert big.mmae.power_w > small.mmae.power_w
        assert big.mmae.peak_gflops_fp64 == pytest.approx(4 * small.mmae.peak_gflops_fp64)

    def test_invalid_point_rejected(self):
        with pytest.raises(ValueError):
            DesignPoint(name="bad", sa_rows=0)

    def test_grid_size(self):
        points = DesignSpaceExplorer.grid(sa_dims=(4, 8), buffer_kbs=(64,), node_counts=(4, 16))
        assert len(points) == 4
        assert len({point.name for point in points}) == 4


class TestExploration:
    @pytest.fixture(scope="class")
    def explorer(self):
        return DesignSpaceExplorer()

    def test_evaluate_reports_positive_metrics(self, explorer):
        result = explorer.evaluate(DesignPoint(name="paper", num_nodes=4), GEMMShape(2048, 2048, 2048))
        assert result.gflops > 0
        assert 0 < result.efficiency <= 1.0
        assert result.gflops_per_mm2 > 0
        assert result.gflops_per_watt > 0

    def test_explore_sorts_best_first(self, explorer):
        points = DesignSpaceExplorer.grid(sa_dims=(2, 4), buffer_kbs=(64,), node_counts=(4,))
        ranked = explorer.explore(points, GEMMShape(1024, 1024, 1024))
        assert ranked[0].gflops >= ranked[-1].gflops

    def test_bigger_array_needs_bigger_buffers_to_stay_efficient(self, explorer):
        """The co-design insight the explorer must expose: scaling the array
        without scaling the scratchpads sacrifices efficiency."""
        shape = GEMMShape(2048, 2048, 2048)
        small_buf = explorer.evaluate(DesignPoint(name="8x8-small", sa_rows=8, sa_cols=8, buffer_kb=64, num_nodes=8), shape)
        big_buf = explorer.evaluate(DesignPoint(name="8x8-big", sa_rows=8, sa_cols=8, buffer_kb=256, num_nodes=8), shape)
        assert big_buf.efficiency > small_buf.efficiency

    def test_objective_selection(self, explorer):
        points = [
            DesignPoint(name="fast", sa_rows=8, sa_cols=8, num_nodes=8),
            DesignPoint(name="lean", sa_rows=4, sa_cols=4, num_nodes=8),
        ]
        shape = GEMMShape(1024, 1024, 1024)
        by_throughput = explorer.best(points, shape, objective="gflops")
        by_efficiency = explorer.best(points, shape, objective="efficiency")
        assert by_throughput.point.name == "fast"
        assert by_efficiency.point.name == "lean"

    def test_unknown_objective_rejected(self, explorer):
        with pytest.raises(ValueError):
            explorer.explore([DesignPoint(name="x")], GEMMShape(64, 64, 64), objective="speed")

    def test_workload_evaluation(self, explorer):
        workload = GEMMWorkload("w", [GEMMShape(1024, 1024, 1024), GEMMShape(512, 2048, 256)])
        result = explorer.evaluate(DesignPoint(name="paper", num_nodes=4), workload)
        assert result.seconds > 0

    def test_pareto_front_excludes_dominated_points(self, explorer):
        points = DesignSpaceExplorer.grid(sa_dims=(2, 4, 8), buffer_kbs=(64,), node_counts=(8,))
        results = explorer.explore(points, GEMMShape(2048, 2048, 2048))
        front = pareto_front(results)
        assert 0 < len(front) <= len(results)
        best_gflops = max(results, key=lambda r: r.gflops)
        assert best_gflops in front


class TestExplorerRegressions:
    """Regression tests for the sweep-path correctness fixes."""

    def test_mixed_precision_efficiency_order_invariant(self):
        """Efficiency must not depend on which precision happens to come first."""
        explorer = DesignSpaceExplorer()
        point = DesignPoint(name="paper", num_nodes=4)
        shapes = [
            GEMMShape(2048, 2048, 2048, Precision.FP64),
            GEMMShape(2048, 2048, 2048, Precision.FP16),
        ]
        forward = explorer.evaluate(point, GEMMWorkload("mixed", shapes))
        reverse = explorer.evaluate(point, GEMMWorkload("mixed-rev", list(reversed(shapes))))
        assert forward.efficiency == pytest.approx(reverse.efficiency)

    def test_mixed_precision_efficiency_uses_per_shape_peaks(self):
        explorer = DesignSpaceExplorer()
        point = DesignPoint(name="paper", num_nodes=4)
        shapes = [
            GEMMShape(2048, 2048, 2048, Precision.FP64),
            GEMMShape(2048, 2048, 2048, Precision.FP16),
        ]
        result = explorer.evaluate(point, GEMMWorkload("mixed", shapes))
        config = result.config
        ideal_seconds = sum(
            shape.flops / (config.peak_gflops(shape.precision) * 1e9) for shape in shapes
        )
        assert result.efficiency == pytest.approx(ideal_seconds / result.seconds)
        assert 0 < result.efficiency <= 1.0

    def test_uniform_precision_efficiency_unchanged(self):
        """The uniform-precision path keeps the seed's gflops/peak definition."""
        explorer = DesignSpaceExplorer()
        point = DesignPoint(name="paper", num_nodes=4)
        shape = GEMMShape(2048, 2048, 2048, Precision.FP64)
        result = explorer.evaluate(point, shape)
        assert result.efficiency == pytest.approx(
            result.gflops / result.config.peak_gflops(Precision.FP64))

    def test_tiny_buffer_tile_shrinks_to_what_fits(self):
        """A sub-1KB scratchpad cannot hold the 8x8 floor tile; the derived
        tile must shrink to the largest fitting dimension instead of silently
        modelling an impossible schedule."""
        from repro.mmae.buffers import BufferSet

        config = DesignPoint(name="tiny", buffer_kb=0.5).to_config()
        tile = config.level2_tile
        assert tile.rows < 8
        buffers = BufferSet(
            a_capacity=config.mmae.a_buffer_bytes,
            b_capacity=config.mmae.b_buffer_bytes,
            c_capacity=config.mmae.c_buffer_bytes,
        )
        # Must not raise: the tile genuinely fits the scratchpads.
        buffers.check_tile_fits(tile.rows, tile.cols, tile.rows,
                                Precision.FP64, double_buffered=True)

    def test_impossible_buffer_raises_clear_error(self):
        with pytest.raises(ValueError, match="cannot hold"):
            DesignPoint(name="impossible", buffer_kb=0.01).to_config()

    def test_default_tile_derivation_unchanged(self):
        config = DesignPoint(name="paper").to_config()
        assert config.level2_tile.rows == 64  # 64 KB FP64 double-buffered tile


class TestRoofline:
    def test_ridge_point(self):
        roofline = Roofline(peak_gflops=80.0, bandwidth_gbytes_per_s=20.0)
        assert roofline.ridge_intensity == pytest.approx(4.0)
        assert roofline.attainable_gflops(2.0) == pytest.approx(40.0)
        assert roofline.attainable_gflops(100.0) == pytest.approx(80.0)
        assert roofline.is_compute_bound(5.0)

    def test_node_roofline_peak_matches_config(self):
        roofline = node_roofline(precision=Precision.FP32)
        assert roofline.peak_gflops == pytest.approx(160.0)

    def test_contention_lowers_dram_roofline(self):
        alone = node_roofline(active_nodes=1, level="dram")
        crowded = node_roofline(active_nodes=16, level="dram")
        assert crowded.bandwidth_gbytes_per_s < alone.bandwidth_gbytes_per_s

    def test_large_gemm_compute_bound_when_alone(self):
        point = place_gemm(GEMMShape(4096, 4096, 4096), active_nodes=1)
        assert point.compute_bound

    def test_crowded_system_becomes_memory_bound(self):
        """The roofline view of the Fig. 7 result: at 16 active nodes the DRAM
        share drops below what the tiled GEMM needs."""
        point = place_gemm(GEMMShape(4096, 4096, 4096), active_nodes=16)
        assert not point.compute_bound
        assert point.attainable_gflops < 80.0

    def test_roofline_sweep_keys(self):
        sweep = roofline_sweep([256, 1024])
        assert set(sweep) == {256, 1024}

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            node_roofline(level="l1")


class TestEnergyModel:
    def test_energy_positive_and_split(self):
        model = EnergyModel(num_nodes=4)
        breakdown = model.estimate(total_seconds=1.0, mmae_busy_seconds=0.8,
                                   cpu_busy_seconds=0.2, flops=10**12, active_nodes=4)
        assert breakdown.total_joules > 0
        assert breakdown.mmae_joules > 0 and breakdown.cpu_joules > 0 and breakdown.uncore_joules > 0
        assert breakdown.gflops_per_watt > 0
        assert breakdown.energy_per_flop_pj > 0

    def test_busier_mmae_consumes_more_energy(self):
        model = EnergyModel(num_nodes=1)
        light = model.estimate(1.0, 0.1, 0.0, 10**11, active_nodes=1)
        heavy = model.estimate(1.0, 0.9, 0.0, 10**11, active_nodes=1)
        assert heavy.mmae_joules > light.mmae_joules

    def test_idle_components_still_draw_some_power(self):
        model = EnergyModel(PowerParameters(), num_nodes=1)
        breakdown = model.estimate(1.0, 0.0, 0.0, 1, active_nodes=1)
        assert breakdown.cpu_joules > 0
        assert breakdown.mmae_joules > 0

    def test_parameters_from_config_match_table4(self):
        params = PowerParameters.from_config(maco_default_config())
        assert params.cpu_active_w == pytest.approx(2.0)
        assert params.mmae_active_w == pytest.approx(1.5)

    def test_for_workload_adapter(self):
        result = WorkloadResult(
            name="w", system="maco", num_nodes=4, seconds=2.0,
            gemm_flops=10**12, total_flops=10**12, peak_gflops=640.0,
            gemm_seconds=1.8, non_gemm_seconds=0.3,
        )
        breakdown = EnergyModel(num_nodes=4).for_workload(result)
        assert breakdown.seconds == 2.0
        assert breakdown.total_joules > 0

    def test_for_system_result_adapter(self, small_system):
        result = small_system.run_gemm(GEMMShape(2048, 2048, 2048))
        breakdown = EnergyModel(num_nodes=small_system.num_nodes).for_system_result(result)
        # A GEMM-only run is dominated by MMAE + uncore energy.
        assert breakdown.mmae_joules > breakdown.cpu_joules * 0.5

    def test_invalid_inputs_rejected(self):
        model = EnergyModel(num_nodes=2)
        with pytest.raises(ValueError):
            model.estimate(0.0, 0.0, 0.0, 1)
        with pytest.raises(ValueError):
            model.estimate(1.0, 0.0, 0.0, 1, active_nodes=3)
        with pytest.raises(ValueError):
            PowerParameters(cpu_idle_fraction=1.5)
