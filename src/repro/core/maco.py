"""The full MACO system: compute nodes, NoC, distributed L3, DDR controllers.

:class:`MACOSystem` is the top-level object users interact with.  It offers
three execution entry points matching the paper's experiments:

* :meth:`run_gemm` — one GEMM partitioned across the compute nodes with the
  Fig. 5(a) mapping (used by the examples and the DL workloads);
* :meth:`run_independent_gemms` — one independent GEMM per node (the Fig. 7
  scalability experiment);
* :meth:`run_workload` — a full GEMM+ workload (DL network) with or without
  the stash/lock + overlap mapping scheme (the Fig. 8 experiment and the
  Baseline-2 ablation).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.compute_node import ComputeNode
from repro.core.config import MACOConfig, maco_default_config
from repro.core.mapping import partition_gemm, schedule_gemm_plus
from repro.core.metrics import NodeResult, SystemResult, WorkloadResult
from repro.core.perf import (
    estimate_node_gemm,
    estimate_node_gemm_cached,
    memory_environment,
    node_peak_gflops,
    unmapped_memory_environment,
)
from repro.gemm.precision import Precision
from repro.gemm.workloads import GEMMShape, GEMMWorkload
from repro.mem.dram import DRAMModel
from repro.mem.hostmem import HostMemory
from repro.mem.l3cache import DistributedL3Cache
from repro.noc.network import MeshNetwork


class MACOSystem:
    """A configured MACO instance."""

    def __init__(self, config: Optional[MACOConfig] = None) -> None:
        self.config = config if config is not None else maco_default_config()
        self.host_memory = HostMemory()
        self.noc = MeshNetwork(self.config.noc)
        self.l3 = DistributedL3Cache(
            num_slices=self.config.memory.l3_slices,
            slice_size_bytes=self.config.memory.l3_slice_bytes,
            associativity=self.config.memory.l3_associativity,
            line_size=self.config.memory.line_size,
        )
        self.dram = DRAMModel(config=self.config.memory.dram)
        self.nodes: List[ComputeNode] = [
            ComputeNode(node_id, self.config, host_memory=self.host_memory, l3=self.l3)
            for node_id in range(self.config.num_nodes)
        ]

    # --------------------------------------------------------------------- peaks
    @property
    def num_nodes(self) -> int:
        """Number of compute nodes in this system."""
        return self.config.num_nodes

    def peak_gflops(self, precision: Precision, num_nodes: Optional[int] = None) -> float:
        """Aggregate MMAE peak of ``num_nodes`` nodes (default: all) at a precision."""
        nodes = num_nodes if num_nodes is not None else self.num_nodes
        return node_peak_gflops(self.config, precision) * nodes

    # ------------------------------------------------------------------ one GEMM
    def run_gemm(
        self,
        shape: GEMMShape,
        num_nodes: Optional[int] = None,
        prediction_enabled: Optional[bool] = None,
    ) -> SystemResult:
        """Run one GEMM partitioned across ``num_nodes`` compute nodes."""
        nodes = num_nodes if num_nodes is not None else self.num_nodes
        if not 1 <= nodes <= self.num_nodes:
            raise ValueError(f"num_nodes must be in 1..{self.num_nodes}")
        plan = partition_gemm(shape, nodes)
        active = plan.num_nodes
        env = memory_environment(self.config, active)
        node_results = []
        longest = 0.0
        for assignment in plan.assignments:
            timing = estimate_node_gemm(
                self.config, assignment.shape, active_nodes=active,
                prediction_enabled=prediction_enabled, env=env,
            )
            node_results.append(
                NodeResult(
                    node_id=assignment.node_id,
                    seconds=timing.seconds,
                    flops=assignment.shape.flops,
                    breakdowns=[timing],
                )
            )
            longest = max(longest, timing.seconds)
        return SystemResult(
            shape=shape,
            num_nodes=active,
            seconds=longest,
            flops=shape.flops,
            peak_gflops=self.peak_gflops(shape.precision, active),
            node_results=node_results,
            prediction_enabled=(
                prediction_enabled if prediction_enabled is not None else self.config.prediction_enabled
            ),
        )

    # --------------------------------------------------------- independent GEMMs
    def run_independent_gemms(
        self,
        shape: GEMMShape,
        num_nodes: Optional[int] = None,
        prediction_enabled: Optional[bool] = None,
    ) -> SystemResult:
        """Run the same GEMM independently on every active node (Fig. 7 setup)."""
        nodes = num_nodes if num_nodes is not None else self.num_nodes
        if not 1 <= nodes <= self.num_nodes:
            raise ValueError(f"num_nodes must be in 1..{self.num_nodes}")
        env = memory_environment(self.config, nodes)
        timing = estimate_node_gemm(
            self.config, shape, active_nodes=nodes,
            prediction_enabled=prediction_enabled, env=env,
        )
        node_results = [
            NodeResult(node_id=node_id, seconds=timing.seconds, flops=shape.flops, breakdowns=[timing])
            for node_id in range(nodes)
        ]
        return SystemResult(
            shape=shape,
            num_nodes=nodes,
            seconds=timing.seconds,
            flops=shape.flops * nodes,
            peak_gflops=self.peak_gflops(shape.precision, nodes),
            node_results=node_results,
            prediction_enabled=(
                prediction_enabled if prediction_enabled is not None else self.config.prediction_enabled
            ),
        )

    # ------------------------------------------------------------- full workload
    def run_workload(
        self,
        workload: GEMMWorkload,
        num_nodes: Optional[int] = None,
        mapping_enabled: Optional[bool] = None,
        prediction_enabled: Optional[bool] = None,
    ) -> WorkloadResult:
        """Run a GEMM+ workload (e.g. a DL network) across the compute nodes.

        Every layer's GEMM is column-partitioned across the active nodes; the
        per-layer time is the slowest node's time (layers are data dependent
        and execute in order).  The non-GEMM tail operators run on the CPU
        cores; the mapping scheme decides whether they overlap with the MMAEs
        and whether their inputs are still locked in the L3.
        """
        nodes = num_nodes if num_nodes is not None else self.num_nodes
        if not 1 <= nodes <= self.num_nodes:
            raise ValueError(f"num_nodes must be in 1..{self.num_nodes}")
        if mapping_enabled is None:
            mapping_enabled = self.config.mapping_scheme_enabled
        precision = workload.shapes[0].precision if workload.shapes else Precision.FP32

        env = memory_environment(self.config, nodes)
        if not mapping_enabled:
            env = unmapped_memory_environment(env)

        # The per-layer timings run through the memoized timing cache: a column
        # partition yields at most two distinct sub-shapes per layer, and DL
        # workloads repeat the same layer shapes many times (e.g. one GEMM set
        # per BERT encoder block), so most estimates are cache hits.
        plans = [partition_gemm(shape, nodes) for shape in workload]
        mmae_seconds = 0.0
        gemm_flops = 0
        for shape, plan in zip(workload, plans):
            layer_seconds = 0.0
            for assignment in plan.assignments:
                timing = estimate_node_gemm_cached(
                    self.config, assignment.shape, active_nodes=nodes,
                    prediction_enabled=prediction_enabled, env=env,
                )
                layer_seconds = max(layer_seconds, timing.seconds)
            mmae_seconds += layer_seconds
            gemm_flops += shape.flops

        # Non-GEMM tail operators.  The mapping scheme distributes them across
        # the active CPU cores (each core post-processes its own output tiles);
        # without it the launching core runs the whole tail by itself.
        cpu = self.nodes[0].cpu
        tail_cores = nodes if mapping_enabled else 1
        per_core_flops = workload.non_gemm_flops / tail_cores
        per_core_bytes = workload.non_gemm_bytes / tail_cores
        cpu_seconds = cpu.run_elementwise(int(per_core_flops), int(per_core_bytes)).seconds

        # Stash traffic: the shared A panels plus each node's B/C columns are
        # prefetched from DRAM once per layer.
        stash_bytes = sum(plan.stash_bytes for plan in plans)
        stash_seconds = stash_bytes / self.dram.effective_bandwidth(nodes)

        schedule = schedule_gemm_plus(
            mmae_seconds=mmae_seconds,
            cpu_seconds=cpu_seconds,
            stash_seconds=stash_seconds,
            mapping_enabled=mapping_enabled,
        )
        total_seconds = schedule.total_seconds
        return WorkloadResult(
            name=workload.name,
            system="maco" if mapping_enabled else "maco-nomap",
            num_nodes=nodes,
            seconds=total_seconds,
            gemm_flops=gemm_flops,
            total_flops=workload.total_flops,
            peak_gflops=self.peak_gflops(precision, nodes),
            gemm_seconds=mmae_seconds,
            non_gemm_seconds=cpu_seconds,
            overlap_enabled=mapping_enabled,
        )

    # ----------------------------------------------------------------- functional
    def node(self, node_id: int = 0) -> ComputeNode:
        """Access a compute node (e.g. to drive the functional MPAIS path)."""
        return self.nodes[node_id]
