"""Network-on-chip substrate: 4x4 2D mesh, X-Y routing, virtual channels, bandwidth model.

The paper's NoC is a classical 4x4 2D mesh running at 2 GHz with 256-bit links
(128 GB/s bidirectional per compute node), X-Y dimension-order routing and
virtual-channel flow control (Section III.A).  Two views are provided:

* a transaction-level model (:class:`MeshNetwork`) that routes individual
  packets hop by hop, used by the functional tests; and
* a contention model (:class:`NocContentionModel`) that estimates the
  sustained per-node bandwidth when ``n`` nodes stream to the distributed L3
  simultaneously — the quantity that drives the Fig. 7 scalability results.

:mod:`repro.parallel` builds a third consumer on the same substrate: its
collective cost model prices ring all-reduce / all-gather / point-to-point
transfers over these X-Y routes for sharded multi-node execution.
"""

from repro.noc.mesh import MeshTopology, NodeCoordinate
from repro.noc.routing import xy_route, route_hops, route_links
from repro.noc.flit import Flit, Packet, FlitType
from repro.noc.router import Router, VirtualChannel
from repro.noc.network import MeshNetwork, NocConfig, TransferResult
from repro.noc.contention import NocContentionModel

__all__ = [
    "MeshTopology",
    "NodeCoordinate",
    "xy_route",
    "route_hops",
    "route_links",
    "Flit",
    "Packet",
    "FlitType",
    "Router",
    "VirtualChannel",
    "MeshNetwork",
    "NocConfig",
    "TransferResult",
    "NocContentionModel",
]
