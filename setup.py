"""Legacy setup shim for the MACO reproduction package.

All project metadata lives in pyproject.toml (PEP 621), including the
``src/`` package layout and the ``repro`` console script.  This file exists
only so environments whose tooling predates PEP 517 (``python setup.py
install`` in offline images with an old setuptools) can still install the
package; setuptools reads the pyproject metadata either way.  Offline
``pip`` users should pass ``--no-build-isolation`` (see README "Install and
verify") so pip does not try to download the build backend.
"""

from setuptools import setup

setup()
