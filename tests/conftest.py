"""Shared fixtures for the test-suite.

The parity-test factories consolidated out of ``test_serve_vectorized.py``,
``test_parallel.py`` and ``test_vectorized_parity.py`` live in
``parity_utils.py`` (importable because the flat test layout keeps ``tests/``
on ``sys.path``); the fixtures here re-expose the shared configuration and
timing-cache instances those suites and the parallel-plan consumers use.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MACOSystem, maco_default_config
from repro.core.perf import TimingCache


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for numerical tests."""
    return np.random.default_rng(seed=1234)


@pytest.fixture
def small_config():
    """A 4-node MACO configuration (fast to build, exercises the multi-node paths)."""
    return maco_default_config(num_nodes=4)


@pytest.fixture
def small_system(small_config) -> MACOSystem:
    """A 4-node MACO system with shared host memory and L3."""
    return MACOSystem(small_config)


@pytest.fixture
def single_node_system() -> MACOSystem:
    """A single-node MACO system for functional MPAIS tests."""
    return MACOSystem(maco_default_config(num_nodes=1))


@pytest.fixture(scope="session")
def default_config():
    """The full default MACO configuration, shared across modules."""
    return maco_default_config()


@pytest.fixture(scope="session")
def timing_cache() -> TimingCache:
    """One timing cache for every parallel-plan test (plans are deterministic,
    so sharing the cache across modules only removes redundant GEMM walks)."""
    return TimingCache()
