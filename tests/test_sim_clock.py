"""Tests for the clock / clock-domain helpers."""

import math

import pytest

from repro.sim import Clock, CycleDomain


class TestClock:
    def test_advance_accumulates_cycles(self):
        clock = Clock(frequency_hz=2.5e9)
        clock.advance(10)
        clock.advance(5)
        assert clock.cycle == 15

    def test_advance_returns_new_cycle(self):
        clock = Clock(frequency_hz=1e9)
        assert clock.advance(3) == 3

    def test_negative_advance_rejected(self):
        clock = Clock(frequency_hz=1e9)
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError):
            Clock(frequency_hz=0)

    def test_period_is_inverse_of_frequency(self):
        clock = Clock(frequency_hz=2.0e9)
        assert math.isclose(clock.period_s, 0.5e-9)

    def test_cycles_to_seconds_roundtrip(self):
        clock = Clock(frequency_hz=2.2e9)
        seconds = clock.cycles_to_seconds(2.2e9)
        assert math.isclose(seconds, 1.0)
        assert clock.seconds_to_cycles(seconds) == 2.2e9

    def test_seconds_to_cycles_rounds_up(self):
        clock = Clock(frequency_hz=1e9)
        assert clock.seconds_to_cycles(1.5e-9) == 2

    def test_negative_duration_rejected(self):
        clock = Clock(frequency_hz=1e9)
        with pytest.raises(ValueError):
            clock.seconds_to_cycles(-1.0)

    def test_elapsed_follows_advance(self):
        clock = Clock(frequency_hz=1e9)
        clock.advance(1000)
        assert math.isclose(clock.elapsed_s, 1e-6)

    def test_reset(self):
        clock = Clock(frequency_hz=1e9)
        clock.advance(7)
        clock.reset()
        assert clock.cycle == 0


class TestCycleDomain:
    def test_paper_clock_domains(self):
        cpu = CycleDomain("cpu", 2.2e9)
        mmae = CycleDomain("mmae", 2.5e9)
        noc = CycleDomain("noc", 2.0e9)
        assert cpu.frequency_ghz == pytest.approx(2.2)
        assert mmae.frequency_ghz == pytest.approx(2.5)
        assert noc.frequency_ghz == pytest.approx(2.0)

    def test_convert_cycles_between_domains(self):
        cpu = CycleDomain("cpu", 2.2e9)
        mmae = CycleDomain("mmae", 2.5e9)
        # 2.2e9 CPU cycles = 1 second = 2.5e9 MMAE cycles.
        assert cpu.convert_cycles(2.2e9, mmae) == pytest.approx(2.5e9)

    def test_make_clock_inherits_frequency(self):
        domain = CycleDomain("noc", 2.0e9)
        clock = domain.make_clock()
        assert clock.frequency_hz == 2.0e9
        assert clock.name == "noc"

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            CycleDomain("bad", -1.0)
