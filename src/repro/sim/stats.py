"""Named statistics counters shared by the architectural models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List


@dataclass
class Counter:
    """A monotonically increasing named counter."""

    name: str
    value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot add negative amount {amount}")
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0


@dataclass
class Histogram:
    """A tiny histogram that tracks count/sum/min/max of observed samples."""

    name: str
    count: int = 0
    total: float = 0.0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))

    def observe(self, sample: float) -> None:
        self.count += 1
        self.total += sample
        self.minimum = min(self.minimum, sample)
        self.maximum = max(self.maximum, sample)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")


class StatsRegistry:
    """A flat namespace of counters and histograms.

    Components create their counters lazily via :meth:`counter` /
    :meth:`histogram`; reports read them back with :meth:`snapshot`.
    """

    def __init__(self, prefix: str = "") -> None:
        self.prefix = prefix
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _qualify(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def counter(self, name: str) -> Counter:
        key = self._qualify(name)
        if key not in self._counters:
            self._counters[key] = Counter(key)
        return self._counters[key]

    def histogram(self, name: str) -> Histogram:
        key = self._qualify(name)
        if key not in self._histograms:
            self._histograms[key] = Histogram(key)
        return self._histograms[key]

    def counters(self) -> Iterator[Counter]:
        return iter(self._counters.values())

    def histograms(self) -> Iterator[Histogram]:
        return iter(self._histograms.values())

    def snapshot(self) -> Dict[str, float]:
        """Return a flat ``{name: value}`` view of every counter and histogram mean."""
        values: Dict[str, float] = {c.name: c.value for c in self._counters.values()}
        for hist in self._histograms.values():
            values[f"{hist.name}.count"] = float(hist.count)
            values[f"{hist.name}.mean"] = hist.mean
        return values

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        for hist in self._histograms.values():
            hist.reset()

    def report_lines(self) -> List[str]:
        """Human-readable one-line-per-stat report (sorted by name)."""
        lines = [f"{name} = {value:g}" for name, value in sorted(self.snapshot().items())]
        return lines
