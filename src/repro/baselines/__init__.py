"""Baseline systems MACO is compared against in Fig. 8.

* **Baseline-1** — MACO's CPU cores only (no MMAEs).
* **Baseline-2** — MACO with MMAEs but without the Section IV.B mapping scheme
  (no stash/lock, no CPU/MMAE overlap).
* **RASA-like** — a tightly-coupled matrix engine inside each CPU core's
  pipeline, following the resource-sharing trade-offs the paper attributes to
  TCA designs (shared MMU/LSU, CPU clock domain, no CPU/engine overlap).
* **Gemmini-like** — a loosely-coupled accelerator with address translation
  but no predictive walks, no stash/lock support and a host-synchronised
  task-at-a-time execution model.

The authors' exact comparator configurations (MacSim/RASA, the Gemmini RTL
generation) are not available, so these models share MACO's substrate and
differ only in the architectural mechanisms the paper names; the calibration
constants are documented in each module and in EXPERIMENTS.md.
"""

from repro.baselines.common import BaselineModel, BaselineComparison, compare_systems
from repro.baselines.cpu_only import CPUOnlyBaseline
from repro.baselines.mmae_nomap import NoMappingBaseline
from repro.baselines.rasa import RASALikeBaseline
from repro.baselines.gemmini import GemminiLikeBaseline

__all__ = [
    "BaselineModel",
    "BaselineComparison",
    "compare_systems",
    "CPUOnlyBaseline",
    "NoMappingBaseline",
    "RASALikeBaseline",
    "GemminiLikeBaseline",
]
