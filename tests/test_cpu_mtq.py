"""Tests for the Master Task Queue: Table III fields and the Fig. 3 state machine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.exceptions import ExceptionType
from repro.cpu.mtq import MTQState, MasterTaskQueue, NULL_ASID, StatusWord


class TestStatusWord:
    def test_pack_unpack_roundtrip(self):
        word = StatusWord(valid=True, done=True, asid=17, exception_en=True,
                          exception_type=ExceptionType.BUS_ERROR)
        assert StatusWord.unpack(word.pack()) == word

    @given(
        valid=st.booleans(), done=st.booleans(), asid=st.integers(0, 0xFFFE),
        exc=st.sampled_from(list(ExceptionType)),
    )
    def test_roundtrip_property(self, valid, done, asid, exc):
        word = StatusWord(valid=valid, done=done, asid=asid,
                          exception_en=exc is not ExceptionType.NONE, exception_type=exc)
        assert StatusWord.unpack(word.pack()) == word


class TestAllocation:
    def test_allocate_returns_maids_in_order(self):
        mtq = MasterTaskQueue(num_entries=4)
        assert [mtq.allocate(0) for _ in range(4)] == [0, 1, 2, 3]

    def test_allocate_when_full_returns_none(self):
        mtq = MasterTaskQueue(num_entries=2)
        mtq.allocate(0)
        mtq.allocate(0)
        assert mtq.allocate(0) is None

    def test_new_entry_fields_match_table3(self):
        mtq = MasterTaskQueue()
        maid = mtq.allocate(asid=5)
        entry = mtq.entries[maid]
        assert entry.valid and not entry.done
        assert entry.asid == 5
        assert not entry.exception_en
        assert entry.exception_type is ExceptionType.NONE

    def test_free_entry_has_null_asid(self):
        mtq = MasterTaskQueue()
        assert all(entry.asid == NULL_ASID for entry in mtq.entries)

    def test_invalid_asid_rejected(self):
        with pytest.raises(ValueError):
            MasterTaskQueue().allocate(NULL_ASID)


class TestFig3StateMachine:
    """The four numbered transitions of the paper's Fig. 3."""

    def test_state1_task_performing(self):
        mtq = MasterTaskQueue()
        maid = mtq.allocate(asid=0)
        assert mtq.state_of(maid) is MTQState.RUNNING

    def test_state2_done_released_by_owner_ma_state(self):
        mtq = MasterTaskQueue()
        maid = mtq.allocate(asid=0)
        mtq.mark_done(maid)
        assert mtq.state_of(maid) is MTQState.DONE
        status = StatusWord.unpack(mtq.query_and_release(maid, asid=0))
        assert status.done and status.asid == 0
        assert mtq.state_of(maid) is MTQState.FREE

    def test_state3_entry_reused_by_other_process_asid_mismatch(self):
        mtq = MasterTaskQueue()
        maid = mtq.allocate(asid=0)
        mtq.mark_done(maid)
        mtq.query_and_release(maid, asid=0)
        # Process #01 grabs the same entry; process #00's later query sees the mismatch.
        new_maid = mtq.allocate(asid=1)
        assert new_maid == maid
        status = StatusWord.unpack(mtq.query(maid))
        assert status.asid == 1  # ASID no longer matches process #00
        # A release attempt by the old owner must not free the new owner's entry.
        mtq.query_and_release(maid, asid=0)
        assert mtq.state_of(maid) is MTQState.RUNNING

    def test_state4_exception_requires_ma_clear(self):
        mtq = MasterTaskQueue()
        maid = mtq.allocate(asid=0)
        mtq.mark_done(maid, ExceptionType.PAGE_FAULT)
        assert mtq.state_of(maid) is MTQState.DONE_EXCEPTION
        status = StatusWord.unpack(mtq.query_and_release(maid, asid=0))
        assert status.exception_en
        assert status.exception_type is ExceptionType.PAGE_FAULT
        # MA_STATE does not release an excepted entry; MA_CLEAR does.
        assert mtq.state_of(maid) is MTQState.DONE_EXCEPTION
        mtq.clear(maid)
        assert mtq.state_of(maid) is MTQState.FREE

    def test_entries_survive_process_switches(self):
        """MTQ state is keyed by MAID, not by the running process (Section III.C)."""
        mtq = MasterTaskQueue()
        maid_a = mtq.allocate(asid=0)
        maid_b = mtq.allocate(asid=1)
        mtq.mark_done(maid_a)
        # Process 1 querying its own entry does not disturb process 0's entry.
        mtq.query(maid_b)
        status_a = StatusWord.unpack(mtq.query_and_release(maid_a, asid=0))
        assert status_a.done and status_a.asid == 0


class TestQueries:
    def test_query_does_not_release(self):
        mtq = MasterTaskQueue()
        maid = mtq.allocate(asid=0)
        mtq.mark_done(maid)
        mtq.query(maid)
        assert mtq.state_of(maid) is MTQState.DONE

    def test_release_requires_done(self):
        mtq = MasterTaskQueue()
        maid = mtq.allocate(asid=0)
        mtq.query_and_release(maid, asid=0)
        assert mtq.state_of(maid) is MTQState.RUNNING

    def test_mark_done_on_free_entry_rejected(self):
        mtq = MasterTaskQueue()
        with pytest.raises(ValueError):
            mtq.mark_done(0)

    def test_out_of_range_maid_rejected(self):
        mtq = MasterTaskQueue(num_entries=2)
        with pytest.raises(ValueError):
            mtq.query(5)

    def test_entries_for_asid(self):
        mtq = MasterTaskQueue()
        mtq.allocate(asid=3)
        mtq.allocate(asid=3)
        mtq.allocate(asid=4)
        assert len(mtq.entries_for_asid(3)) == 2

    def test_outstanding_tasks(self):
        mtq = MasterTaskQueue()
        a = mtq.allocate(asid=0)
        mtq.allocate(asid=0)
        mtq.mark_done(a)
        assert mtq.outstanding_tasks() == 1


class TestMTQProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.sampled_from(["alloc", "done", "state", "clear"]), min_size=1, max_size=60))
    def test_entry_counts_stay_consistent(self, operations):
        mtq = MasterTaskQueue(num_entries=4)
        live = []
        for op in operations:
            if op == "alloc":
                maid = mtq.allocate(asid=0)
                if maid is not None:
                    live.append(maid)
            elif op == "done" and live:
                mtq.mark_done(live[0])
            elif op == "state" and live:
                mtq.query_and_release(live[0], asid=0)
                if mtq.state_of(live[0]) is MTQState.FREE:
                    live.pop(0)
            elif op == "clear" and live:
                mtq.clear(live.pop(0))
            free = sum(1 for e in mtq.entries if e.state is MTQState.FREE)
            assert free == len(mtq) - len(live)
