"""Mixture-of-experts FFN as a phase-aware workload.

A sparse MoE transformer layer replaces the dense FFN with ``experts``
independent expert MLPs and a learned router that sends every token to its
``top_k`` best experts (Shazeer et al., 2017; Fedus et al., 2022).  From the
matrix engine's point of view each layer becomes:

* the usual dense attention GEMMs over all tokens;
* a skinny router GEMM (``tokens x experts``);
* one FFN GEMM pair per expert over its routed token subset — under the
  standard balanced-routing assumption each expert sees
  ``tokens * top_k / experts`` tokens (load-balancing losses exist precisely
  to make this assumption hold).

The expert GEMMs are many small identical shapes — a stress test for the
paper's address-prediction path, since each expert touches a different weight
region while the activations stay shared — so the graph keeps them as an
explicit MOE phase whose ``state_bytes`` records the resident expert weights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.gemm.precision import Precision
from repro.workloads.graph import Phase, PhaseKind, WorkloadGraph
from repro.workloads.layers import attention_gemms, elementwise_cost, linear_gemm

__all__ = [
    "MoEConfig",
    "balanced_routed_tokens",
    "moe_workload_graph",
    "route_topk",
]


def balanced_routed_tokens(tokens: int, top_k: int, experts: int) -> int:
    """Tokens each expert sees under the balanced-routing assumption.

    Every token goes to ``top_k`` experts, so ``tokens * top_k`` assignments
    spread over ``experts`` experts; the ceiling keeps degenerate shapes legal
    (an expert GEMM needs at least one row).
    """
    if tokens <= 0 or top_k <= 0 or experts <= 0:
        raise ValueError("tokens, top_k and experts must be positive")
    return max(1, math.ceil(tokens * top_k / experts))


def route_topk(logits: np.ndarray, top_k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Top-k expert routing with softmax-renormalised gate weights.

    ``logits`` is ``(tokens, experts)``.  Returns ``(indices, weights)``:
    ``indices[t]`` holds the ``top_k`` chosen experts of token ``t`` ordered
    by descending logit with ties broken toward the lower expert index, and
    ``weights[t]`` the softmax of the selected logits (computed in float64,
    so each row sums to 1).  This is the functional model of the router GEMM's
    tail that :func:`moe_workload_graph` charges as element-wise work; the
    conformance harness checks it against a per-token Python reference.
    """
    if logits.ndim != 2:
        raise ValueError(f"expected (tokens, experts) logits, got shape {logits.shape}")
    tokens, experts = logits.shape
    if not 1 <= top_k <= experts:
        raise ValueError(f"top_k must be in 1..{experts}, got {top_k}")
    scores = logits.astype(np.float64)
    # Stable argsort of the negated logits: equal logits keep index order,
    # which makes the tie-break deterministic and platform-independent.
    indices = np.argsort(-scores, axis=1, kind="stable")[:, :top_k]
    selected = np.take_along_axis(scores, indices, axis=1)
    shifted = selected - selected[:, :1]  # top logit is the row max
    gates = np.exp(shifted)
    weights = gates / gates.sum(axis=1, keepdims=True)
    return indices.astype(np.int64), weights


@dataclass(frozen=True)
class MoEConfig:
    """Hyper-parameters of a sparse mixture-of-experts transformer."""

    name: str
    layers: int
    hidden: int
    heads: int
    intermediate: int
    experts: int
    top_k: int

    def __post_init__(self) -> None:
        if self.hidden % self.heads:
            raise ValueError(f"{self.name}: hidden must be divisible by heads")
        if self.experts <= 0:
            raise ValueError(f"{self.name}: expert count must be positive")
        if not 1 <= self.top_k <= self.experts:
            raise ValueError(f"{self.name}: top_k must be in 1..{self.experts}, got {self.top_k}")

    @property
    def expert_weight_bytes_fp32(self) -> int:  # pragma: no cover - convenience
        return self.experts * 2 * self.hidden * self.intermediate * 4


def moe_workload_graph(
    experts: int = 8,
    top_k: int = 2,
    batch: int = 4,
    seq_len: int = 512,
    num_layers: int = 8,
    hidden: int = 1024,
    heads: int = 16,
    intermediate: int = 4096,
    precision: Precision = Precision.FP32,
) -> WorkloadGraph:
    """A sparse-MoE encoder pass as a two-phase graph per layer fold.

    Phase 1 (``attention``, folded over layers) is the dense attention GEMM
    set; phase 2 (``moe-ffn``) is the router GEMM plus ``experts`` identical
    FFN GEMM pairs over each expert's balanced token share.  Total expert
    FLOPs scale with ``top_k`` (tokens are processed ``top_k`` times), not
    with ``experts`` — adding experts shrinks each GEMM instead.
    """
    if batch <= 0 or seq_len <= 0 or num_layers <= 0:
        raise ValueError("batch, sequence length and layer count must be positive")
    config = MoEConfig(
        name=f"moe-{experts}x",
        layers=num_layers,
        hidden=hidden,
        heads=heads,
        intermediate=intermediate,
        experts=experts,
        top_k=top_k,
    )
    tokens = batch * seq_len

    attention_shapes = tuple(attention_gemms(batch, seq_len, hidden, heads, precision))
    softmax_elements = batch * heads * seq_len * seq_len
    norm_elements = 2 * tokens * hidden
    attn_flops, attn_bytes = elementwise_cost(softmax_elements, 5.0, precision)
    norm_flops, norm_bytes = elementwise_cost(norm_elements, 6.0, precision)
    attention_phase = Phase(
        name="attention",
        kind=PhaseKind.PREFILL,
        shapes=attention_shapes,
        non_gemm_flops=attn_flops + norm_flops,
        non_gemm_bytes=attn_bytes + norm_bytes,
        repeat=num_layers,
    )

    routed_tokens = balanced_routed_tokens(tokens, top_k, experts)
    expert_pair = [
        linear_gemm(routed_tokens, hidden, intermediate, precision),
        linear_gemm(routed_tokens, intermediate, hidden, precision),
    ]
    ffn_shapes = [linear_gemm(tokens, hidden, experts, precision)]  # router logits
    for _ in range(experts):
        ffn_shapes.extend(expert_pair)
    # Router softmax/top-k over the expert logits, GELU over every routed
    # token's hidden activations, and the weighted combine of top_k outputs.
    router_flops, router_bytes = elementwise_cost(tokens * experts, 8.0, precision)
    gelu_flops, gelu_bytes = elementwise_cost(routed_tokens * experts * intermediate, 8.0, precision)
    combine_flops, combine_bytes = elementwise_cost(tokens * hidden * top_k, 2.0, precision)
    expert_weight_bytes = experts * 2 * hidden * intermediate * precision.bytes_per_element
    moe_phase = Phase(
        name="moe-ffn",
        kind=PhaseKind.MOE,
        shapes=tuple(ffn_shapes),
        non_gemm_flops=router_flops + gelu_flops + combine_flops,
        non_gemm_bytes=router_bytes + gelu_bytes + combine_bytes,
        repeat=num_layers,
        state_bytes=expert_weight_bytes,
    )

    return WorkloadGraph(
        name=f"{config.name}-top{top_k}-b{batch}-s{seq_len}-l{num_layers}",
        phases=[attention_phase, moe_phase],
        params={
            "experts": experts,
            "top_k": top_k,
            "batch": batch,
            "seq_len": seq_len,
            "layers": num_layers,
            "hidden": hidden,
            "heads": heads,
            "intermediate": intermediate,
            "precision": precision.value,
        },
    )
