"""The Accelerator Controller (AC): the brain of the MMAE.

The AC receives task configurations from the CPU core (forwarded by the MPAIS
executor into the Slave Task Queue), validates them, schedules the systolic
array and the Accelerator Data Engine tile by tile, and reports completion or
exception back to the CPU-side MTQ (paper Section III.A / III.C).

Execution has two modes that share the same validation and queue machinery:

* **timing mode** (always available): the task's duration is estimated with
  the tile-granular model of :mod:`repro.mmae.dataflow`; this is what the
  evaluation sweeps use.
* **functional mode** (when a :class:`~repro.mem.hostmem.HostMemory` holds the
  operand matrices): the GEMM is additionally computed numerically tile by
  tile through the systolic-array datapath model, and the result is written
  back to memory so tests can compare against NumPy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional


from repro.cpu.exceptions import ExceptionType, MMAETaskException
from repro.gemm.precision import Precision
from repro.gemm.tiling import TileConfig, TwoLevelTiling
from repro.gemm.workloads import GEMMShape
from repro.isa.instructions import GEMMDescriptor, InitDescriptor, MoveDescriptor, StashDescriptor
from repro.mem.address import AddressRange
from repro.mem.hostmem import HostMemory
from repro.mem.l3cache import DistributedL3Cache, StashRequest
from repro.mmae.buffers import BufferAllocationError, BufferSet
from repro.mmae.data_engine import AcceleratorDataEngine
from repro.mmae.dataflow import (
    GEMMTimingBreakdown,
    MemoryEnvironment,
    MMAETimingParameters,
    estimate_gemm_timing,
)
from repro.mmae.matlb import MATLB, MatrixLayout
from repro.mmae.stq import STQEntry, SlaveTaskQueue
from repro.mmae.systolic_array import SystolicArray


@dataclass
class TaskResult:
    """Outcome of one executed MMAE task."""

    maid: int
    kind: str
    cycles: float
    exception: ExceptionType = ExceptionType.NONE
    timing: Optional[GEMMTimingBreakdown] = None
    functional: bool = False

    @property
    def succeeded(self) -> bool:
        return self.exception is ExceptionType.NONE

    def seconds(self, frequency_hz: float) -> float:
        """Convert the cycle count to wall-clock time in the given clock domain."""
        return self.cycles / frequency_hz


class AcceleratorController:
    """One MMAE's controller; satisfies the :class:`repro.isa.executor.MMAEPort` protocol."""

    #: Functional execution is only attempted below this operand size, to keep
    #: the NumPy tile loop affordable in the test-suite.  The batched page
    #: prediction / translation fast path (translate_tile_batch) made the
    #: per-tile overhead cheap enough to raise this 4x over the scalar-era
    #: limit, which brings BERT-sized layers (M*K + K*N ~ 7.5M elements)
    #: within functional reach.
    FUNCTIONAL_LIMIT_ELEMENTS = 1 << 24

    def __init__(
        self,
        node_id: int = 0,
        timing_params: Optional[MMAETimingParameters] = None,
        memory_env: Optional[MemoryEnvironment] = None,
        host_memory: Optional[HostMemory] = None,
        l3: Optional[DistributedL3Cache] = None,
        mmu=None,
        stq_capacity: int = 8,
        page_size: int = 4096,
        prediction_enabled: bool = True,
    ) -> None:
        self.node_id = node_id
        self.params = timing_params if timing_params is not None else MMAETimingParameters()
        self.env = memory_env if memory_env is not None else MemoryEnvironment()
        self.host_memory = host_memory
        self.l3 = l3
        self.mmu = mmu
        self.page_size = page_size
        self.prediction_enabled = prediction_enabled

        self.array = SystolicArray(self.params.sa_rows, self.params.sa_cols, self.params.frequency_hz)
        self.buffers = BufferSet()
        self.matlb = MATLB(page_size=page_size)
        self.ade = AcceleratorDataEngine(
            buffers=self.buffers,
            num_engines=self.params.dma_engines,
            frequency_hz=self.params.frequency_hz,
            matlb=self.matlb,
        )
        self.stq = SlaveTaskQueue(capacity=stq_capacity, name=f"mmae{node_id}.stq")
        self.results: List[TaskResult] = []
        self.busy_cycles = 0.0

    # --------------------------------------------------------------- configuration
    def set_memory_environment(self, env: MemoryEnvironment) -> None:
        """Update the memory environment (called when the active node count changes)."""
        self.env = env

    def set_prediction(self, enabled: bool) -> None:
        """Enable/disable predictive address translation (the Fig. 6 knob)."""
        self.prediction_enabled = enabled

    def peak_gflops(self, precision: Precision = Precision.FP64) -> float:
        return self.array.peak_gflops(precision)

    # ------------------------------------------------------------------ MMAEPort
    def submit_gemm(self, maid: int, asid: int, descriptor: GEMMDescriptor) -> None:
        self.stq.receive(maid, asid, "gemm", descriptor)

    def submit_move(self, maid: int, asid: int, descriptor: MoveDescriptor) -> None:
        self.stq.receive(maid, asid, "move", descriptor)

    def submit_init(self, maid: int, asid: int, descriptor: InitDescriptor) -> None:
        self.stq.receive(maid, asid, "init", descriptor)

    def submit_stash(self, maid: int, asid: int, descriptor: StashDescriptor) -> None:
        self.stq.receive(maid, asid, "stash", descriptor)

    # ------------------------------------------------------------------ execution
    def execute_pending(self) -> List[TaskResult]:
        """Execute every buffered STQ task in arrival order; returns their results."""
        results = []
        while True:
            entry = self.stq.next_task()
            if entry is None:
                break
            results.append(self._execute_entry(entry))
        return results

    def _execute_entry(self, entry: STQEntry) -> TaskResult:
        entry.mark_running()
        handler = {
            "gemm": self._run_gemm,
            "move": self._run_move,
            "init": self._run_init,
            "stash": self._run_stash,
        }[entry.kind]
        try:
            result = handler(entry)
        except MMAETaskException as exc:
            result = TaskResult(maid=entry.maid, kind=entry.kind, cycles=0.0, exception=exc.exception_type)
            self.stq.fail(entry, exc.exception_type)
        except BufferAllocationError:
            result = TaskResult(
                maid=entry.maid, kind=entry.kind, cycles=0.0, exception=ExceptionType.BUFFER_OVERFLOW
            )
            self.stq.fail(entry, ExceptionType.BUFFER_OVERFLOW)
        else:
            self.stq.complete(entry, result.cycles)
        self.results.append(result)
        self.busy_cycles += result.cycles
        return result

    # --------------------------------------------------------------------- GEMM
    def _validate_gemm(self, descriptor: GEMMDescriptor) -> None:
        if descriptor.precision not in (Precision.FP64, Precision.FP32, Precision.FP16):
            raise MMAETaskException(ExceptionType.PRECISION_UNSUPPORTED, str(descriptor.precision))
        ttk = min(descriptor.ttc, descriptor.k)
        self.buffers.check_tile_fits(
            min(descriptor.ttr, descriptor.m),
            min(descriptor.ttc, descriptor.n),
            ttk,
            descriptor.precision,
        )
        if self.host_memory is not None and self.mmu is not None:
            # Functional runs require the operands to be mapped; unmapped
            # operands surface as the PAGE_FAULT exception of Table III.
            for name, addr in (("A", descriptor.addr_a), ("B", descriptor.addr_b), ("C", descriptor.addr_c)):
                if self.host_memory.has_matrix(addr):
                    continue
                raise MMAETaskException(
                    ExceptionType.PAGE_FAULT,
                    detail=f"operand {name} is not mapped",
                    faulting_address=addr,
                )

    def _run_gemm(self, entry: STQEntry) -> TaskResult:
        descriptor: GEMMDescriptor = entry.descriptor
        self._validate_gemm(descriptor)
        shape = GEMMShape(descriptor.m, descriptor.n, descriptor.k, descriptor.precision)
        level1 = TileConfig(descriptor.tile_rows, descriptor.tile_cols)
        level2 = TileConfig(descriptor.ttr, descriptor.ttc)

        timing = estimate_gemm_timing(
            shape,
            level1=level1,
            level2=level2,
            params=self.params,
            env=self.env,
            prediction_enabled=self.prediction_enabled,
            page_size=self.page_size,
        )

        functional = (
            self.host_memory is not None
            and self.host_memory.has_matrix(descriptor.addr_a)
            and self.host_memory.has_matrix(descriptor.addr_b)
            and self.host_memory.has_matrix(descriptor.addr_c)
            and shape.m * shape.k + shape.k * shape.n <= self.FUNCTIONAL_LIMIT_ELEMENTS
        )
        if functional:
            self._compute_gemm_functional(descriptor, shape, level1, level2, entry.asid)

        return TaskResult(
            maid=entry.maid,
            kind="gemm",
            cycles=timing.total_cycles,
            timing=timing,
            functional=functional,
        )

    def _compute_gemm_functional(
        self,
        descriptor: GEMMDescriptor,
        shape: GEMMShape,
        level1: TileConfig,
        level2: TileConfig,
        asid: int,
    ) -> None:
        """Run the GEMM numerically, tile by tile, through the array datapath."""
        memory = self.host_memory
        a = memory.matrix_at(descriptor.addr_a)
        b = memory.matrix_at(descriptor.addr_b)
        c = memory.matrix_at(descriptor.addr_c)
        if a.shape != (shape.m, shape.k) or b.shape != (shape.k, shape.n) or c.shape != (shape.m, shape.n):
            raise MMAETaskException(
                ExceptionType.INVALID_CONFIG,
                detail=f"operand shapes {a.shape}/{b.shape}/{c.shape} do not match descriptor "
                       f"({shape.m}x{shape.k}, {shape.k}x{shape.n}, {shape.m}x{shape.n})",
            )
        tiling = TwoLevelTiling(shape, level1, level2)
        element = shape.precision.bytes_per_element
        accumulator = c.astype(shape.precision.accumulate_dtype, copy=True)
        layout_a = MatrixLayout(descriptor.addr_a, shape.m, shape.k, descriptor.effective_lda, element)
        for tile1 in tiling.level1_tiles():
            for tile2 in tiling.level2_tiles(tile1):
                a_block, b_block, _ = self.ade.load_operands(memory, descriptor, tile2)
                if self.mmu is not None:
                    self.ade.translate_tile_batch(
                        self.mmu,
                        asid,
                        layout_a,
                        (tile2.row_start, tile2.rows),
                        (tile2.k_start, tile2.depth),
                        self.prediction_enabled,
                    )
                partial = accumulator[tile2.row_start : tile2.row_end, tile2.col_start : tile2.col_end]
                result = self.array.compute_tile(a_block, b_block, partial, shape.precision)
                accumulator[tile2.row_start : tile2.row_end, tile2.col_start : tile2.col_end] = result.output
        c[...] = accumulator.astype(c.dtype)

    # ------------------------------------------------------------- data migration
    def _run_move(self, entry: STQEntry) -> TaskResult:
        descriptor: MoveDescriptor = entry.descriptor
        cycles = self.ade.transfer_cycles(
            _move_plan(descriptor),
            round_trip_latency_cycles=self.env.l3_round_trip_ns * self.params.frequency_hz / 1e9,
        )
        if self.host_memory is not None:
            src_base = self.host_memory.find_region(descriptor.src_addr)
            dst_base = self.host_memory.find_region(descriptor.dst_addr)
            if src_base is not None and dst_base is not None and src_base != dst_base:
                src = self.host_memory.matrix_at(src_base)
                dst = self.host_memory.matrix_at(dst_base)
                if src.nbytes == dst.nbytes and descriptor.length_bytes == src.nbytes:
                    dst[...] = src.astype(dst.dtype)
        return TaskResult(maid=entry.maid, kind="move", cycles=cycles)

    def _run_init(self, entry: STQEntry) -> TaskResult:
        descriptor: InitDescriptor = entry.descriptor
        cycles = self.ade.transfer_cycles(
            _init_plan(descriptor),
            round_trip_latency_cycles=self.env.l3_round_trip_ns * self.params.frequency_hz / 1e9,
        )
        if self.host_memory is not None and self.host_memory.has_matrix(descriptor.dst_addr):
            self.host_memory.zero_region(descriptor.dst_addr)
        return TaskResult(maid=entry.maid, kind="init", cycles=cycles)

    def _run_stash(self, entry: STQEntry) -> TaskResult:
        descriptor: StashDescriptor = entry.descriptor
        if self.l3 is not None:
            self.l3.stash(
                StashRequest(
                    range=AddressRange(descriptor.addr, descriptor.length_bytes),
                    lock=descriptor.lock,
                    requester=self.node_id,
                )
            )
        # The stash streams from DRAM into the L3 at the node's DRAM share.
        dram_bpc = self.env.dram_bandwidth_share_bytes_per_s / self.params.frequency_hz
        cycles = math.ceil(descriptor.length_bytes / dram_bpc)
        return TaskResult(maid=entry.maid, kind="stash", cycles=cycles)

    # ------------------------------------------------------------------ reporting
    @property
    def completed_tasks(self) -> int:
        return self.stq.tasks_completed

    @property
    def failed_tasks(self) -> int:
        return self.stq.tasks_failed


def _move_plan(descriptor: MoveDescriptor):
    """Transfer plan equivalent for a bulk copy (read + write of the same volume)."""
    from repro.mmae.data_engine import TileTransferPlan

    return TileTransferPlan(
        a_bytes=descriptor.length_bytes,
        b_bytes=0,
        c_read_bytes=0,
        c_write_bytes=descriptor.length_bytes,
    )


def _init_plan(descriptor: InitDescriptor):
    """Transfer plan equivalent for a zero-fill (write-only)."""
    from repro.mmae.data_engine import TileTransferPlan

    return TileTransferPlan(
        a_bytes=0,
        b_bytes=0,
        c_read_bytes=0,
        c_write_bytes=descriptor.length_bytes,
    )
