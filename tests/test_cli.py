"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_gemm_defaults(self):
        args = build_parser().parse_args(["gemm"])
        assert args.size == 4096
        assert args.nodes == 16
        assert args.precision == "fp64"
        assert not args.no_prediction

    def test_fig8_node_override(self):
        args = build_parser().parse_args(["fig8", "--nodes", "16"])
        assert args.nodes == 16


class TestCommands:
    def test_gemm_command_reports_throughput(self, capsys):
        assert main(["gemm", "--size", "1024", "--nodes", "2"]) == 0
        output = capsys.readouterr().out
        assert "GFLOPS" in output
        assert "2 nodes" in output

    def test_gemm_without_prediction(self, capsys):
        assert main(["gemm", "--size", "1024", "--nodes", "1", "--no-prediction"]) == 0
        assert "GFLOPS" in capsys.readouterr().out

    def test_fig6_command(self, capsys):
        assert main(["fig6"]) == 0
        output = capsys.readouterr().out
        assert "with prediction" in output
        assert "9216" in output

    def test_table4_command(self, capsys):
        assert main(["table4"]) == 0
        output = capsys.readouterr().out
        assert "MMAE" in output
        assert "area_efficiency_gain" in output

    def test_fig7_command(self, capsys):
        assert main(["fig7"]) == 0
        output = capsys.readouterr().out
        assert "16-core" in output

    def test_fig7_builds_each_node_series_once(self, capsys, monkeypatch):
        """Regression: efficiency_by_size must run once per node count, not
        once per (node count, matrix size) cell."""
        import repro.cli as cli_module

        calls = []
        original = cli_module.efficiency_by_size

        def counting(points, **kwargs):
            calls.append(kwargs)
            return original(points, **kwargs)

        monkeypatch.setattr(cli_module, "efficiency_by_size", counting)
        assert cli_module.main(["fig7"]) == 0
        capsys.readouterr()
        assert len(calls) == 5  # the five node counts

    def test_fig6_with_jobs(self, capsys):
        assert main(["fig6", "--jobs", "2"]) == 0
        assert "with prediction" in capsys.readouterr().out

    def test_fig8_with_jobs_matches_serial(self, capsys):
        assert main(["fig8", "--nodes", "4", "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["fig8", "--nodes", "4", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial
        assert "maco" in serial


class TestExploreCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["explore"])
        assert args.sample == "grid"
        assert args.objective == "gflops"
        assert args.format == "table"
        assert args.jobs is None

    def test_table_output(self, capsys):
        assert main(["explore", "--sample", "random", "--points", "4",
                     "--jobs", "1", "--size", "1024"]) == 0
        output = capsys.readouterr().out
        assert "design point" in output
        assert "pareto" in output

    def test_csv_output(self, capsys):
        assert main(["explore", "--sample", "lhs", "--points", "4", "--jobs", "1",
                     "--size", "1024", "--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("design point,sa,buffer_kb,nodes,gflops")
        assert len(lines) == 5  # header + 4 sampled points

    def test_json_output_parses(self, capsys):
        import json

        assert main(["explore", "--sample", "random", "--points", "3", "--jobs", "1",
                     "--size", "1024", "--format", "json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 3
        assert {"design point", "gflops", "efficiency", "pareto"} <= set(records[0])

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "results.csv"
        assert main(["explore", "--sample", "random", "--points", "3", "--jobs", "1",
                     "--size", "1024", "--format", "csv", "--output", str(target)]) == 0
        assert "wrote 3 results" in capsys.readouterr().out
        assert target.read_text().startswith("design point,")

    def test_objective_ranking(self, capsys):
        assert main(["explore", "--sample", "random", "--points", "6", "--jobs", "1",
                     "--size", "1024", "--objective", "gflops_per_watt",
                     "--format", "json"]) == 0
        import json

        records = json.loads(capsys.readouterr().out)
        ratios = [record["gflops_per_watt"] for record in records]
        assert ratios == sorted(ratios, reverse=True)

    def test_parallel_explore_matches_serial(self, capsys):
        argv = ["explore", "--sample", "lhs", "--points", "6", "--size", "1024",
                "--format", "csv"]
        assert main(argv + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "3"]) == 0
        assert capsys.readouterr().out == serial

    def test_hpl_workload(self, capsys):
        assert main(["explore", "--sample", "random", "--points", "3", "--jobs", "1",
                     "--workload", "hpl", "--size", "1024"]) == 0
        assert "design point" in capsys.readouterr().out

    def test_hpl_workload_respects_precision(self, capsys):
        argv = ["explore", "--sample", "random", "--points", "3", "--jobs", "1",
                "--workload", "hpl", "--size", "1024", "--format", "csv"]
        assert main(argv + ["--precision", "fp64"]) == 0
        fp64 = capsys.readouterr().out
        assert main(argv + ["--precision", "fp32"]) == 0
        fp32 = capsys.readouterr().out
        assert fp32 != fp64  # the precision flag must reach the workload

    def test_invalid_domain_input_exits_cleanly(self, capsys):
        assert main(["explore", "--jobs", "0"]) == 2
        captured = capsys.readouterr()
        assert "error: jobs must be >= 1" in captured.err
        assert main(["explore", "--sample", "random", "--points", "0"]) == 2
        assert "error: count must be positive" in capsys.readouterr().err


class TestServeCommand:
    ARGV = ["serve", "--trace", "poisson", "--tenants", "3", "--seed", "7",
            "--requests", "60", "--nodes", "4"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.trace == "poisson"
        assert args.scheduler == "fcfs"
        assert args.tenants == 3
        assert args.format == "table"
        assert args.rate is None

    def test_table_output_reports_all_sections(self, capsys):
        assert main(self.ARGV) == 0
        output = capsys.readouterr().out
        assert "Per-tenant latency and throughput" in output
        assert "Per-node utilization" in output
        for column in ("p50 (ms)", "p95 (ms)", "p99 (ms)", "req/s", "utilization"):
            assert column in output
        for tenant in ("tenant0", "tenant1", "tenant2"):
            assert tenant in output

    def test_repeated_runs_are_bit_identical(self, capsys):
        assert main(self.ARGV + ["--format", "json"]) == 0
        first = capsys.readouterr().out
        assert main(self.ARGV + ["--format", "json"]) == 0
        assert capsys.readouterr().out == first

    def test_jobs_setting_does_not_change_output(self, capsys):
        assert main(self.ARGV + ["--format", "json", "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(self.ARGV + ["--format", "json", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_json_output_has_required_metrics(self, capsys):
        import json

        assert main(self.ARGV + ["--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert {"latency_p50_s", "latency_p95_s", "latency_p99_s",
                "throughput_rps", "tenants", "nodes"} <= set(report)
        assert len(report["tenants"]) == 3
        for tenant in report["tenants"]:
            assert tenant["latency_p99_s"] >= tenant["latency_p50_s"]
        assert all("utilization" in node for node in report["nodes"])

    def test_scheduler_choices_run(self, capsys):
        for scheduler in ("fcfs", "sjf", "rr"):
            assert main(self.ARGV + ["--scheduler", scheduler]) == 0
            assert "Serve report" in capsys.readouterr().out

    def test_replay_from_file(self, tmp_path, capsys):
        assert main(self.ARGV + ["--format", "json"]) == 0
        capsys.readouterr()
        records = [
            {"tenant": "a", "workload": "resnet50", "arrival_s": 0.0},
            {"tenant": "b", "workload": "resnet50", "arrival_s": 0.5},
        ]
        import json

        path = tmp_path / "trace.json"
        path.write_text(json.dumps(records))
        assert main(["serve", "--trace", "replay", "--trace-file", str(path),
                     "--nodes", "2"]) == 0
        captured = capsys.readouterr()
        assert "2 requests" in captured.out
        assert "warning" not in captured.err
        # Generation-only flags are meaningless for a replayed trace: warn.
        assert main(["serve", "--trace", "replay", "--trace-file", str(path),
                     "--nodes", "2", "--tenants", "5", "--precision", "fp16"]) == 0
        captured = capsys.readouterr()
        assert "ignoring --tenants, --precision" in captured.err

    def test_replay_without_file_errors(self, capsys):
        assert main(["serve", "--trace", "replay"]) == 2
        assert "requires --trace-file" in capsys.readouterr().err

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "report.json"
        assert main(self.ARGV + ["--format", "json", "--output", str(target)]) == 0
        assert "wrote serve report" in capsys.readouterr().out
        import json

        assert json.loads(target.read_text())["total_requests"] > 0


class TestWorkloadsCommand:
    def test_list_covers_catalog(self, capsys):
        from repro.workloads import workload_catalog

        assert main(["workloads", "list"]) == 0
        output = capsys.readouterr().out
        for name in workload_catalog():
            assert name in output

    def test_list_json_parses(self, capsys):
        import json

        assert main(["workloads", "list", "--format", "json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        names = [entry["name"] for entry in entries]
        assert "llama-7b" in names and "moe-8x" in names
        assert all("phases" in entry and "gflop" in entry for entry in entries)

    def test_describe_shows_phase_table(self, capsys):
        assert main(["workloads", "describe", "llama-7b@decode,layers=2"]) == 0
        output = capsys.readouterr().out
        assert "decode[512:528]" in output
        assert "state (MB)" in output
        assert "flop/byte" in output

    def test_describe_requires_name(self, capsys):
        assert main(["workloads", "describe"]) == 2
        assert "needs a catalog name" in capsys.readouterr().err

    def test_describe_unknown_name_errors_cleanly(self, capsys):
        assert main(["workloads", "describe", "alexnet"]) == 2
        assert "options" in capsys.readouterr().err

    def test_export_round_trips_through_the_ir(self, capsys):
        from repro.workloads import WorkloadGraph, workload_graph_by_name

        assert main(["workloads", "export", "moe-8x@experts=4,layers=2"]) == 0
        text = capsys.readouterr().out
        clone = WorkloadGraph.from_json(text)
        assert clone == workload_graph_by_name("moe-8x@experts=4,layers=2")

    def test_export_to_file(self, tmp_path, capsys):
        import json

        target = tmp_path / "graph.json"
        assert main(["workloads", "export", "resnet50-conv", "--output", str(target)]) == 0
        assert "wrote export output" in capsys.readouterr().out
        record = json.loads(target.read_text())
        assert [phase["name"] for phase in record["phases"]] == [
            "stem", "stage1", "stage2", "stage3", "stage4"]

    def test_precision_flag_reaches_export(self, capsys):
        assert main(["workloads", "export", "bert", "--precision", "fp16"]) == 0
        assert '"precision": "fp16"' in capsys.readouterr().out


class TestPhaseAwareExplore:
    ARGV = ["explore", "--sample", "random", "--points", "3", "--jobs", "1",
            "--workload", "llama-7b@decode,layers=1,decode=8,block=4", "--precision", "fp32"]

    def test_catalog_workload_aggregate_table(self, capsys):
        assert main(self.ARGV) == 0
        output = capsys.readouterr().out
        assert "design point" in output and "pareto" in output

    def test_per_phase_rows(self, capsys):
        import json

        assert main(self.ARGV + ["--per-phase", "--format", "json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 3 * 2  # three points x two decode blocks
        assert {"design point", "phase", "kind", "seconds"} <= set(records[0])
        assert all(record["kind"] == "decode" for record in records)

    def test_per_phase_requires_catalog_workload(self, capsys):
        assert main(["explore", "--sample", "random", "--points", "2", "--jobs", "1",
                     "--size", "1024", "--per-phase"]) == 2
        assert "needs a catalog workload" in capsys.readouterr().err

    def test_unknown_catalog_workload_errors_cleanly(self, capsys):
        assert main(["explore", "--sample", "random", "--points", "2", "--jobs", "1",
                     "--workload", "alexnet"]) == 2
        assert "options" in capsys.readouterr().err


class TestServeTenantMix:
    ARGV = ["serve", "--trace", "poisson", "--tenants", "2", "--seed", "3",
            "--requests", "20", "--nodes", "2", "--tenant-mix", "llm"]

    def test_llm_mix_runs_and_labels_tenants(self, capsys):
        assert main(self.ARGV) == 0
        output = capsys.readouterr().out
        assert "tenant0-prefill" in output
        assert "tenant1-decode" in output

    def test_llm_mix_bit_identical_across_jobs(self, capsys):
        assert main(self.ARGV + ["--format", "json", "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(self.ARGV + ["--format", "json", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial
