"""Event and event-queue primitives for the discrete-event kernel."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(slots=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, priority, sequence)`` so that simultaneous
    events fire in a deterministic order: lower priority value first, then
    insertion order.  The event object itself is deliberately lightweight
    (``__slots__``, no ordering protocol): the queue keeps the sort key in its
    heap entries, and the per-event allocation is the dominant cost of every
    discrete-event run.
    """

    time: float
    priority: int
    sequence: int
    callback: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    cancelled: bool = False
    label: str = ""

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True

    def fire(self) -> Any:
        """Invoke the callback (does not check ``cancelled``)."""
        return self.callback(*self.args, **self.kwargs)


class EventQueue:
    """A min-heap of :class:`Event` objects keyed by time.

    The heap holds ``(time, priority, sequence, event)`` tuples so ordering
    uses plain tuple comparison instead of dataclass comparison dunders.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for entry in self._heap if not entry[3].cancelled)

    def __bool__(self) -> bool:
        return len(self) > 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback`` at ``time`` and return the event handle."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        sequence = next(self._counter)
        event = Event(
            time=time,
            priority=priority,
            sequence=sequence,
            callback=callback,
            args=args,
            kwargs=kwargs,
            label=label,
        )
        heapq.heappush(self._heap, (time, priority, sequence, event))
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)[3]
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the next non-cancelled event without popping it."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][0]

    def clear(self) -> None:
        self._heap.clear()
