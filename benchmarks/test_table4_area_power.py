"""Table IV — CPU core vs MMAE: frequency, area, power, FMACs, peak performance.

Regenerates the comparison table and checks the derived claims the paper makes
under it: the MMAE is ~25% of the CPU core's area, consumes 25% less power,
offers >2x the peak GFLOPS, ~9x the area efficiency and >=2x the power
efficiency.
"""

from repro.analysis import compare_cpu_mmae, mmae_area_breakdown, render_table


def test_table4_area_power(benchmark):
    def regenerate():
        comparison = compare_cpu_mmae()
        table = render_table(
            ["", "Freq (GHz)", "Area (mm2)", "Power (W)", "FMACs", "Peak Perf (GFLOPS)"],
            [comparison.cpu.as_row(), comparison.mmae.as_row()],
            title="Table IV - comparison of the CPU core and MMAE",
        )
        breakdown = render_table(
            ["MMAE component", "Area (mm2)"],
            [[name, f"{area:.3f}"] for name, area in mmae_area_breakdown()],
            title="MMAE area breakdown (Table IV footnote b)",
        )
        return comparison, table, breakdown

    comparison, table, breakdown = benchmark(regenerate)
    print("\n" + table)
    print(breakdown)
    summary = comparison.summary()
    print("derived ratios:", {key: round(value, 2) for key, value in summary.items()})

    assert 0.22 < summary["area_ratio"] < 0.28            # "area of MMAE is only 25% of the CPU core"
    assert 0.70 < summary["power_ratio"] < 0.80           # "power consumption 25% lower"
    assert summary["peak_ratio_fp64"] > 2.0               # "peak performance over 2x"
    assert 8.0 < summary["area_efficiency_gain"] < 10.0   # "9x area efficiency"
    assert summary["power_efficiency_gain"] >= 2.0        # ">= 2x GFLOPS/W"
