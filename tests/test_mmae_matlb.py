"""Tests for predictive address translation: page prediction, the mATLB, and the stall model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.mmu import MMU
from repro.cpu.process import ProcessManager
from repro.gemm.precision import Precision
from repro.gemm.tiling import TileConfig
from repro.gemm.workloads import GEMMShape
from repro.mmae.matlb import (
    MATLB,
    MatrixLayout,
    PageTablePredictor,
    TranslationTimingParameters,
    estimate_translation_stalls,
)


class TestPageTablePredictor:
    def test_fig4_case1_row_covering_two_pages(self):
        """A 1024-column FP64 matrix: each row spans two 4 KB pages (paper Fig. 4)."""
        layout = MatrixLayout(base_vaddr=0, rows=1024, cols=1024, row_stride_elements=1024, element_bytes=8)
        predictor = PageTablePredictor(page_size=4096)
        # A 4x64 tile starting at column 512 sits in the second page of each row.
        pages = predictor.tile_page_addresses(layout, row_start=0, row_count=4, col_start=512, col_count=64)
        assert len(pages) == 4
        assert all(page % 4096 == 0 for page in pages)

    def test_fig4_case2_row_within_one_page(self):
        """A 512-column FP64 matrix: a row maps exactly to one page."""
        layout = MatrixLayout(0, 512, 512, 512, 8)
        predictor = PageTablePredictor(4096)
        pages = predictor.tile_page_addresses(layout, 0, 4, 0, 64)
        assert len(pages) == 4  # one page per row

    def test_small_matrix_shares_pages_across_rows(self):
        layout = MatrixLayout(0, 64, 64, 64, 8)  # 512-byte rows: 8 rows per page
        predictor = PageTablePredictor(4096)
        pages = predictor.tile_page_addresses(layout, 0, 16, 0, 64)
        assert len(pages) == 2

    def test_tile_beyond_matrix_rejected(self):
        layout = MatrixLayout(0, 64, 64, 64, 8)
        with pytest.raises(ValueError):
            PageTablePredictor().tile_page_addresses(layout, 60, 8, 0, 8)

    def test_pages_per_tile_upper_bound(self):
        layout = MatrixLayout(0, 1024, 1024, 1024, 8)
        predictor = PageTablePredictor()
        exact = len(predictor.tile_page_addresses(layout, 0, 64, 0, 64))
        assert predictor.pages_per_tile(layout, 64, 64) >= exact

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.integers(1, 128), cols=st.integers(1, 128),
        row_start=st.integers(0, 64), col_start=st.integers(0, 64),
    )
    def test_predicted_pages_cover_every_accessed_byte(self, rows, cols, row_start, col_start):
        layout = MatrixLayout(0x10_0000, 256, 256, 256, 8)
        predictor = PageTablePredictor()
        pages = set(predictor.tile_page_addresses(layout, row_start, rows, col_start, cols))
        # Every element of the tile must fall in a predicted page.
        for row in (row_start, row_start + rows - 1):
            for col in (col_start, col_start + cols - 1):
                vaddr = layout.element_vaddr(row, col)
                assert vaddr - (vaddr % 4096) in pages


def _mmu_with_region(size_bytes: int):
    manager = ProcessManager()
    process = manager.create_process("p")
    base = process.address_space.allocate_region("matrix", size_bytes)
    mmu = MMU()
    mmu.register_page_table(process.address_space.page_table)
    return mmu, process.asid, base


class TestMATLB:
    def test_prewalk_then_lookup_hits(self):
        mmu, asid, base = _mmu_with_region(1 << 20)
        matlb = MATLB(entries=32)
        layout = MatrixLayout(base, 128, 128, 128, 8)
        cycles = matlb.prewalk_tile(mmu, asid, layout, 0, 32, 0, 64)
        assert cycles > 0
        assert matlb.lookup(layout.element_vaddr(5, 10)) is not None
        assert matlb.stats.hit_rate > 0

    def test_lookup_miss_without_prewalk(self):
        matlb = MATLB()
        assert matlb.lookup(0x1234) is None
        assert matlb.stats.misses == 1

    def test_translation_offset_preserved(self):
        mmu, asid, base = _mmu_with_region(1 << 16)
        matlb = MATLB()
        matlb.prewalk_pages(mmu, asid, [base])
        paddr = matlb.lookup(base + 123)
        assert paddr is not None
        assert paddr % 4096 == 123

    def test_capacity_eviction_fifo(self):
        mmu, asid, base = _mmu_with_region(1 << 20)
        matlb = MATLB(entries=4)
        pages = [base + i * 4096 for i in range(8)]
        matlb.prewalk_pages(mmu, asid, pages)
        assert len(matlb) == 4
        assert matlb.stats.evictions == 4
        assert matlb.lookup(pages[0]) is None      # oldest evicted
        assert matlb.lookup(pages[-1]) is not None  # newest resident

    def test_unmapped_page_counts_fault_and_is_skipped(self):
        mmu, asid, base = _mmu_with_region(4096)
        matlb = MATLB()
        matlb.prewalk_pages(mmu, asid, [0xDEAD_0000])
        assert matlb.stats.page_faults == 1
        assert len(matlb) == 0

    def test_invalidate_and_flush(self):
        mmu, asid, base = _mmu_with_region(1 << 16)
        matlb = MATLB()
        matlb.prewalk_pages(mmu, asid, [base, base + 4096])
        matlb.invalidate(base)
        assert matlb.lookup(base) is None
        matlb.flush()
        assert len(matlb) == 0


class TestTranslationStallModel:
    LEVEL1 = TileConfig(1024, 1024)
    LEVEL2 = TileConfig(64, 64)

    def _gap(self, size: int) -> float:
        """Efficiency-style gap proxy: stalls without prediction minus with, over compute."""
        shape = GEMMShape(size, size, size, Precision.FP64)
        without = estimate_translation_stalls(shape, self.LEVEL1, self.LEVEL2, prediction_enabled=False)
        with_pred = estimate_translation_stalls(shape, self.LEVEL1, self.LEVEL2, prediction_enabled=True)
        compute_cycles = shape.macs / 16
        return (without.stall_cycles - with_pred.stall_cycles) / compute_cycles

    def test_prediction_hides_most_stalls(self):
        shape = GEMMShape(1024, 1024, 1024, Precision.FP64)
        without = estimate_translation_stalls(shape, self.LEVEL1, self.LEVEL2, prediction_enabled=False)
        with_pred = estimate_translation_stalls(shape, self.LEVEL1, self.LEVEL2, prediction_enabled=True)
        assert with_pred.stall_cycles < 0.1 * without.stall_cycles
        assert without.total_walks == with_pred.total_walks

    def test_small_matrices_have_negligible_gap(self):
        """Paper: below size 512 the gain is < 2% (rows fit within a page)."""
        assert self._gap(256) < 0.02

    def test_gap_peaks_for_page_spanning_matrices(self):
        """Paper: the gap reaches ~6.5% once rows span multiple pages (size >= 1024)."""
        assert 0.04 < self._gap(1024) < 0.08
        assert self._gap(1024) > self._gap(256)

    def test_gap_roughly_constant_for_large_sizes(self):
        assert self._gap(4096) == pytest.approx(self._gap(2048), rel=0.2)

    def test_walk_counts_scale_with_matrix_size(self):
        small = estimate_translation_stalls(GEMMShape(512, 512, 512), self.LEVEL1, self.LEVEL2)
        large = estimate_translation_stalls(GEMMShape(2048, 2048, 2048), self.LEVEL1, self.LEVEL2)
        assert large.unique_pages > small.unique_pages
        assert large.total_walks > small.total_walks

    def test_bigger_tlb_reduces_retouch_walks(self):
        shape = GEMMShape(1024, 1024, 1024)
        small_tlb = estimate_translation_stalls(
            shape, self.LEVEL1, self.LEVEL2,
            params=TranslationTimingParameters(shared_tlb_entries=512),
        )
        big_tlb = estimate_translation_stalls(
            shape, self.LEVEL1, self.LEVEL2,
            params=TranslationTimingParameters(shared_tlb_entries=8192),
        )
        assert big_tlb.retouch_walks < small_tlb.retouch_walks

    def test_larger_pages_reduce_walks(self):
        shape = GEMMShape(2048, 2048, 2048)
        small_pages = estimate_translation_stalls(shape, self.LEVEL1, self.LEVEL2, page_size=4096)
        large_pages = estimate_translation_stalls(shape, self.LEVEL1, self.LEVEL2, page_size=65536)
        assert large_pages.unique_pages < small_pages.unique_pages
