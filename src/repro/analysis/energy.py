"""Energy and power modelling at the compute-node and system level.

Extends the paper's Table IV (static per-component power) into an activity-based
energy model: a run's energy is the busy-time of each component weighted by its
power draw (plus an idle fraction), which lets the examples and the exploration
tools report energy-to-solution and GFLOPS/W for whole workloads rather than
just the theoretical Table IV ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import MACOConfig, maco_default_config
from repro.core.metrics import SystemResult, WorkloadResult


@dataclass(frozen=True)
class PowerParameters:
    """Activity-based power parameters of one compute node.

    ``*_idle_fraction`` is the fraction of the component's active power it
    still draws while idle (clock gating is never perfect); ``uncore_w`` covers
    the node's share of the NoC routers, CCM slice and memory controller.
    """

    cpu_active_w: float = 2.0
    mmae_active_w: float = 1.5
    cpu_idle_fraction: float = 0.30
    mmae_idle_fraction: float = 0.15
    uncore_w: float = 0.8

    def __post_init__(self) -> None:
        if min(self.cpu_active_w, self.mmae_active_w, self.uncore_w) < 0:
            raise ValueError("power values cannot be negative")
        for fraction in (self.cpu_idle_fraction, self.mmae_idle_fraction):
            if not 0.0 <= fraction <= 1.0:
                raise ValueError("idle fractions must be within [0, 1]")

    @classmethod
    def from_config(cls, config: Optional[MACOConfig] = None) -> "PowerParameters":
        config = config if config is not None else maco_default_config()
        return cls(cpu_active_w=config.cpu.power_w, mmae_active_w=config.mmae.power_w)


@dataclass
class EnergyBreakdown:
    """Energy consumed by one run, split by component."""

    cpu_joules: float
    mmae_joules: float
    uncore_joules: float
    seconds: float
    flops: int

    @property
    def total_joules(self) -> float:
        return self.cpu_joules + self.mmae_joules + self.uncore_joules

    @property
    def average_power_w(self) -> float:
        return self.total_joules / self.seconds if self.seconds > 0 else 0.0

    @property
    def gflops_per_watt(self) -> float:
        if self.total_joules <= 0:
            return 0.0
        return self.flops / self.total_joules / 1e9

    @property
    def energy_per_flop_pj(self) -> float:
        """Picojoules per floating-point operation."""
        return self.total_joules / self.flops * 1e12 if self.flops else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "total_joules": self.total_joules,
            "cpu_joules": self.cpu_joules,
            "mmae_joules": self.mmae_joules,
            "uncore_joules": self.uncore_joules,
            "average_power_w": self.average_power_w,
            "gflops_per_watt": self.gflops_per_watt,
            "energy_per_flop_pj": self.energy_per_flop_pj,
        }


class EnergyModel:
    """Turns run results (busy times per component) into energy estimates."""

    def __init__(self, params: Optional[PowerParameters] = None, num_nodes: int = 16) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.params = params if params is not None else PowerParameters()
        self.num_nodes = num_nodes

    def _component_energy(
        self, active_w: float, idle_fraction: float, busy_seconds: float, total_seconds: float
    ) -> float:
        busy_seconds = min(busy_seconds, total_seconds)
        idle_seconds = total_seconds - busy_seconds
        return active_w * busy_seconds + active_w * idle_fraction * idle_seconds

    def estimate(
        self,
        total_seconds: float,
        mmae_busy_seconds: float,
        cpu_busy_seconds: float,
        flops: int,
        active_nodes: Optional[int] = None,
    ) -> EnergyBreakdown:
        """Energy of a run given per-node busy times (assumed equal across nodes)."""
        if total_seconds <= 0:
            raise ValueError("total_seconds must be positive")
        nodes = active_nodes if active_nodes is not None else self.num_nodes
        if not 1 <= nodes <= self.num_nodes:
            raise ValueError(f"active_nodes must be in 1..{self.num_nodes}")
        cpu = nodes * self._component_energy(
            self.params.cpu_active_w, self.params.cpu_idle_fraction, cpu_busy_seconds, total_seconds
        )
        mmae = nodes * self._component_energy(
            self.params.mmae_active_w, self.params.mmae_idle_fraction, mmae_busy_seconds, total_seconds
        )
        uncore = nodes * self.params.uncore_w * total_seconds
        return EnergyBreakdown(
            cpu_joules=cpu, mmae_joules=mmae, uncore_joules=uncore,
            seconds=total_seconds, flops=flops,
        )

    # ------------------------------------------------------------- result adapters
    def for_workload(self, result: WorkloadResult) -> EnergyBreakdown:
        """Energy of a :class:`WorkloadResult` (DL workload run)."""
        return self.estimate(
            total_seconds=result.seconds,
            mmae_busy_seconds=result.gemm_seconds,
            cpu_busy_seconds=result.non_gemm_seconds,
            flops=result.gemm_flops,
            active_nodes=result.num_nodes,
        )

    def for_system_result(self, result: SystemResult, cpu_busy_seconds: float = 0.0) -> EnergyBreakdown:
        """Energy of a :class:`SystemResult` (plain GEMM run; the CPU mostly idles)."""
        return self.estimate(
            total_seconds=result.seconds,
            mmae_busy_seconds=result.seconds,
            cpu_busy_seconds=cpu_busy_seconds,
            flops=result.flops,
            active_nodes=result.num_nodes,
        )
