"""Ablation — design-space exploration around the published MACO design point.

The paper motivates its 4x4 array + 192 KB buffer + 16-node design but does
not publish a sensitivity study; this harness sweeps the systolic-array size
and scratchpad capacity (with the software tiling following the hardware) on
an HPL-style GEMM ladder and checks the qualitative trade-offs the design
implies: a larger array raises throughput but needs proportionally larger
buffers to stay efficient, and the paper's point sits near the perf/W front.
"""

from repro.analysis import format_gflops, format_percent, render_table
from repro.core import DesignSpaceExplorer, pareto_front
from repro.gemm import hpl_like_workloads


def test_ablation_design_space(benchmark):
    explorer = DesignSpaceExplorer()
    workload = hpl_like_workloads(max_size=4096, step=1024)
    points = DesignSpaceExplorer.grid(sa_dims=(2, 4, 8), buffer_kbs=(32, 64, 128), node_counts=(16,))

    def regenerate():
        return explorer.explore(points, workload, objective="gflops")

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1, warmup_rounds=0)

    rows = [
        [r.point.name, format_gflops(r.gflops), format_percent(r.efficiency), f"{r.gflops_per_watt:.1f}"]
        for r in results
    ]
    print("\n" + render_table(
        ["design point", "throughput", "efficiency", "GFLOPS/W"],
        rows, title="Ablation - systolic-array size vs scratchpad capacity (16 nodes, FP64 HPL ladder)",
    ))

    by_name = {result.point.name: result for result in results}
    paper = by_name["sa4x4-buf64k-n16"]

    # The paper's design point sustains high efficiency.
    assert paper.efficiency > 0.9
    # A 2x2 array is strictly worse in throughput.
    assert by_name["sa2x2-buf64k-n16"].gflops < paper.gflops
    # An 8x8 array with the same 64 KB buffers gains peak but loses efficiency.
    big_small_buf = by_name["sa8x8-buf64k-n16"]
    assert big_small_buf.gflops >= paper.gflops * 0.95  # same memory wall, 4x the idle peak
    assert big_small_buf.efficiency < paper.efficiency
    # Giving the 8x8 array 128 KB buffers recovers efficiency.
    assert by_name["sa8x8-buf128k-n16"].efficiency > big_small_buf.efficiency
    # The paper's point is on (or very near) the throughput-vs-perf/W Pareto front.
    front_names = {result.point.name for result in pareto_front(results)}
    assert any(name.startswith("sa4x4-buf64k") or name.startswith("sa4x4-buf32k") for name in front_names)
