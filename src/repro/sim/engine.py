"""A minimal discrete-event simulation engine."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.event import Event, EventQueue
from repro.sim.stats import StatsRegistry


class SimulationEngine:
    """Drives an :class:`EventQueue` forward in time.

    The engine is deliberately small: components schedule callbacks with
    :meth:`schedule` (absolute time) or :meth:`schedule_after` (relative
    delay), and :meth:`run` executes them in timestamp order.  Time units are
    whatever the caller chooses (the MACO models use nanoseconds so that
    multiple clock domains can share one engine).
    """

    def __init__(self, stats: Optional[StatsRegistry] = None) -> None:
        self.queue = EventQueue()
        self.now: float = 0.0
        self.stats = stats if stats is not None else StatsRegistry()
        self._running = False
        self._events_fired = 0

    @property
    def events_fired(self) -> int:
        return self._events_fired

    def schedule(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule a callback at absolute time ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule event in the past ({time} < {self.now})")
        return self.queue.push(time, callback, *args, priority=priority, label=label, **kwargs)

    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule a callback ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self.now + delay, callback, *args, priority=priority, label=label, **kwargs)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or ``max_events`` fire.

        Returns the simulation time after the run.
        """
        self._running = True
        fired = 0
        try:
            while self._running:
                next_time = self.queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self.now = until
                    break
                event = self.queue.pop()
                if event is None:
                    break
                self.now = event.time
                event.fire()
                self._events_fired += 1
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False
        return self.now

    def stop(self) -> None:
        """Request the current :meth:`run` loop to stop after the current event."""
        self._running = False

    def reset(self) -> None:
        """Drop all pending events and rewind time to zero."""
        self.queue.clear()
        self.now = 0.0
        self._events_fired = 0
