"""Layer-to-GEMM lowering rules.

Convolutions are lowered with im2col (the standard mapping for matrix
engines), fully-connected layers map directly, and attention layers expand
into the projection, logit and context GEMMs.  Element-wise tail operators
(activation, normalisation, softmax) are summarised by their FLOP and byte
counts so the GEMM+ mapping model can charge them to the CPU cores.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.gemm.precision import Precision
from repro.gemm.workloads import GEMMShape


class LayerKind(enum.Enum):
    CONV2D = "conv2d"
    LINEAR = "linear"
    ATTENTION = "attention"
    ELEMENTWISE = "elementwise"
    POOL = "pool"


@dataclass(frozen=True)
class LayerSpec:
    """A network layer in the minimal form needed to derive its GEMMs.

    The meaning of the dimension fields depends on ``kind``:

    * ``CONV2D``: ``in_channels, out_channels, kernel, stride, input_size`` —
      spatial input is ``input_size x input_size``;
    * ``LINEAR``: ``in_features (in_channels), out_features (out_channels)``;
    * ``ATTENTION``: ``hidden (in_channels), heads (out_channels), seq_len (input_size)``.
    """

    name: str
    kind: LayerKind
    in_channels: int = 0
    out_channels: int = 0
    kernel: int = 1
    stride: int = 1
    input_size: int = 0
    repeat: int = 1

    def __post_init__(self) -> None:
        if self.repeat <= 0:
            raise ValueError(f"{self.name}: repeat must be positive")


def conv2d_gemm(
    batch: int,
    in_channels: int,
    out_channels: int,
    kernel: int,
    stride: int,
    input_size: int,
    precision: Precision = Precision.FP32,
) -> GEMMShape:
    """The im2col GEMM of a convolution layer.

    Output spatial size is ``ceil(input / stride)`` (SAME padding, which is what
    ResNet uses for its 3x3 convolutions; 1x1 convolutions are unaffected).
    The GEMM computes ``[batch * out_h * out_w] x [k*k*in_c] @ [k*k*in_c] x [out_c]``.
    """
    if stride <= 0 or kernel <= 0:
        raise ValueError("kernel and stride must be positive")
    out_size = math.ceil(input_size / stride)
    m = batch * out_size * out_size
    k = kernel * kernel * in_channels
    n = out_channels
    return GEMMShape(m, n, k, precision)


def linear_gemm(
    batch_tokens: int, in_features: int, out_features: int, precision: Precision = Precision.FP32
) -> GEMMShape:
    """The GEMM of a fully-connected layer over ``batch_tokens`` rows."""
    return GEMMShape(batch_tokens, out_features, in_features, precision)


def attention_gemms(
    batch: int,
    seq_len: int,
    hidden: int,
    heads: int,
    precision: Precision = Precision.FP32,
) -> List[GEMMShape]:
    """The GEMMs of one multi-head self-attention block.

    Returns the Q/K/V projections, the attention logits (QK^T), the context
    (probs @ V) and the output projection.  Per-head GEMMs are batched into a
    single shape with the head dimension folded into K or M, matching how a
    matrix engine would execute the batched einsum.
    """
    if hidden % heads:
        raise ValueError("hidden size must be divisible by the head count")
    head_dim = hidden // heads
    tokens = batch * seq_len
    shapes = [
        linear_gemm(tokens, hidden, hidden, precision),  # Q projection
        linear_gemm(tokens, hidden, hidden, precision),  # K projection
        linear_gemm(tokens, hidden, hidden, precision),  # V projection
    ]
    # Attention logits: for each of batch*heads, (seq x head_dim) @ (head_dim x seq).
    shapes.append(GEMMShape(batch * heads * seq_len, seq_len, head_dim, precision))
    # Context: (seq x seq) @ (seq x head_dim).
    shapes.append(GEMMShape(batch * heads * seq_len, head_dim, seq_len, precision))
    # Output projection.
    shapes.append(linear_gemm(tokens, hidden, hidden, precision))
    return shapes


def elementwise_cost(
    elements: int, flops_per_element: float = 4.0, precision: Precision = Precision.FP32
) -> Tuple[int, int]:
    """FLOPs and bytes of an element-wise tail operator over ``elements`` values.

    ``flops_per_element`` defaults to 4 (roughly a fused normalisation +
    activation); bytes assume one read and one write of each element.
    """
    if elements < 0:
        raise ValueError("element count cannot be negative")
    flops = int(elements * flops_per_element)
    bytes_touched = 2 * elements * precision.bytes_per_element
    return flops, bytes_touched
