"""X-Y dimension-order routing on the 2D mesh.

The paper's NoC uses the X-Y routing algorithm (Section III.A): a packet first
travels along the X dimension until the destination column is reached, then
along Y.  X-Y routing is deterministic and deadlock-free on a mesh, which is
why the model does not need an escape-channel mechanism.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.noc.mesh import MeshTopology, NodeCoordinate


def xy_route(topology: MeshTopology, src: int, dst: int) -> List[int]:
    """Return the node sequence (inclusive of ``src`` and ``dst``) of the X-Y route."""
    src_coord = topology.coordinate(src)
    dst_coord = topology.coordinate(dst)
    path = [src]
    current = src_coord
    # Travel along X first.
    step_x = 1 if dst_coord.x > current.x else -1
    while current.x != dst_coord.x:
        current = NodeCoordinate(current.x + step_x, current.y)
        path.append(topology.node_id(current))
    # Then along Y.
    step_y = 1 if dst_coord.y > current.y else -1
    while current.y != dst_coord.y:
        current = NodeCoordinate(current.x, current.y + step_y)
        path.append(topology.node_id(current))
    return path


def route_links(topology: MeshTopology, src: int, dst: int) -> List[Tuple[int, int]]:
    """Return the directed links traversed by the X-Y route from ``src`` to ``dst``."""
    path = xy_route(topology, src, dst)
    return list(zip(path[:-1], path[1:]))


def route_hops(topology: MeshTopology, src: int, dst: int) -> int:
    """Number of link traversals on the X-Y route (equals the Manhattan distance)."""
    return len(xy_route(topology, src, dst)) - 1
