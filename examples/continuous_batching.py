#!/usr/bin/env python
"""Continuous batching walkthrough: request-level vs iteration-level serving.

Builds a two-tenant LLM trace — a batch prompt-ingest tenant with a loose
4 s TTFT target, and an interactive generation tenant with a tight 1 s TTFT /
200 ms TPOT target and a higher priority tier — sized to 110% of fleet
capacity: deliberate overload, the regime where the batching policy decides
who waits.  The identical trace then runs through four serving modes on the
same 4-node MACO fleet:

* the legacy whole-request dispatcher (FCFS);
* iteration-level continuous batching under FCFS admission;
* continuous batching under the SLO-aware policy (priority tiers, then
  earliest TTFT deadline), which protects the interactive tenant's first
  token at the ingest tenant's expense;
* the same SLO policy with the per-server KV budget tightened to 1.5x one
  request's peak resident state, so decode batches outgrow the budget and
  requests get preempted (keeping their progress, paying a restore penalty).

Run with::

    PYTHONPATH=src python examples/continuous_batching.py
"""

from repro.analysis import render_table
from repro.core import maco_default_config
from repro.serve import ServeSimulator, llm_tenants, poisson_trace

NODES = 4
SEED = 7
#: Small LLaMA proxy so the walkthrough runs in seconds: 2 layers, a 128-token
#: prompt and 64 decoded tokens in 8-token blocks (one prefill step plus eight
#: KV-growing decode steps per generation request).
VARIANT = "llama-7b@layers=2,prompt=128,decode=64,block=8"


def main() -> None:
    config = maco_default_config(num_nodes=NODES)

    # Size arrival rates to 110% of fleet capacity, then stamp per-tenant SLO
    # targets: the even (prefill-heavy) tenant is batch ingest, the odd
    # (decode-heavy) tenant is interactive.  One trace serves every mode.
    sizing = ServeSimulator(config=config)
    specs = sizing.suggest_rates(llm_tenants(2, variant=VARIANT), utilization=1.1)
    tenants = [
        specs[0].with_slo(ttft_slo_s=4.0),
        specs[1].with_slo(ttft_slo_s=1.0, tpot_slo_s=0.2, priority=1),
    ]
    duration = 120 / sum(spec.rate_rps for spec in tenants)  # ~120 requests
    trace = poisson_trace(tenants, duration, seed=SEED)
    print(f"trace: {len(trace)} requests from {len(trace.tenants)} tenants over "
          f"{trace.duration_s:.1f} s at 110% of fleet capacity (seed {SEED})\n")

    peak = max(
        sizing.service_profile(workload).peak_state_bytes
        for spec in tenants
        for workload, _ in spec.mean_mix_weights()
    )
    runs = {
        "request-level fcfs": ServeSimulator(config=config, scheduler="fcfs"),
        "step fcfs": ServeSimulator(
            config=config, scheduler="fcfs", batching="step", max_batch=4),
        "step slo": ServeSimulator(
            config=config, scheduler="slo", batching="step", max_batch=4),
        "step slo, tight KV": ServeSimulator(
            config=config, scheduler="slo", batching="step", max_batch=4,
            kv_budget_bytes=peak * 1.5),
    }
    reports = {name: simulator.run(trace) for name, simulator in runs.items()}

    rows = []
    for name, report in reports.items():
        interactive = next(t for t in report.tenants if t.name.endswith("decode"))
        rows.append([
            name,
            f"{report.throughput_rps:.2f}",
            f"{report.goodput_rps:.2f}",
            f"{report.ttft_p95_s * 1e3:.0f}",
            f"{interactive.ttft_p95_s * 1e3:.0f}",
            f"{report.tpot_p95_s * 1e3:.1f}",
            f"{report.slo_attainment * 100:.0f}%",
            report.preemptions,
        ])
    print(render_table(
        ["mode", "req/s", "goodput", "ttft p95 (ms)", "interactive ttft p95 (ms)",
         "tpot p95 (ms)", "slo met", "preemptions"],
        rows, title="Same overload trace, four serving modes"))

    legacy = reports["request-level fcfs"]
    slo = reports["step slo"]
    tight = reports["step slo, tight KV"]
    legacy_int = next(t for t in legacy.tenants if t.name.endswith("decode"))
    slo_int = next(t for t in slo.tenants if t.name.endswith("decode"))
    tight_int = next(t for t in tight.tenants if t.name.endswith("decode"))
    print(f"\nUnder whole-request FCFS the interactive tenant's first token waits "
          f"behind entire ingest requests: TTFT p95 {legacy_int.ttft_p95_s * 1e3:.0f} ms. "
          f"SLO-aware continuous batching admits it between decode iterations and "
          f"jumps it to the head of its deadline tier: {slo_int.ttft_p95_s * 1e3:.0f} ms, "
          f"traded against slower decoding while requests share the server "
          f"(fleet TPOT p95 {slo.tpot_p95_s * 1e3:.1f} ms vs "
          f"{legacy.tpot_p95_s * 1e3:.1f} ms).")
    print(f"Tightening the KV budget to 1.5x one request's peak state forces "
          f"{tight.preemptions} preemptions (victims resume with their progress after "
          f"a KV-restore stall) and caps concurrency, pulling the interactive TTFT "
          f"p95 to {tight_int.ttft_p95_s * 1e3:.0f} ms.")


if __name__ == "__main__":
    main()
