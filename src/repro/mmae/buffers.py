"""The MMAE's on-chip scratchpad buffers.

The MMAE integrates 192 KB of high-capacity buffers for data reuse (paper
Section III.A), split into an A buffer, a B buffer and a C buffer feeding the
systolic array.  The buffer model tracks allocations so the accelerator
controller can reject tiles that do not fit (raising the BUFFER_OVERFLOW
exception of Table III) and so the double-buffering occupancy is explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.gemm.precision import Precision


class BufferAllocationError(Exception):
    """Raised when a tile does not fit in its scratchpad buffer."""


@dataclass
class ScratchpadBuffer:
    """A single software-managed scratchpad (no tags, explicit allocation)."""

    name: str
    capacity_bytes: int
    used_bytes: int = 0
    allocations: Dict[str, int] = field(default_factory=dict)
    peak_used_bytes: int = 0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"{self.name}: capacity must be positive")

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    @property
    def occupancy(self) -> float:
        return self.used_bytes / self.capacity_bytes

    def can_fit(self, size_bytes: int) -> bool:
        return size_bytes <= self.free_bytes

    def allocate(self, label: str, size_bytes: int) -> None:
        """Reserve ``size_bytes`` under ``label``; raises if it does not fit."""
        if size_bytes <= 0:
            raise ValueError(f"{self.name}: allocation size must be positive")
        if label in self.allocations:
            raise BufferAllocationError(f"{self.name}: label {label!r} already allocated")
        if not self.can_fit(size_bytes):
            raise BufferAllocationError(
                f"{self.name}: cannot fit {size_bytes} bytes (free: {self.free_bytes})"
            )
        self.allocations[label] = size_bytes
        self.used_bytes += size_bytes
        self.peak_used_bytes = max(self.peak_used_bytes, self.used_bytes)

    def release(self, label: str) -> None:
        if label not in self.allocations:
            raise BufferAllocationError(f"{self.name}: no allocation named {label!r}")
        self.used_bytes -= self.allocations.pop(label)

    def release_all(self) -> None:
        self.allocations.clear()
        self.used_bytes = 0


class BufferSet:
    """The A/B/C buffer triple of one MMAE (192 KB total by default)."""

    def __init__(
        self,
        a_capacity: int = 64 * 1024,
        b_capacity: int = 64 * 1024,
        c_capacity: int = 64 * 1024,
    ) -> None:
        self.a = ScratchpadBuffer("a_buffer", a_capacity)
        self.b = ScratchpadBuffer("b_buffer", b_capacity)
        self.c = ScratchpadBuffer("c_buffer", c_capacity)

    @property
    def total_capacity_bytes(self) -> int:
        return self.a.capacity_bytes + self.b.capacity_bytes + self.c.capacity_bytes

    def check_tile_fits(
        self,
        ttr: int,
        ttc: int,
        ttk: int,
        precision: Precision,
        double_buffered: bool = True,
    ) -> None:
        """Verify a second-level tile fits the buffers; raises on overflow.

        With double buffering, the A and B buffers must hold two in-flight
        blocks each (the one being computed and the one being fetched); the C
        buffer holds a single accumulator tile for the duration of the K loop.
        """
        element = precision.bytes_per_element
        factor = 2 if double_buffered else 1
        a_bytes = ttr * ttk * element * factor
        b_bytes = ttk * ttc * element * factor
        c_bytes = ttr * ttc * precision.accumulate_dtype.itemsize
        if a_bytes > self.a.capacity_bytes:
            raise BufferAllocationError(
                f"A tile ({ttr}x{ttk}, {a_bytes} bytes incl. double buffering) exceeds "
                f"the {self.a.capacity_bytes}-byte A buffer"
            )
        if b_bytes > self.b.capacity_bytes:
            raise BufferAllocationError(
                f"B tile ({ttk}x{ttc}, {b_bytes} bytes incl. double buffering) exceeds "
                f"the {self.b.capacity_bytes}-byte B buffer"
            )
        if c_bytes > self.c.capacity_bytes:
            raise BufferAllocationError(
                f"C tile ({ttr}x{ttc}, {c_bytes} bytes) exceeds the "
                f"{self.c.capacity_bytes}-byte C buffer"
            )

    def max_tile_dim(self, precision: Precision, double_buffered: bool = True) -> int:
        """Largest square second-level tile the buffers support for a precision."""
        dim = 1
        while True:
            candidate = dim * 2
            try:
                self.check_tile_fits(candidate, candidate, candidate, precision, double_buffered)
            except BufferAllocationError:
                break
            dim = candidate
        # Refine linearly between dim and 2*dim.
        step = max(1, dim // 8)
        best = dim
        candidate = dim
        while True:
            candidate += step
            try:
                self.check_tile_fits(candidate, candidate, candidate, precision, double_buffered)
                best = candidate
            except BufferAllocationError:
                break
        return best

    def release_all(self) -> None:
        self.a.release_all()
        self.b.release_all()
        self.c.release_all()
