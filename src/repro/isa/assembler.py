"""A small assembler for MPAIS programs.

The syntax mirrors the usage column of the paper's Table II::

    MA_CFG   X1, X2       ; request an MTQ entry, parameters in X2..X7
    MA_READ  X3, X1       ; poll the task state via the MAID in X1
    MA_CLEAR X1           ; clear the entry after an exception

Comments start with ``;`` or ``#``; blank lines are ignored; register names
are ``X0``..``X30`` (``XZR``/``X31`` is the zero register).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, List

from repro.isa.encoding import encode_instruction
from repro.isa.instructions import Instruction, Opcode

_REGISTER_RE = re.compile(r"^(?:X(\d{1,2})|XZR)$", re.IGNORECASE)


class AssemblyError(Exception):
    """Raised for malformed assembly input; carries the offending line number."""

    def __init__(self, message: str, line_number: int) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


@dataclass
class Program:
    """An assembled MPAIS program: instruction objects plus their machine words."""

    instructions: List[Instruction] = field(default_factory=list)
    source_lines: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def machine_words(self) -> List[int]:
        return [encode_instruction(instruction) for instruction in self.instructions]

    def listing(self) -> str:
        """A human-readable word + mnemonic listing."""
        lines = []
        for word, instruction in zip(self.machine_words(), self.instructions):
            lines.append(f"{word:#010x}    {instruction}")
        return "\n".join(lines)


def _parse_register(token: str, line_number: int) -> int:
    token = token.strip().rstrip(",")
    match = _REGISTER_RE.match(token)
    if not match:
        raise AssemblyError(f"invalid register {token!r}", line_number)
    if match.group(1) is None:  # XZR
        return 31
    index = int(match.group(1))
    if index > 31:
        raise AssemblyError(f"register X{index} out of range", line_number)
    return index


def assemble(line: str, line_number: int = 1) -> Instruction:
    """Assemble one line of MPAIS assembly into an :class:`Instruction`."""
    text = line.split(";")[0].split("#")[0].strip()
    if not text:
        raise AssemblyError("empty line has no instruction", line_number)
    parts = text.replace(",", " ").split()
    mnemonic = parts[0].upper()
    try:
        opcode = Opcode[mnemonic]
    except KeyError as error:
        raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line_number) from error
    operands = parts[1:]
    if opcode is Opcode.MA_CLEAR:
        if len(operands) != 1:
            raise AssemblyError("MA_CLEAR takes exactly one register operand (Rn)", line_number)
        rn = _parse_register(operands[0], line_number)
        return Instruction(opcode=opcode, rd=31, rn=rn)
    if len(operands) != 2:
        raise AssemblyError(f"{mnemonic} takes exactly two register operands (Rd, Rn)", line_number)
    rd = _parse_register(operands[0], line_number)
    rn = _parse_register(operands[1], line_number)
    return Instruction(opcode=opcode, rd=rd, rn=rn)


def assemble_program(source: str | Iterable[str]) -> Program:
    """Assemble a multi-line program (string or iterable of lines)."""
    if isinstance(source, str):
        lines = source.splitlines()
    else:
        lines = list(source)
    program = Program()
    for line_number, raw_line in enumerate(lines, start=1):
        stripped = raw_line.split(";")[0].split("#")[0].strip()
        if not stripped:
            continue
        program.instructions.append(assemble(raw_line, line_number))
        program.source_lines.append(raw_line.rstrip())
    return program
