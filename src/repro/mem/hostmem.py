"""A functional host-memory view: virtual addresses -> NumPy matrices.

The timing models never need data, but the functional tests do: they allocate
matrices in a process's address space, register the backing arrays here, run a
GEMM through the MPAIS / MMAE stack, and compare the result written back to
memory against NumPy.  The view is keyed by the *virtual* base address used in
the GEMM descriptor, mirroring how the MMAE receives operand pointers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np


class HostMemoryError(Exception):
    """Raised for invalid registrations or out-of-range accesses."""


@dataclass
class _Region:
    base_vaddr: int
    array: np.ndarray

    @property
    def size_bytes(self) -> int:
        return int(self.array.nbytes)

    @property
    def end_vaddr(self) -> int:
        return self.base_vaddr + self.size_bytes


class HostMemory:
    """Maps virtual base addresses to 2-D NumPy arrays (row-major matrices)."""

    def __init__(self) -> None:
        self._regions: Dict[int, _Region] = {}

    def register_matrix(self, base_vaddr: int, array: np.ndarray) -> None:
        """Register ``array`` as the contents of the region starting at ``base_vaddr``."""
        if array.ndim != 2:
            raise HostMemoryError("only 2-D matrices can be registered")
        if not array.flags["C_CONTIGUOUS"]:
            array = np.ascontiguousarray(array)
        new_region = _Region(base_vaddr, array)
        for region in self._regions.values():
            if new_region.base_vaddr < region.end_vaddr and region.base_vaddr < new_region.end_vaddr:
                raise HostMemoryError(
                    f"region at {base_vaddr:#x} overlaps existing region at {region.base_vaddr:#x}"
                )
        self._regions[base_vaddr] = new_region

    def unregister(self, base_vaddr: int) -> None:
        """Drop the region registered at ``base_vaddr`` (no-op if absent)."""
        self._regions.pop(base_vaddr, None)

    def registered_bases(self) -> list:
        """Base virtual addresses of all registered regions, sorted."""
        return sorted(self._regions)

    def matrix_at(self, base_vaddr: int) -> np.ndarray:
        """Return the array registered exactly at ``base_vaddr``."""
        region = self._regions.get(base_vaddr)
        if region is None:
            raise HostMemoryError(f"no matrix registered at {base_vaddr:#x}")
        return region.array

    def has_matrix(self, base_vaddr: int) -> bool:
        return base_vaddr in self._regions

    def find_region(self, vaddr: int) -> Optional[int]:
        """Return the base address of the region containing ``vaddr``, if any."""
        for base, region in self._regions.items():
            if region.base_vaddr <= vaddr < region.end_vaddr:
                return base
        return None

    def write_matrix(self, base_vaddr: int, values: np.ndarray) -> None:
        """Overwrite the contents of a registered matrix in place."""
        region = self._regions.get(base_vaddr)
        if region is None:
            raise HostMemoryError(f"no matrix registered at {base_vaddr:#x}")
        if values.shape != region.array.shape:
            raise HostMemoryError(
                f"shape mismatch writing {base_vaddr:#x}: {values.shape} vs {region.array.shape}"
            )
        region.array[...] = values

    def zero_region(self, base_vaddr: int) -> None:
        """Functional effect of MA_INIT on a registered matrix."""
        self.matrix_at(base_vaddr)[...] = 0

    def registered_bases(self) -> list[int]:
        return sorted(self._regions)
