"""LLM inference as a phase-aware workload: prefill plus KV-cache-growing decode.

Autoregressive LLM serving has two phases with opposite characters, and the
address-translation behaviour the paper studies (Fig. 6/8) is sensitive to
exactly this difference:

* **prefill** — the whole prompt is processed in one pass; GEMMs are large
  and square-ish (``tokens x hidden``), arithmetic intensity is high, and
  the matrix engine runs compute-bound;
* **decode** — one token per step and per sequence; the projections collapse
  to skinny ``batch x hidden`` GEMMs while the attention GEMMs read the whole
  KV cache, which grows by one entry per generated token.  The phase is
  bandwidth-bound and its footprint grows step by step.

The generators here model LLaMA-style decoder layers (grouped attention
projections, SwiGLU MLP with gate/up/down matrices) and emit a
:class:`~repro.workloads.graph.WorkloadGraph`: one PREFILL phase (folded over
the layers) followed by DECODE phases grouped into blocks of ``decode_block``
tokens, each charged the KV length at the end of its block (a conservative
upper bound) and tagged with the resident KV-cache bytes at that step.
Grouping keeps the phase count — and the number of distinct GEMM shapes the
:class:`~repro.core.perf.TimingCache` must walk — bounded for any token count.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.gemm.precision import Precision
from repro.gemm.workloads import GEMMShape
from repro.workloads.bert import TransformerConfig
from repro.workloads.graph import Phase, PhaseKind, WorkloadGraph
from repro.workloads.layers import attention_gemms, elementwise_cost, linear_gemm

__all__ = [
    "LLAMA_CONFIGS",
    "kv_cache_bytes",
    "llm_weight_bytes",
    "llm_prefill_phase",
    "llm_decode_phases",
    "llm_workload_graph",
]

#: Published LLaMA model family configurations (Touvron et al., 2023).
LLAMA_CONFIGS: Dict[str, TransformerConfig] = {
    "tinyllama-1.1b": TransformerConfig(
        "tinyllama-1.1b", layers=22, hidden=2048, heads=32, intermediate=5632
    ),
    "llama-7b": TransformerConfig("llama-7b", layers=32, hidden=4096, heads=32, intermediate=11008),
    "llama-13b": TransformerConfig("llama-13b", layers=40, hidden=5120, heads=40, intermediate=13824),
}


def kv_cache_bytes(
    config: TransformerConfig, batch: int, kv_len: int, layers: int, precision: Precision
) -> int:
    """Resident KV-cache bytes for ``batch`` sequences of ``kv_len`` tokens."""
    return 2 * batch * kv_len * config.hidden * layers * precision.bytes_per_element


def llm_weight_bytes(config: TransformerConfig, layers: int, precision: Precision) -> int:
    """Resident weight bytes of ``layers`` decoder layers.

    Q/K/V/O projections (4 ``hidden x hidden`` matrices) plus the SwiGLU MLP
    (gate/up ``hidden x intermediate`` and down ``intermediate x hidden``).
    Prefill and decode share this stack, so every phase of a variant carries
    the same value.
    """
    per_layer = (
        4 * config.hidden * config.hidden + 3 * config.hidden * config.intermediate
    ) * precision.bytes_per_element
    return per_layer * layers


def _mlp_gemms(tokens: int, config: TransformerConfig, precision: Precision) -> List[GEMMShape]:
    """SwiGLU MLP: gate and up projections then the down projection."""
    return [
        linear_gemm(tokens, config.hidden, config.intermediate, precision),  # gate
        linear_gemm(tokens, config.hidden, config.intermediate, precision),  # up
        linear_gemm(tokens, config.intermediate, config.hidden, precision),  # down
    ]


def _layer_tail(
    batch: int, new_tokens: int, kv_len: int, config: TransformerConfig, precision: Precision
) -> Tuple[int, int]:
    """Element-wise tail (softmax, norms, SiLU) of one decoder layer."""
    tokens = batch * new_tokens
    softmax_elements = batch * config.heads * new_tokens * kv_len
    norm_elements = 2 * tokens * config.hidden
    silu_elements = 2 * tokens * config.intermediate  # SiLU(gate) * up
    flops = 0
    bytes_touched = 0
    for elements, flops_per in ((softmax_elements, 5.0), (norm_elements, 6.0), (silu_elements, 8.0)):
        tail_flops, tail_bytes = elementwise_cost(elements, flops_per, precision)
        flops += tail_flops
        bytes_touched += tail_bytes
    return flops, bytes_touched


def llm_prefill_phase(
    config: TransformerConfig,
    batch: int,
    prompt_len: int,
    layers: int,
    precision: Precision = Precision.FP32,
) -> Phase:
    """The prompt-processing phase: one full-sequence pass, folded over layers."""
    shapes = tuple(
        attention_gemms(batch, prompt_len, config.hidden, config.heads, precision)
        + _mlp_gemms(batch * prompt_len, config, precision)
    )
    tail_flops, tail_bytes = _layer_tail(batch, prompt_len, prompt_len, config, precision)
    return Phase(
        name=f"prefill[{prompt_len}]",
        kind=PhaseKind.PREFILL,
        shapes=shapes,
        non_gemm_flops=tail_flops,
        non_gemm_bytes=tail_bytes,
        repeat=layers,
        step=0,
        state_bytes=kv_cache_bytes(config, batch, prompt_len, layers, precision),
        weight_bytes=llm_weight_bytes(config, layers, precision),
    )


def llm_decode_phases(
    config: TransformerConfig,
    batch: int,
    prompt_len: int,
    decode_tokens: int,
    decode_block: int,
    layers: int,
    precision: Precision = Precision.FP32,
    first_step: int = 1,
) -> List[Phase]:
    """Per-token decode steps, grouped into blocks of ``decode_block`` tokens.

    Every token in a block is charged the KV length at the block's end, so the
    grouping is a conservative (never optimistic) approximation whose error
    shrinks as ``decode_block`` does; ``decode_block=1`` models every step
    exactly.  The per-token GEMM set repeats ``layers * tokens_in_block``
    times, so a block contributes one phase and a handful of distinct shapes.
    """
    if decode_tokens < 0:
        raise ValueError(f"decode token count cannot be negative, got {decode_tokens}")
    if decode_block <= 0:
        raise ValueError(f"decode block must be positive, got {decode_block}")
    head_dim = config.hidden // config.heads
    phases: List[Phase] = []
    start = 0
    step = first_step
    while start < decode_tokens:
        end = min(start + decode_block, decode_tokens)
        kv_len = prompt_len + end
        shapes = (
            # Q/K/V projections of the one new token per sequence.
            linear_gemm(batch, config.hidden, config.hidden, precision),
            linear_gemm(batch, config.hidden, config.hidden, precision),
            linear_gemm(batch, config.hidden, config.hidden, precision),
            # Attention against the whole KV cache: logits then context.
            GEMMShape(batch * config.heads, kv_len, head_dim, precision),
            GEMMShape(batch * config.heads, head_dim, kv_len, precision),
            # Output projection and the SwiGLU MLP.
            linear_gemm(batch, config.hidden, config.hidden, precision),
        ) + tuple(_mlp_gemms(batch, config, precision))
        tail_flops, tail_bytes = _layer_tail(batch, 1, kv_len, config, precision)
        phases.append(
            Phase(
                name=f"decode[{prompt_len + start}:{kv_len}]",
                kind=PhaseKind.DECODE,
                shapes=shapes,
                non_gemm_flops=tail_flops,
                non_gemm_bytes=tail_bytes,
                repeat=layers * (end - start),
                step=step,
                state_bytes=kv_cache_bytes(config, batch, kv_len, layers, precision),
                tokens=batch * (end - start),
                weight_bytes=llm_weight_bytes(config, layers, precision),
            )
        )
        start = end
        step += 1
    return phases


def llm_workload_graph(
    variant: str = "llama-7b",
    batch: int = 1,
    prompt_len: int = 512,
    decode_tokens: int = 64,
    decode_block: int = 16,
    num_layers: Optional[int] = None,
    precision: Precision = Precision.FP32,
    phases: Sequence[str] = ("prefill", "decode"),
) -> WorkloadGraph:
    """LLM inference as a phase graph: prefill then KV-growing decode blocks.

    ``phases`` selects which phases to include (``("prefill",)`` models a
    prompt-ingest service, ``("decode",)`` a generation-heavy tenant whose
    prompt was prefetched elsewhere); ``num_layers`` overrides the variant's
    depth, matching the GPT-3 proxy convention used by Fig. 8.
    """
    if variant not in LLAMA_CONFIGS:
        raise ValueError(f"unknown LLM variant {variant!r}; options: {sorted(LLAMA_CONFIGS)}")
    if batch <= 0 or prompt_len <= 0:
        raise ValueError("batch and prompt length must be positive")
    selected = tuple(phases)
    unknown = [entry for entry in selected if entry not in ("prefill", "decode")]
    if unknown or not selected:
        raise ValueError(f"phase selector must be drawn from prefill/decode, got {list(phases)!r}")
    config = LLAMA_CONFIGS[variant]
    layers = num_layers if num_layers is not None else config.layers
    if layers <= 0:
        raise ValueError("layer count must be positive")

    graph_phases: List[Phase] = []
    if "prefill" in selected:
        graph_phases.append(llm_prefill_phase(config, batch, prompt_len, layers, precision))
    if "decode" in selected:
        if decode_tokens <= 0:
            raise ValueError("decode phase selected but decode_tokens is not positive")
        graph_phases.extend(
            llm_decode_phases(config, batch, prompt_len, decode_tokens, decode_block, layers, precision)
        )
    tag = "+".join(entry for entry in ("prefill", "decode") if entry in selected)
    return WorkloadGraph(
        name=f"{config.name}-b{batch}-p{prompt_len}-d{decode_tokens}-l{layers}-{tag}",
        phases=graph_phases,
        params={
            "variant": config.name,
            "batch": batch,
            "prompt_len": prompt_len,
            "decode_tokens": decode_tokens,
            "decode_block": decode_block,
            "layers": layers,
            "precision": precision.value,
            "phases": tag,
        },
    )
