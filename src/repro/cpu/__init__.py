"""General-purpose CPU core substrate.

The MACO compute node pairs each MMAE with a 64-bit, four-issue, out-of-order
CPU core (paper Table I).  For the reproduction the core provides:

* the MPAIS front end (register file + executor + Master Task Queue);
* the memory-management unit the MMAE shares (TLB hierarchy + page-table
  walker), which is the substrate of the Fig. 6 address-translation study;
* process/ASID management and exception delivery (paper Section III.C);
* a throughput model for the scalar/vector FP work the CPU performs itself
  (Baseline-1 and the non-GEMM operators of GEMM+ workloads).
"""

from repro.cpu.exceptions import ExceptionType, MMAETaskException
from repro.cpu.mtq import MTQEntry, MasterTaskQueue, MTQState, StatusWord
from repro.cpu.process import Process, ProcessManager
from repro.cpu.mmu import MMU
from repro.cpu.pipeline import PipelineModel
from repro.cpu.core import CPUCore, CPUComputeResult

__all__ = [
    "ExceptionType",
    "MMAETaskException",
    "MTQEntry",
    "MasterTaskQueue",
    "MTQState",
    "StatusWord",
    "Process",
    "ProcessManager",
    "MMU",
    "PipelineModel",
    "CPUCore",
    "CPUComputeResult",
]
