"""Result dataclasses and metric helpers shared by the MACO system and baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.gemm.workloads import GEMMShape
from repro.mmae.dataflow import GEMMTimingBreakdown


@dataclass
class NodeResult:
    """Timing of the work one compute node performed."""

    node_id: int
    seconds: float
    flops: int
    breakdowns: List[GEMMTimingBreakdown] = field(default_factory=list)

    @property
    def gflops(self) -> float:
        """Achieved throughput of this node's share of the work."""
        return self.flops / self.seconds / 1e9 if self.seconds > 0 else 0.0


@dataclass
class SystemResult:
    """Outcome of running one GEMM (or a set of independent GEMMs) on MACO."""

    shape: GEMMShape
    num_nodes: int
    seconds: float
    flops: int
    peak_gflops: float
    node_results: List[NodeResult] = field(default_factory=list)
    prediction_enabled: bool = True

    @property
    def gflops(self) -> float:
        """Aggregate achieved throughput across the active nodes."""
        return self.flops / self.seconds / 1e9 if self.seconds > 0 else 0.0

    @property
    def tflops(self) -> float:
        """Aggregate achieved throughput in TFLOPS."""
        return self.gflops / 1e3

    @property
    def efficiency(self) -> float:
        """Achieved fraction of the aggregate MMAE peak."""
        return self.gflops / self.peak_gflops if self.peak_gflops else 0.0

    @property
    def per_node_efficiency(self) -> float:
        """Average per-node efficiency (the Fig. 7 metric)."""
        if not self.node_results:
            return self.efficiency
        per_node_peak = self.peak_gflops / self.num_nodes
        values = [node.gflops / per_node_peak for node in self.node_results if per_node_peak]
        return sum(values) / len(values) if values else 0.0


@dataclass
class WorkloadResult:
    """Outcome of running a full (DL) workload on MACO or a baseline."""

    name: str
    system: str
    num_nodes: int
    seconds: float
    gemm_flops: int
    total_flops: int
    peak_gflops: float
    gemm_seconds: float = 0.0
    non_gemm_seconds: float = 0.0
    overlap_enabled: bool = True

    @property
    def gflops(self) -> float:
        """Throughput on the GEMM FLOPs (the Fig. 8 y-axis metric)."""
        return self.gemm_flops / self.seconds / 1e9 if self.seconds > 0 else 0.0

    @property
    def tflops(self) -> float:
        """GEMM throughput in TFLOPS."""
        return self.gflops / 1e3

    @property
    def efficiency(self) -> float:
        """Achieved fraction of the aggregate MMAE peak on the GEMM FLOPs."""
        return self.gflops / self.peak_gflops if self.peak_gflops else 0.0


def speedup(result: WorkloadResult, baseline: WorkloadResult) -> float:
    """How much faster ``result`` is than ``baseline`` (ratio of throughputs)."""
    if baseline.gflops <= 0:
        raise ValueError("baseline throughput must be positive")
    return result.gflops / baseline.gflops


def geometric_mean(values: List[float]) -> float:
    """Geometric mean, the conventional way to average speedups."""
    if not values:
        raise ValueError("cannot average an empty list")
    if any(value <= 0 for value in values):
        raise ValueError("geometric mean requires positive values")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def average_efficiency(results: List[SystemResult]) -> float:
    """Arithmetic mean of per-node efficiencies across a sweep (Fig. 7 summary)."""
    if not results:
        raise ValueError("no results to average")
    return sum(result.per_node_efficiency for result in results) / len(results)
