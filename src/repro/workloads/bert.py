"""BERT inference as a GEMM stream (Devlin et al., 2018).

Each encoder layer contributes the six attention GEMMs plus the two MLP GEMMs
(hidden -> 4*hidden -> hidden); layer norm, GELU and softmax are summarised as
element-wise work.  BERT-base (12 layers, hidden 768) and BERT-large
(24 layers, hidden 1024) configurations are provided; the paper does not state
which was used, so BERT-large with a 384-token sequence (a common SQuAD-style
inference setting) is the default.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gemm.precision import Precision
from repro.gemm.workloads import GEMMWorkload
from repro.workloads.graph import Phase, PhaseKind, WorkloadGraph
from repro.workloads.layers import attention_gemms, elementwise_cost, linear_gemm


@dataclass(frozen=True)
class TransformerConfig:
    """Hyper-parameters of an encoder-style transformer."""

    name: str
    layers: int
    hidden: int
    heads: int
    intermediate: int

    def __post_init__(self) -> None:
        if self.hidden % self.heads:
            raise ValueError(f"{self.name}: hidden must be divisible by heads")


BERT_BASE = TransformerConfig("bert-base", layers=12, hidden=768, heads=12, intermediate=3072)
BERT_LARGE = TransformerConfig("bert-large", layers=24, hidden=1024, heads=16, intermediate=4096)


def encoder_layer_phase(
    config: TransformerConfig,
    batch: int,
    seq_len: int,
    precision: Precision = Precision.FP32,
    name: str = "encoder",
) -> Phase:
    """One encoder layer's GEMMs and tails, folded ``config.layers`` times.

    Every BERT encoder layer runs the same six attention GEMMs and two MLP
    GEMMs, so the whole stack is a single phase with ``repeat = layers``.
    """
    tokens = batch * seq_len
    shapes = tuple(
        attention_gemms(batch, seq_len, config.hidden, config.heads, precision)
        + [
            linear_gemm(tokens, config.hidden, config.intermediate, precision),
            linear_gemm(tokens, config.intermediate, config.hidden, precision),
        ]
    )
    # Softmax over attention logits + two layer norms + GELU over the MLP hidden.
    softmax_elements = batch * config.heads * seq_len * seq_len
    norm_elements = 2 * tokens * config.hidden
    gelu_elements = tokens * config.intermediate
    elementwise_flops = 0
    elementwise_bytes = 0
    for elements, flops_per in ((softmax_elements, 5.0), (norm_elements, 6.0), (gelu_elements, 8.0)):
        flops, bytes_touched = elementwise_cost(elements, flops_per, precision)
        elementwise_flops += flops
        elementwise_bytes += bytes_touched
    return Phase(
        name=name,
        kind=PhaseKind.PREFILL,
        shapes=shapes,
        non_gemm_flops=elementwise_flops,
        non_gemm_bytes=elementwise_bytes,
        repeat=config.layers,
    )


def bert_graph(
    config: TransformerConfig = BERT_LARGE,
    batch: int = 8,
    seq_len: int = 384,
    precision: Precision = Precision.FP32,
) -> WorkloadGraph:
    """BERT inference as a single-phase graph (the encoder stack, folded)."""
    if batch <= 0 or seq_len <= 0:
        raise ValueError("batch and sequence length must be positive")
    phase = encoder_layer_phase(config, batch, seq_len, precision)
    return WorkloadGraph(
        name=f"{config.name}-b{batch}-s{seq_len}",
        phases=[phase],
        params={"config": config.name, "batch": batch, "seq_len": seq_len,
                "precision": precision.value},
    )


def bert_workload(
    config: TransformerConfig = BERT_LARGE,
    batch: int = 8,
    seq_len: int = 384,
    precision: Precision = Precision.FP32,
) -> GEMMWorkload:
    """BERT inference for a batch of sequences, expressed as a GEMM workload."""
    return bert_graph(config, batch, seq_len, precision).flatten()
