"""Packets and flits: the units of NoC transfer."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import List


class FlitType(enum.Enum):
    """Position of a flit within its packet's wormhole sequence."""

    HEAD = "head"  # carries the routing information, opens the channel
    BODY = "body"
    TAIL = "tail"  # closes the virtual channel behind the packet
    HEAD_TAIL = "head_tail"  # single-flit packet


@dataclass(frozen=True)
class Flit:
    """One flow-control unit of a packet."""

    packet_id: int
    sequence: int
    flit_type: FlitType
    src: int
    dst: int


@dataclass
class Packet:
    """A message travelling from ``src`` to ``dst`` carrying ``payload_bytes``.

    The link width determines how many flits the packet needs; a head flit also
    carries routing information, so a packet always has at least one flit.
    """

    packet_id: int
    src: int
    dst: int
    payload_bytes: int
    link_width_bytes: int = 32  # 256-bit links
    virtual_channel: int = 0
    injection_time: float = 0.0
    delivery_time: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("payload cannot be negative")
        if self.link_width_bytes <= 0:
            raise ValueError("link width must be positive")
        if self.virtual_channel < 0:
            raise ValueError("virtual channel must be non-negative")

    @property
    def num_flits(self) -> int:
        """Flits needed to carry the payload over ``link_width_bytes`` links."""
        return max(1, math.ceil(self.payload_bytes / self.link_width_bytes))

    def flits(self) -> List[Flit]:
        """Materialise the packet's flit sequence."""
        count = self.num_flits
        if count == 1:
            return [Flit(self.packet_id, 0, FlitType.HEAD_TAIL, self.src, self.dst)]
        result = [Flit(self.packet_id, 0, FlitType.HEAD, self.src, self.dst)]
        for sequence in range(1, count - 1):
            result.append(Flit(self.packet_id, sequence, FlitType.BODY, self.src, self.dst))
        result.append(Flit(self.packet_id, count - 1, FlitType.TAIL, self.src, self.dst))
        return result

    @property
    def latency(self) -> float:
        """Injection-to-delivery latency (valid after the network delivers the packet)."""
        return self.delivery_time - self.injection_time
