"""Tests for the register file and the MPAIS functional executor."""

import pytest

from repro.cpu.exceptions import ExceptionType
from repro.cpu.mtq import MasterTaskQueue, StatusWord
from repro.gemm.precision import Precision
from repro.isa.assembler import assemble_program
from repro.isa.executor import MPAISExecutionError, MPAISExecutor
from repro.isa.instructions import GEMMDescriptor, InitDescriptor, MoveDescriptor, StashDescriptor
from repro.isa.registers import RegisterFile


class RecordingMMAE:
    """A fake MMAE port that records the descriptors it receives."""

    def __init__(self) -> None:
        self.gemms = []
        self.moves = []
        self.inits = []
        self.stashes = []

    def submit_gemm(self, maid, asid, descriptor):
        self.gemms.append((maid, asid, descriptor))

    def submit_move(self, maid, asid, descriptor):
        self.moves.append((maid, asid, descriptor))

    def submit_init(self, maid, asid, descriptor):
        self.inits.append((maid, asid, descriptor))

    def submit_stash(self, maid, asid, descriptor):
        self.stashes.append((maid, asid, descriptor))


def make_executor(asid=0, mtq_entries=4):
    registers = RegisterFile()
    mtq = MasterTaskQueue(num_entries=mtq_entries)
    mmae = RecordingMMAE()
    executor = MPAISExecutor(registers, mtq, mmae, asid=asid)
    return executor, registers, mtq, mmae


def sample_gemm_descriptor() -> GEMMDescriptor:
    return GEMMDescriptor(
        addr_a=0x1000, addr_b=0x2000, addr_c=0x3000,
        m=128, n=128, k=128, precision=Precision.FP64,
        tile_rows=128, tile_cols=128, ttr=64, ttc=64,
    )


class TestRegisterFile:
    def test_write_read(self):
        regs = RegisterFile()
        regs.write(5, 0xDEADBEEF)
        assert regs.read(5) == 0xDEADBEEF

    def test_zero_register_reads_zero(self):
        regs = RegisterFile()
        regs.write(31, 123)
        assert regs.read(31) == 0

    def test_values_truncate_to_64_bits(self):
        regs = RegisterFile()
        regs.write(1, (1 << 70) | 5)
        assert regs.read(1) == 5

    def test_block_read_write(self):
        regs = RegisterFile()
        regs.write_block(2, [1, 2, 3, 4, 5, 6])
        assert regs.read_block(2, 6) == [1, 2, 3, 4, 5, 6]

    def test_block_cannot_cross_x30(self):
        regs = RegisterFile()
        with pytest.raises(ValueError):
            regs.read_block(28, 6)

    def test_snapshot_restore(self):
        regs = RegisterFile()
        regs.write(3, 42)
        snapshot = regs.snapshot()
        regs.write(3, 99)
        regs.restore(snapshot)
        assert regs.read(3) == 42

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            RegisterFile().write(0, -1)


class TestMACfg:
    def test_cfg_allocates_entry_and_dispatches(self):
        executor, regs, mtq, mmae = make_executor(asid=7)
        descriptor = sample_gemm_descriptor()
        regs.write_block(2, descriptor.pack())
        trace = executor.execute_program(assemble_program("MA_CFG X1, X2"))[0]
        assert trace.maid == 0
        assert regs.read(1) == 0
        maid, asid, received = mmae.gemms[0]
        assert (maid, asid) == (0, 7)
        assert received == descriptor
        assert mtq.outstanding_tasks() == 1

    def test_cfg_exhausts_mtq(self):
        executor, regs, mtq, _ = make_executor(mtq_entries=2)
        regs.write_block(2, sample_gemm_descriptor().pack())
        program = assemble_program("MA_CFG X1, X2")
        executor.execute_program(program)
        executor.execute_program(program)
        with pytest.raises(MPAISExecutionError):
            executor.execute_program(program)

    def test_cfg_returns_distinct_maids(self):
        executor, regs, _, _ = make_executor()
        regs.write_block(2, sample_gemm_descriptor().pack())
        program = assemble_program("MA_CFG X1, X2\nMA_CFG X3, X2")
        traces = executor.execute_program(program)
        assert traces[0].maid != traces[1].maid


class TestDataMigrationInstructions:
    def test_move_dispatch(self):
        executor, regs, _, mmae = make_executor()
        descriptor = MoveDescriptor(src_addr=0x100, dst_addr=0x900, length_bytes=4096)
        regs.write_block(10, descriptor.pack())
        executor.execute_program(assemble_program("MA_MOVE X1, X10"))
        assert mmae.moves[0][2] == descriptor

    def test_init_dispatch(self):
        executor, regs, _, mmae = make_executor()
        descriptor = InitDescriptor(dst_addr=0x4000, length_bytes=1 << 16)
        regs.write_block(4, descriptor.pack())
        executor.execute_program(assemble_program("MA_INIT X2, X4"))
        assert mmae.inits[0][2] == descriptor

    def test_stash_dispatch_with_lock(self):
        executor, regs, _, mmae = make_executor()
        descriptor = StashDescriptor(addr=0x8000, length_bytes=1 << 20, lock=True)
        regs.write_block(6, descriptor.pack())
        executor.execute_program(assemble_program("MA_STASH X3, X6"))
        assert mmae.stashes[0][2].lock is True


class TestTaskManagement:
    def _submit_task(self, executor, regs):
        regs.write_block(2, sample_gemm_descriptor().pack())
        return executor.execute_program(assemble_program("MA_CFG X1, X2"))[0].maid

    def test_read_reports_running_state(self):
        executor, regs, mtq, _ = make_executor()
        self._submit_task(executor, regs)
        trace = executor.execute_program(assemble_program("MA_READ X5, X1"))[0]
        status = StatusWord.unpack(trace.status_word)
        assert status.valid and not status.done
        assert mtq.outstanding_tasks() == 1  # MA_READ does not release

    def test_state_releases_completed_entry(self):
        executor, regs, mtq, _ = make_executor(asid=0)
        maid = self._submit_task(executor, regs)
        mtq.mark_done(maid)
        trace = executor.execute_program(assemble_program("MA_STATE X5, X1"))[0]
        status = StatusWord.unpack(trace.status_word)
        assert status.done
        assert mtq.free_entries() == len(mtq)

    def test_clear_after_exception(self):
        executor, regs, mtq, _ = make_executor()
        maid = self._submit_task(executor, regs)
        mtq.mark_done(maid, ExceptionType.PAGE_FAULT)
        # MA_STATE observes the exception but does not release the entry.
        executor.execute_program(assemble_program("MA_STATE X5, X1"))
        assert mtq.free_entries() == len(mtq) - 1
        executor.execute_program(assemble_program("MA_CLEAR X1"))
        assert mtq.free_entries() == len(mtq)

    def test_cycle_accounting_accumulates(self):
        executor, regs, _, _ = make_executor()
        self._submit_task(executor, regs)
        executor.execute_program(assemble_program("MA_READ X5, X1"))
        assert executor.cycles_executed > 0
        assert len(executor.trace) == 2

    def test_set_asid_changes_ownership(self):
        executor, regs, mtq, mmae = make_executor(asid=1)
        executor.set_asid(9)
        self._submit_task(executor, regs)
        assert mmae.gemms[0][1] == 9
        assert mtq.entries_for_asid(9)
