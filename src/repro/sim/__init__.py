"""Light-weight discrete-event simulation kernel used by the MACO substrates.

The MACO reproduction mostly relies on tile-granular analytical timing, but a
few components (DMA engines, the NoC transaction layer, the MTQ/STQ handshake)
are easier to express as events on a shared clock.  This package provides the
minimal kernel for that: a :class:`Clock`, an :class:`EventQueue`-backed
:class:`SimulationEngine`, and a :class:`StatsRegistry` of named counters.
"""

from repro.sim.clock import Clock, CycleDomain
from repro.sim.event import Event, EventQueue
from repro.sim.engine import SimulationEngine
from repro.sim.stats import Counter, Histogram, StatsRegistry

__all__ = [
    "Clock",
    "CycleDomain",
    "Event",
    "EventQueue",
    "SimulationEngine",
    "Counter",
    "Histogram",
    "StatsRegistry",
]
