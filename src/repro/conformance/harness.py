"""Execution harness for the golden conformance corpus.

The harness turns each declarative :class:`GoldenCase` into three arrays —
the functional fidelity's output, the independent NumPy golden recomputed at
check time, and the fingerprint committed in ``tests/golden/<name>.json`` —
and verifies two things:

1. **Tolerance**: ``|functional - golden| <= atol + rtol * |golden|``
   element-wise.  Failures name the kernel, the seed and the worst element
   (its index, both values, the diff and the allowance) so a mutation is
   diagnosable from the message alone, and carry a replayable JSON spec.
2. **Pinning**: the recomputed golden's summary statistics (Frobenius norm,
   mean, and a seed-independent sample of elements) match the committed
   fingerprint to 1e-9 relative.  This catches silent changes to the golden
   model itself; the committed SHA-256 digest is informational (BLAS builds
   may legally reassociate) and only reported, never enforced.

``--regen`` rewrites the committed files and is guarded: it refuses to run
with uncommitted changes under ``tests/golden/`` unless ``allow_dirty`` is
set, and ``allow_dirty`` itself is refused in CI (the ``CI`` environment
variable) so the corpus can only be regenerated deliberately on a developer
checkout.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.conformance.golden import (
    GoldenCase,
    GoldenMismatch,
    default_corpus,
    kernel_for,
)

__all__ = [
    "DEFAULT_GOLDEN_DIR",
    "CaseResult",
    "ConformanceReport",
    "GoldenFileError",
    "RegenRefused",
    "case_fingerprint",
    "compare_arrays",
    "load_golden_file",
    "run_case",
    "run_corpus",
    "write_golden_file",
]

#: Committed corpus location, relative to the repository root.
DEFAULT_GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "golden"

_FINGERPRINT_RTOL = 1e-9
_SAMPLE_COUNT = 8


class GoldenFileError(ValueError):
    """A committed golden file is missing, unreadable or malformed."""


class RegenRefused(RuntimeError):
    """``--regen`` was blocked by the working-tree guard."""


@dataclass(frozen=True)
class ElementDiff:
    """The worst-offending element of a tolerance comparison."""

    index: Tuple[int, ...]
    functional: float
    golden: float

    @property
    def abs_diff(self) -> float:
        return abs(self.functional - self.golden)

    def describe(self, rtol: float, atol: float) -> str:
        allowed = atol + rtol * abs(self.golden)
        return (
            f"worst element at {list(self.index)}: functional={self.functional!r} "
            f"golden={self.golden!r} |diff|={self.abs_diff:.6e} allowed={allowed:.6e}"
        )


def compare_arrays(
    functional: np.ndarray, golden: np.ndarray, rtol: float, atol: float
) -> Optional[ElementDiff]:
    """The worst element violating ``atol + rtol*|golden|``, or ``None``.

    When every element is inside tolerance returns ``None``; otherwise the
    element whose excess over its own allowance is largest, which is the one
    worth printing (a large value with a large allowance may be fine while a
    tiny absolute diff on a near-zero golden is the real offender).
    """
    if functional.shape != golden.shape:
        raise GoldenMismatch(
            f"shape mismatch: functional {functional.shape} vs golden {golden.shape}"
        )
    diff = np.abs(functional.astype(np.float64) - golden.astype(np.float64))
    allowed = atol + rtol * np.abs(golden.astype(np.float64))
    excess = diff - allowed
    worst_flat = int(np.argmax(excess))
    if excess.flat[worst_flat] <= 0 and bool(np.all(np.isfinite(diff))):
        return None
    if not np.all(np.isfinite(diff)):
        # Prefer reporting a NaN/inf element over a merely-large one.
        worst_flat = int(np.argmax(~np.isfinite(diff.flat)))
    index = np.unravel_index(worst_flat, golden.shape)
    return ElementDiff(
        index=tuple(int(i) for i in index),
        functional=float(functional.flat[worst_flat]),
        golden=float(golden.flat[worst_flat]),
    )


def _sample_indices(shape: Tuple[int, ...]) -> List[int]:
    """Deterministic, shape-derived flat indices spread across the array."""
    total = int(np.prod(shape))
    count = min(_SAMPLE_COUNT, total)
    return [(i * total) // count for i in range(count)]


def case_fingerprint(array: np.ndarray) -> dict:
    """Summary statistics pinning a golden array in the committed file."""
    contiguous = np.ascontiguousarray(array, dtype=np.float64)
    samples = [float(contiguous.flat[i]) for i in _sample_indices(contiguous.shape)]
    return {
        "shape": list(contiguous.shape),
        "dtype": "float64",
        "sha256": hashlib.sha256(contiguous.tobytes()).hexdigest(),
        "frobenius": float(np.linalg.norm(contiguous)),
        "mean": float(contiguous.mean()),
        "samples": samples,
    }


def _fingerprint_drift(committed: dict, recomputed: dict) -> Optional[str]:
    """First pinned statistic that drifted beyond 1e-9 relative, or ``None``."""
    if list(committed.get("shape", [])) != recomputed["shape"]:
        return f"shape changed from {committed.get('shape')} to {recomputed['shape']}"
    scalars = [("frobenius", committed.get("frobenius"), recomputed["frobenius"]),
               ("mean", committed.get("mean"), recomputed["mean"])]
    for i, (old, new) in enumerate(
        zip(committed.get("samples", []), recomputed["samples"])
    ):
        scalars.append((f"samples[{i}]", old, new))
    for label, old, new in scalars:
        if old is None:
            return f"committed fingerprint is missing {label!r}"
        tolerance = _FINGERPRINT_RTOL * max(abs(float(old)), abs(float(new)), 1.0)
        if abs(float(old) - float(new)) > tolerance:
            return (
                f"{label} drifted from {float(old)!r} to {float(new)!r} "
                f"(tolerance {tolerance:.3e})"
            )
    return None


def load_golden_file(path: Path) -> Tuple[GoldenCase, dict]:
    """Read a committed golden file, raising :class:`GoldenFileError` on rot."""
    try:
        text = path.read_text()
    except OSError as error:
        raise GoldenFileError(f"cannot read golden file {path}: {error}") from error
    try:
        record = json.loads(text)
    except json.JSONDecodeError as error:
        raise GoldenFileError(f"golden file {path} is not valid JSON: {error}") from error
    if not isinstance(record, dict) or "case" not in record or "golden" not in record:
        raise GoldenFileError(
            f"golden file {path} must be an object with 'case' and 'golden' keys"
        )
    try:
        case = GoldenCase.from_dict(record["case"])
    except ValueError as error:
        raise GoldenFileError(f"golden file {path}: {error}") from error
    golden = record["golden"]
    if not isinstance(golden, dict):
        raise GoldenFileError(f"golden file {path}: 'golden' must be a fingerprint object")
    return case, golden


def write_golden_file(path: Path, case: GoldenCase, fingerprint: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    record = {"case": case.to_dict(), "golden": fingerprint}
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


@dataclass
class CaseResult:
    """Outcome of one golden case run."""

    case: GoldenCase
    status: str  # "pass" | "fail" | "error"
    message: str = ""
    max_abs_diff: float = 0.0
    worst: Optional[ElementDiff] = None

    @property
    def passed(self) -> bool:
        return self.status == "pass"

    def repro_spec(self) -> dict:
        """A replayable JSON blob reproducing this case in isolation."""
        return {
            "type": "golden",
            "case": self.case.to_dict(),
            "status": self.status,
            "message": self.message,
        }


@dataclass
class ConformanceReport:
    """Aggregate outcome of a corpus run."""

    results: List[CaseResult] = field(default_factory=list)
    regenerated: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    @property
    def failures(self) -> List[CaseResult]:
        return [result for result in self.results if not result.passed]

    def failure_specs(self) -> List[dict]:
        return [result.repro_spec() for result in self.failures]

    def rows(self) -> List[List[str]]:
        rows = [["case", "kernel", "seed", "status", "max|diff|", "detail"]]
        for result in self.results:
            rows.append([
                result.case.name,
                result.case.kernel,
                str(result.case.seed),
                result.status.upper(),
                f"{result.max_abs_diff:.3e}" if result.status != "error" else "-",
                result.message if not result.passed else "",
            ])
        return rows


def run_case(case: GoldenCase, committed: Optional[dict] = None) -> CaseResult:
    """Execute one golden case against the functional fidelity."""
    kernel = kernel_for(case)
    rng = np.random.default_rng(case.seed)
    try:
        inputs = kernel.generate_inputs(case, rng)
        functional = np.asarray(kernel.run_functional(case, inputs), dtype=np.float64)
        golden = np.asarray(kernel.compute_golden(case, inputs), dtype=np.float64)
    except GoldenMismatch as error:
        return CaseResult(case=case, status="fail", message=str(error))
    except Exception as error:  # kernel bug or malformed spec
        return CaseResult(
            case=case, status="error",
            message=f"kernel {case.kernel!r} seed {case.seed}: {type(error).__name__}: {error}",
        )
    max_abs = float(np.max(np.abs(functional - golden))) if functional.size else 0.0
    worst = compare_arrays(functional, golden, case.rtol, case.atol)
    if worst is not None:
        return CaseResult(
            case=case,
            status="fail",
            max_abs_diff=max_abs,
            worst=worst,
            message=(
                f"kernel {case.kernel!r} seed {case.seed} out of tolerance "
                f"(rtol={case.rtol:g}, atol={case.atol:g}); "
                + worst.describe(case.rtol, case.atol)
            ),
        )
    if committed is not None:
        drift = _fingerprint_drift(committed, case_fingerprint(golden))
        if drift is not None:
            return CaseResult(
                case=case, status="fail", max_abs_diff=max_abs,
                message=(
                    f"kernel {case.kernel!r} seed {case.seed}: committed golden "
                    f"fingerprint drifted — {drift}; rerun with --regen if intended"
                ),
            )
    return CaseResult(case=case, status="pass", max_abs_diff=max_abs)


def _working_tree_dirty(golden_dir: Path) -> Optional[bool]:
    """Whether ``golden_dir`` has uncommitted changes; ``None`` outside git."""
    try:
        probe = subprocess.run(
            ["git", "-C", str(golden_dir.parent), "rev-parse", "--is-inside-work-tree"],
            capture_output=True, text=True, timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if probe.returncode != 0:
        return None
    status = subprocess.run(
        ["git", "-C", str(golden_dir.parent), "status", "--porcelain", "--", str(golden_dir)],
        capture_output=True, text=True, timeout=30,
    )
    if status.returncode != 0:
        return None
    return bool(status.stdout.strip())


def _check_regen_allowed(golden_dir: Path, allow_dirty: bool, env=os.environ) -> None:
    if allow_dirty and env.get("CI"):
        raise RegenRefused(
            "--allow-dirty is refused in CI: regenerating goldens over "
            "uncommitted changes would silently bless whatever the build produced"
        )
    dirty = _working_tree_dirty(golden_dir)
    if dirty and not allow_dirty:
        raise RegenRefused(
            f"refusing --regen: {golden_dir} has uncommitted changes; commit or "
            "stash them first (or pass --allow-dirty on a developer checkout)"
        )


def run_corpus(
    golden_dir: Optional[Path] = None,
    cases: Optional[Sequence[GoldenCase]] = None,
    regen: bool = False,
    allow_dirty: bool = False,
) -> ConformanceReport:
    """Run the corpus against committed golden files (or regenerate them).

    In check mode (the default) each case must have a committed file whose
    embedded spec matches the in-code corpus exactly; a missing or stale file
    is a failure prompting ``--regen``.  In regen mode the files are written
    from the recomputed goldens after the working-tree guard passes.
    """
    golden_dir = Path(golden_dir) if golden_dir is not None else DEFAULT_GOLDEN_DIR
    corpus = list(cases) if cases is not None else default_corpus()
    report = ConformanceReport()
    if regen:
        _check_regen_allowed(golden_dir, allow_dirty)
    for case in corpus:
        path = golden_dir / f"{case.name}.json"
        committed: Optional[dict] = None
        if not regen:
            try:
                committed_case, committed = load_golden_file(path)
            except GoldenFileError as error:
                report.results.append(
                    CaseResult(case=case, status="fail", message=f"{error}; run --regen")
                )
                continue
            if committed_case != case:
                report.results.append(CaseResult(
                    case=case, status="fail",
                    message=(
                        f"committed spec in {path.name} disagrees with the in-code "
                        "corpus; run --regen to refresh it"
                    ),
                ))
                continue
        result = run_case(case, committed=committed)
        if regen and result.passed:
            kernel = kernel_for(case)
            rng = np.random.default_rng(case.seed)
            inputs = kernel.generate_inputs(case, rng)
            golden = np.asarray(kernel.compute_golden(case, inputs), dtype=np.float64)
            write_golden_file(path, case, case_fingerprint(golden))
            report.regenerated.append(path.name)
        report.results.append(result)
    return report
