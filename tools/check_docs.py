#!/usr/bin/env python
"""Documentation snippet checker (run by the CI docs job and the test suite).

Keeps README.md, DESIGN.md and docs/*.md honest against the code:

* every fenced ``python`` block must compile;
* every ``python -m repro.cli ...`` invocation in a fenced ``sh`` block must
  parse against the real argument parser (unknown subcommands or flags fail);
* every repo-relative path mentioned anywhere in the documents
  (``src/...``, ``docs/...``, ``examples/...``, ``benchmarks/...``,
  ``tests/...``, ``tools/...``) must exist.

Usage::

    PYTHONPATH=src python tools/check_docs.py [files...]

Exits non-zero with one line per problem.  Without arguments it checks
README.md, DESIGN.md and everything under docs/.
"""

from __future__ import annotations

import re
import shlex
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

FENCE_RE = re.compile(r"^```(\w*)\s*$")
PATH_RE = re.compile(r"\b(?:src|docs|examples|benchmarks|tests|tools)/[\w./-]+")


def iter_code_blocks(text: str) -> Iterator[Tuple[str, int, str]]:
    """Yield ``(language, start line number, body)`` for each fenced block."""
    language = None
    body: List[str] = []
    start = 0
    for number, line in enumerate(text.splitlines(), start=1):
        match = FENCE_RE.match(line.strip())
        if match and language is None:
            language = match.group(1) or "text"
            body = []
            start = number + 1
        elif line.strip() == "```" and language is not None:
            yield language, start, "\n".join(body)
            language = None
        elif language is not None:
            body.append(line)


def _join_continuations(block: str) -> List[str]:
    """Merge shell lines ending in a backslash into single logical commands."""
    lines: List[str] = []
    pending = ""
    for line in block.splitlines():
        stripped = line.strip() if pending else line.rstrip()
        if stripped.endswith("\\"):
            pending += stripped[:-1].rstrip() + " "
            continue
        lines.append((pending + stripped).strip())
        pending = ""
    if pending.strip():
        lines.append(pending.strip())
    return lines


def _cli_argv(command: str) -> List[str]:
    """Extract the repro.cli argv from a doc shell line, or [] if not a CLI call."""
    comment = command.find(" #")
    if comment != -1:
        command = command[:comment]
    try:
        tokens = shlex.split(command)
    except ValueError:
        return []
    # Skip env-var prefixes like PYTHONPATH=src.
    while tokens and "=" in tokens[0] and not tokens[0].startswith("-"):
        tokens = tokens[1:]
    if tokens[:3] == ["python", "-m", "repro.cli"]:
        return tokens[3:]
    return []


def check_file(path: Path) -> List[str]:
    """Return a list of problem descriptions for one markdown file."""
    from repro.cli import build_parser

    problems: List[str] = []
    text = path.read_text()
    try:
        rel = path.relative_to(REPO_ROOT)
    except ValueError:  # document outside the repo (e.g. a temp file under test)
        rel = path

    for language, line, body in iter_code_blocks(text):
        if language in ("python", "py"):
            try:
                compile(body, f"{rel}:{line}", "exec")
            except SyntaxError as error:
                problems.append(f"{rel}:{line}: python block does not compile: {error}")
        elif language in ("sh", "bash", "shell", "console"):
            for command in _join_continuations(body):
                argv = _cli_argv(command)
                if not argv:
                    continue
                try:
                    build_parser().parse_args(argv)
                except SystemExit:
                    problems.append(
                        f"{rel}:{line}: CLI invocation does not parse: "
                        f"python -m repro.cli {' '.join(argv)}"
                    )

    for match in PATH_RE.finditer(text):
        target = match.group(0).rstrip(".")
        if not (REPO_ROOT / target).exists():
            problems.append(f"{rel}: referenced path does not exist: {target}")
    return problems


def default_documents() -> List[Path]:
    """The documents checked when no arguments are given."""
    documents = [REPO_ROOT / "README.md", REPO_ROOT / "DESIGN.md"]
    documents.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in documents if path.exists()]


def main(argv: List[str] = None) -> int:
    paths = [Path(arg).resolve() for arg in (argv or sys.argv[1:])] or default_documents()
    problems: List[str] = []
    for path in paths:
        if not path.is_file():
            problems.append(f"{path}: document does not exist")
            continue
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"check_docs: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"check_docs: {len(paths)} document(s) ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
