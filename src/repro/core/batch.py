"""Parallel, cached sweep execution for exploration campaigns.

The paper's headline contribution is *exploration*: sweeping matrix sizes,
node counts and architectural knobs through the cycle-approximate model.  A
campaign evaluates hundreds to thousands of design points, and each figure
regeneration re-walks the same tile schedules; this module makes both cheap:

* :class:`SweepRunner` fans the independent evaluations of a sweep (design
  points, figure sweep cells, baseline x workload pairs) out over a
  ``multiprocessing`` pool (``jobs`` workers, default ``os.cpu_count()``) and
  falls back to a serial loop for ``jobs=1``;
* every timing estimate goes through a memoizing
  :class:`~repro.core.perf.TimingCache` keyed on
  ``(config-fingerprint, shape, active_nodes, prediction, env)``, so repeated
  shapes across layers, workloads and reruns hit the cache instead of
  re-walking the tile schedule.

Both paths are deterministic and produce bit-identical results: the parallel
pool preserves task order and the workers run exactly the serial code.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.config import MACOConfig
from repro.core.metrics import WorkloadResult
from repro.core.perf import (
    DEFAULT_TIMING_CACHE,
    EfficiencyPoint,
    TimingCache,
    estimate_node_gemm_cached,
)
from repro.gemm.precision import Precision
from repro.gemm.workloads import GEMMShape, GEMMWorkload

__all__ = ["SweepRunner"]


# --------------------------------------------------------------------- workers
#
# Pool workers must be importable module-level functions.  Each receives a
# ``(task, cache)`` payload: the serial path threads the runner's cache
# through so hit statistics are observable; the parallel path passes ``None``
# and each worker process uses the snapshot of the runner's cache installed
# by the pool initializer (falling back to the process-local default cache).
# Entries computed inside workers die with the pool — warm a cache with a
# serial (``jobs=1``) run if you need it populated.

#: Per-worker-process cache installed by :func:`_seed_worker_cache`.
_WORKER_CACHE: Optional[TimingCache] = None


def _seed_worker_cache(cache: Optional[TimingCache]) -> None:
    """Pool initializer: give this worker a snapshot of the runner's cache.

    This keeps parallel sweeps warm regardless of the multiprocessing start
    method (``fork`` inherits parent memory anyway; ``spawn`` would otherwise
    start every worker cold).  The snapshot also becomes this worker's
    process-wide default cache so code that does not take a cache parameter
    (``MACOSystem.run_workload`` and the baselines, used by
    :meth:`SweepRunner.run_workloads`) starts warm too.
    """
    global _WORKER_CACHE
    _WORKER_CACHE = cache
    if cache is not None:
        from repro.core import perf

        perf.DEFAULT_TIMING_CACHE = cache


def _task_cache(cache: Optional[TimingCache]) -> Optional[TimingCache]:
    return cache if cache is not None else _WORKER_CACHE


def _efficiency_worker(payload) -> EfficiencyPoint:
    (config, size, active_nodes, prediction, precision), cache = payload
    shape = GEMMShape(size, size, size, precision)
    timing = estimate_node_gemm_cached(
        config, shape, active_nodes=active_nodes,
        prediction_enabled=prediction, cache=_task_cache(cache),
    )
    return EfficiencyPoint(
        matrix_size=size,
        active_nodes=active_nodes,
        prediction_enabled=prediction,
        efficiency=timing.efficiency,
        gflops=timing.achieved_gflops * active_nodes,
        seconds=timing.seconds,
    )


def _evaluate_worker(payload):
    (base_config, point, workload), cache = payload
    from repro.core.explorer import DesignSpaceExplorer

    return DesignSpaceExplorer(base_config).evaluate(point, workload, cache=_task_cache(cache))


def _evaluate_graph_worker(payload):
    (base_config, point, graph, parallelism), cache = payload
    from repro.core.explorer import DesignSpaceExplorer

    return DesignSpaceExplorer(base_config).evaluate_graph(
        point, graph, cache=_task_cache(cache), parallelism=parallelism)


def _parallel_plan_worker(payload):
    """Pool worker: shard one graph under one parallelism spec."""
    (config, graph, spec), cache = payload
    from repro.parallel import plan_parallel

    return plan_parallel(graph, config, spec, cache=_task_cache(cache))


def _workload_worker(payload) -> WorkloadResult:
    (system_cls, config, workload, num_nodes), _cache = payload
    return system_cls(config).run_workload(workload, num_nodes=num_nodes)


class SweepRunner:
    """Runs sweep evaluations over a worker pool, backed by a timing cache.

    ``jobs`` is the worker-process count (default ``os.cpu_count()``); with
    ``jobs=1`` everything runs serially in-process through ``cache`` (default:
    the process-wide cache), which keeps single-shot library calls free of
    pool overhead while still memoizing repeated shapes.

    Cache semantics: serial runs read and populate ``cache`` directly, so hit
    statistics are observable and reruns are warm.  Parallel runs seed every
    worker with a snapshot of ``cache`` (so a serially warmed cache speeds the
    pool up on any start method), but entries computed inside workers are not
    merged back into the parent.
    """

    def __init__(self, jobs: Optional[int] = None, cache: Optional[TimingCache] = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.cache = cache if cache is not None else DEFAULT_TIMING_CACHE

    # ------------------------------------------------------------------ fan-out
    def map(self, worker, tasks: Iterable) -> List:
        """Run ``worker`` over ``tasks``, preserving order.

        Serial when ``jobs == 1`` (or for a single task, where a pool could
        only add overhead); otherwise fans out over a ``multiprocessing`` pool.
        """
        tasks = list(tasks)
        if self.jobs <= 1 or len(tasks) <= 1:
            return [worker((task, self.cache)) for task in tasks]
        processes = min(self.jobs, len(tasks))
        payloads = [(task, None) for task in tasks]
        chunksize = max(1, len(payloads) // (processes * 4))
        with multiprocessing.get_context().Pool(
            processes=processes,
            initializer=_seed_worker_cache,
            initargs=(self.cache,),
        ) as pool:
            return pool.map(worker, payloads, chunksize=chunksize)

    # ------------------------------------------------------------------- sweeps
    def sweep_prediction(
        self,
        config: MACOConfig,
        sizes: Sequence[int],
        precision: Precision = Precision.FP64,
    ) -> List[EfficiencyPoint]:
        """The Fig. 6 sweep: single node, with and without predictive translation."""
        tasks = [
            (config, size, 1, prediction, precision)
            for prediction in (False, True)
            for size in sizes
        ]
        return self.map(_efficiency_worker, tasks)

    def sweep_scalability(
        self,
        config: MACOConfig,
        sizes: Sequence[int],
        node_counts: Sequence[int],
        precision: Precision = Precision.FP64,
    ) -> List[EfficiencyPoint]:
        """The Fig. 7 sweep: independent GEMMs per node count, per-node efficiency."""
        tasks = [
            (config, size, nodes, config.prediction_enabled, precision)
            for nodes in node_counts
            for size in sizes
        ]
        return self.map(_efficiency_worker, tasks)

    def evaluate_points(
        self,
        points: Iterable,
        workload: "GEMMWorkload | GEMMShape",
        base_config: Optional[MACOConfig] = None,
    ) -> List:
        """Evaluate every design point on ``workload`` (input order preserved)."""
        tasks = [(base_config, point, workload) for point in points]
        return self.map(_evaluate_worker, tasks)

    def evaluate_points_on_graph(
        self,
        points: Iterable,
        graph,
        base_config: Optional[MACOConfig] = None,
        parallelism: Optional[str] = None,
    ) -> List:
        """Per-phase evaluation of every design point on a workload graph.

        Returns :class:`~repro.core.explorer.GraphEvaluationResult` objects in
        input order; each phase's distinct shapes are timed once per point and
        scaled by the phase repeat count, so decode-heavy LLM graphs stay
        cheap to sweep.  ``parallelism`` (``"tp:4"``-style) shards the graph
        across a node group at every point instead of the default whole-fleet
        GEMM partitioning.
        """
        tasks = [(base_config, point, graph, parallelism) for point in points]
        return self.map(_evaluate_graph_worker, tasks)

    def sweep_parallelism(
        self,
        config: MACOConfig,
        graph,
        strategies: Sequence[str] = ("tp", "pp"),
        degrees: Sequence[int] = (1, 2, 4, 8),
        specs: Optional[Sequence] = None,
    ) -> List:
        """Plan every sharding of a graph, fanned out over the pool.

        Without ``specs`` the grid is the (strategy, degree) cross product in
        row-major (strategy outer, degree inner) order.  ``specs`` — strings
        or :class:`~repro.parallel.ParallelismSpec` objects, e.g.
        ``["tp:4", "tp2d:2x4"]`` — replaces the cross product, which is how
        grid-shaped ``tp2d`` cells join a sweep.  Returns
        :class:`~repro.parallel.ParallelPlan` objects in input order.  Plans
        are pure functions of their inputs and every timing walk goes through
        the cache, so the serial and pooled paths are bit-identical
        (``repro.cli parallel --jobs`` relies on this).
        """
        from repro.parallel import ParallelismSpec

        if specs is None:
            specs = [
                ParallelismSpec(strategy, degree)
                for strategy in strategies
                for degree in degrees
            ]
        tasks = [(config, graph, str(ParallelismSpec.parse(spec))) for spec in specs]
        return self.map(_parallel_plan_worker, tasks)

    def run_workloads(
        self,
        systems: Sequence,
        workloads: Sequence[GEMMWorkload],
        num_nodes: Optional[int] = None,
    ) -> List[WorkloadResult]:
        """Run every workload on every system (row-major: systems outer).

        ``systems`` entries are either ``(cls, config)`` pairs or instances
        exposing ``.config`` (baseline models, :class:`MACOSystem`); workers
        rebuild the system from its class and configuration, so only the
        (frozen, picklable) configuration crosses the process boundary.

        Unlike the sweep methods, the systems' ``run_workload`` internals do
        not take a cache parameter: they always use the process-wide default
        cache (``repro.core.perf.DEFAULT_TIMING_CACHE``), which the pool
        initializer points at the runner's cache snapshot inside workers.  A
        custom ``cache`` therefore only collects hit statistics here when it
        is also installed as the process default.
        """
        specs: List[Tuple[type, MACOConfig]] = []
        for system in systems:
            if isinstance(system, tuple):
                specs.append(system)
            else:
                specs.append((type(system), system.config))
        tasks = [
            (cls, config, workload, num_nodes)
            for cls, config in specs
            for workload in workloads
        ]
        return self.map(_workload_worker, tasks)
