"""Two-level tiling of GEMM operands, as used by the MACO evaluation.

The paper tiles the output matrix twice (Section V.B.2): a first-level tile of
``<Tr, Tc> = <1024, 1024>`` selects the working set stashed/locked in the L3
cache, and a second-level tile of ``<ttr, ttc> = <64, 64>`` selects the block
that is streamed through the MMAE's A/B/C buffers and the systolic array.
The reduction dimension K is blocked with the second-level factor as well.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.gemm.workloads import GEMMShape


@dataclass(frozen=True)
class TileConfig:
    """Tiling factors for one level of the hierarchy."""

    rows: int
    cols: int
    depth: int = 0  # 0 means "use cols" (square blocking of K)

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0 or self.depth < 0:
            raise ValueError(f"invalid tile config {self}")

    @property
    def k_block(self) -> int:
        return self.depth if self.depth else self.cols


#: First-level tiling used throughout the paper's evaluation.
PAPER_LEVEL1 = TileConfig(rows=1024, cols=1024)
#: Second-level tiling used throughout the paper's evaluation.
PAPER_LEVEL2 = TileConfig(rows=64, cols=64)


@dataclass(frozen=True)
class Tile:
    """A rectangular region of the output matrix plus its K extent."""

    row_start: int
    row_end: int
    col_start: int
    col_end: int
    k_start: int
    k_end: int

    def __post_init__(self) -> None:
        if not (0 <= self.row_start < self.row_end):
            raise ValueError(f"bad row range in {self}")
        if not (0 <= self.col_start < self.col_end):
            raise ValueError(f"bad col range in {self}")
        if not (0 <= self.k_start < self.k_end):
            raise ValueError(f"bad k range in {self}")

    @property
    def rows(self) -> int:
        return self.row_end - self.row_start

    @property
    def cols(self) -> int:
        return self.col_end - self.col_start

    @property
    def depth(self) -> int:
        return self.k_end - self.k_start

    @property
    def macs(self) -> int:
        return self.rows * self.cols * self.depth

    def operand_bytes(self, element_bytes: int) -> Tuple[int, int, int]:
        """Bytes of the A, B and C sub-blocks this tile touches."""
        a_bytes = self.rows * self.depth * element_bytes
        b_bytes = self.depth * self.cols * element_bytes
        c_bytes = self.rows * self.cols * element_bytes
        return a_bytes, b_bytes, c_bytes


def tile_ranges(extent: int, tile: int) -> List[Tuple[int, int]]:
    """Split ``[0, extent)`` into consecutive ranges of at most ``tile`` elements."""
    if extent <= 0:
        raise ValueError(f"extent must be positive, got {extent}")
    if tile <= 0:
        raise ValueError(f"tile must be positive, got {tile}")
    ranges = []
    start = 0
    while start < extent:
        end = min(start + tile, extent)
        ranges.append((start, end))
        start = end
    return ranges


class TwoLevelTiling:
    """Enumerates the two-level tile hierarchy for a GEMM shape.

    The iteration order matches the MACO schedule: first-level tiles of C are
    visited in row-major order; within a first-level tile, K is blocked at the
    first-level granularity and the second-level (ttr, ttc, ttk) blocks stream
    through the systolic array.
    """

    def __init__(
        self,
        shape: GEMMShape,
        level1: TileConfig = PAPER_LEVEL1,
        level2: TileConfig = PAPER_LEVEL2,
    ) -> None:
        if level2.rows > level1.rows or level2.cols > level1.cols:
            raise ValueError("second-level tile must not exceed the first-level tile")
        self.shape = shape
        self.level1 = level1
        self.level2 = level2

    # ------------------------------------------------------------------ counts
    @property
    def level1_grid(self) -> Tuple[int, int, int]:
        """Number of first-level tiles along (M, N, K)."""
        return (
            math.ceil(self.shape.m / self.level1.rows),
            math.ceil(self.shape.n / self.level1.cols),
            math.ceil(self.shape.k / self.level1.k_block),
        )

    @property
    def num_level1_tiles(self) -> int:
        grid_m, grid_n, grid_k = self.level1_grid
        return grid_m * grid_n * grid_k

    def level2_grid(self, tile: Tile) -> Tuple[int, int, int]:
        """Number of second-level tiles along (M, N, K) inside a first-level tile."""
        return (
            math.ceil(tile.rows / self.level2.rows),
            math.ceil(tile.cols / self.level2.cols),
            math.ceil(tile.depth / self.level2.k_block),
        )

    def num_level2_tiles(self, tile: Tile) -> int:
        grid_m, grid_n, grid_k = self.level2_grid(tile)
        return grid_m * grid_n * grid_k

    @property
    def total_level2_tiles(self) -> int:
        return sum(self.num_level2_tiles(tile) for tile in self.level1_tiles())

    # --------------------------------------------------------------- iteration
    def level1_tiles(self) -> Iterator[Tile]:
        """Yield the first-level tiles in schedule order."""
        for row_start, row_end in tile_ranges(self.shape.m, self.level1.rows):
            for col_start, col_end in tile_ranges(self.shape.n, self.level1.cols):
                for k_start, k_end in tile_ranges(self.shape.k, self.level1.k_block):
                    yield Tile(row_start, row_end, col_start, col_end, k_start, k_end)

    def level2_tiles(self, parent: Tile) -> Iterator[Tile]:
        """Yield the second-level tiles of a first-level tile in schedule order."""
        for row_start, row_end in tile_ranges(parent.rows, self.level2.rows):
            for col_start, col_end in tile_ranges(parent.cols, self.level2.cols):
                for k_start, k_end in tile_ranges(parent.depth, self.level2.k_block):
                    yield Tile(
                        parent.row_start + row_start,
                        parent.row_start + row_end,
                        parent.col_start + col_start,
                        parent.col_start + col_end,
                        parent.k_start + k_start,
                        parent.k_start + k_end,
                    )

    # -------------------------------------------------------------- validation
    def check_covers_shape(self) -> bool:
        """True if the level-1 tiles exactly cover the output matrix and K extent."""
        covered_macs = sum(tile.macs for tile in self.level1_tiles())
        return covered_macs == self.shape.macs

    def level1_working_set_bytes(self, tile: Tile) -> int:
        """Bytes of A panel + B panel + C tile held in L3 for one first-level tile."""
        element = self.shape.precision.bytes_per_element
        a_bytes, b_bytes, c_bytes = tile.operand_bytes(element)
        return a_bytes + b_bytes + c_bytes
