"""Tests for the PE, the systolic array model and the cycle-stepped emulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gemm.precision import Precision
from repro.mmae.pe import ProcessingElement
from repro.mmae.systolic_array import SystolicArray, SystolicArrayEmulator


class TestProcessingElement:
    def test_mac_computes_fma(self):
        pe = ProcessingElement(0, 0)
        pe.load_weights([2.0])
        assert pe.mac([3.0], [1.0]) == [7.0]

    def test_lane_count_follows_precision(self):
        pe = ProcessingElement(0, 0, precision=Precision.FP16)
        assert pe.lanes == 4

    def test_simd_mode_processes_all_lanes(self):
        pe = ProcessingElement(0, 0, precision=Precision.FP32)
        pe.load_weights([1.0, 2.0])
        assert pe.mac([3.0, 4.0], [0.0, 0.0]) == [3.0, 8.0]

    def test_wrong_lane_count_rejected(self):
        pe = ProcessingElement(0, 0, precision=Precision.FP32)
        with pytest.raises(ValueError):
            pe.load_weights([1.0])

    def test_mac_without_weights_rejected(self):
        with pytest.raises(RuntimeError):
            ProcessingElement(0, 0).mac([1.0], [0.0])

    def test_set_precision_clears_weights(self):
        pe = ProcessingElement(0, 0)
        pe.load_weights([1.0])
        pe.set_precision(Precision.FP16)
        assert pe.weights == []

    def test_mac_counter(self):
        pe = ProcessingElement(0, 0)
        pe.load_weights([1.0])
        pe.mac([1.0], [0.0])
        pe.mac([1.0], [0.0])
        assert pe.macs_performed == 2


class TestSystolicArrayRates:
    def test_paper_peak_rates(self):
        array = SystolicArray(4, 4, 2.5e9)
        assert array.peak_gflops(Precision.FP64) == pytest.approx(80.0)
        assert array.peak_gflops(Precision.FP32) == pytest.approx(160.0)
        assert array.peak_gflops(Precision.FP16) == pytest.approx(320.0)

    def test_macs_per_cycle_by_mode(self):
        array = SystolicArray(4, 4)
        assert array.macs_per_cycle(Precision.FP64) == 16
        assert array.macs_per_cycle(Precision.FP32) == 32
        assert array.macs_per_cycle(Precision.FP16) == 64

    def test_tile_cycles_at_least_ideal(self):
        array = SystolicArray(4, 4)
        for precision in Precision:
            assert array.tile_cycles(64, 64, 64, precision) >= array.ideal_tile_cycles(64, 64, 64, precision)

    def test_tile_utilization_high_for_paper_tile(self):
        array = SystolicArray(4, 4)
        assert array.tile_utilization(64, 64, 64, Precision.FP64) > 0.95

    def test_simd_modes_need_fewer_cycles(self):
        array = SystolicArray(4, 4)
        fp64 = array.tile_cycles(64, 64, 64, Precision.FP64)
        fp32 = array.tile_cycles(64, 64, 64, Precision.FP32)
        fp16 = array.tile_cycles(64, 64, 64, Precision.FP16)
        assert fp16 < fp32 < fp64

    def test_invalid_tile_rejected(self):
        with pytest.raises(ValueError):
            SystolicArray().tile_cycles(0, 64, 64)


class TestSystolicArrayFunctional:
    def test_tile_matches_numpy_fp64(self, rng):
        array = SystolicArray()
        a = rng.standard_normal((32, 48))
        b = rng.standard_normal((48, 24))
        c = rng.standard_normal((32, 24))
        result = array.compute_tile(a, b, c, Precision.FP64)
        np.testing.assert_allclose(result.output, a @ b + c, rtol=1e-12)

    def test_tile_matches_numpy_fp32_within_tolerance(self, rng):
        array = SystolicArray()
        a = rng.standard_normal((16, 16)).astype(np.float32)
        b = rng.standard_normal((16, 16)).astype(np.float32)
        result = array.compute_tile(a, b, None, Precision.FP32)
        np.testing.assert_allclose(result.output, a.astype(np.float64) @ b.astype(np.float64), rtol=1e-4)

    def test_fp16_accumulates_in_fp32(self, rng):
        array = SystolicArray()
        a = rng.standard_normal((8, 64))
        b = rng.standard_normal((64, 8))
        result = array.compute_tile(a, b, None, Precision.FP16)
        assert result.output.dtype == np.float32
        np.testing.assert_allclose(result.output, a @ b, rtol=5e-2, atol=5e-2)

    def test_mismatched_tiles_rejected(self):
        array = SystolicArray()
        with pytest.raises(ValueError):
            array.compute_tile(np.zeros((4, 5)), np.zeros((6, 4)))

    def test_stats_accumulate(self, rng):
        array = SystolicArray()
        array.compute_tile(rng.standard_normal((8, 8)), rng.standard_normal((8, 8)))
        assert array.total_macs == 8 * 8 * 8
        assert array.total_cycles > 0

    @settings(max_examples=20, deadline=None)
    @given(
        tr=st.integers(1, 24), tk=st.integers(1, 24), tc=st.integers(1, 24),
        seed=st.integers(0, 2**16),
    )
    def test_arbitrary_tile_shapes_match_numpy(self, tr, tk, tc, seed):
        rng = np.random.default_rng(seed)
        array = SystolicArray()
        a = rng.standard_normal((tr, tk))
        b = rng.standard_normal((tk, tc))
        result = array.compute_tile(a, b, None, Precision.FP64)
        np.testing.assert_allclose(result.output, a @ b, rtol=1e-12, atol=1e-12)


class TestSystolicArrayEmulator:
    """The cycle-stepped wavefront must agree with the analytical model."""

    def test_block_result_matches_numpy(self, rng):
        emulator = SystolicArrayEmulator(rows=4, cols=4)
        a = rng.standard_normal((6, 4))
        b = rng.standard_normal((4, 4))
        result = emulator.run_block(a, b)
        np.testing.assert_allclose(result.output, a @ b, rtol=1e-12, atol=1e-12)

    def test_latency_formula(self, rng):
        emulator = SystolicArrayEmulator(rows=4, cols=4)
        tr = 10
        a = rng.standard_normal((tr, 4))
        b = rng.standard_normal((4, 4))
        result = emulator.run_block(a, b)
        assert result.cycles == 4 + 4 + tr - 2

    def test_single_row_stream(self, rng):
        emulator = SystolicArrayEmulator(rows=4, cols=4)
        a = rng.standard_normal((1, 4))
        b = rng.standard_normal((4, 4))
        np.testing.assert_allclose(emulator.run_block(a, b).output, a @ b, rtol=1e-12)

    def test_shape_mismatch_rejected(self):
        emulator = SystolicArrayEmulator(rows=4, cols=4)
        with pytest.raises(ValueError):
            emulator.run_block(np.zeros((4, 3)), np.zeros((4, 4)))

    def test_simd_modes_not_emulated(self):
        emulator = SystolicArrayEmulator(precision=Precision.FP32)
        with pytest.raises(NotImplementedError):
            emulator.run_block(np.zeros((4, 4)), np.zeros((4, 4)))

    def test_different_array_geometry(self, rng):
        emulator = SystolicArrayEmulator(rows=3, cols=5)
        a = rng.standard_normal((7, 3))
        b = rng.standard_normal((3, 5))
        np.testing.assert_allclose(emulator.run_block(a, b).output, a @ b, rtol=1e-12, atol=1e-12)
