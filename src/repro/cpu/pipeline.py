"""A coarse out-of-order pipeline timing model for the CPU core.

MACO's CPU core is a 12+-stage, four-issue, out-of-order superscalar (Table I).
The reproduction does not need instruction-level simulation of the core — the
evaluation only exercises it for (a) issuing MPAIS instructions, (b) running
the scalar/vector GEMM baseline, and (c) running the non-GEMM operators of
GEMM+ workloads — so this model estimates cycles from an instruction mix:
issue-width-limited throughput plus exposed memory latency for the fraction of
loads that miss the cache hierarchy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class InstructionMix:
    """Counts of retired instructions by class."""

    integer_ops: int = 0
    fp_ops: int = 0
    vector_fp_ops: int = 0  # counted in vector instructions, not lanes
    loads: int = 0
    stores: int = 0
    branches: int = 0

    @property
    def total(self) -> int:
        return (
            self.integer_ops
            + self.fp_ops
            + self.vector_fp_ops
            + self.loads
            + self.stores
            + self.branches
        )


@dataclass
class PipelineModel:
    """Estimates execution cycles for an :class:`InstructionMix`."""

    issue_width: int = 4
    pipeline_depth: int = 12
    fp_units: int = 2
    vector_units: int = 2
    load_store_units: int = 2
    branch_mispredict_rate: float = 0.02
    branch_mispredict_penalty: int = 14
    l1_miss_rate: float = 0.03
    l1_miss_penalty: int = 12     # to the private L2
    l2_miss_rate: float = 0.15    # of L1 misses
    l2_miss_penalty: int = 40     # to the L3
    mlp: float = 4.0              # memory-level parallelism of the OoO window

    def __post_init__(self) -> None:
        if self.issue_width <= 0:
            raise ValueError("issue width must be positive")
        if not 0.0 <= self.branch_mispredict_rate <= 1.0:
            raise ValueError("branch mispredict rate must be in [0, 1]")
        if not 0.0 <= self.l1_miss_rate <= 1.0 or not 0.0 <= self.l2_miss_rate <= 1.0:
            raise ValueError("miss rates must be in [0, 1]")
        if self.mlp <= 0:
            raise ValueError("memory-level parallelism must be positive")

    def estimate_cycles(self, mix: InstructionMix) -> int:
        """Lower-bound-plus-stalls cycle estimate for the mix."""
        if mix.total == 0:
            return 0
        # Structural bounds: overall issue width and per-class unit counts.
        issue_bound = mix.total / self.issue_width
        fp_bound = mix.fp_ops / self.fp_units if self.fp_units else 0.0
        vector_bound = mix.vector_fp_ops / self.vector_units if self.vector_units else 0.0
        memory_ops = mix.loads + mix.stores
        lsu_bound = memory_ops / self.load_store_units if self.load_store_units else 0.0
        base = max(issue_bound, fp_bound, vector_bound, lsu_bound)
        # Exposed memory stalls: misses overlap up to the MLP factor.
        l1_misses = mix.loads * self.l1_miss_rate
        l2_misses = l1_misses * self.l2_miss_rate
        memory_stalls = (l1_misses * self.l1_miss_penalty + l2_misses * self.l2_miss_penalty) / self.mlp
        # Branch mispredictions flush the front end.
        branch_stalls = mix.branches * self.branch_mispredict_rate * self.branch_mispredict_penalty
        return int(math.ceil(base + memory_stalls + branch_stalls + self.pipeline_depth))

    def instructions_per_cycle(self, mix: InstructionMix) -> float:
        cycles = self.estimate_cycles(mix)
        return mix.total / cycles if cycles else 0.0

    def breakdown(self, mix: InstructionMix) -> Dict[str, float]:
        """Component-wise cycle contributions (for reports and tests)."""
        l1_misses = mix.loads * self.l1_miss_rate
        l2_misses = l1_misses * self.l2_miss_rate
        return {
            "issue_bound": mix.total / self.issue_width,
            "memory_stalls": (l1_misses * self.l1_miss_penalty + l2_misses * self.l2_miss_penalty) / self.mlp,
            "branch_stalls": mix.branches * self.branch_mispredict_rate * self.branch_mispredict_penalty,
            "pipeline_fill": float(self.pipeline_depth),
        }
