#!/usr/bin/env python
"""Architecture-exploration example: the paper's Fig. 6 and Fig. 7 sweeps.

Sweeps matrix sizes with and without predictive address translation on a
single compute node (Fig. 6), then sweeps the number of compute nodes running
independent GEMM workloads (Fig. 7), printing the per-node computational
efficiency the paper plots.
"""

from repro.analysis import (
    efficiency_by_size,
    efficiency_gap,
    format_percent,
    render_series,
    summarize_scalability,
)
from repro.core import maco_default_config, sweep_prediction, sweep_scalability
from repro.gemm.workloads import FIG6_MATRIX_SIZES, FIG7_MATRIX_SIZES


def main() -> None:
    config = maco_default_config()

    # -------------------------------------------------------------------- Fig. 6
    points = sweep_prediction(config, list(FIG6_MATRIX_SIZES))
    with_prediction = efficiency_by_size(points, prediction_enabled=True)
    without_prediction = efficiency_by_size(points, prediction_enabled=False)
    gaps = efficiency_gap(points)
    print(
        render_series(
            "matrix size",
            list(FIG6_MATRIX_SIZES),
            {
                "with prediction": [with_prediction[s] for s in FIG6_MATRIX_SIZES],
                "without prediction": [without_prediction[s] for s in FIG6_MATRIX_SIZES],
                "gap": [gaps[s] for s in FIG6_MATRIX_SIZES],
            },
            value_formatter=format_percent,
            title="Fig. 6 - computational efficiency with/without predictive address translation",
        )
    )
    print(f"maximum gap: {format_percent(max(gaps.values()))} at size "
          f"{max(gaps, key=gaps.get)}\n")

    # -------------------------------------------------------------------- Fig. 7
    node_counts = [1, 2, 4, 8, 16]
    points = sweep_scalability(config, list(FIG7_MATRIX_SIZES), node_counts)
    series = {}
    for nodes in node_counts:
        by_size = efficiency_by_size(points, active_nodes=nodes)
        series[f"{nodes}-core"] = [by_size[s] for s in FIG7_MATRIX_SIZES]
    print(
        render_series(
            "matrix size",
            list(FIG7_MATRIX_SIZES),
            series,
            value_formatter=format_percent,
            title="Fig. 7 - per-node computational efficiency vs number of compute nodes",
        )
    )
    summary = summarize_scalability(points)
    single = summary[1]["mean"]
    sixteen = summary[16]["mean"]
    print(f"\naverage per-node efficiency: single-core {format_percent(single)}, "
          f"hexadeca-core {format_percent(sixteen)} "
          f"(loss {format_percent(single - sixteen)})")


if __name__ == "__main__":
    main()
