"""Page tables, address spaces and the page-table walker.

MACO runs a modified Linux on the FPGA prototype; for the reproduction we only
need the parts of virtual memory that the MMAE interacts with: per-process
(ASID-tagged) page tables, a frame allocator, and a page-table walker whose
latency is what the mATLB's predictive translation hides (paper Section IV.A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.mem.address import DEFAULT_PAGE_SIZE, page_number, page_offset


class PageFaultError(Exception):
    """Raised when a virtual address has no mapping in the current address space."""

    def __init__(self, asid: int, vaddr: int) -> None:
        super().__init__(f"page fault: ASID {asid}, virtual address {vaddr:#x}")
        self.asid = asid
        self.vaddr = vaddr


@dataclass
class FrameAllocator:
    """Hands out physical frames from a flat physical address space."""

    total_frames: int
    page_size: int = DEFAULT_PAGE_SIZE
    _next_frame: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.total_frames <= 0:
            raise ValueError("total_frames must be positive")

    @property
    def frames_allocated(self) -> int:
        return self._next_frame

    @property
    def frames_free(self) -> int:
        return self.total_frames - self._next_frame

    def allocate(self, count: int = 1) -> list[int]:
        """Allocate ``count`` consecutive physical frame numbers."""
        if count <= 0:
            raise ValueError("count must be positive")
        if self._next_frame + count > self.total_frames:
            raise MemoryError(
                f"out of physical frames: requested {count}, free {self.frames_free}"
            )
        frames = list(range(self._next_frame, self._next_frame + count))
        self._next_frame += count
        return frames


@dataclass
class PageTable:
    """A per-process map from virtual page numbers to physical frame numbers.

    The model is flat but the walker charges the latency of a multi-level walk
    (``levels`` memory accesses), which is what matters for Fig. 6.
    """

    asid: int
    page_size: int = DEFAULT_PAGE_SIZE
    levels: int = 4
    _entries: Dict[int, int] = field(default_factory=dict, init=False)

    def map_page(self, vpn: int, pfn: int) -> None:
        if vpn < 0 or pfn < 0:
            raise ValueError("page numbers must be non-negative")
        self._entries[vpn] = pfn

    def unmap_page(self, vpn: int) -> None:
        self._entries.pop(vpn, None)

    def lookup(self, vpn: int) -> Optional[int]:
        return self._entries.get(vpn)

    def is_mapped(self, vaddr: int) -> bool:
        return page_number(vaddr, self.page_size) in self._entries

    def translate(self, vaddr: int) -> int:
        """Translate a virtual address; raises :class:`PageFaultError` if unmapped."""
        vpn = page_number(vaddr, self.page_size)
        pfn = self._entries.get(vpn)
        if pfn is None:
            raise PageFaultError(self.asid, vaddr)
        return pfn * self.page_size + page_offset(vaddr, self.page_size)

    @property
    def mapped_pages(self) -> int:
        return len(self._entries)


@dataclass
class AddressSpace:
    """An ASID plus its page table and a simple bump allocator for regions."""

    asid: int
    frame_allocator: FrameAllocator
    page_size: int = DEFAULT_PAGE_SIZE
    page_table: PageTable = field(init=False)
    _next_vaddr: int = field(default=0x10_0000, init=False)
    _regions: Dict[str, tuple[int, int]] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        self.page_table = PageTable(asid=self.asid, page_size=self.page_size)

    def allocate_region(self, name: str, size_bytes: int) -> int:
        """Allocate and map a named, page-aligned region; returns its base virtual address."""
        if size_bytes <= 0:
            raise ValueError("region size must be positive")
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        pages = -(-size_bytes // self.page_size)
        base_vaddr = self._next_vaddr
        base_vpn = page_number(base_vaddr, self.page_size)
        frames = self.frame_allocator.allocate(pages)
        for offset, pfn in enumerate(frames):
            self.page_table.map_page(base_vpn + offset, pfn)
        self._next_vaddr += pages * self.page_size
        self._regions[name] = (base_vaddr, size_bytes)
        return base_vaddr

    def region(self, name: str) -> tuple[int, int]:
        """Return ``(base_vaddr, size_bytes)`` of a previously allocated region."""
        if name not in self._regions:
            raise KeyError(f"no region named {name!r}")
        return self._regions[name]

    def regions(self) -> Iterable[str]:
        return self._regions.keys()

    def translate(self, vaddr: int) -> int:
        return self.page_table.translate(vaddr)


@dataclass
class WalkResult:
    """Outcome of a page-table walk."""

    paddr: int
    cycles: int
    memory_accesses: int


class PageTableWalker:
    """Charges the latency of walking a multi-level page table.

    Each level costs one memory access; accesses that hit in the (physically
    tagged) cache hierarchy are cheaper than those that go to DRAM.  The walker
    keeps a small cache of recently used page-table lines to model the common
    case where consecutive walks share upper-level entries.
    """

    def __init__(
        self,
        memory_latency_cycles: int = 160,
        cached_level_latency_cycles: int = 12,
        walk_cache_entries: int = 64,
    ) -> None:
        if memory_latency_cycles <= 0 or cached_level_latency_cycles <= 0:
            raise ValueError("latencies must be positive")
        self.memory_latency_cycles = memory_latency_cycles
        self.cached_level_latency_cycles = cached_level_latency_cycles
        self.walk_cache_entries = walk_cache_entries
        self._walk_cache: Dict[tuple[int, int], bool] = {}
        self.walks_performed = 0
        self.total_walk_cycles = 0

    def walk(self, page_table: PageTable, vaddr: int) -> WalkResult:
        """Walk ``page_table`` for ``vaddr``, returning the translation and its cost."""
        paddr = page_table.translate(vaddr)  # raises PageFaultError if unmapped
        vpn = page_number(vaddr, page_table.page_size)
        cycles = 0
        accesses = 0
        for level in range(page_table.levels):
            # Upper levels cover huge regions, so they almost always hit the walk cache;
            # the leaf level is the one that typically misses for streaming access.
            key = (page_table.asid, vpn >> (9 * (page_table.levels - 1 - level)))
            accesses += 1
            if key in self._walk_cache:
                cycles += self.cached_level_latency_cycles
            else:
                cycles += self.memory_latency_cycles
                self._insert_walk_cache(key)
        self.walks_performed += 1
        self.total_walk_cycles += cycles
        return WalkResult(paddr=paddr, cycles=cycles, memory_accesses=accesses)

    def _insert_walk_cache(self, key: tuple[int, int]) -> None:
        if len(self._walk_cache) >= self.walk_cache_entries:
            # FIFO eviction is good enough for a latency model.
            oldest = next(iter(self._walk_cache))
            del self._walk_cache[oldest]
        self._walk_cache[key] = True

    @property
    def average_walk_cycles(self) -> float:
        return self.total_walk_cycles / self.walks_performed if self.walks_performed else 0.0
