"""Registry of the deep-learning benchmark suite used by Fig. 8."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.gemm.precision import Precision
from repro.gemm.workloads import GEMMWorkload
from repro.workloads.bert import BERT_LARGE, bert_workload
from repro.workloads.gpt3 import gpt3_workload
from repro.workloads.resnet50 import resnet50_workload

_BUILDERS: Dict[str, Callable[..., GEMMWorkload]] = {
    "resnet50": lambda precision: resnet50_workload(batch=8, precision=precision),
    "bert": lambda precision: bert_workload(config=BERT_LARGE, batch=8, seq_len=384, precision=precision),
    "gpt3": lambda precision: gpt3_workload(variant="gpt3-2.7b", batch=4, seq_len=1024,
                                            num_layers=8, precision=precision),
}


def workload_names() -> List[str]:
    """Names of the registered benchmark workloads, sorted."""
    return sorted(_BUILDERS)


def workload_by_name(name: str, precision: Precision = Precision.FP32) -> GEMMWorkload:
    """Build one of the Fig. 8 benchmark workloads by name."""
    key = name.strip().lower()
    if key not in _BUILDERS:
        raise ValueError(f"unknown workload {name!r}; options: {sorted(_BUILDERS)}")
    return _BUILDERS[key](precision)


def dl_benchmark_suite(precision: Precision = Precision.FP32) -> List[GEMMWorkload]:
    """The three Fig. 8 benchmarks (ResNet-50, BERT, GPT-3) in paper order."""
    return [workload_by_name(name, precision) for name in ("resnet50", "bert", "gpt3")]
