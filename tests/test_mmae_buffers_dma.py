"""Tests for the MMAE scratchpad buffers and DMA engines."""

import pytest

from repro.gemm.precision import Precision
from repro.mmae.buffers import BufferAllocationError, BufferSet, ScratchpadBuffer
from repro.mmae.dma import DMAEngine


class TestScratchpadBuffer:
    def test_allocate_and_release(self):
        buffer = ScratchpadBuffer("a", 1024)
        buffer.allocate("tile0", 512)
        assert buffer.used_bytes == 512
        buffer.release("tile0")
        assert buffer.used_bytes == 0

    def test_overflow_rejected(self):
        buffer = ScratchpadBuffer("a", 1024)
        with pytest.raises(BufferAllocationError):
            buffer.allocate("big", 2048)

    def test_duplicate_label_rejected(self):
        buffer = ScratchpadBuffer("a", 1024)
        buffer.allocate("x", 100)
        with pytest.raises(BufferAllocationError):
            buffer.allocate("x", 100)

    def test_release_unknown_label_rejected(self):
        with pytest.raises(BufferAllocationError):
            ScratchpadBuffer("a", 64).release("nope")

    def test_peak_usage_tracked(self):
        buffer = ScratchpadBuffer("a", 1024)
        buffer.allocate("x", 600)
        buffer.release("x")
        buffer.allocate("y", 200)
        assert buffer.peak_used_bytes == 600

    def test_occupancy(self):
        buffer = ScratchpadBuffer("a", 1000)
        buffer.allocate("x", 250)
        assert buffer.occupancy == pytest.approx(0.25)


class TestBufferSet:
    def test_paper_capacity_is_192kb(self):
        assert BufferSet().total_capacity_bytes == 192 * 1024

    def test_paper_tile_fits_fp64(self):
        # The evaluation's second-level tile (64x64 FP64 with K blocked at 64)
        # must fit with double buffering.
        BufferSet().check_tile_fits(64, 64, 64, Precision.FP64, double_buffered=True)

    def test_oversized_tile_rejected(self):
        with pytest.raises(BufferAllocationError):
            BufferSet().check_tile_fits(256, 256, 256, Precision.FP64)

    def test_fp16_allows_larger_tiles_than_fp64(self):
        buffers = BufferSet()
        assert buffers.max_tile_dim(Precision.FP16) >= buffers.max_tile_dim(Precision.FP64)

    def test_max_tile_dim_is_maximal(self):
        buffers = BufferSet()
        dim = buffers.max_tile_dim(Precision.FP64)
        buffers.check_tile_fits(dim, dim, dim, Precision.FP64)
        with pytest.raises(BufferAllocationError):
            buffers.check_tile_fits(dim + 1, dim + 1, dim + 1, Precision.FP64)

    def test_single_buffering_allows_larger_tiles(self):
        buffers = BufferSet()
        assert buffers.max_tile_dim(Precision.FP64, double_buffered=False) >= buffers.max_tile_dim(
            Precision.FP64, double_buffered=True
        )


class TestDMAEngine:
    def test_peak_bandwidth(self):
        engine = DMAEngine(peak_bytes_per_cycle=32.0, frequency_hz=2.5e9)
        assert engine.peak_bandwidth_bytes_per_s == pytest.approx(80e9)

    def test_zero_latency_gives_peak(self):
        engine = DMAEngine()
        assert engine.sustained_bytes_per_cycle(0.0) == engine.peak_bytes_per_cycle

    def test_long_latency_limits_bandwidth(self):
        engine = DMAEngine(max_outstanding_lines=8, line_size=64)
        # 8 outstanding 64-byte lines over a 512-cycle round trip -> 1 B/cycle.
        assert engine.sustained_bytes_per_cycle(512.0) == pytest.approx(1.0)

    def test_sustained_bandwidth_monotone_in_latency(self):
        engine = DMAEngine()
        assert engine.sustained_bytes_per_cycle(400) <= engine.sustained_bytes_per_cycle(100)

    def test_transfer_time_scales_with_size(self):
        engine = DMAEngine()
        small = engine.transfer(1 << 12, round_trip_latency_cycles=100).cycles
        large = engine.transfer(1 << 20, round_trip_latency_cycles=100).cycles
        assert large > small

    def test_transfer_includes_translation_stalls(self):
        engine = DMAEngine()
        result = engine.transfer(4096, translation_stall_cycles=500)
        assert result.total_cycles == result.cycles + 500

    def test_traffic_accounting(self):
        engine = DMAEngine()
        engine.transfer(100)
        engine.transfer(200)
        assert engine.bytes_transferred == 300
        assert engine.transfers == 2

    def test_zero_byte_transfer(self):
        assert DMAEngine().transfer(0).cycles == 0

    def test_negative_transfer_rejected(self):
        with pytest.raises(ValueError):
            DMAEngine().transfer(-1)
