"""MPAIS instruction definitions and register-block parameter packing.

Each MPAIS instruction names a destination register Rd and a base register Rn;
the actual task parameters live in six successive registers Rn..Rn+5 (paper
Section III.B).  The descriptor classes below define how GEMM, move, init and
stash parameters are packed into those six 64-bit registers and unpacked again
by the MMAE's Slave Task Queue.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.gemm.precision import Precision

#: Number of successive parameter registers read by MA_CFG / data-migration ops.
PARAMETER_REGISTERS = 6

_MASK16 = (1 << 16) - 1
_MASK32 = (1 << 32) - 1
_MASK64 = (1 << 64) - 1


class Opcode(enum.Enum):
    """The seven MPAIS instructions (paper Table II)."""

    MA_MOVE = "MA_MOVE"
    MA_INIT = "MA_INIT"
    MA_STASH = "MA_STASH"
    MA_CFG = "MA_CFG"
    MA_READ = "MA_READ"
    MA_STATE = "MA_STATE"
    MA_CLEAR = "MA_CLEAR"


@dataclass(frozen=True)
class InstructionInfo:
    """Catalogue entry mirroring one row of the paper's Table II."""

    opcode: Opcode
    function: str
    description: str
    usage: str


#: The instruction catalogue (paper Table II).
INSTRUCTION_TABLE: Dict[Opcode, InstructionInfo] = {
    Opcode.MA_MOVE: InstructionInfo(
        Opcode.MA_MOVE,
        "Data migration",
        "Copy data from source address to destination address.",
        "MA_MOVE Rd, Rn",
    ),
    Opcode.MA_INIT: InstructionInfo(
        Opcode.MA_INIT,
        "Data migration",
        "Set data in destination space to zeros.",
        "MA_INIT Rd, Rn",
    ),
    Opcode.MA_STASH: InstructionInfo(
        Opcode.MA_STASH,
        "Data migration",
        "Perform data prefetch from the external memory to L3 cache.",
        "MA_STASH Rd, Rn",
    ),
    Opcode.MA_CFG: InstructionInfo(
        Opcode.MA_CFG,
        "GEMM computing",
        "Request an MTQ entry for executing a GEMM task.",
        "MA_CFG Rd, Rn",
    ),
    Opcode.MA_READ: InstructionInfo(
        Opcode.MA_READ,
        "Task management",
        "Obtain the execution state of a certain GEMM task.",
        "MA_READ Rd, Rn",
    ),
    Opcode.MA_STATE: InstructionInfo(
        Opcode.MA_STATE,
        "Task management",
        "Obtain execution state of a certain GEMM task and release the occupied MTQ entry.",
        "MA_STATE Rd, Rn",
    ),
    Opcode.MA_CLEAR: InstructionInfo(
        Opcode.MA_CLEAR,
        "Task management",
        "Clear a certain MTQ entry.",
        "MA_CLEAR, Rn",
    ),
}


@dataclass(frozen=True)
class Instruction:
    """One MPAIS instruction instance: opcode plus Rd / Rn register indices."""

    opcode: Opcode
    rd: int
    rn: int

    def __post_init__(self) -> None:
        for name, index in (("rd", self.rd), ("rn", self.rn)):
            if not 0 <= index <= 31:
                raise ValueError(f"{self.opcode.value}: register {name}={index} out of range 0..31")

    @property
    def uses_parameter_block(self) -> bool:
        """True for instructions that read six successive parameter registers."""
        return self.opcode in (Opcode.MA_MOVE, Opcode.MA_INIT, Opcode.MA_STASH, Opcode.MA_CFG)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.opcode is Opcode.MA_CLEAR:
            return f"{self.opcode.value} X{self.rn}"
        return f"{self.opcode.value} X{self.rd}, X{self.rn}"


def _pack_dims(m: int, n: int, k: int) -> int:
    for name, value in (("m", m), ("n", n), ("k", k)):
        if not 0 < value <= _MASK16:
            raise ValueError(f"dimension {name}={value} does not fit in 16 bits")
    return m | (n << 16) | (k << 32)


def _unpack_dims(word: int) -> tuple[int, int, int]:
    return word & _MASK16, (word >> 16) & _MASK16, (word >> 32) & _MASK16


_PRECISION_CODES = {Precision.FP64: 0, Precision.FP32: 1, Precision.FP16: 2}
_PRECISION_FROM_CODE = {code: precision for precision, code in _PRECISION_CODES.items()}


@dataclass(frozen=True)
class GEMMDescriptor:
    """Parameters of one tile-GEMM task, as packed into Rn..Rn+5 for MA_CFG.

    Register layout (one 64-bit register per line):

    ===========  =======================================================
    Rn + 0       virtual address of matrix A
    Rn + 1       virtual address of matrix B
    Rn + 2       virtual address of matrix C (accumulated in place)
    Rn + 3       packed dimensions M | N<<16 | K<<32
    Rn + 4       packed tiling: tile_rows | tile_cols<<16 | ttr<<32 | ttc<<48
    Rn + 5       precision code | (lda<<8) | (ldb<<24) | (ldc<<40)
    ===========  =======================================================
    """

    addr_a: int
    addr_b: int
    addr_c: int
    m: int
    n: int
    k: int
    precision: Precision = Precision.FP64
    tile_rows: int = 1024
    tile_cols: int = 1024
    ttr: int = 64
    ttc: int = 64
    lda: int = 0  # leading dimensions; 0 means "dense" (lda = k, ldb = n, ldc = n)
    ldb: int = 0
    ldc: int = 0

    def __post_init__(self) -> None:
        for name in ("addr_a", "addr_b", "addr_c"):
            value = getattr(self, name)
            if not 0 <= value <= _MASK64:
                raise ValueError(f"{name}={value:#x} is not a valid 64-bit address")
        for name in ("m", "n", "k"):
            if getattr(self, name) <= 0:
                raise ValueError(f"dimension {name} must be positive")
        for name in ("tile_rows", "tile_cols", "ttr", "ttc"):
            value = getattr(self, name)
            if not 0 < value <= _MASK16:
                raise ValueError(f"{name}={value} must fit in 16 bits and be positive")
        if self.ttr > self.tile_rows or self.ttc > self.tile_cols:
            raise ValueError("second-level tile cannot exceed the first-level tile")

    @property
    def effective_lda(self) -> int:
        return self.lda if self.lda else self.k

    @property
    def effective_ldb(self) -> int:
        return self.ldb if self.ldb else self.n

    @property
    def effective_ldc(self) -> int:
        return self.ldc if self.ldc else self.n

    @property
    def flops(self) -> int:
        return 2 * self.m * self.n * self.k

    def pack(self) -> List[int]:
        """Pack into the six parameter registers."""
        tiling = (
            self.tile_rows
            | (self.tile_cols << 16)
            | (self.ttr << 32)
            | (self.ttc << 48)
        )
        # Leading dimensions are packed as given (0 keeps the "dense" default),
        # so unpacking reproduces the descriptor exactly.
        meta = (
            _PRECISION_CODES[self.precision]
            | ((self.lda & _MASK16) << 8)
            | ((self.ldb & _MASK16) << 24)
            | ((self.ldc & _MASK16) << 40)
        )
        return [
            self.addr_a & _MASK64,
            self.addr_b & _MASK64,
            self.addr_c & _MASK64,
            _pack_dims(self.m, self.n, self.k),
            tiling,
            meta,
        ]

    @classmethod
    def unpack(cls, registers: List[int]) -> "GEMMDescriptor":
        """Reconstruct a descriptor from the six parameter registers."""
        if len(registers) != PARAMETER_REGISTERS:
            raise ValueError(f"expected {PARAMETER_REGISTERS} registers, got {len(registers)}")
        addr_a, addr_b, addr_c, dims, tiling, meta = registers
        m, n, k = _unpack_dims(dims)
        precision_code = meta & 0xFF
        if precision_code not in _PRECISION_FROM_CODE:
            raise ValueError(f"invalid precision code {precision_code}")
        return cls(
            addr_a=addr_a,
            addr_b=addr_b,
            addr_c=addr_c,
            m=m,
            n=n,
            k=k,
            precision=_PRECISION_FROM_CODE[precision_code],
            tile_rows=tiling & _MASK16,
            tile_cols=(tiling >> 16) & _MASK16,
            ttr=(tiling >> 32) & _MASK16,
            ttc=(tiling >> 48) & _MASK16,
            lda=(meta >> 8) & _MASK16,
            ldb=(meta >> 24) & _MASK16,
            ldc=(meta >> 40) & _MASK16,
        )


@dataclass(frozen=True)
class MoveDescriptor:
    """Parameters of an MA_MOVE bulk copy."""

    src_addr: int
    dst_addr: int
    length_bytes: int
    element_bytes: int = 8
    src_stride_bytes: int = 0  # 0 means contiguous
    dst_stride_bytes: int = 0

    def __post_init__(self) -> None:
        if self.length_bytes <= 0:
            raise ValueError("length must be positive")
        if self.element_bytes not in (2, 4, 8):
            raise ValueError("element size must be 2, 4 or 8 bytes")

    def pack(self) -> List[int]:
        return [
            self.src_addr & _MASK64,
            self.dst_addr & _MASK64,
            self.length_bytes & _MASK64,
            self.element_bytes,
            self.src_stride_bytes & _MASK64,
            self.dst_stride_bytes & _MASK64,
        ]

    @classmethod
    def unpack(cls, registers: List[int]) -> "MoveDescriptor":
        if len(registers) != PARAMETER_REGISTERS:
            raise ValueError("expected six parameter registers")
        return cls(
            src_addr=registers[0],
            dst_addr=registers[1],
            length_bytes=registers[2],
            element_bytes=registers[3],
            src_stride_bytes=registers[4],
            dst_stride_bytes=registers[5],
        )


@dataclass(frozen=True)
class InitDescriptor:
    """Parameters of an MA_INIT zero-fill."""

    dst_addr: int
    length_bytes: int
    element_bytes: int = 8

    def __post_init__(self) -> None:
        if self.length_bytes <= 0:
            raise ValueError("length must be positive")

    def pack(self) -> List[int]:
        return [self.dst_addr & _MASK64, self.length_bytes & _MASK64, self.element_bytes, 0, 0, 0]

    @classmethod
    def unpack(cls, registers: List[int]) -> "InitDescriptor":
        if len(registers) != PARAMETER_REGISTERS:
            raise ValueError("expected six parameter registers")
        return cls(dst_addr=registers[0], length_bytes=registers[1], element_bytes=registers[2] or 8)


@dataclass(frozen=True)
class StashDescriptor:
    """Parameters of an MA_STASH prefetch (optionally with L3 locking)."""

    addr: int
    length_bytes: int
    lock: bool = False

    def __post_init__(self) -> None:
        if self.length_bytes <= 0:
            raise ValueError("length must be positive")

    def pack(self) -> List[int]:
        return [self.addr & _MASK64, self.length_bytes & _MASK64, int(self.lock), 0, 0, 0]

    @classmethod
    def unpack(cls, registers: List[int]) -> "StashDescriptor":
        if len(registers) != PARAMETER_REGISTERS:
            raise ValueError("expected six parameter registers")
        return cls(addr=registers[0], length_bytes=registers[1], lock=bool(registers[2]))
