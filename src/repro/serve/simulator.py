"""Trace-driven discrete-event simulation of a multi-tenant MACO serving fleet.

:class:`ServeSimulator` composes the existing machinery into a serving
scenario: arrivals come from a :class:`~repro.serve.trace.RequestTrace`, a
:class:`~repro.serve.scheduler.Scheduler` policy picks the next request each
time a node frees up, and each dispatched request occupies one
:class:`~repro.core.maco.MACOSystem` compute node for its analytically
estimated service time.  Tenant interleaving on a node is charged the
:class:`~repro.cpu.process.ProcessManager` context-switch cost plus an
ASID-flush penalty, and every timing estimate runs through the shared
:class:`~repro.core.perf.TimingCache`, so repeated model shapes are walked
once per process.

Two fidelities coexist (see docs/ARCHITECTURE.md): the event loop itself uses
the analytic timing model — simulating a million-request trace is cheap — and
:meth:`ServeSimulator.functional_smoke` pushes a handful of small GEMMs
through the real MPAIS async path (``MA_CFG``/``MA_READ``/``MA_STATE``) to
prove the dispatch plumbing against the functional machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.batch import SweepRunner, _task_cache
from repro.core.config import MACOConfig, maco_default_config
from repro.core.maco import MACOSystem
from repro.core.mapping import partition_gemm, schedule_gemm_plus
from repro.core.perf import (
    TimingCache,
    estimate_node_gemm_cached,
    memory_environment,
    unmapped_memory_environment,
)
from repro.cpu.core import CPUCore
from repro.cpu.process import Process
from repro.gemm.precision import Precision
from repro.mem.dram import DRAMModel
from repro.serve.report import NodeStats, ServeReport, build_report
from repro.serve.scheduler import Scheduler, scheduler_by_name
from repro.serve.trace import Request, RequestTrace, TenantSpec

__all__ = [
    "TENANT_SWITCH_FLUSH_CYCLES",
    "estimate_phase_service_seconds",
    "estimate_service_seconds",
    "ServeSimulator",
]

#: Extra CPU cycles charged when a node switches tenants, on top of the
#: :class:`~repro.cpu.process.ProcessManager` register save/restore cost:
#: the shootdown of the incoming ASID's stale entries in the 1024-entry
#: shared L2 TLB and the mATLB invalidate (one cycle per entry, conservatively
#: charged in the CPU clock domain).  See DESIGN.md section 7.3.
TENANT_SWITCH_FLUSH_CYCLES = 1024


def estimate_phase_service_seconds(
    config: MACOConfig,
    workload_name: str,
    precision: Precision,
    active_nodes: int,
    cache: Optional[TimingCache] = None,
    parallelism: Optional[str] = None,
    group: Optional[Sequence[int]] = None,
    background: Sequence[Sequence[int]] = (),
) -> List[Tuple[str, float]]:
    """Per-phase analytic service time of one model invocation on one server.

    The request runs alone on its server but shares the memory system with
    the rest of the fleet, so the per-layer GEMM estimates use the
    ``active_nodes``-way contended :func:`~repro.core.perf.memory_environment`
    (the steady-state worst case for a loaded fleet).  Each phase of the
    workload graph is scheduled independently — its GEMM stream on the MMAE,
    its element-wise tail on the node's CPU core, its stash prefetch traffic
    at the node's DRAM bandwidth share, combined through the same
    :func:`~repro.core.mapping.schedule_gemm_plus` overlap model as
    :meth:`~repro.core.maco.MACOSystem.run_workload` — and phases execute in
    order (prefill feeds decode), so the request's service time is the sum.
    A phase times its distinct shapes once and scales by the phase ``repeat``
    count: every decode step after the first reuses the
    :class:`~repro.core.perf.TimingCache` entries of its block.

    With ``parallelism`` (``"tp:4"``-style) the server is a node *group*:
    :func:`repro.parallel.plan_parallel` shards each phase's GEMM stream over
    ``group`` (tensor parallel also divides the element-wise tail and stash
    traffic across the group; a pipeline stage keeps its phases whole), and
    the phase pays its collective-communication seconds — priced on the mesh
    with every ``background`` group's traffic overlaid — on top of the
    overlap schedule.  A ``tp:1`` plan reproduces the single-node estimate
    bit for bit.
    """
    rows, _ = _phase_service_rows(
        config, workload_name, precision, active_nodes, cache=cache,
        parallelism=parallelism, group=group, background=background,
    )
    return [(name, seconds) for name, seconds, _ in rows]


def _phase_service_rows(
    config: MACOConfig,
    workload_name: str,
    precision: Precision,
    active_nodes: int,
    cache: Optional[TimingCache] = None,
    parallelism: Optional[str] = None,
    group: Optional[Sequence[int]] = None,
    background: Sequence[Sequence[int]] = (),
) -> Tuple[List[Tuple[str, float, int]], Optional[str]]:
    """``(phase name, seconds, pipeline stage)`` rows plus the resolved strategy.

    The implementation behind :func:`estimate_phase_service_seconds`; the
    stage index (0 outside pipeline parallelism) lets the simulator compute
    the group's steady-state pipeline interval.
    """
    from repro.workloads.registry import workload_graph_by_name

    graph = workload_graph_by_name(workload_name, precision)
    env = memory_environment(config, active_nodes)
    if not config.mapping_scheme_enabled:
        env = unmapped_memory_environment(env)
    cpu_cfg = config.cpu
    core = CPUCore(
        frequency_hz=cpu_cfg.frequency_hz,
        fmac_lanes=cpu_cfg.fmac_lanes,
        issue_width=cpu_cfg.issue_width,
        memory_bandwidth_bytes_per_s=cpu_cfg.memory_bandwidth_bytes_per_s,
    )
    dram = DRAMModel(config=config.memory.dram)
    stash_bandwidth = dram.effective_bandwidth(active_nodes) / active_nodes

    plan = None
    if parallelism is not None:
        from repro.parallel import plan_parallel

        plan = plan_parallel(
            graph, config, parallelism, group=group, env=env, cache=cache,
            background=background,
        )

    results: List[Tuple[str, float, int]] = []
    for index, phase in enumerate(graph.phases):
        stash_bytes = 0
        for shape in phase.shapes:
            stash_bytes += partition_gemm(shape, 1).stash_bytes
        stash_bytes *= phase.repeat
        comm_seconds = 0.0
        if plan is None:
            gemm_seconds = sum(
                estimate_node_gemm_cached(
                    config, shape, active_nodes=active_nodes, env=env, cache=cache,
                ).seconds
                for shape in phase.shapes
            ) * phase.repeat
            sharers = 1
        else:
            phase_plan = plan.phases[index]
            gemm_seconds = phase_plan.compute_seconds
            comm_seconds = phase_plan.comm_seconds
            # Tensor parallelism shards the tail and stash across the group;
            # a pipeline stage runs its phases whole on one node.
            sharers = len(phase_plan.nodes)
        cpu_seconds = core.run_elementwise(
            phase.non_gemm_flops * phase.repeat, phase.non_gemm_bytes * phase.repeat
        ).seconds / sharers
        schedule = schedule_gemm_plus(
            mmae_seconds=gemm_seconds,
            cpu_seconds=cpu_seconds,
            stash_seconds=stash_bytes / sharers / stash_bandwidth,
            mapping_enabled=config.mapping_scheme_enabled,
        )
        stage = plan.phases[index].stage if plan is not None else 0
        results.append((phase.name, schedule.total_seconds + comm_seconds, stage))
    return results, (plan.strategy if plan is not None else None)


def estimate_service_seconds(
    config: MACOConfig,
    workload_name: str,
    precision: Precision,
    active_nodes: int,
    cache: Optional[TimingCache] = None,
    parallelism: Optional[str] = None,
    group: Optional[Sequence[int]] = None,
    background: Sequence[Sequence[int]] = (),
) -> float:
    """Analytic service time of one model invocation on one server.

    The sum of the per-phase estimates — see
    :func:`estimate_phase_service_seconds` for the contention, overlap and
    sharding models.  For single-phase graphs (``bert``, ``gpt3``) this
    reduces to the flat GEMM-stream estimate of the whole workload;
    multi-phase graphs (``resnet50`` is now one phase per conv stage, LLM
    graphs one per prefill/decode block) schedule each phase's GEMM/CPU/stash
    overlap independently, so their estimates are slightly more conservative
    than the old whole-network overlap (phase boundaries are barriers).
    """
    return sum(
        seconds
        for _, seconds in estimate_phase_service_seconds(
            config, workload_name, precision, active_nodes, cache=cache,
            parallelism=parallelism, group=group, background=background,
        )
    )


def _service_times(
    config: MACOConfig,
    workload_name: str,
    precision: Precision,
    active_nodes: int,
    cache: Optional[TimingCache] = None,
    parallelism: Optional[str] = None,
    group: Optional[Sequence[int]] = None,
    background: Sequence[Sequence[int]] = (),
) -> Tuple[float, float]:
    """``(latency, interval)`` of one request on one server.

    ``latency`` is the end-to-end service time a request observes
    (:func:`estimate_service_seconds`).  ``interval`` is the steady-state
    occupancy the request adds to its server: for pipeline parallelism the
    busiest stage's seconds — back-to-back same-tenant requests overlap
    across stages, so the group admits the next request one interval after
    the last — and simply the latency everywhere else (a node, or a
    tensor-parallel group, is busy for the whole request).
    """
    rows, strategy = _phase_service_rows(
        config, workload_name, precision, active_nodes, cache=cache,
        parallelism=parallelism, group=group, background=background,
    )
    latency = sum(seconds for _, seconds, _ in rows)
    if strategy != "pp":
        return latency, latency
    per_stage: dict = {}
    for _, seconds, stage in rows:
        per_stage[stage] = per_stage.get(stage, 0.0) + seconds
    return latency, max(per_stage.values())


def _service_worker(payload) -> Tuple[float, float]:
    """Pool worker: estimate one server's ``(latency, interval)`` for a workload."""
    (config, workload_name, precision, active_nodes,
     parallelism, group, background), cache = payload
    return _service_times(
        config, workload_name, precision, active_nodes, cache=_task_cache(cache),
        parallelism=parallelism, group=group, background=background,
    )


@dataclass
class _NodeState:
    """Mutable per-server bookkeeping for the event loop.

    ``free_at`` is when the server can *admit* its next request; ``drain_at``
    is when its last request actually finishes.  They coincide except on a
    pipeline-parallel group, which admits a same-tenant request one pipeline
    interval after the last while earlier requests drain through the stages.
    """

    node_id: int
    free_at: float = 0.0
    drain_at: float = 0.0
    busy_s: float = 0.0
    switch_s: float = 0.0
    completed: int = 0
    tenant_switches: int = 0
    last_tenant: Optional[str] = None


class ServeSimulator:
    """Simulates a request trace against a MACO fleet under a dispatch policy.

    ``scheduler`` is a policy name (``fcfs``, ``sjf``, ``rr``); ``jobs`` fans
    the per-workload service estimation out over a
    :class:`~repro.core.batch.SweepRunner` pool (the event loop itself is
    always serial and deterministic, so the report is bit-identical for every
    ``jobs`` setting).

    ``parallelism`` (``"tp:4"``-style, see :mod:`repro.parallel`) shards
    every request across a node *group* instead of serving it on one node:
    the fleet becomes ``num_nodes / degree`` group servers, each request's
    service time reflects sharded execution plus collective communication,
    and the collectives of co-scheduled groups contend for shared mesh links
    (every other group is priced as background traffic — the steady-state
    worst case, consistent with the memory-environment model).  A
    pipeline-parallel group overlaps back-to-back same-tenant requests
    across its stages: it admits the next request one pipeline interval
    after the last, while each request still observes the full stage-sum
    latency (a tenant change waits for the pipeline to drain).  ``tp:1``
    reproduces the unsharded simulation bit for bit.
    """

    def __init__(
        self,
        system: Optional[MACOSystem] = None,
        config: Optional[MACOConfig] = None,
        scheduler: str = "fcfs",
        jobs: Optional[int] = None,
        cache: Optional[TimingCache] = None,
        parallelism: Optional[str] = None,
    ) -> None:
        if system is not None and config is not None:
            raise ValueError("pass either a system or a config, not both")
        if system is None:
            system = MACOSystem(config if config is not None else maco_default_config())
        self.system = system
        self.scheduler_name = scheduler
        self.runner = SweepRunner(jobs=jobs if jobs is not None else 1, cache=cache)
        if parallelism is None:
            self.parallelism = None
            self.groups = [(node,) for node in range(self.system.num_nodes)]
        else:
            from repro.parallel import ParallelismSpec, node_groups

            spec = ParallelismSpec.parse(parallelism)
            self.parallelism = str(spec)
            self.groups = node_groups(self.system.num_nodes, spec.degree)
        self._services: Dict[Tuple[str, Precision, int], Tuple[float, float]] = {}
        # One serving process per (node, tenant): created lazily through the
        # node CPU's ProcessManager so ASIDs and switch accounting are real.
        self._tenant_processes: List[Dict[str, Process]] = [
            {} for _ in range(self.system.num_nodes)
        ]

    @property
    def num_servers(self) -> int:
        """Dispatchable servers: node groups under parallelism, else nodes."""
        return len(self.groups)

    def _background(self, server: int) -> Tuple[Tuple[int, ...], ...]:
        """The other groups, whose collective traffic shares mesh links with ours."""
        if self.parallelism is None:
            return ()
        return tuple(group for index, group in enumerate(self.groups) if index != server)

    # ------------------------------------------------------------ service times
    def service_seconds(
        self,
        workload_name: str,
        precision: Precision = Precision.FP32,
        server: int = 0,
    ) -> float:
        """Memoised per-request service time on one server of this fleet.

        Under parallelism the estimate depends on the group's mesh position
        (its ring shares different links with the background groups), so
        ``server`` selects the group; without parallelism every node is
        identical and the argument is ignored.
        """
        return self._service_pair(workload_name, precision, server)[0]

    def _service_pair(
        self, workload_name: str, precision: Precision, server: int = 0
    ) -> Tuple[float, float]:
        """Memoised ``(latency, interval)`` — see :func:`_service_times`."""
        if self.parallelism is None:
            server = 0
        key = (workload_name, precision, server)
        if key not in self._services:
            self._services[key] = _service_times(
                self.system.config, workload_name, precision,
                active_nodes=self.system.num_nodes, cache=self.runner.cache,
                parallelism=self.parallelism,
                group=self.groups[server] if self.parallelism is not None else None,
                background=self._background(server),
            )
        return self._services[key]

    def phase_profile(
        self, workload_name: str, precision: Precision = Precision.FP32, server: int = 0
    ) -> List[Tuple[str, float]]:
        """Per-phase service seconds of one workload on this fleet.

        The breakdown that :meth:`service_seconds` sums — useful to see why a
        decode-heavy request behaves differently from a prefill-heavy one.
        """
        return estimate_phase_service_seconds(
            self.system.config, workload_name, precision,
            active_nodes=self.system.num_nodes, cache=self.runner.cache,
            parallelism=self.parallelism,
            group=self.groups[server] if self.parallelism is not None else None,
            background=self._background(server),
        )

    def _ensure_services(self, pairs: Sequence[Tuple[str, Precision]]) -> None:
        """Estimate the given (workload, precision) pairs, fanning out over the runner's pool.

        Under parallelism each pair is estimated once per group server (the
        mesh position changes the communication cost); otherwise once.
        """
        ordered = sorted(set(pairs), key=lambda pair: (pair[0], pair[1].name))
        servers = range(self.num_servers) if self.parallelism is not None else (0,)
        missing = [
            (workload, precision, server)
            for workload, precision in ordered
            for server in servers
            if (workload, precision, server) not in self._services
        ]
        if not missing:
            return
        tasks = [
            (self.system.config, workload, precision, self.system.num_nodes,
             self.parallelism,
             self.groups[server] if self.parallelism is not None else None,
             self._background(server))
            for workload, precision, server in missing
        ]
        for key, pair in zip(missing, self.runner.map(_service_worker, tasks)):
            self._services[key] = pair

    def _prepare_services(self, trace: RequestTrace) -> None:
        """Estimate every distinct (workload, precision) in the trace, possibly in parallel."""
        self._ensure_services([(request.workload, request.precision) for request in trace])

    def suggest_rates(
        self,
        specs: Sequence[TenantSpec],
        utilization: float = 0.7,
        precision: Precision = Precision.FP32,
    ) -> List[TenantSpec]:
        """Size each tenant's arrival rate so the fleet runs at ``utilization``.

        Each tenant gets an equal share of the fleet's service capacity:
        ``rate = utilization * nodes / (tenants * mean service seconds)``,
        where the mean service time is weighted by the tenant's workload mix.
        """
        if not 0 < utilization:
            raise ValueError(f"utilization must be positive, got {utilization}")
        # Batch the estimates through the worker pool so --jobs helps here too
        # (this is where a cold simulator computes them in the default CLI path).
        self._ensure_services([
            (workload, precision)
            for spec in specs
            for workload, _ in spec.mean_mix_weights()
        ])
        sized = []
        for spec in specs:
            mean_service = sum(
                weight * self.service_seconds(workload, precision)
                for workload, weight in spec.mean_mix_weights()
            )
            rate = utilization * self.system.num_nodes / (len(specs) * mean_service)
            sized.append(spec.with_rate(rate))
        return sized

    # ------------------------------------------------------- context switching
    def _switch_seconds(self, state: _NodeState, tenant: str) -> float:
        """Charge (and account) the cost of putting ``tenant`` on the server.

        The first tenant a server ever serves is adopted for free (it was
        idle); after that, a tenant change costs the ProcessManager's register
        save/restore plus the ASID flush penalty, both in the CPU clock
        domain.  A node group switches all its nodes concurrently, so the
        group pays one switch cost; the lead node's ProcessManager keeps the
        ASID bookkeeping real.
        """
        lead = self.groups[state.node_id][0]
        node = self.system.node(lead)
        manager = node.cpu.processes
        processes = self._tenant_processes[lead]
        if tenant not in processes:
            processes[tenant] = manager.create_process(f"serve:{tenant}")
        process = processes[tenant]
        if state.last_tenant is None:
            manager.current = process
            return 0.0
        if state.last_tenant == tenant:
            return 0.0
        cycles = manager.switch_to(process.asid) + TENANT_SWITCH_FLUSH_CYCLES
        state.tenant_switches += 1
        return cycles / node.cpu.frequency_hz

    # ------------------------------------------------------------- event loop
    def run(self, trace: RequestTrace) -> ServeReport:
        """Simulate the trace to completion and return the aggregated report.

        Non-preemptive multi-server queue: whenever the earliest-free server
        (a node, or a node group under parallelism) frees up, every request
        that has arrived by then is admitted to the scheduler, the policy
        pops one, and the server is busy for the switch cost plus the service
        estimate.  All tie-breaks are deterministic, so identical traces
        yield bit-identical reports.
        """
        self._prepare_services(trace)
        scheduler: Scheduler = scheduler_by_name(
            self.scheduler_name,
            estimator=lambda request: self.service_seconds(request.workload, request.precision),
        )
        states = [_NodeState(node_id=index) for index in range(self.num_servers)]
        # Defensive sort: RequestTrace is a public dataclass, so a hand-built
        # trace may not arrive ordered; the admission scan below requires it.
        arrivals: List[Request] = sorted(
            trace.requests, key=lambda request: (request.arrival_s, request.request_id))
        completions: List[dict] = []
        index = 0
        # Time-weighted queue-depth integral, sampled at every event.
        last_event_t = 0.0
        depth_area = 0.0
        depth_max = 0

        def advance(now: float, extra_queued: int = 0) -> None:
            nonlocal last_event_t, depth_area
            if now > last_event_t:
                depth_area += (len(scheduler) + extra_queued) * (now - last_event_t)
                last_event_t = now

        while index < len(arrivals) or len(scheduler):
            state = min(states, key=lambda s: (s.free_at, s.node_id))
            # Admit everything that has arrived by the time this node frees.
            while index < len(arrivals) and arrivals[index].arrival_s <= state.free_at:
                advance(arrivals[index].arrival_s)
                scheduler.push(arrivals[index])
                depth_max = max(depth_max, len(scheduler))
                index += 1
            if not len(scheduler):
                # Idle fleet: jump to the next arrival instant (admit ties too).
                now = arrivals[index].arrival_s
                while index < len(arrivals) and arrivals[index].arrival_s <= now:
                    advance(arrivals[index].arrival_s)
                    scheduler.push(arrivals[index])
                    depth_max = max(depth_max, len(scheduler))
                    index += 1
                continue
            request = scheduler.pop()
            start = max(state.free_at, request.arrival_s)
            # A tenant change cannot enter a draining pipeline: the previous
            # tenant's in-flight requests must leave the stages before the
            # ASID switch.  (Outside pipeline parallelism drain_at == free_at,
            # so this is a no-op.)
            if state.last_tenant is not None and state.last_tenant != request.tenant:
                start = max(start, state.drain_at)
            # The popped request stays logically queued until its start time,
            # so count it in the depth integral over (last event, start).
            advance(start, extra_queued=1)
            switch_s = self._switch_seconds(state, request.tenant)
            service_s, interval_s = self._service_pair(
                request.workload, request.precision, server=state.node_id)
            finish = start + switch_s + service_s
            # The server admits its next request one pipeline interval after
            # this one entered; for non-pipelined servers the interval is the
            # full service time and free_at lands exactly on finish.
            state.free_at = start + switch_s + interval_s
            state.drain_at = finish
            state.busy_s += switch_s + interval_s
            state.switch_s += switch_s
            state.completed += 1
            state.last_tenant = request.tenant
            completions.append({
                "tenant": request.tenant,
                "arrival_s": request.arrival_s,
                "start_s": start,
                "finish_s": finish,
                "switch_s": switch_s,
            })

        makespan = max((entry["finish_s"] for entry in completions), default=0.0)
        advance(makespan)
        node_stats = [
            NodeStats(
                node_id=state.node_id,
                completed=state.completed,
                busy_s=state.busy_s,
                utilization=state.busy_s / makespan if makespan else 0.0,
                tenant_switches=state.tenant_switches,
                switch_s=state.switch_s,
            )
            for state in states
        ]
        return build_report(
            trace_name=trace.name,
            scheduler_name=self.scheduler_name,
            num_nodes=self.system.num_nodes,
            completions=completions,
            node_stats=node_stats,
            queue_depth_mean=depth_area / makespan if makespan else 0.0,
            queue_depth_max=depth_max,
        )

    # ------------------------------------------------------- functional check
    def functional_smoke(self, trace: RequestTrace, size: int = 48, max_requests: int = 4) -> int:
        """Drive the first trace requests through the real MPAIS async path.

        For up to ``max_requests`` requests (one small ``size``-cubed FP64
        GEMM each, round-robined across nodes) the smoke test submits via
        ``MA_CFG`` (:meth:`~repro.core.runtime.MACORuntime.gemm_async`), polls
        ``MA_READ``, drains with ``MA_STATE`` and checks the result against
        NumPy.  Returns the number of verified GEMMs; raises on mismatch.
        """
        import numpy as np

        from repro.core.runtime import MACORuntime

        runtime = MACORuntime(system=self.system)
        host = self.system.host_memory
        rng = np.random.default_rng(0)
        verified = 0
        for request in trace.requests[:max_requests]:
            node_id = verified % self.system.num_nodes
            node = self.system.node(node_id)
            # The event loop leaves each node on its last tenant's ASID; the
            # smoke GEMM allocates in the node's default address space, so
            # switch back before submitting.
            if node.cpu.processes.current is not node.default_process:
                node.cpu.switch_process(node.default_process.asid)
            before = set(host.registered_bases())
            a = rng.standard_normal((size, size))
            b = rng.standard_normal((size, size))
            handle = runtime.gemm_async(a, b, node_id=node_id, precision=Precision.FP64)
            runtime.poll(handle)  # MA_READ must not release the entry
            result = runtime.wait(handle)
            if not np.allclose(result, a @ b):
                raise AssertionError(
                    f"functional GEMM mismatch for request {request.request_id} on node {node_id}"
                )
            # Nodes share one host memory but allocate from per-node address
            # spaces with identical bases, so release the scratch operands
            # before the next node reuses the same virtual range.
            for base in set(host.registered_bases()) - before:
                host.unregister(base)
            verified += 1
        return verified
