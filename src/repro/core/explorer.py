"""Design-space exploration utilities.

The paper's title is about *exploring* GEMM acceleration on a loosely-coupled
multi-core processor; this module provides the exploration loop a computer
architect would run on top of the reproduction: sweep architectural knobs
(systolic-array geometry, scratchpad capacity, node count, DMA/NoC provisioning,
clock frequencies), evaluate each candidate on a workload with the same
cycle-approximate model used by the paper's figures, and rank the candidates by
throughput, efficiency, or performance per area/watt.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.config import MACOConfig, maco_default_config
from repro.core.mapping import partition_gemm
from repro.core.perf import TimingCache, estimate_node_gemm_cached, memory_environment
from repro.gemm.precision import Precision
from repro.gemm.tiling import TileConfig
from repro.gemm.workloads import GEMMShape, GEMMWorkload
from repro.mmae.buffers import BufferAllocationError, BufferSet
from repro.workloads.graph import WorkloadGraph


@dataclass(frozen=True)
class DesignPoint:
    """One candidate configuration in the exploration space."""

    name: str
    sa_rows: int = 4
    sa_cols: int = 4
    buffer_kb: int = 64              # per A/B/C buffer
    num_nodes: int = 16
    mmae_frequency_ghz: float = 2.5
    dma_engines: int = 2
    prediction_enabled: bool = True

    def __post_init__(self) -> None:
        if self.sa_rows <= 0 or self.sa_cols <= 0:
            raise ValueError("systolic array dimensions must be positive")
        if self.buffer_kb <= 0 or self.num_nodes <= 0 or self.dma_engines <= 0:
            raise ValueError("buffer size, node count and DMA engines must be positive")
        if self.mmae_frequency_ghz <= 0:
            raise ValueError("frequency must be positive")

    def to_config(self, base: Optional[MACOConfig] = None) -> MACOConfig:
        """Materialise this design point as a full MACO configuration."""
        base = base if base is not None else maco_default_config()
        mmae = replace(
            base.mmae,
            sa_rows=self.sa_rows,
            sa_cols=self.sa_cols,
            a_buffer_bytes=self.buffer_kb * 1024,
            b_buffer_bytes=self.buffer_kb * 1024,
            c_buffer_bytes=self.buffer_kb * 1024,
            frequency_hz=self.mmae_frequency_ghz * 1e9,
            dma_engines=self.dma_engines,
            # First-order area/power scaling: the array grows with the PE count,
            # the buffers with their capacity; the controller/ADE stay fixed.
            area_mm2=base.mmae.area_mm2
            * (0.40 + 0.247 * (self.sa_rows * self.sa_cols) / 16.0 + 0.367 * self.buffer_kb / 64.0),
            power_w=base.mmae.power_w
            * (0.40 + 0.35 * (self.sa_rows * self.sa_cols) / 16.0 + 0.25 * self.buffer_kb / 64.0),
        )
        # The software tiling follows the hardware: the second-level tile is the
        # largest square block the (double-buffered) scratchpads can hold, so a
        # larger buffer buys more on-chip reuse and lower DMA demand.
        buffers = BufferSet(
            a_capacity=mmae.a_buffer_bytes,
            b_capacity=mmae.b_buffer_bytes,
            c_capacity=mmae.c_buffer_bytes,
        )
        fitted = buffers.max_tile_dim(Precision.FP64, double_buffered=True)
        # Prefer at least the systolic-array-friendly 8x8 block, but never a
        # tile the scratchpads cannot actually hold: validate the clamped tile
        # and shrink back to the fitted dimension rather than silently
        # modelling an impossible schedule.
        tile_dim = max(8, fitted)
        try:
            buffers.check_tile_fits(tile_dim, tile_dim, tile_dim, Precision.FP64, double_buffered=True)
        except BufferAllocationError:
            tile_dim = fitted
            try:
                buffers.check_tile_fits(tile_dim, tile_dim, tile_dim, Precision.FP64, double_buffered=True)
            except BufferAllocationError as exc:
                raise ValueError(
                    f"design point {self.name!r}: buffer_kb={self.buffer_kb} cannot hold "
                    f"even a {tile_dim}x{tile_dim} double-buffered FP64 tile"
                ) from exc
        level2 = TileConfig(tile_dim, tile_dim)
        level1 = TileConfig(max(base.level1_tile.rows, tile_dim), max(base.level1_tile.cols, tile_dim))
        return replace(
            base,
            num_nodes=self.num_nodes,
            mmae=mmae,
            level1_tile=level1,
            level2_tile=level2,
            prediction_enabled=self.prediction_enabled,
        )


@dataclass
class EvaluationResult:
    """Outcome of evaluating one design point on a workload."""

    point: DesignPoint
    config: MACOConfig
    seconds: float
    gflops: float
    efficiency: float
    node_area_mm2: float
    node_power_w: float

    @property
    def gflops_per_mm2(self) -> float:
        """Throughput per compute-node area (CPU core + MMAE)."""
        return self.gflops / (self.node_area_mm2 * self.config.num_nodes)

    @property
    def gflops_per_watt(self) -> float:
        """Throughput per compute-node power (CPU core + MMAE)."""
        return self.gflops / (self.node_power_w * self.config.num_nodes)


@dataclass
class PhaseResult:
    """Timing of one workload phase under one design point.

    ``compute_seconds``/``comm_seconds`` split the phase time when the graph
    was evaluated under a parallelism spec; without one the phase is all
    compute and ``comm_seconds`` stays 0.  ``comm_overlapped_seconds`` is the
    slice of ``comm_seconds`` the plan's schedule hid under compute (only
    ``tp2d`` overlaps today), so ``seconds`` pays just the exposed part.
    """

    name: str
    kind: str
    step: int
    repeat: int
    seconds: float
    gflops: float
    efficiency: float
    state_bytes: int
    compute_seconds: float = 0.0
    comm_seconds: float = 0.0
    comm_overlapped_seconds: float = 0.0

    @property
    def comm_exposed_seconds(self) -> float:
        """Communication left on the phase's critical path after overlap."""
        return self.comm_seconds - self.comm_overlapped_seconds


@dataclass
class GraphEvaluationResult:
    """Per-phase and aggregate outcome of one design point on a workload graph.

    ``parallelism`` records the sharding spec (e.g. ``"tp:4"``) the graph was
    evaluated under, or ``None`` for the default whole-fleet partitioning.
    """

    aggregate: EvaluationResult
    phases: List[PhaseResult] = field(default_factory=list)
    parallelism: Optional[str] = None

    @property
    def point(self) -> DesignPoint:
        return self.aggregate.point

    @property
    def bottleneck(self) -> PhaseResult:
        """The phase that dominates the graph's runtime."""
        return max(self.phases, key=lambda phase: phase.seconds)


class DesignSpaceExplorer:
    """Evaluates and ranks design points on a GEMM workload."""

    def __init__(self, base_config: Optional[MACOConfig] = None) -> None:
        self.base_config = base_config if base_config is not None else maco_default_config()

    # ------------------------------------------------------------------ sweeping
    @staticmethod
    def grid(
        sa_dims: Sequence[int] = (2, 4, 8),
        buffer_kbs: Sequence[int] = (32, 64, 128),
        node_counts: Sequence[int] = (4, 8, 16),
        prediction: Sequence[bool] = (True,),
    ) -> List[DesignPoint]:
        """A full-factorial grid of design points over the main knobs."""
        points = []
        for dim, buffer_kb, nodes, pred in itertools.product(sa_dims, buffer_kbs, node_counts, prediction):
            points.append(
                DesignPoint(
                    name=f"sa{dim}x{dim}-buf{buffer_kb}k-n{nodes}{'' if pred else '-nopred'}",
                    sa_rows=dim, sa_cols=dim, buffer_kb=buffer_kb, num_nodes=nodes,
                    prediction_enabled=pred,
                )
            )
        return points

    @staticmethod
    def random_sample(
        count: int,
        sa_dims: Sequence[int] = (2, 4, 8, 16),
        buffer_kbs: Sequence[int] = (16, 32, 64, 128, 256),
        node_counts: Sequence[int] = (1, 2, 4, 8, 16),
        prediction: Sequence[bool] = (True,),
        seed: Optional[int] = None,
    ) -> List[DesignPoint]:
        """``count`` design points sampled uniformly at random from the knobs.

        A full-factorial grid over realistic knob ranges has thousands of
        cells; uniform sampling makes such spaces tractable while remaining
        unbiased.  Deterministic for a given ``seed``.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        rng = random.Random(seed)
        points = []
        for index in range(count):
            dim = rng.choice(list(sa_dims))
            buffer_kb = rng.choice(list(buffer_kbs))
            nodes = rng.choice(list(node_counts))
            pred = rng.choice(list(prediction))
            points.append(
                DesignPoint(
                    name=f"rnd{index:04d}-sa{dim}x{dim}-buf{buffer_kb}k-n{nodes}"
                         f"{'' if pred else '-nopred'}",
                    sa_rows=dim, sa_cols=dim, buffer_kb=buffer_kb, num_nodes=nodes,
                    prediction_enabled=pred,
                )
            )
        return points

    @staticmethod
    def latin_hypercube(
        count: int,
        sa_dims: Sequence[int] = (2, 4, 8, 16),
        buffer_kbs: Sequence[int] = (16, 32, 64, 128, 256),
        node_counts: Sequence[int] = (1, 2, 4, 8, 16),
        prediction: Sequence[bool] = (True,),
        seed: Optional[int] = None,
    ) -> List[DesignPoint]:
        """``count`` design points by Latin-hypercube sampling over the knobs.

        Each knob's range is split into ``count`` strata and every stratum is
        used exactly once (via an independent shuffle per knob), so the sample
        covers each dimension far more evenly than uniform sampling at the
        same budget.  Deterministic for a given ``seed``.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        rng = random.Random(seed)
        columns = []
        for choices in (list(sa_dims), list(buffer_kbs), list(node_counts), list(prediction)):
            strata = [(stratum + rng.random()) / count for stratum in range(count)]
            rng.shuffle(strata)
            columns.append(
                [choices[min(int(u * len(choices)), len(choices) - 1)] for u in strata]
            )
        points = []
        for index, (dim, buffer_kb, nodes, pred) in enumerate(zip(*columns)):
            points.append(
                DesignPoint(
                    name=f"lhs{index:04d}-sa{dim}x{dim}-buf{buffer_kb}k-n{nodes}"
                         f"{'' if pred else '-nopred'}",
                    sa_rows=dim, sa_cols=dim, buffer_kb=buffer_kb, num_nodes=nodes,
                    prediction_enabled=pred,
                )
            )
        return points

    @classmethod
    def sample(
        cls,
        method: str,
        count: int = 32,
        seed: Optional[int] = None,
        **knobs,
    ) -> List[DesignPoint]:
        """Dispatch to a sampling generator by name (``grid``/``random``/``lhs``).

        ``count`` and ``seed`` parameterise the random and Latin-hypercube
        samplers; the full-factorial ``grid`` ignores both (its size is the
        product of the knob domains).
        """
        if method == "grid":
            return cls.grid(**knobs)
        if method == "random":
            return cls.random_sample(count, seed=seed, **knobs)
        if method in ("lhs", "latin-hypercube"):
            return cls.latin_hypercube(count, seed=seed, **knobs)
        raise ValueError(f"unknown sampling method {method!r}; options: grid, random, lhs")

    # ---------------------------------------------------------------- evaluation
    @staticmethod
    def _time_shapes(
        config: MACOConfig,
        shapes: Sequence[GEMMShape],
        env,
        cache: Optional[TimingCache],
    ) -> tuple:
        """Sum the per-layer (slowest-partition) seconds and FLOPs of a GEMM list."""
        total_seconds = 0.0
        total_flops = 0
        for shape in shapes:
            plan = partition_gemm(shape, config.num_nodes)
            layer_seconds = max(
                estimate_node_gemm_cached(
                    config, assignment.shape, active_nodes=config.num_nodes, env=env, cache=cache,
                ).seconds
                for assignment in plan.assignments
            )
            total_seconds += layer_seconds
            total_flops += shape.flops
        return total_seconds, total_flops

    @staticmethod
    def _efficiency(
        config: MACOConfig,
        shapes: Sequence[GEMMShape],
        gflops: float,
        total_seconds: float,
        weights: Optional[Sequence[int]] = None,
    ) -> float:
        """Fraction of peak, weighting each shape by its own precision's peak.

        ``weights`` gives each shape's execution multiplicity (phase repeats);
        the default weighs every shape once.
        """
        precisions = {shape.precision for shape in shapes}
        if len(precisions) == 1:
            peak = config.peak_gflops(next(iter(precisions)))
            return gflops / peak if peak else 0.0
        # Mixed-precision workload: a single peak misreports efficiency
        # (FP16 layers can exceed the FP64 peak).  Accumulate the ideal
        # time of each shape at its own precision's peak instead; for a
        # uniform workload this reduces to gflops / peak.
        if weights is None:
            weights = [1] * len(shapes)
        ideal_seconds = sum(
            weight * shape.flops / (config.peak_gflops(shape.precision) * 1e9)
            for shape, weight in zip(shapes, weights)
            if config.peak_gflops(shape.precision) > 0
        )
        return ideal_seconds / total_seconds if total_seconds > 0 else 0.0

    def evaluate(
        self,
        point: DesignPoint,
        workload: GEMMWorkload | GEMMShape,
        cache: Optional[TimingCache] = None,
    ) -> EvaluationResult:
        """Evaluate one design point on a workload (or a single GEMM shape)."""
        config = point.to_config(self.base_config)
        shapes = [workload] if isinstance(workload, GEMMShape) else list(workload)
        if not shapes:
            raise ValueError("workload has no GEMMs to evaluate")
        env = memory_environment(config, config.num_nodes)
        total_seconds, total_flops = self._time_shapes(config, shapes, env, cache)
        gflops = total_flops / total_seconds / 1e9 if total_seconds > 0 else 0.0
        efficiency = self._efficiency(config, shapes, gflops, total_seconds)
        node_area = config.cpu.area_mm2 + config.mmae.area_mm2
        node_power = config.cpu.power_w + config.mmae.power_w
        return EvaluationResult(
            point=point,
            config=config,
            seconds=total_seconds,
            gflops=gflops,
            efficiency=efficiency,
            node_area_mm2=node_area,
            node_power_w=node_power,
        )

    def evaluate_graph(
        self,
        point: DesignPoint,
        graph: WorkloadGraph,
        cache: Optional[TimingCache] = None,
        parallelism: Optional[str] = None,
    ) -> GraphEvaluationResult:
        """Evaluate one design point per-phase on a workload graph.

        Each phase's distinct shapes are timed once and scaled by its
        ``repeat`` count, so an LLM decode block costs a handful of timing
        walks regardless of how many tokens it folds; repeated shapes across
        phases hit the shared :class:`~repro.core.perf.TimingCache`.
        The aggregate result sums the phase times (phases are sequential and
        data dependent), so per-phase seconds always sum to the aggregate.

        With ``parallelism`` (a :class:`repro.parallel.ParallelismSpec` or a
        ``"tp:4"``-style string) phases are sharded across a node group by
        :func:`repro.parallel.plan_parallel` instead of partitioned across
        the whole fleet, and every phase result carries its compute/
        communication split.
        """
        if parallelism is not None:
            return self._evaluate_graph_parallel(point, graph, cache, parallelism)
        config = point.to_config(self.base_config)
        env = memory_environment(config, config.num_nodes)
        phase_results: List[PhaseResult] = []
        total_seconds = 0.0
        total_flops = 0
        all_shapes: List[GEMMShape] = []
        all_weights: List[int] = []
        for phase in graph.phases:
            once_seconds, once_flops = self._time_shapes(config, phase.shapes, env, cache)
            seconds = once_seconds * phase.repeat
            flops = once_flops * phase.repeat
            gflops = flops / seconds / 1e9 if seconds > 0 else 0.0
            phase_results.append(
                PhaseResult(
                    name=phase.name,
                    kind=phase.kind.value,
                    step=phase.step,
                    repeat=phase.repeat,
                    seconds=seconds,
                    gflops=gflops,
                    efficiency=self._efficiency(
                        config, phase.shapes, gflops, seconds,
                        weights=[phase.repeat] * len(phase.shapes),
                    ),
                    state_bytes=phase.state_bytes,
                    compute_seconds=seconds,
                )
            )
            total_seconds += seconds
            total_flops += flops
            all_shapes.extend(phase.shapes)
            all_weights.extend([phase.repeat] * len(phase.shapes))

        gflops = total_flops / total_seconds / 1e9 if total_seconds > 0 else 0.0
        aggregate = EvaluationResult(
            point=point,
            config=config,
            seconds=total_seconds,
            gflops=gflops,
            efficiency=self._efficiency(config, all_shapes, gflops, total_seconds,
                                        weights=all_weights),
            node_area_mm2=config.cpu.area_mm2 + config.mmae.area_mm2,
            node_power_w=config.cpu.power_w + config.mmae.power_w,
        )
        return GraphEvaluationResult(aggregate=aggregate, phases=phase_results)

    def _evaluate_graph_parallel(
        self,
        point: DesignPoint,
        graph: WorkloadGraph,
        cache: Optional[TimingCache],
        parallelism: str,
    ) -> GraphEvaluationResult:
        """Shard the graph across a node group and report per-phase results.

        The plan comes from :func:`repro.parallel.plan_parallel`: a group of
        ``degree`` nodes executes every phase (tensor parallel) or a stage of
        phases each (pipeline parallel), with collective communication priced
        on the configuration's mesh.  Efficiency is fraction-of-peak over the
        *group* — node-seconds in the denominator — so a plan that buys
        latency with idle shards shows up as lower efficiency.
        """
        from repro.parallel import ParallelismSpec, plan_parallel

        spec = ParallelismSpec.parse(parallelism)
        config = point.to_config(self.base_config)
        plan = plan_parallel(graph, config, spec, cache=cache)
        phase_results: List[PhaseResult] = []
        total_flops = 0
        all_shapes: List[GEMMShape] = []
        all_weights: List[int] = []
        for phase, phase_plan in zip(graph.phases, plan.phases):
            flops = phase.total_gemm_flops
            seconds = phase_plan.seconds
            gflops = flops / seconds / 1e9 if seconds > 0 else 0.0
            busy = len(phase_plan.nodes)
            phase_results.append(
                PhaseResult(
                    name=phase.name,
                    kind=phase.kind.value,
                    step=phase.step,
                    repeat=phase.repeat,
                    seconds=seconds,
                    gflops=gflops,
                    efficiency=self._efficiency(
                        config, phase.shapes, gflops / busy, seconds * busy,
                        weights=[phase.repeat] * len(phase.shapes),
                    ),
                    state_bytes=phase.state_bytes,
                    compute_seconds=phase_plan.compute_seconds,
                    comm_seconds=phase_plan.comm_seconds,
                    comm_overlapped_seconds=phase_plan.comm_overlapped_seconds,
                )
            )
            total_flops += flops
            all_shapes.extend(phase.shapes)
            all_weights.extend([phase.repeat] * len(phase.shapes))

        total_seconds = plan.total_seconds
        gflops = total_flops / total_seconds / 1e9 if total_seconds > 0 else 0.0
        aggregate = EvaluationResult(
            point=point,
            config=config,
            seconds=total_seconds,
            gflops=gflops,
            efficiency=self._efficiency(
                config, all_shapes, gflops / spec.degree, total_seconds * spec.degree,
                weights=all_weights,
            ),
            node_area_mm2=config.cpu.area_mm2 + config.mmae.area_mm2,
            node_power_w=config.cpu.power_w + config.mmae.power_w,
        )
        return GraphEvaluationResult(
            aggregate=aggregate, phases=phase_results, parallelism=str(spec),
        )

    def explore(
        self,
        points: Iterable[DesignPoint],
        workload: GEMMWorkload | GEMMShape,
        objective: Callable[[EvaluationResult], float] | str = "gflops",
        jobs: Optional[int] = None,
        runner: Optional[object] = None,
    ) -> List[EvaluationResult]:
        """Evaluate every point and return the results sorted best-first.

        Evaluations run through a :class:`repro.core.batch.SweepRunner`:
        serial (with the shared timing cache) by default, fanned out over
        ``jobs`` worker processes when requested.  Both paths produce
        bit-identical results.
        """
        key = self._objective(objective)
        from repro.core.batch import SweepRunner

        if runner is None:
            runner = SweepRunner(jobs=jobs if jobs is not None else 1)
        results = runner.evaluate_points(points, workload, base_config=self.base_config)
        return sorted(results, key=key, reverse=True)

    def explore_graph(
        self,
        points: Iterable[DesignPoint],
        graph: WorkloadGraph,
        objective: Callable[[EvaluationResult], float] | str = "gflops",
        jobs: Optional[int] = None,
        runner: Optional[object] = None,
        parallelism: Optional[str] = None,
    ) -> List[GraphEvaluationResult]:
        """Evaluate every point per-phase on a graph, sorted best-first by aggregate.

        Same fan-out semantics as :meth:`explore`; every result carries the
        per-phase breakdown alongside the aggregate used for ranking.
        ``parallelism`` (``"tp:4"``-style) shards the graph across a node
        group at every design point instead of partitioning each GEMM across
        the whole fleet — see :meth:`evaluate_graph`.
        """
        key = self._objective(objective)
        from repro.core.batch import SweepRunner

        if runner is None:
            runner = SweepRunner(jobs=jobs if jobs is not None else 1)
        results = runner.evaluate_points_on_graph(
            points, graph, base_config=self.base_config, parallelism=parallelism)
        return sorted(results, key=lambda result: key(result.aggregate), reverse=True)

    def best(
        self,
        points: Iterable[DesignPoint],
        workload: GEMMWorkload | GEMMShape,
        objective: Callable[[EvaluationResult], float] | str = "gflops",
        jobs: Optional[int] = None,
        runner: Optional[object] = None,
    ) -> EvaluationResult:
        """The best design point under the chosen objective."""
        ranked = self.explore(points, workload, objective, jobs=jobs, runner=runner)
        return ranked[0]

    @staticmethod
    def _objective(objective: Callable[[EvaluationResult], float] | str) -> Callable[[EvaluationResult], float]:
        if callable(objective):
            return objective
        known: Dict[str, Callable[[EvaluationResult], float]] = {
            "gflops": lambda r: r.gflops,
            "efficiency": lambda r: r.efficiency,
            "gflops_per_mm2": lambda r: r.gflops_per_mm2,
            "gflops_per_watt": lambda r: r.gflops_per_watt,
        }
        if objective not in known:
            raise ValueError(f"unknown objective {objective!r}; options: {sorted(known)}")
        return known[objective]


def pareto_front(
    results: Sequence[EvaluationResult],
    metrics: Sequence[Callable[[EvaluationResult], float]] = (
        lambda r: r.gflops,
        lambda r: r.gflops_per_watt,
    ),
) -> List[EvaluationResult]:
    """The subset of results not dominated on all of the given metrics.

    A result is dominated when another scores at least as well on every
    metric and strictly better on at least one; ties (identical score
    vectors) do not dominate each other.  Results are returned in input
    order.  The common two-metric case runs as an O(n log n) sort-based
    skyline scan; other metric counts fall back to pairwise checks.
    """
    results = list(results)
    scores = [tuple(metric(result) for metric in metrics) for result in results]

    if len(metrics) == 2:
        # Sort by (x desc, y desc); scanning in that order, a point is on the
        # front iff its y exceeds the best y seen so far, or it exactly ties
        # the score vector that last raised the best y (a duplicate, which by
        # definition is not strictly dominated).
        order = sorted(range(len(results)), key=lambda i: scores[i], reverse=True)
        keep: List[int] = []
        best: Optional[tuple] = None
        for index in order:
            x, y = scores[index]
            if best is None or y > best[1]:
                keep.append(index)
                best = (x, y)
            elif y == best[1] and x == best[0]:
                keep.append(index)
        return [results[index] for index in sorted(keep)]

    front = []
    for index, candidate_scores in enumerate(scores):
        dominated = False
        for other_index, other_scores in enumerate(scores):
            if other_index == index:
                continue
            if all(o >= c for o, c in zip(other_scores, candidate_scores)) and any(
                o > c for o, c in zip(other_scores, candidate_scores)
            ):
                dominated = True
                break
        if not dominated:
            front.append(results[index])
    return front
