"""Multi-node parallel execution: partitioner, collectives, and their consumers.

The two contracts the model stakes out (docs/PARALLELISM.md):

* **conservation** — tensor-parallel sharding neither creates nor destroys
  compute: with communication zeroed, per-node compute seconds sum to the
  unsharded phase, for every catalog workload;
* **degree-1 identity** — a ``tp:1`` plan, an explorer evaluation under
  ``tp:1`` and a ``serve --parallel tp:1`` simulation are all bit-identical
  to their unsharded counterparts.

Plus the collective cost model's invariants, pipeline staging, and the
determinism of every parallel consumer across ``--jobs``.
"""

import json

import pytest

from repro.core import DesignSpaceExplorer, SweepRunner, maco_default_config
from repro.core.explorer import DesignPoint
from repro.core.perf import TimingCache, memory_environment
from repro.gemm.precision import Precision
from repro.parallel import (
    DEFAULT_GATHER_ASYMMETRY,
    OVERHEAD_COMPONENT_SHARES,
    PARALLEL_STRATEGIES,
    PARALLELISM_STRATEGIES,
    CollectiveCostModel,
    ParallelismSpec,
    calibrate_overhead_factor,
    node_groups,
    plan_parallel,
    summa_grid,
    summa_pipeline_seconds,
    summa_steps,
)
from repro.workloads import workload_catalog, workload_graph_by_name

#: Small graphs that still exercise every phase kind (fast to time).
SMALL_LLM = "llama-7b@decode,layers=2,decode=16,block=8"
SMALL_MIXED = "llama-7b@batch=2,layers=2,decode=8,block=8"


# ``default_config``/``timing_cache`` come from conftest.py (session-scoped,
# shared with every other parallel-plan consumer); alias them to the short
# names this module's tests use throughout.
@pytest.fixture(scope="module")
def config(default_config):
    return default_config


@pytest.fixture(scope="module")
def cache(timing_cache):
    return timing_cache


class TestParallelismSpec:
    def test_parse_and_str_round_trip(self):
        spec = ParallelismSpec.parse("tp:4")
        assert (spec.strategy, spec.degree) == ("tp", 4)
        assert str(spec) == "tp:4"
        assert ParallelismSpec.parse(spec) is spec

    @pytest.mark.parametrize("text", ["tp", "tp:", ":4", "tp:four", "dp:2", "tp:0"])
    def test_malformed_specs_fail_loudly(self, text):
        with pytest.raises(ValueError):
            ParallelismSpec.parse(text)

    def test_strategies_are_the_documented_quartet(self):
        assert sorted(PARALLEL_STRATEGIES) == ["auto", "pp", "tp", "tp2d"]
        assert tuple(PARALLELISM_STRATEGIES) == PARALLEL_STRATEGIES

    def test_registry_examples_parse_back_to_their_strategy(self):
        for name, info in PARALLELISM_STRATEGIES.items():
            assert info.name == name
            assert info.summary
            spec = ParallelismSpec.parse(info.spec_example)
            assert spec.strategy == name

    def test_tp2d_grid_round_trips(self):
        spec = ParallelismSpec.parse("tp2d:2x4")
        assert (spec.strategy, spec.degree, spec.grid) == ("tp2d", 8, (2, 4))
        assert str(spec) == "tp2d:2x4"
        assert ParallelismSpec.parse(str(spec)) == spec

    def test_grid_constructor_derives_the_degree(self):
        assert ParallelismSpec("tp2d", grid=(3, 2)).degree == 6
        assert ParallelismSpec("tp2d", degree=6, grid=(3, 2)).grid == (3, 2)
        with pytest.raises(ValueError, match="contradicts"):
            ParallelismSpec("tp2d", degree=5, grid=(3, 2))
        with pytest.raises(ValueError, match="plain degree"):
            ParallelismSpec("tp", degree=4, grid=(2, 2))

    @pytest.mark.parametrize(
        "text", ["tp2d:4", "tp2d:", "tp2d:0x4", "tp2d:2x", "tp2d:axb", "tp:2x2"])
    def test_malformed_grid_specs_fail_loudly(self, text):
        with pytest.raises(ValueError):
            ParallelismSpec.parse(text)

    def test_grid_errors_name_the_expected_shape(self):
        with pytest.raises(ValueError, match="RxC grid"):
            ParallelismSpec.parse("tp2d:4")
        with pytest.raises(ValueError, match=">= 1"):
            ParallelismSpec.parse("tp2d:0x4")
        with pytest.raises(ValueError, match="not an RxC grid"):
            ParallelismSpec.parse("tp:2x2")


class TestNodeGroups:
    def test_contiguous_even_partition(self):
        assert node_groups(8, 4) == [(0, 1, 2, 3), (4, 5, 6, 7)]
        assert node_groups(4, 1) == [(0,), (1,), (2,), (3,)]

    def test_uneven_fleet_rejected(self):
        with pytest.raises(ValueError, match="divide"):
            node_groups(6, 4)
        with pytest.raises(ValueError):
            node_groups(2, 4)


class TestCollectiveCostModel:
    def test_single_node_group_communicates_nothing(self):
        model = CollectiveCostModel()
        assert model.ring_allreduce_seconds([0], 1 << 20) == 0.0
        assert model.all_gather_seconds([3], 1 << 20) == 0.0
        assert model.point_to_point_seconds(2, 2, 1 << 20) == 0.0

    def test_allreduce_is_exactly_twice_allgather(self):
        model = CollectiveCostModel()
        group = [0, 1, 2, 3]
        payload = 64 << 20
        assert model.ring_allreduce_seconds(group, payload) == pytest.approx(
            2 * model.all_gather_seconds(group, payload), rel=1e-12)

    def test_cost_scales_with_payload(self):
        model = CollectiveCostModel()
        group = [0, 1, 4, 5]
        small = model.ring_allreduce_seconds(group, 1 << 20)
        large = model.ring_allreduce_seconds(group, 64 << 20)
        assert large > small > 0.0

    def test_background_groups_slow_shared_links(self):
        model = CollectiveCostModel()
        # Row 0 and row 1 rings share no mesh links, but the full-row group
        # 0..7 wraps through both rows and contends with itself regardless.
        quiet = model.ring_allreduce_seconds([0, 1, 2, 3], 16 << 20)
        contended = model.ring_allreduce_seconds(
            [0, 1, 2, 3], 16 << 20, background=[[8, 9, 12, 13]])
        assert contended >= quiet
        # A background ring using our row's horizontal links must cost more
        # (its 1 -> 2 edge rides the same (1, 2) link as ours).
        overlapping = model.ring_allreduce_seconds(
            [0, 1, 2, 3], 16 << 20, background=[[1, 2, 6, 5]])
        assert overlapping > quiet

    def test_point_to_point_grows_with_distance(self):
        model = CollectiveCostModel()
        near = model.point_to_point_seconds(0, 1, 8 << 20)
        far = model.point_to_point_seconds(0, 15, 8 << 20)
        assert far > near > 0.0

    def test_invalid_groups_rejected(self):
        model = CollectiveCostModel()
        with pytest.raises(ValueError):
            model.ring_allreduce_seconds([], 1024)
        with pytest.raises(ValueError):
            model.ring_allreduce_seconds([0, 0, 1], 1024)
        with pytest.raises(ValueError):
            model.ring_allreduce_seconds([0, 99], 1024)

    def test_chain_drops_the_ring_wraparound_edge(self):
        model = CollectiveCostModel()
        assert model.chain_edges([0, 1, 2, 3]) == [(0, 1), (1, 2), (2, 3)]
        assert model.chain_edges([5]) == []
        assert model.ring_edges([0, 1, 2, 3]) == [(0, 1), (1, 2), (2, 3), (3, 0)]

    def test_multicast_prices_concurrent_chains(self):
        model = CollectiveCostModel()
        payload = 16 << 20
        quiet = model.multicast_seconds([[0, 1, 2, 3]], payload)
        assert quiet > 0.0
        # Singleton chains and empty payloads move nothing.
        assert model.multicast_seconds([[5]], payload) == 0.0
        assert model.multicast_seconds([[0, 1, 2, 3]], 0) == 0.0
        # A background ring on the same row links slows the chain down.
        contended = model.multicast_seconds([[0, 1, 2, 3]], payload,
                                            background=[[0, 1, 2, 3]])
        assert contended > quiet

    def test_gather_asymmetry_defaults_to_the_measured_ratio(self):
        assert CollectiveCostModel().gather_asymmetry == DEFAULT_GATHER_ASYMMETRY == 2.9
        with pytest.raises(ValueError, match="gather_asymmetry"):
            CollectiveCostModel(gather_asymmetry=0.0)

    def test_symmetric_gather_degenerates_to_all_gather(self):
        model = CollectiveCostModel(gather_asymmetry=1.0)
        group = [0, 1, 2, 3]
        payload = 32 << 20
        assert model.gather_seconds(group, payload) == \
            model.all_gather_seconds(group, payload)
        assert model.gather_seconds([3], payload) == 0.0

    def test_gather_asymmetry_scales_only_the_serialization_term(self):
        group = [0, 1, 2, 3]
        payload = 32 << 20
        seconds = {
            asymmetry: CollectiveCostModel(gather_asymmetry=asymmetry)
            .gather_seconds(group, payload)
            for asymmetry in (1.0, 2.0, 3.0)
        }
        assert seconds[3.0] > seconds[2.0] > seconds[1.0] > 0.0
        # Cost is affine in the asymmetry (the router-latency intercept is
        # direction-agnostic), so equal knob steps add equal serialization.
        assert seconds[3.0] - seconds[2.0] == pytest.approx(
            seconds[2.0] - seconds[1.0], rel=1e-12)


class TestSummaPrimitives:
    def test_grid_rows_and_columns_partition_the_group(self):
        grid_rows, grid_cols = summa_grid(range(8), 2, 4)
        assert grid_rows == [(0, 1, 2, 3), (4, 5, 6, 7)]
        assert grid_cols == [(0, 4), (1, 5), (2, 6), (3, 7)]

    def test_grid_shape_must_match_the_group(self):
        with pytest.raises(ValueError):
            summa_grid(range(8), 2, 3)
        with pytest.raises(ValueError):
            summa_grid(range(4), 0, 4)

    def test_steps_walk_the_lcm_of_the_grid(self):
        assert summa_steps(1, 1) == 1
        assert summa_steps(2, 4) == 4
        assert summa_steps(2, 3) == 6
        assert summa_steps(3, 3) == 3
        with pytest.raises(ValueError):
            summa_steps(0, 4)

    def test_pipeline_hides_the_shorter_side(self):
        # Compute-dominated: only one step's broadcast stays exposed.
        assert summa_pipeline_seconds(8.0, 2.0, 4) == pytest.approx(8.0 + 2.0 / 4)
        # Comm-dominated: the roles flip and a compute tail is exposed.
        assert summa_pipeline_seconds(2.0, 8.0, 4) == pytest.approx(8.0 + 2.0 / 4)

    def test_pipeline_bounded_by_both_sides_and_the_serial_sum(self):
        for compute, broadcast, steps in [(1.0, 1.0, 1), (0.3, 5.0, 6), (5.0, 0.3, 6)]:
            pipelined = summa_pipeline_seconds(compute, broadcast, steps)
            assert pipelined >= max(compute, broadcast)
            assert pipelined <= compute + broadcast

    def test_zero_broadcast_is_exactly_the_compute(self):
        assert summa_pipeline_seconds(3.0, 0.0, 4) == 3.0
        # A single step cannot overlap anything: the sum is serial.
        assert summa_pipeline_seconds(2.0, 3.0, 1) == pytest.approx(5.0)


class TestOverheadCalibration:
    def test_component_shares_cover_the_whole_overhead(self):
        names = [name for name, _ in OVERHEAD_COMPONENT_SHARES]
        assert names == ["loop_control", "memory_ops", "pipeline_stalls"]
        assert sum(share for _, share in OVERHEAD_COMPONENT_SHARES) == pytest.approx(1.0)

    def test_factor_comes_from_the_functional_path(self):
        breakdown = calibrate_overhead_factor(4, 4)
        assert breakdown.factor > 1.0
        components = breakdown.component_factors()
        assert set(components) == {"loop_control", "memory_ops", "pipeline_stalls"}
        assert sum(components.values()) == pytest.approx(breakdown.factor - 1.0)
        payload = breakdown.to_dict()
        assert payload["factor"] == breakdown.factor

    def test_calibration_is_memoized(self):
        assert calibrate_overhead_factor(4, 4) is calibrate_overhead_factor(4, 4)


class TestTensorParallelConservation:
    """The satellite property test: sharding conserves compute exactly."""

    @pytest.mark.parametrize("name", workload_catalog())
    @pytest.mark.parametrize("degree", [2, 3, 4])
    def test_sharded_cycles_sum_to_unsharded_phase(self, name, degree, config, cache):
        graph = workload_graph_by_name(name, Precision.FP32)
        plan = plan_parallel(graph, config, ParallelismSpec("tp", degree),
                             cache=cache, include_communication=False)
        assert len(plan.phases) == len(graph.phases)
        for phase_plan in plan.phases:
            assert phase_plan.comm_seconds == 0.0
            assert phase_plan.collective == "none"
            total = sum(phase_plan.node_compute_seconds)
            assert total == pytest.approx(phase_plan.unsharded_seconds, rel=1e-9)

    @pytest.mark.parametrize("name", workload_catalog())
    def test_unsharded_reference_is_independent(self, name, config, cache):
        """The plan's unsharded seconds match a from-scratch estimate."""
        from repro.core.perf import estimate_node_gemm_cached

        graph = workload_graph_by_name(name, Precision.FP32)
        degree = 4
        env = memory_environment(config, degree)
        plan = plan_parallel(graph, config, ParallelismSpec("tp", degree),
                             cache=cache, include_communication=False)
        for phase, phase_plan in zip(graph.phases, plan.phases):
            expected = sum(
                estimate_node_gemm_cached(config, shape, env=env, cache=cache).seconds
                for shape in phase.shapes
            ) * phase.repeat
            assert phase_plan.unsharded_seconds == expected


class TestTensorParallelPlan:
    def test_degree_one_is_bit_identical_to_single_node(self, config, cache):
        graph = workload_graph_by_name(SMALL_LLM)
        plan = plan_parallel(graph, config, "tp:1", cache=cache)
        assert plan.comm_seconds == 0.0
        assert plan.total_seconds == plan.unsharded_seconds
        assert plan.speedup == 1.0
        for phase_plan in plan.phases:
            assert phase_plan.node_compute_seconds == (phase_plan.unsharded_seconds,)

    def test_communication_uses_the_expected_collectives(self, config, cache):
        graph = workload_graph_by_name(SMALL_LLM)
        plan = plan_parallel(graph, config, "tp:4", cache=cache)
        # Decode phases mix N-split projections (all-gather) with K-split
        # attention GEMMs (all-reduce of partials).
        for phase_plan in plan.phases:
            assert phase_plan.comm_seconds > 0.0
            assert "all-gather" in phase_plan.collective
            assert "ring-all-reduce" in phase_plan.collective
            assert phase_plan.comm_bytes > 0

    def test_speedup_grows_with_degree_but_stays_sublinear(self, config, cache):
        graph = workload_graph_by_name(SMALL_LLM)
        seconds = [
            plan_parallel(graph, config, f"tp:{degree}", cache=cache).total_seconds
            for degree in (1, 2, 4)
        ]
        assert seconds[0] > seconds[1] > seconds[2]
        speedup = plan_parallel(graph, config, "tp:4", cache=cache).speedup
        assert 1.0 < speedup <= 4.0

    def test_degree_beyond_config_nodes_rejected(self, cache):
        graph = workload_graph_by_name(SMALL_LLM)
        small = maco_default_config(num_nodes=2)
        with pytest.raises(ValueError, match="exceeds"):
            plan_parallel(graph, small, "tp:4", cache=cache)

    def test_group_size_must_match_degree(self, config, cache):
        graph = workload_graph_by_name(SMALL_LLM)
        with pytest.raises(ValueError, match="degree"):
            plan_parallel(graph, config, "tp:4", group=(0, 1), cache=cache)


class TestSumma2DPlan:
    """SUMMA sharding: conservation, 1x1 identity, and the overlap model."""

    @pytest.mark.parametrize("grid", [(2, 2), (2, 4), (4, 2)])
    def test_sharded_compute_sums_to_unsharded(self, grid, config, cache):
        rows, cols = grid
        graph = workload_graph_by_name(SMALL_MIXED)
        plan = plan_parallel(graph, config, f"tp2d:{rows}x{cols}", cache=cache,
                             include_communication=False)
        assert plan.grid == grid
        assert plan.degree == rows * cols
        for phase_plan in plan.phases:
            assert phase_plan.comm_seconds == 0.0
            total = sum(phase_plan.node_compute_seconds)
            assert total == pytest.approx(phase_plan.unsharded_seconds, rel=1e-9)

    def test_1x1_grid_is_bit_identical_to_unsharded(self, config, cache):
        graph = workload_graph_by_name(SMALL_LLM)
        tp2d = plan_parallel(graph, config, "tp2d:1x1", cache=cache)
        tp = plan_parallel(graph, config, "tp:1", cache=cache)
        assert tp2d.total_seconds == tp.total_seconds == tp2d.unsharded_seconds
        assert tp2d.comm_seconds == 0.0
        for phase_plan in tp2d.phases:
            assert phase_plan.node_compute_seconds == (phase_plan.unsharded_seconds,)
            assert phase_plan.comm_overlapped_seconds == 0.0
            assert phase_plan.collective == "none"

    def test_never_slower_than_the_serial_compute_plus_comm(self, config, cache):
        for name in (SMALL_LLM, SMALL_MIXED):
            graph = workload_graph_by_name(name)
            for spec in ("tp2d:2x2", "tp2d:2x4"):
                plan = plan_parallel(graph, config, spec, cache=cache)
                for phase_plan in plan.phases:
                    serial = phase_plan.compute_seconds + phase_plan.comm_seconds
                    assert phase_plan.seconds <= serial * (1 + 1e-12)

    def test_overlap_split_reconstructs_the_serial_comm(self, config, cache):
        graph = workload_graph_by_name(SMALL_MIXED)
        plan = plan_parallel(graph, config, "tp2d:2x4", cache=cache)
        assert plan.comm_seconds > 0.0
        assert sum(phase.comm_bytes for phase in plan.phases) > 0
        for phase_plan in plan.phases:
            assert phase_plan.comm_overlapped_seconds >= 0.0
            assert phase_plan.comm_overlapped_seconds <= \
                phase_plan.comm_seconds * (1 + 1e-12)
            assert phase_plan.comm_exposed_seconds + phase_plan.comm_overlapped_seconds \
                == pytest.approx(phase_plan.comm_seconds, rel=1e-12)
            assert phase_plan.seconds == pytest.approx(
                phase_plan.compute_seconds + phase_plan.comm_exposed_seconds, rel=1e-12)
            assert "summa-bcast" in phase_plan.collective
            assert "gather" in phase_plan.collective
        # Some broadcast time actually hides under compute somewhere.
        assert plan.comm_overlapped_seconds > 0.0

    def test_degenerate_grids_match_1d_tensor_parallel_compute(self, config, cache):
        # bert's M and N extents both divide by 4, so a 1x4 grid (N split)
        # and a 4x1 grid (M split) each balance like 1-D tp does.
        graph = workload_graph_by_name("bert")
        tp = plan_parallel(graph, config, "tp:4", cache=cache,
                           include_communication=False)
        for spec in ("tp2d:1x4", "tp2d:4x1"):
            plan = plan_parallel(graph, config, spec, cache=cache,
                                 include_communication=False)
            assert plan.total_seconds == pytest.approx(tp.total_seconds, rel=0.05)

    def test_plan_carries_the_calibrated_overhead(self, config, cache):
        graph = workload_graph_by_name(SMALL_LLM)
        plan = plan_parallel(graph, config, "tp2d:2x2", cache=cache)
        assert plan.overhead is not None
        assert plan.overhead.factor > 1.0
        assert plan.spec == ParallelismSpec("tp2d", grid=(2, 2))
        assert plan_parallel(graph, config, "tp:2", cache=cache).overhead is None

    def test_grid_must_fit_the_fleet(self, cache):
        graph = workload_graph_by_name(SMALL_LLM)
        small = maco_default_config(num_nodes=2)
        with pytest.raises(ValueError, match="exceeds"):
            plan_parallel(graph, small, "tp2d:2x2", cache=cache)


class TestPipelineParallelPlan:
    def test_stages_are_contiguous_and_cover_every_phase(self, config, cache):
        graph = workload_graph_by_name(SMALL_MIXED)
        plan = plan_parallel(graph, config, "pp:2", cache=cache)
        stages = [phase_plan.stage for phase_plan in plan.phases]
        assert stages == sorted(stages)
        assert set(stages) == {0, 1}
        # Each phase runs whole on exactly one node of the group.
        for phase_plan in plan.phases:
            assert len(phase_plan.nodes) == 1
            busy = [s for s in phase_plan.node_compute_seconds if s > 0.0]
            assert busy == [phase_plan.unsharded_seconds]

    def test_stage_boundaries_pay_p2p_transfers(self, config, cache):
        graph = workload_graph_by_name(SMALL_MIXED)
        plan = plan_parallel(graph, config, "pp:2", cache=cache)
        boundary = [p for p in plan.phases if p.collective == "p2p"]
        assert len(boundary) == 1  # two stages, one hand-off
        assert boundary[0].comm_seconds > 0.0
        # Latency counts every stage; the interval only the busiest.
        assert plan.pipeline_interval_seconds < plan.total_seconds

    def test_degree_beyond_phase_count_leaves_nodes_idle(self, config, cache):
        graph = workload_graph_by_name("bert")  # single-phase graph
        plan = plan_parallel(graph, config, "pp:4", cache=cache)
        assert [phase.stage for phase in plan.phases] == [0]
        assert plan.total_seconds == plan.unsharded_seconds

    def test_auto_picks_the_lower_latency_plan(self, config, cache):
        graph = workload_graph_by_name(SMALL_LLM)
        auto = plan_parallel(graph, config, "auto:4", cache=cache)
        tp = plan_parallel(graph, config, "tp:4", cache=cache)
        pp = plan_parallel(graph, config, "pp:4", cache=cache)
        assert auto.strategy in ("tp", "pp")
        assert auto.total_seconds == min(tp.total_seconds, pp.total_seconds)


class TestExplorerParallelism:
    def test_degree_one_matches_unsharded_totals(self, cache):
        explorer = DesignSpaceExplorer()
        point = DesignPoint(name="p", num_nodes=4)
        graph = workload_graph_by_name(SMALL_LLM)
        sharded = explorer.evaluate_graph(point, graph, cache=cache, parallelism="tp:1")
        assert sharded.parallelism == "tp:1"
        assert sharded.aggregate.seconds == sum(p.seconds for p in sharded.phases)
        for phase in sharded.phases:
            assert phase.comm_seconds == 0.0
            assert phase.seconds == phase.compute_seconds

    def test_parallel_results_carry_the_comm_split(self, cache):
        explorer = DesignSpaceExplorer()
        point = DesignPoint(name="p", num_nodes=8)
        graph = workload_graph_by_name(SMALL_LLM)
        result = explorer.evaluate_graph(point, graph, cache=cache, parallelism="tp:4")
        for phase in result.phases:
            assert phase.comm_seconds > 0.0
            assert phase.seconds == pytest.approx(
                phase.compute_seconds + phase.comm_seconds, rel=1e-12)
        # Four-way sharding beats a degree-1 group despite the collectives.
        single = explorer.evaluate_graph(point, graph, cache=cache, parallelism="tp:1")
        assert result.aggregate.seconds < single.aggregate.seconds

    def test_explore_graph_parallel_is_bit_identical_across_jobs(self):
        explorer = DesignSpaceExplorer()
        points = [DesignPoint(name=f"n{nodes}", num_nodes=nodes) for nodes in (4, 8, 16)]
        graph = workload_graph_by_name(SMALL_LLM)
        serial = explorer.explore_graph(points, graph, runner=SweepRunner(jobs=1),
                                        parallelism="tp:4")
        pooled = explorer.explore_graph(points, graph, runner=SweepRunner(jobs=2),
                                        parallelism="tp:4")
        assert [repr(result) for result in serial] == [repr(result) for result in pooled]

    def test_sweep_parallelism_orders_cells_row_major(self, config, cache):
        graph = workload_graph_by_name(SMALL_LLM)
        runner = SweepRunner(jobs=1, cache=cache)
        plans = runner.sweep_parallelism(config, graph,
                                         strategies=("tp", "pp"), degrees=(1, 2))
        assert [(plan.strategy, plan.degree) for plan in plans] == [
            ("tp", 1), ("tp", 2), ("pp", 1), ("pp", 2)]

    def test_sweep_parallelism_accepts_explicit_specs(self, config, cache):
        graph = workload_graph_by_name(SMALL_LLM)
        runner = SweepRunner(jobs=1, cache=cache)
        plans = runner.sweep_parallelism(config, graph, specs=("tp:2", "tp2d:2x2"))
        assert [str(plan.spec) for plan in plans] == ["tp:2", "tp2d:2x2"]
        assert plans[1].grid == (2, 2)

    def test_tp2d_results_split_exposed_from_overlapped_comm(self, cache):
        explorer = DesignSpaceExplorer()
        point = DesignPoint(name="p", num_nodes=4)
        graph = workload_graph_by_name(SMALL_MIXED)
        result = explorer.evaluate_graph(point, graph, cache=cache,
                                         parallelism="tp2d:2x2")
        assert result.parallelism == "tp2d:2x2"
        for phase in result.phases:
            assert phase.comm_overlapped_seconds >= 0.0
            assert phase.comm_exposed_seconds == pytest.approx(
                phase.comm_seconds - phase.comm_overlapped_seconds, rel=1e-12)
            assert phase.seconds == pytest.approx(
                phase.compute_seconds + phase.comm_exposed_seconds, rel=1e-12)


class TestServeParallelism:
    def _report_json(self, parallelism, jobs=None):
        from repro.core.maco import MACOSystem
        from repro.serve import ServeSimulator, default_tenants, poisson_trace

        config = maco_default_config(num_nodes=4)
        simulator = ServeSimulator(system=MACOSystem(config), jobs=jobs,
                                   parallelism=parallelism, cache=TimingCache())
        specs = [spec.with_rate(0.5) for spec in default_tenants(2)]
        trace = poisson_trace(specs, duration_s=20.0, seed=11)
        return simulator.run(trace).to_json()

    def test_tp1_is_byte_identical_to_unsharded(self):
        assert self._report_json(None) == self._report_json("tp:1")

    def test_parallel_serving_is_deterministic_across_jobs(self):
        assert self._report_json("tp:2", jobs=1) == self._report_json("tp:2", jobs=2)

    def test_groups_shrink_the_server_count(self):
        report = json.loads(self._report_json("tp:2"))
        assert len(report["nodes"]) == 2  # 4 nodes / degree 2

    def test_uneven_fleet_rejected(self):
        with pytest.raises(ValueError, match="divide"):
            self._report_json("tp:3")

    def test_tp2d_1x1_is_byte_identical_to_unsharded(self):
        assert self._report_json(None) == self._report_json("tp2d:1x1")

    def test_tp2d_serving_is_deterministic_across_jobs(self):
        assert self._report_json("tp2d:2x2", jobs=1) == \
            self._report_json("tp2d:2x2", jobs=2)

    def test_tp2d_groups_shrink_the_server_count(self):
        report = json.loads(self._report_json("tp2d:2x2"))
        assert len(report["nodes"]) == 1  # 4 nodes / (2x2 grid)

    def _pp_simulator(self):
        from repro.core.maco import MACOSystem
        from repro.serve import ServeSimulator

        config = maco_default_config(num_nodes=2)
        # resnet50 is multi-phase, so a pp:2 group has two real stages.
        return ServeSimulator(system=MACOSystem(config), parallelism="pp:2",
                              cache=TimingCache())

    def test_pp_group_pipelines_same_tenant_requests(self):
        from repro.serve import TenantSpec, poisson_trace

        simulator = self._pp_simulator()
        latency, interval = simulator._service_pair("resnet50", Precision.FP32)
        assert interval < latency
        specs = [TenantSpec(name="t0", rate_rps=5.0, mix=(("resnet50", 1.0),))]
        trace = poisson_trace(specs, duration_s=8.0, seed=5)
        report = simulator.run(trace)
        # A saturated single-tenant group admits one request per interval,
        # so the makespan sits well below the no-overlap (latency-serial)
        # bound while every request still observes >= the full latency.
        assert report.makespan_s < 0.9 * len(trace) * latency
        assert report.latency_p50_s >= latency

    def test_pp_tenant_change_waits_for_the_pipeline_to_drain(self):
        from repro.serve.trace import Request, RequestTrace

        simulator = self._pp_simulator()
        latency, interval = simulator._service_pair("resnet50", Precision.FP32)
        requests = [
            Request(request_id=index, tenant=f"t{index}", workload="resnet50",
                    arrival_s=0.0)
            for index in range(3)
        ]
        report = simulator.run(RequestTrace(name="drain", requests=requests))
        # Distinct tenants on one group serialise: each waits for the drain
        # plus an ASID switch, so the makespan is at least three latencies.
        assert report.makespan_s >= 3 * latency


class TestParallelCLI:
    def _run(self, capsys, *argv):
        from repro.cli import main

        assert main(list(argv)) == 0
        return capsys.readouterr().out

    def test_parallel_reports_compute_vs_comm_cycles(self, capsys):
        out = self._run(capsys, "parallel", "--workload", SMALL_LLM,
                        "--strategy", "tp", "--degree", "4", "--format", "json")
        payload = json.loads(out)
        assert payload["phases"], "no phase rows"
        for row in payload["phases"]:
            assert row["strategy"] == "tp" and row["degree"] == 4
            assert row["compute_cycles"] > 0
            assert row["comm_cycles"] > 0
        [summary] = payload["summary"]
        assert summary["speedup"] > 1.0

    def test_parallel_is_byte_identical_across_jobs(self, capsys):
        argv = ("parallel", "--workload", SMALL_LLM, "--strategy", "auto",
                "--degree", "1,2,4", "--format", "json")
        serial = self._run(capsys, *argv, "--jobs", "1")
        pooled = self._run(capsys, *argv, "--jobs", "2")
        assert serial == pooled

    def test_parallel_degree_one_matches_single_node_numbers(self, capsys):
        out = self._run(capsys, "parallel", "--workload", SMALL_LLM,
                        "--strategy", "tp", "--degree", "1", "--format", "json")
        payload = json.loads(out)
        [summary] = payload["summary"]
        assert summary["speedup"] == 1.0
        assert summary["comm_s"] == 0.0
        # The reported total equals an independent single-node estimate.
        graph = workload_graph_by_name(SMALL_LLM)
        expected = plan_parallel(graph, maco_default_config(), "tp:1").total_seconds
        assert summary["total_s"] == expected

    def test_bad_degree_list_is_a_cli_error(self, capsys):
        from repro.cli import main

        assert main(["parallel", "--degree", "4,nope"]) == 2
        assert "--degree" in capsys.readouterr().err

    def test_explore_parallel_filters_small_points(self, capsys):
        from repro.cli import main

        assert main(["explore", "--sample", "random", "--points", "4", "--seed", "1",
                     "--workload", SMALL_LLM, "--parallel", "tp:4",
                     "--format", "csv"]) == 0
        captured = capsys.readouterr()
        assert "design point" in captured.out

    def test_explore_parallel_requires_catalog_workload(self, capsys):
        from repro.cli import main

        assert main(["explore", "--workload", "square", "--parallel", "tp:2"]) == 2
        assert "--parallel" in capsys.readouterr().err

    def test_parallel_spec_flag_plans_mixed_strategies(self, capsys):
        out = self._run(capsys, "parallel", "--workload", SMALL_LLM,
                        "--nodes", "4", "--parallel", "tp:4,tp2d:2x2",
                        "--format", "json")
        payload = json.loads(out)
        assert [row["spec"] for row in payload["summary"]] == ["tp:4", "tp2d:2x2"]
        # Only the SUMMA plan carries a calibrated overhead decomposition.
        [overhead] = payload["overhead"]
        assert overhead["spec"] == "tp2d:2x2"
        assert overhead["factor"] > 1.0
        assert overhead["loop_control"] > 0.0
        tp2d_rows = [row for row in payload["phases"] if row["spec"] == "tp2d:2x2"]
        assert tp2d_rows
        for row in tp2d_rows:
            assert row["overlapped_cycles"] >= 0.0
            assert "summa-bcast" in row["collective"]

    def test_deprecated_flags_warn_once_and_alias_parallel(self, capsys):
        import repro.cli as cli

        cli._DEPRECATION_WARNED.clear()
        argv = ["parallel", "--workload", SMALL_LLM, "--strategy", "tp",
                "--degree", "2", "--format", "json"]
        assert cli.main(argv) == 0
        first = capsys.readouterr()
        assert "deprecated" in first.err
        assert cli.main(argv) == 0
        second = capsys.readouterr()
        assert second.err == ""  # warned once per process, not per run
        assert second.out == first.out
        assert cli.main(["parallel", "--workload", SMALL_LLM,
                         "--parallel", "tp:2", "--format", "json"]) == 0
        direct = json.loads(capsys.readouterr().out)
        assert direct["summary"] == json.loads(first.out)["summary"]

    def test_parallel_flag_conflicts_with_deprecated_aliases(self, capsys):
        from repro.cli import main

        assert main(["parallel", "--workload", SMALL_LLM,
                     "--parallel", "tp:2", "--strategy", "tp"]) == 2
        assert "--parallel replaces" in capsys.readouterr().err

    def test_bad_grid_spec_is_a_cli_error(self, capsys):
        from repro.cli import main

        assert main(["parallel", "--workload", SMALL_LLM,
                     "--parallel", "tp2d:0x4"]) == 2
        assert ">= 1" in capsys.readouterr().err

    def test_serve_accepts_a_grid_spec(self, capsys):
        out = self._run(capsys, "serve", "--tenants", "2", "--requests", "20",
                        "--nodes", "4", "--parallel", "tp2d:2x2",
                        "--format", "json")
        payload = json.loads(out)
        assert len(payload["nodes"]) == 1  # 4 nodes / one 2x2 grid group


class TestPublicExports:
    def test_parallel_package_all_is_importable(self):
        import repro.parallel as parallel

        for name in parallel.__all__:
            assert getattr(parallel, name) is not None
        for name in ("ParallelismSpec", "summa_pipeline_seconds",
                     "calibrate_overhead_factor", "DEFAULT_GATHER_ASYMMETRY"):
            assert name in parallel.__all__

    def test_top_level_exports_resolve_lazily(self):
        import repro

        assert repro.ParallelismSpec is ParallelismSpec
        assert repro.PARALLELISM_STRATEGIES is PARALLELISM_STRATEGIES
        assert "plan_parallel" in dir(repro)
        with pytest.raises(AttributeError):
            repro.not_an_export
