"""Exploration at scale — the parallel, cached SweepRunner on a 120-point space.

The paper's exploration story needs sweep volume (hundreds of design points
per campaign); this harness evaluates a 120-point Latin-hypercube sample of
the architectural knobs through ``SweepRunner`` with ``jobs=4`` and checks the
acceptance property: the parallel pool produces bit-identical
``EvaluationResult`` values to the serial path, while the timing cache removes
the redundant tile-schedule walks a rerun would otherwise pay.
"""

import time

from repro.analysis import format_gflops, format_percent, render_table
from repro.core import (
    DesignSpaceExplorer,
    SweepRunner,
    TimingCache,
    maco_default_config,
    pareto_front,
)
from repro.gemm import GEMMShape
from repro.gemm.workloads import FIG7_MATRIX_SIZES


def test_parallel_explore_bit_identical_on_120_points(benchmark):
    explorer = DesignSpaceExplorer()
    points = DesignSpaceExplorer.latin_hypercube(120, seed=2024)
    shape = GEMMShape(2048, 2048, 2048)

    start = time.perf_counter()
    serial = explorer.explore(points, shape, jobs=1)
    serial_seconds = time.perf_counter() - start

    def parallel():
        return explorer.explore(points, shape, jobs=4)

    results = benchmark.pedantic(parallel, rounds=1, iterations=1, warmup_rounds=0)

    # Acceptance: --jobs 4 is bit-identical to the serial path.
    assert [(r.point, r.seconds, r.gflops, r.efficiency) for r in results] == \
           [(r.point, r.seconds, r.gflops, r.efficiency) for r in serial]

    front = pareto_front(results)
    rows = [
        [r.point.name, format_gflops(r.gflops), format_percent(r.efficiency),
         f"{r.gflops_per_watt:.1f}"]
        for r in results[:5]
    ]
    print("\n" + render_table(
        ["design point", "throughput", "efficiency", "GFLOPS/W"], rows,
        title=f"Top-5 of 120 sampled design points ({len(front)} Pareto-optimal), "
              f"serial reference {serial_seconds * 1e3:.0f} ms",
    ))


def test_fig7_rerun_hits_timing_cache(benchmark):
    """Figure regenerations repeat whole sweeps; the cache makes reruns free."""
    config = maco_default_config()
    sizes = list(FIG7_MATRIX_SIZES)
    node_counts = [1, 2, 4, 8, 16]
    cache = TimingCache()
    runner = SweepRunner(jobs=1, cache=cache)

    start = time.perf_counter()
    cold = runner.sweep_scalability(config, sizes, node_counts)
    cold_seconds = time.perf_counter() - start

    warm = benchmark.pedantic(
        lambda: runner.sweep_scalability(config, sizes, node_counts),
        rounds=1, iterations=1, warmup_rounds=0)

    assert warm == cold  # cache returns bit-identical sweep points
    assert cache.hits >= len(sizes) * len(node_counts)
    print(f"\nFig. 7 sweep: cold {cold_seconds * 1e3:.0f} ms, "
          f"warm rerun served from cache ({cache.hits} hits, "
          f"{cache.hit_rate:.0%} hit rate)")
