"""Reference GEMM implementations used to validate the accelerator models.

``reference_gemm`` is a thin wrapper over NumPy; ``blocked_gemm`` reproduces
the two-level tiled loop nest in plain Python/NumPy so tests can confirm the
tiling enumeration visits every MAC exactly once; ``tiled_gemm_trace``
additionally records the tile visit order, which the MMAE scheduler tests
compare against.  ``im2col_patches``/``conv2d_reference`` provide the
convolution lowering and its direct golden model: the patch matrix realises
exactly the GEMM geometry :func:`repro.workloads.layers.conv2d_gemm` assumes
(SAME padding, ``ceil(input / stride)`` output), while the reference computes
the same convolution without im2col so the conformance harness can check the
lowering against an independent implementation.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.gemm.precision import Precision
from repro.gemm.tiling import PAPER_LEVEL1, PAPER_LEVEL2, TileConfig, TwoLevelTiling
from repro.gemm.workloads import GEMMShape


def reference_gemm(
    a: np.ndarray, b: np.ndarray, c: Optional[np.ndarray] = None
) -> np.ndarray:
    """Compute ``C + A @ B`` (or ``A @ B`` when C is omitted) in float64."""
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("reference_gemm expects 2-D operands")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions do not match: {a.shape} @ {b.shape}")
    result = np.matmul(a.astype(np.float64), b.astype(np.float64))
    if c is not None:
        if c.shape != result.shape:
            raise ValueError(f"C has shape {c.shape}, expected {result.shape}")
        result = result + c.astype(np.float64)
    return result


def blocked_gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: Optional[np.ndarray] = None,
    level1: TileConfig = PAPER_LEVEL1,
    level2: TileConfig = PAPER_LEVEL2,
) -> np.ndarray:
    """Two-level blocked GEMM following the MACO schedule.

    Numerically equivalent to :func:`reference_gemm` (up to floating point
    reassociation); exists so the tiling iteration itself is under test.
    """
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions do not match: {a.shape} @ {b.shape}")
    shape = GEMMShape(m, n, k, Precision.FP64)
    tiling = TwoLevelTiling(shape, level1, level2)
    out = np.zeros((m, n), dtype=np.float64)
    if c is not None:
        out += c.astype(np.float64)
    a64 = a.astype(np.float64)
    b64 = b.astype(np.float64)
    for tile1 in tiling.level1_tiles():
        for tile2 in tiling.level2_tiles(tile1):
            a_block = a64[tile2.row_start : tile2.row_end, tile2.k_start : tile2.k_end]
            b_block = b64[tile2.k_start : tile2.k_end, tile2.col_start : tile2.col_end]
            out[tile2.row_start : tile2.row_end, tile2.col_start : tile2.col_end] += (
                a_block @ b_block
            )
    return out


def _same_padding(input_size: int, kernel: int, stride: int) -> Tuple[int, int, int]:
    """SAME-padding bookkeeping: ``(out_size, pad_before, pad_after)``.

    Output spatial size is ``ceil(input / stride)`` — the convention
    :func:`repro.workloads.layers.conv2d_gemm` sizes its im2col GEMM with —
    and the asymmetric remainder pads after (TensorFlow SAME semantics).
    """
    out_size = math.ceil(input_size / stride)
    total_pad = max((out_size - 1) * stride + kernel - input_size, 0)
    pad_before = total_pad // 2
    return out_size, pad_before, total_pad - pad_before


def im2col_patches(images: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """Lower NCHW ``images`` to the im2col patch matrix of the conv GEMM.

    Rows are output positions in ``(batch, out_y, out_x)`` order; columns are
    the receptive field flattened in ``(channel, ky, kx)`` order, matching a
    weight tensor of shape ``(out_c, in_c, k, k)`` reshaped to
    ``(out_c, in_c * k * k)``.  The result has shape
    ``(batch * out * out, in_c * k * k)`` — exactly the ``M x K`` of
    :func:`repro.workloads.layers.conv2d_gemm` for a square input.
    """
    if images.ndim != 4:
        raise ValueError(f"expected NCHW images, got shape {images.shape}")
    if kernel <= 0 or stride <= 0:
        raise ValueError("kernel and stride must be positive")
    batch, channels, height, width = images.shape
    if height != width:
        raise ValueError(f"expected a square spatial input, got {height}x{width}")
    out_size, pad_before, pad_after = _same_padding(height, kernel, stride)
    padded = np.pad(
        images, ((0, 0), (0, 0), (pad_before, pad_after), (pad_before, pad_after))
    )
    patches = np.empty(
        (batch, out_size, out_size, channels, kernel, kernel), dtype=images.dtype
    )
    for oy in range(out_size):
        for ox in range(out_size):
            window = padded[:, :, oy * stride : oy * stride + kernel,
                            ox * stride : ox * stride + kernel]
            patches[:, oy, ox] = window
    return patches.reshape(batch * out_size * out_size, channels * kernel * kernel)


def conv2d_reference(images: np.ndarray, weights: np.ndarray, stride: int) -> np.ndarray:
    """Direct SAME-padded convolution in float64 (no im2col).

    ``images`` is NCHW, ``weights`` is ``(out_c, in_c, k, k)``.  Returns the
    output activations flattened to ``(batch * out * out, out_c)`` in the same
    row order as :func:`im2col_patches`, so the result is directly comparable
    to ``im2col_patches(images) @ weights.reshape(out_c, -1).T``.
    """
    if images.ndim != 4 or weights.ndim != 4:
        raise ValueError("expected NCHW images and (out_c, in_c, k, k) weights")
    batch, channels, height, width = images.shape
    out_channels, in_channels, kernel, kernel_w = weights.shape
    if in_channels != channels or kernel != kernel_w:
        raise ValueError(
            f"weights {weights.shape} do not match images {images.shape}"
        )
    if height != width:
        raise ValueError(f"expected a square spatial input, got {height}x{width}")
    out_size, pad_before, pad_after = _same_padding(height, kernel, stride)
    padded = np.pad(
        images.astype(np.float64),
        ((0, 0), (0, 0), (pad_before, pad_after), (pad_before, pad_after)),
    )
    w64 = weights.astype(np.float64)
    output = np.zeros((batch, out_size, out_size, out_channels), dtype=np.float64)
    for oy in range(out_size):
        for ox in range(out_size):
            window = padded[:, :, oy * stride : oy * stride + kernel,
                            ox * stride : ox * stride + kernel]
            # (batch, in_c, k, k) x (out_c, in_c, k, k) summed over the field.
            output[:, oy, ox, :] = np.einsum("bikl,oikl->bo", window, w64)
    return output.reshape(batch * out_size * out_size, out_channels)


def tiled_gemm_trace(
    shape: GEMMShape,
    level1: TileConfig = PAPER_LEVEL1,
    level2: TileConfig = PAPER_LEVEL2,
) -> List[Tuple[int, int, int, int, int, int]]:
    """Return the (row_start, row_end, col_start, col_end, k_start, k_end) visit order.

    The MMAE controller must visit second-level tiles in exactly this order for
    the double-buffering overlap model to be valid.
    """
    tiling = TwoLevelTiling(shape, level1, level2)
    trace = []
    for tile1 in tiling.level1_tiles():
        for tile2 in tiling.level2_tiles(tile1):
            trace.append(
                (
                    tile2.row_start,
                    tile2.row_end,
                    tile2.col_start,
                    tile2.col_end,
                    tile2.k_start,
                    tile2.k_end,
                )
            )
    return trace
