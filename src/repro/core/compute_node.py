"""A MACO compute node: one CPU core paired with one MMAE.

The compute node wires the pieces together the way Fig. 2 shows: the CPU's
MPAIS executor forwards task descriptors into the MMAE's Slave Task Queue, the
STQ's completion responses update the CPU-side Master Task Queue, the MMAE
shares the CPU core's MMU/L2-TLB for address translation, and both sides see
the distributed L3 through the CCMs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.config import MACOConfig
from repro.core.perf import estimate_node_gemm, memory_environment
from repro.cpu.core import CPUCore
from repro.cpu.exceptions import ExceptionType
from repro.cpu.mtq import StatusWord
from repro.gemm.precision import Precision
from repro.gemm.workloads import GEMMShape
from repro.isa.instructions import GEMMDescriptor
from repro.mem.hostmem import HostMemory
from repro.mem.l3cache import DistributedL3Cache
from repro.mmae.controller import AcceleratorController, TaskResult
from repro.mmae.dataflow import GEMMTimingBreakdown, MemoryEnvironment


@dataclass
class GEMMSubmission:
    """Book-keeping for a GEMM submitted through the MPAIS path."""

    maid: int
    descriptor: GEMMDescriptor
    status: Optional[StatusWord] = None
    result: Optional[TaskResult] = None

    @property
    def completed(self) -> bool:
        """True once MA_STATE has observed the task done."""
        return self.status is not None and self.status.done

    @property
    def exception(self) -> ExceptionType:
        """The task's exception outcome (NONE when it completed cleanly)."""
        if self.result is not None:
            return self.result.exception
        if self.status is not None:
            return self.status.exception_type
        return ExceptionType.NONE


class ComputeNode:
    """One of MACO's up-to-16 homogeneous compute nodes."""

    def __init__(
        self,
        node_id: int,
        config: MACOConfig,
        host_memory: Optional[HostMemory] = None,
        l3: Optional[DistributedL3Cache] = None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.host_memory = host_memory if host_memory is not None else HostMemory()
        self.l3 = l3

        cpu_cfg = config.cpu
        self.cpu = CPUCore(
            core_id=node_id,
            frequency_hz=cpu_cfg.frequency_hz,
            fmac_lanes=cpu_cfg.fmac_lanes,
            issue_width=cpu_cfg.issue_width,
            l1i_size=cpu_cfg.l1i_size_bytes,
            l1d_size=cpu_cfg.l1d_size_bytes,
            l1_associativity=cpu_cfg.l1d_associativity,
            l2_size=cpu_cfg.l2_size_bytes,
            l2_associativity=cpu_cfg.l2_associativity,
            itlb_entries=cpu_cfg.itlb_entries,
            dtlb_entries=cpu_cfg.dtlb_entries,
            l2_tlb_entries=cpu_cfg.l2_tlb_entries,
            mtq_entries=cpu_cfg.mtq_entries,
            memory_bandwidth_bytes_per_s=cpu_cfg.memory_bandwidth_bytes_per_s,
        )
        # A default process so examples can allocate matrices immediately.
        self.default_process = self.cpu.processes.create_process(f"node{node_id}.main")
        self.cpu.mmu.register_page_table(self.default_process.address_space.page_table)

        self.mmae = AcceleratorController(
            node_id=node_id,
            timing_params=config.mmae.timing_parameters(),
            memory_env=memory_environment(config, active_nodes=1),
            host_memory=self.host_memory,
            l3=l3,
            mmu=self.cpu.mmu,
            stq_capacity=config.mmae.stq_entries,
            page_size=config.memory.page_size,
            prediction_enabled=config.prediction_enabled,
        )
        # Completion responses from the STQ update the CPU-side MTQ (Fig. 3).
        self.mmae.stq.on_completion(self.cpu.mtq.mark_done)
        self.executor = self.cpu.attach_mmae(self.mmae)
        self._matrix_count = 0

    # ------------------------------------------------------------------- memory
    def allocate_matrix(
        self, rows: int, cols: int, precision: Precision = Precision.FP64,
        name: Optional[str] = None, data: Optional[np.ndarray] = None,
    ) -> Tuple[int, np.ndarray]:
        """Allocate a matrix in the node's default address space and host memory.

        Returns ``(virtual_base_address, array)``.  If ``data`` is given it is
        copied into the allocation (cast to the requested precision).
        """
        if rows <= 0 or cols <= 0:
            raise ValueError("matrix dimensions must be positive")
        label = name if name is not None else f"matrix{self._matrix_count}"
        self._matrix_count += 1
        size_bytes = rows * cols * precision.bytes_per_element
        vaddr = self.default_process.address_space.allocate_region(label, size_bytes)
        if data is not None:
            if data.shape != (rows, cols):
                raise ValueError(f"data shape {data.shape} does not match ({rows}, {cols})")
            # Copy into fresh storage: the allocation is the canonical backing
            # store of the region and must not alias the caller's array.
            array = np.array(data, dtype=precision.dtype, order="C", copy=True)
        else:
            array = np.zeros((rows, cols), dtype=precision.dtype)
        self.host_memory.register_matrix(vaddr, array)
        return vaddr, array

    # -------------------------------------------------------------- MPAIS driver
    def submit_gemm(self, descriptor: GEMMDescriptor, execute: bool = True) -> GEMMSubmission:
        """Submit a GEMM through the MPAIS path (MA_CFG) and optionally execute it.

        The descriptor's parameters are packed into registers X2..X7, MA_CFG is
        executed to allocate an MTQ entry and forward the task to the MMAE, the
        accelerator runs its pending queue, and MA_STATE retrieves and releases
        the status — the full software flow of Section III.B.
        """
        registers = self.cpu.registers
        registers.write_block(2, descriptor.pack())
        from repro.isa.assembler import assemble_program

        cfg_trace = self.executor.execute_program(assemble_program("MA_CFG X1, X2"))[0]
        maid = cfg_trace.maid
        submission = GEMMSubmission(maid=maid, descriptor=descriptor)
        if not execute:
            return submission
        results = self.mmae.execute_pending()
        for result in results:
            if result.maid == maid:
                submission.result = result
        state_trace = self.executor.execute_program(assemble_program("MA_STATE X3, X1"))[0]
        submission.status = StatusWord.unpack(state_trace.status_word)
        return submission

    def run_gemm_functional(
        self, a: np.ndarray, b: np.ndarray, c: Optional[np.ndarray] = None,
        precision: Precision = Precision.FP64,
        ttr: int = 64, ttc: int = 64,
    ) -> Tuple[np.ndarray, GEMMSubmission]:
        """Allocate operands, run the GEMM through the MPAIS/MMAE path, return C.

        Intended for examples and tests; the matrices must be small enough for
        functional execution (see the controller's FUNCTIONAL_LIMIT_ELEMENTS).
        """
        m, k = a.shape
        k2, n = b.shape
        if k != k2:
            raise ValueError(f"inner dimensions do not match: {a.shape} @ {b.shape}")
        addr_a, _ = self.allocate_matrix(m, k, precision, data=a)
        addr_b, _ = self.allocate_matrix(k, n, precision, data=b)
        addr_c, array_c = self.allocate_matrix(m, n, precision, data=c if c is not None else None)
        descriptor = GEMMDescriptor(
            addr_a=addr_a, addr_b=addr_b, addr_c=addr_c,
            m=m, n=n, k=k, precision=precision,
            tile_rows=min(self.config.level1_tile.rows, max(m, ttr)),
            tile_cols=min(self.config.level1_tile.cols, max(n, ttc)),
            ttr=min(ttr, m), ttc=min(ttc, n),
        )
        submission = self.submit_gemm(descriptor)
        return array_c, submission

    # -------------------------------------------------------------- timing model
    def run_gemm_timed(
        self, shape: GEMMShape, active_nodes: int = 1, prediction_enabled: Optional[bool] = None,
        env: Optional[MemoryEnvironment] = None,
    ) -> GEMMTimingBreakdown:
        """Cycle-approximate timing of a GEMM on this node's MMAE."""
        return estimate_node_gemm(
            self.config, shape, active_nodes=active_nodes,
            prediction_enabled=prediction_enabled, env=env,
        )

    # ------------------------------------------------------------------- helpers
    @property
    def mmae_peak_gflops_fp64(self) -> float:
        """This node's MMAE FP64 peak throughput."""
        return self.config.mmae.peak_gflops_fp64

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ComputeNode(node_id={self.node_id})"
