"""The Master Task Queue (MTQ).

Each CPU core integrates an MTQ whose entries record the execution state of
GEMM tasks submitted to the companion MMAE (paper Section III.C, Table III).
An entry carries Valid, Done, ASID, exception_en and exception_type fields and
follows the state machine of Fig. 3:

1. MA_CFG allocates a free entry (Valid=1, Done=0, ASID=caller).
2. The MMAE reports completion (Done=1) — with or without an exception.
3. MA_STATE by the owning process reads the status and releases the entry;
   a query by a different ASID sees the mismatch and knows its own task has
   already been drained (state 3 in Fig. 3).
4. If an exception occurred, the entry must be cleared with MA_CLEAR.

MTQ entries survive process switches: the queue is indexed by MAID, not by the
running process, so any process can later retrieve the outcome of its task.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.cpu.exceptions import ExceptionType

#: ASID value stored in a free entry (the paper's "ASID = NULL").
NULL_ASID = 0xFFFF


class MTQState(enum.Enum):
    """Lifecycle states of an MTQ entry (Fig. 3)."""

    FREE = "free"                  # Valid=0, Done=0
    RUNNING = "running"            # Valid=1, Done=0
    DONE = "done"                  # Valid=1, Done=1, no exception
    DONE_EXCEPTION = "exception"   # Valid=1, Done=1, exception_en=1


@dataclass
class StatusWord:
    """Decoded view of the 64-bit status word returned by MA_READ / MA_STATE."""

    valid: bool
    done: bool
    asid: int
    exception_en: bool
    exception_type: ExceptionType

    _VALID_BIT = 1 << 0
    _DONE_BIT = 1 << 1
    _EXC_EN_BIT = 1 << 2
    _ASID_SHIFT = 16
    _EXC_TYPE_SHIFT = 8

    def pack(self) -> int:
        word = 0
        if self.valid:
            word |= self._VALID_BIT
        if self.done:
            word |= self._DONE_BIT
        if self.exception_en:
            word |= self._EXC_EN_BIT
        word |= (int(self.exception_type) & 0xFF) << self._EXC_TYPE_SHIFT
        word |= (self.asid & 0xFFFF) << self._ASID_SHIFT
        return word

    @classmethod
    def unpack(cls, word: int) -> "StatusWord":
        return cls(
            valid=bool(word & cls._VALID_BIT),
            done=bool(word & cls._DONE_BIT),
            exception_en=bool(word & cls._EXC_EN_BIT),
            exception_type=ExceptionType((word >> cls._EXC_TYPE_SHIFT) & 0xFF),
            asid=(word >> cls._ASID_SHIFT) & 0xFFFF,
        )


@dataclass
class MTQEntry:
    """One MTQ entry (paper Table III)."""

    maid: int
    valid: bool = False
    done: bool = False
    asid: int = NULL_ASID
    exception_en: bool = False
    exception_type: ExceptionType = ExceptionType.NONE

    @property
    def state(self) -> MTQState:
        if not self.valid:
            return MTQState.FREE
        if not self.done:
            return MTQState.RUNNING
        if self.exception_en:
            return MTQState.DONE_EXCEPTION
        return MTQState.DONE

    def status_word(self) -> StatusWord:
        return StatusWord(
            valid=self.valid,
            done=self.done,
            asid=self.asid,
            exception_en=self.exception_en,
            exception_type=self.exception_type,
        )

    def reset(self) -> None:
        self.valid = False
        self.done = False
        self.asid = NULL_ASID
        self.exception_en = False
        self.exception_type = ExceptionType.NONE


class MTQFullError(Exception):
    """Raised when a caller requires an entry but none is free."""


class MasterTaskQueue:
    """A fixed-size pool of MTQ entries with the Fig. 3 state machine."""

    def __init__(self, num_entries: int = 8, name: str = "mtq") -> None:
        if num_entries <= 0:
            raise ValueError("MTQ must have at least one entry")
        self.name = name
        self.entries: List[MTQEntry] = [MTQEntry(maid=index) for index in range(num_entries)]
        self.allocations = 0
        self.releases = 0
        self.exceptions_recorded = 0

    def __len__(self) -> int:
        return len(self.entries)

    # ---------------------------------------------------------------- allocation
    def free_entries(self) -> int:
        return sum(1 for entry in self.entries if entry.state is MTQState.FREE)

    def allocate(self, asid: int) -> Optional[int]:
        """Allocate a free entry for ``asid``; returns the MAID or ``None`` if full."""
        if not 0 <= asid < NULL_ASID:
            raise ValueError(f"ASID {asid} out of range")
        for entry in self.entries:
            if entry.state is MTQState.FREE:
                entry.valid = True
                entry.done = False
                entry.asid = asid
                entry.exception_en = False
                entry.exception_type = ExceptionType.NONE
                self.allocations += 1
                return entry.maid
        return None

    def _entry(self, maid: int) -> MTQEntry:
        if not 0 <= maid < len(self.entries):
            raise ValueError(f"MAID {maid} out of range 0..{len(self.entries) - 1}")
        return self.entries[maid]

    # ---------------------------------------------------------------- completion
    def mark_done(self, maid: int, exception: ExceptionType = ExceptionType.NONE) -> None:
        """Called by the MMAE (via the STQ response path) when a task finishes."""
        entry = self._entry(maid)
        if not entry.valid:
            raise ValueError(f"MAID {maid} is not an active task")
        entry.done = True
        if exception is not ExceptionType.NONE:
            entry.exception_en = True
            entry.exception_type = exception
            self.exceptions_recorded += 1

    # ------------------------------------------------------------------- queries
    def query(self, maid: int) -> int:
        """MA_READ: return the packed status word without releasing the entry."""
        return self._entry(maid).status_word().pack()

    def query_and_release(self, maid: int, asid: int) -> int:
        """MA_STATE: return the status word; release the entry if it is done and owned.

        Per Fig. 3, a completed, exception-free entry queried by its owner is
        released (back to Valid=0).  Entries with pending exceptions stay
        allocated until MA_CLEAR.  Queries by a different ASID only observe.
        """
        entry = self._entry(maid)
        word = entry.status_word().pack()
        if entry.valid and entry.done and entry.asid == asid and not entry.exception_en:
            entry.reset()
            self.releases += 1
        return word

    def clear(self, maid: int) -> None:
        """MA_CLEAR: unconditionally free an entry (used after exceptions)."""
        entry = self._entry(maid)
        if entry.valid:
            self.releases += 1
        entry.reset()

    # ------------------------------------------------------------------ reporting
    def state_of(self, maid: int) -> MTQState:
        return self._entry(maid).state

    def entries_for_asid(self, asid: int) -> List[MTQEntry]:
        return [entry for entry in self.entries if entry.valid and entry.asid == asid]

    def outstanding_tasks(self) -> int:
        return sum(1 for entry in self.entries if entry.state is MTQState.RUNNING)
