"""Tests for precisions, GEMM shapes/workloads, two-level tiling and reference kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gemm import (
    GEMMShape,
    GEMMWorkload,
    Precision,
    TileConfig,
    TwoLevelTiling,
    blocked_gemm,
    hpl_like_workloads,
    paper_matrix_sizes,
    random_workloads,
    reference_gemm,
    sweep_square_sizes,
    tile_ranges,
    tiled_gemm_trace,
)
from repro.gemm.tiling import PAPER_LEVEL1, PAPER_LEVEL2, Tile


class TestPrecision:
    def test_bytes_per_element(self):
        assert Precision.FP64.bytes_per_element == 8
        assert Precision.FP32.bytes_per_element == 4
        assert Precision.FP16.bytes_per_element == 2

    def test_simd_ways_match_fig2(self):
        assert Precision.FP64.simd_ways == 1
        assert Precision.FP32.simd_ways == 2
        assert Precision.FP16.simd_ways == 4

    def test_fp16_accumulates_in_fp32(self):
        assert Precision.FP16.accumulate_dtype == np.float32
        assert Precision.FP64.accumulate_dtype == np.float64

    def test_from_string(self):
        assert Precision.from_string("FP32") is Precision.FP32
        assert Precision.from_string("float16") is Precision.FP16
        with pytest.raises(ValueError):
            Precision.from_string("int8")


class TestGEMMShape:
    def test_flops_and_macs(self):
        shape = GEMMShape(4, 5, 6)
        assert shape.macs == 120
        assert shape.flops == 240

    def test_operand_bytes(self):
        shape = GEMMShape(4, 5, 6, Precision.FP32)
        assert shape.bytes_a == 4 * 6 * 4
        assert shape.bytes_b == 6 * 5 * 4
        assert shape.bytes_c == 4 * 5 * 4
        assert shape.total_bytes == shape.bytes_a + shape.bytes_b + shape.bytes_c

    def test_arithmetic_intensity_grows_with_size(self):
        assert GEMMShape(1024, 1024, 1024).arithmetic_intensity > GEMMShape(64, 64, 64).arithmetic_intensity

    def test_split_rows_conserves_work(self):
        shape = GEMMShape(100, 64, 64)
        parts = shape.split_rows(8)
        assert sum(part.m for part in parts) == 100
        assert sum(part.flops for part in parts) == shape.flops

    def test_invalid_dimension_rejected(self):
        with pytest.raises(ValueError):
            GEMMShape(0, 4, 4)

    def test_with_precision(self):
        assert GEMMShape(8, 8, 8).with_precision(Precision.FP16).precision is Precision.FP16


class TestWorkloads:
    def test_paper_sizes(self):
        assert paper_matrix_sizes(6) == (256, 512, 1024, 2048, 4096, 9216)
        assert 3072 in paper_matrix_sizes(7)
        with pytest.raises(ValueError):
            paper_matrix_sizes(9)

    def test_sweep_square_sizes(self):
        shapes = sweep_square_sizes([128, 256])
        assert [s.m for s in shapes] == [128, 256]
        assert all(s.m == s.n == s.k for s in shapes)

    def test_random_workloads_reproducible(self):
        a = random_workloads(5, seed=3)
        b = random_workloads(5, seed=3)
        assert a == b

    def test_random_workloads_respect_bounds(self):
        for shape in random_workloads(20, min_dim=100, max_dim=200, seed=0):
            assert 100 <= shape.m <= 200
            assert 100 <= shape.n <= 200
            assert 100 <= shape.k <= 200

    def test_hpl_like_ladder(self):
        workload = hpl_like_workloads(max_size=4096, step=1024)
        sizes = [shape.m for shape in workload]
        assert sizes == [4096, 3072, 2048, 1024]

    def test_workload_aggregates(self):
        workload = GEMMWorkload("w", [GEMMShape(10, 10, 10), GEMMShape(20, 20, 20)],
                                non_gemm_flops=100, non_gemm_bytes=200)
        assert workload.gemm_flops == 2 * 1000 + 2 * 8000
        assert workload.total_flops == workload.gemm_flops + 100
        assert len(workload) == 2

    def test_workload_scaled(self):
        workload = GEMMWorkload("w", [GEMMShape(8, 8, 8)], non_gemm_flops=10)
        scaled = workload.scaled(3)
        assert len(scaled) == 3
        assert scaled.non_gemm_flops == 30


class TestTiling:
    def test_tile_ranges_cover_extent(self):
        ranges = tile_ranges(100, 32)
        assert ranges[0] == (0, 32)
        assert ranges[-1] == (96, 100)
        assert sum(end - start for start, end in ranges) == 100

    def test_paper_tiling_constants(self):
        assert (PAPER_LEVEL1.rows, PAPER_LEVEL1.cols) == (1024, 1024)
        assert (PAPER_LEVEL2.rows, PAPER_LEVEL2.cols) == (64, 64)

    def test_level1_grid(self):
        tiling = TwoLevelTiling(GEMMShape(2048, 1024, 3072))
        assert tiling.level1_grid == (2, 1, 3)
        assert tiling.num_level1_tiles == 6

    def test_level2_count_within_tile(self):
        tiling = TwoLevelTiling(GEMMShape(1024, 1024, 1024))
        tile = next(tiling.level1_tiles())
        assert tiling.num_level2_tiles(tile) == 16 * 16 * 16

    def test_tiles_cover_shape_exactly(self):
        for shape in (GEMMShape(1000, 900, 1100), GEMMShape(64, 64, 64), GEMMShape(4096, 128, 256)):
            assert TwoLevelTiling(shape).check_covers_shape()

    def test_level2_must_not_exceed_level1(self):
        with pytest.raises(ValueError):
            TwoLevelTiling(GEMMShape(128, 128, 128), TileConfig(32, 32), TileConfig(64, 64))

    def test_tile_operand_bytes(self):
        tile = Tile(0, 64, 0, 32, 0, 16)
        a, b, c = tile.operand_bytes(8)
        assert a == 64 * 16 * 8
        assert b == 16 * 32 * 8
        assert c == 64 * 32 * 8

    @settings(max_examples=30, deadline=None)
    @given(
        m=st.integers(1, 300), n=st.integers(1, 300), k=st.integers(1, 300),
        tile1=st.sampled_from([64, 128, 200]), tile2=st.sampled_from([16, 32, 64]),
    )
    def test_two_level_tiling_partitions_all_macs(self, m, n, k, tile1, tile2):
        """Every MAC of the GEMM is covered exactly once by the level-2 tiles."""
        if tile2 > tile1:
            tile1, tile2 = tile2, tile1
        shape = GEMMShape(m, n, k)
        tiling = TwoLevelTiling(shape, TileConfig(tile1, tile1), TileConfig(tile2, tile2))
        macs = sum(
            tile2_.macs
            for tile1_ in tiling.level1_tiles()
            for tile2_ in tiling.level2_tiles(tile1_)
        )
        assert macs == shape.macs


class TestReferenceKernels:
    def test_reference_gemm_matches_numpy(self, rng):
        a = rng.standard_normal((37, 53))
        b = rng.standard_normal((53, 29))
        c = rng.standard_normal((37, 29))
        np.testing.assert_allclose(reference_gemm(a, b, c), a @ b + c, rtol=1e-13)

    def test_reference_gemm_shape_check(self):
        with pytest.raises(ValueError):
            reference_gemm(np.zeros((4, 5)), np.zeros((6, 7)))

    def test_blocked_gemm_equals_reference(self, rng):
        a = rng.standard_normal((130, 70))
        b = rng.standard_normal((70, 90))
        c = rng.standard_normal((130, 90))
        blocked = blocked_gemm(a, b, c, TileConfig(64, 64), TileConfig(16, 16))
        np.testing.assert_allclose(blocked, a @ b + c, rtol=1e-10)

    def test_blocked_gemm_without_c(self, rng):
        a = rng.standard_normal((65, 65))
        b = rng.standard_normal((65, 65))
        np.testing.assert_allclose(
            blocked_gemm(a, b, None, TileConfig(32, 32), TileConfig(8, 8)), a @ b, rtol=1e-10
        )

    def test_trace_visits_every_output_tile(self):
        shape = GEMMShape(128, 128, 128)
        trace = tiled_gemm_trace(shape, TileConfig(128, 128), TileConfig(64, 64))
        assert len(trace) == 2 * 2 * 2
        covered = {(r0, r1, c0, c1) for r0, r1, c0, c1, _, _ in trace}
        assert (0, 64, 64, 128) in covered

    def test_trace_is_deterministic(self):
        shape = GEMMShape(256, 192, 128)
        assert tiled_gemm_trace(shape) == tiled_gemm_trace(shape)
