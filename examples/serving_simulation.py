#!/usr/bin/env python
"""Multi-tenant serving walkthrough: one trace, three scheduling policies.

Builds a bursty three-tenant trace sized for ~70% fleet utilization, runs it
through FCFS, shortest-job-first and round-robin dispatch on the same 8-node
MACO fleet, and compares the tail latencies each tenant sees — then verifies
the dispatch plumbing functionally by pushing a few small GEMMs through the
MPAIS async path (MA_CFG / MA_READ / MA_STATE).

Run with::

    PYTHONPATH=src python examples/serving_simulation.py
"""

from repro.analysis import render_table
from repro.core import MACOSystem, maco_default_config
from repro.serve import ServeSimulator, bursty_trace, default_tenants

NODES = 8
SEED = 7


def main() -> None:
    config = maco_default_config(num_nodes=NODES)

    # Size per-tenant arrival rates off the analytic service estimates, then
    # generate one shared trace so every policy sees identical arrivals.
    sizing = ServeSimulator(config=config)
    # Slight overload (110% of fleet capacity): queues actually form, so
    # the dispatch policy changes what each tenant experiences.
    tenants = sizing.suggest_rates(default_tenants(3), utilization=1.1)
    duration = 150 / sum(spec.rate_rps for spec in tenants)  # ~150 requests
    trace = bursty_trace(tenants, duration, seed=SEED, burst_factor=8.0)
    print(f"trace: {len(trace)} requests from {len(trace.tenants)} tenants "
          f"over {trace.duration_s:.1f} s (bursty arrivals, seed {SEED})\n")

    reports = {}
    for policy in ("fcfs", "sjf", "rr"):
        simulator = ServeSimulator(config=config, scheduler=policy)
        reports[policy] = simulator.run(trace)

    rows = []
    for policy, report in reports.items():
        rows.append([
            policy,
            f"{report.throughput_rps:.2f}",
            f"{report.latency_p50_s * 1e3:.0f}",
            f"{report.latency_p99_s * 1e3:.0f}",
            f"{report.mean_utilization * 100:.1f}%",
            f"{report.queue_depth_mean:.2f}",
            sum(node.tenant_switches for node in report.nodes),
        ])
    print(render_table(
        ["policy", "req/s", "p50 (ms)", "p99 (ms)", "utilization", "mean queue", "switches"],
        rows, title="Same trace, three dispatch policies"))

    fcfs, sjf = reports["fcfs"], reports["sjf"]
    print(f"\nSJF shifts the tail: fleet p50 {sjf.latency_p50_s * 1e3:.0f} ms vs "
          f"{fcfs.latency_p50_s * 1e3:.0f} ms under FCFS (short requests jump the queue), "
          "while p99 belongs to the long-model tenant either way.")

    # Functional cross-check on a fresh system: the same dispatch path drives
    # real MPAIS submissions and the results are compared against NumPy.
    smoke = ServeSimulator(system=MACOSystem(maco_default_config(num_nodes=2)))
    verified = smoke.functional_smoke(trace, size=48, max_requests=4)
    print(f"\nfunctional smoke: {verified} GEMMs verified through the MPAIS async path")


if __name__ == "__main__":
    main()
