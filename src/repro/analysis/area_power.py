"""The area/power/peak-performance model behind the paper's Table IV.

Table IV compares one CPU core against one MMAE: frequency, area, power, FMAC
count and theoretical peak, from which the paper derives that the MMAE has
~9x the area efficiency (GFLOPS/mm^2) and ~2x the power efficiency (GFLOPS/W)
of the CPU core at ~25% of its area and 25% lower power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.config import CPUConfig, MMAEConfig


@dataclass(frozen=True)
class ComponentBudget:
    """Frequency/area/power/FMACs/peak of one hardware component (a Table IV row)."""

    name: str
    frequency_ghz: float
    area_mm2: float
    power_w: float
    fmacs: int
    peak_gflops_fp64: float
    peak_gflops_fp32: float
    peak_gflops_fp16: float = 0.0

    @property
    def area_efficiency_fp64(self) -> float:
        """GFLOPS per mm^2 at FP64."""
        return self.peak_gflops_fp64 / self.area_mm2

    @property
    def power_efficiency_fp64(self) -> float:
        """GFLOPS per watt at FP64."""
        return self.peak_gflops_fp64 / self.power_w

    def as_row(self) -> List[str]:
        """Format this budget as the corresponding Table IV row."""
        peaks = f"{self.peak_gflops_fp64:.0f}(FP64)/{self.peak_gflops_fp32:.0f}(FP32)"
        if self.peak_gflops_fp16:
            peaks += f"/{self.peak_gflops_fp16:.0f}(FP16)"
        return [
            self.name,
            f"{self.frequency_ghz:.1f}",
            f"{self.area_mm2:.2f}",
            f"{self.power_w:.1f}",
            str(self.fmacs),
            peaks,
        ]


def cpu_budget(config: CPUConfig = CPUConfig()) -> ComponentBudget:
    """The CPU-core row of Table IV."""
    return ComponentBudget(
        name="CPU",
        frequency_ghz=config.frequency_ghz,
        area_mm2=config.area_mm2,
        power_w=config.power_w,
        fmacs=config.fmac_lanes,
        peak_gflops_fp64=config.peak_gflops_fp64,
        peak_gflops_fp32=config.peak_gflops_fp32,
    )


def mmae_budget(config: MMAEConfig = MMAEConfig()) -> ComponentBudget:
    """The MMAE row of Table IV."""
    return ComponentBudget(
        name="MMAE",
        frequency_ghz=config.frequency_ghz,
        area_mm2=config.area_mm2,
        power_w=config.power_w,
        fmacs=config.fmac_lanes,
        peak_gflops_fp64=config.peak_gflops_fp64,
        peak_gflops_fp32=config.peak_gflops_fp32,
        peak_gflops_fp16=config.peak_gflops_fp16,
    )


@dataclass(frozen=True)
class AreaPowerComparison:
    """The derived ratios the paper quotes below Table IV."""

    cpu: ComponentBudget
    mmae: ComponentBudget

    @property
    def area_ratio(self) -> float:
        """MMAE area as a fraction of the CPU core's area (~0.25)."""
        return self.mmae.area_mm2 / self.cpu.area_mm2

    @property
    def power_ratio(self) -> float:
        """MMAE power as a fraction of the CPU core's power (~0.75)."""
        return self.mmae.power_w / self.cpu.power_w

    @property
    def peak_ratio_fp64(self) -> float:
        """MMAE peak over CPU peak at FP64 (>2x)."""
        return self.mmae.peak_gflops_fp64 / self.cpu.peak_gflops_fp64

    @property
    def area_efficiency_gain(self) -> float:
        """MMAE GFLOPS/mm^2 over CPU GFLOPS/mm^2 (~9x)."""
        return self.mmae.area_efficiency_fp64 / self.cpu.area_efficiency_fp64

    @property
    def power_efficiency_gain(self) -> float:
        """MMAE GFLOPS/W over CPU GFLOPS/W (~2x)."""
        return self.mmae.power_efficiency_fp64 / self.cpu.power_efficiency_fp64

    def summary(self) -> Dict[str, float]:
        return {
            "area_ratio": self.area_ratio,
            "power_ratio": self.power_ratio,
            "peak_ratio_fp64": self.peak_ratio_fp64,
            "area_efficiency_gain": self.area_efficiency_gain,
            "power_efficiency_gain": self.power_efficiency_gain,
        }


def compare_cpu_mmae(
    cpu_config: CPUConfig = CPUConfig(), mmae_config: MMAEConfig = MMAEConfig()
) -> AreaPowerComparison:
    """Build the Table IV comparison from the configuration dataclasses."""
    return AreaPowerComparison(cpu=cpu_budget(cpu_config), mmae=mmae_budget(mmae_config))


def mmae_area_breakdown(config: MMAEConfig = MMAEConfig()) -> List[Tuple[str, float]]:
    """Absolute area of each MMAE component (Table IV footnote b), in mm^2."""
    return [(name, fraction * config.area_mm2) for name, fraction in config.area_breakdown]
