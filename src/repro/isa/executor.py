"""Functional executor for MPAIS instructions.

The executor models the CPU-side micro-operation sequence of each MPAIS
instruction (paper Section III.B): MA_CFG requests a Master Task Queue entry,
packs the task parameters from the six successive registers Rn..Rn+5, and
forwards them to the MMAE; the data-migration instructions follow the same
flow but dispatch DMA descriptors; the task-management instructions query or
clear MTQ entries.

To keep the ISA layer independent of the CPU and MMAE packages, the executor
talks to them through two small structural interfaces (:class:`MTQPort` and
:class:`MMAEPort`); :class:`repro.cpu.core.CPUCore` and
:class:`repro.mmae.controller.AcceleratorController` satisfy them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, runtime_checkable

from repro.isa.instructions import (
    GEMMDescriptor,
    InitDescriptor,
    Instruction,
    MoveDescriptor,
    Opcode,
    PARAMETER_REGISTERS,
    StashDescriptor,
)
from repro.isa.registers import RegisterFile


class MPAISExecutionError(Exception):
    """Raised when an instruction cannot be executed (e.g. MTQ full, bad MAID)."""


@runtime_checkable
class MTQPort(Protocol):
    """The slice of the Master Task Queue interface the executor needs."""

    def allocate(self, asid: int) -> Optional[int]:
        """Allocate an entry for a process; returns the MAID or None if full."""

    def query(self, maid: int) -> int:
        """Return the packed status word of an entry."""

    def query_and_release(self, maid: int, asid: int) -> int:
        """Return the packed status word and release the entry if it belongs to ``asid``."""

    def clear(self, maid: int) -> None:
        """Clear an entry (used after exceptions)."""


@runtime_checkable
class MMAEPort(Protocol):
    """The slice of the MMAE interface the executor needs."""

    def submit_gemm(self, maid: int, asid: int, descriptor: GEMMDescriptor) -> None:
        """Queue a GEMM task in the Slave Task Queue."""

    def submit_move(self, maid: int, asid: int, descriptor: MoveDescriptor) -> None:
        """Queue a DMA copy."""

    def submit_init(self, maid: int, asid: int, descriptor: InitDescriptor) -> None:
        """Queue a DMA zero-fill."""

    def submit_stash(self, maid: int, asid: int, descriptor: StashDescriptor) -> None:
        """Queue an L3 stash (prefetch) request."""


@dataclass
class ExecutionTrace:
    """Record of one executed instruction, for tests and debugging."""

    instruction: Instruction
    maid: Optional[int]
    status_word: Optional[int]
    cycles: int


#: Nominal CPU-side cost of each MPAIS instruction in CPU cycles.  MA_CFG and the
#: data-migration instructions are a short sequence of micro-operations (request an
#: MTQ entry, read six registers, send a command packet to the MMAE); the queries are
#: register reads plus a response wait.
INSTRUCTION_CYCLES = {
    Opcode.MA_CFG: 12,
    Opcode.MA_MOVE: 10,
    Opcode.MA_INIT: 10,
    Opcode.MA_STASH: 10,
    Opcode.MA_READ: 6,
    Opcode.MA_STATE: 8,
    Opcode.MA_CLEAR: 4,
}


class MPAISExecutor:
    """Executes MPAIS instructions against a register file, an MTQ and an MMAE."""

    def __init__(
        self,
        registers: RegisterFile,
        mtq: MTQPort,
        mmae: MMAEPort,
        asid: int = 0,
    ) -> None:
        self.registers = registers
        self.mtq = mtq
        self.mmae = mmae
        self.asid = asid
        self.trace: List[ExecutionTrace] = []
        self.cycles_executed = 0

    def set_asid(self, asid: int) -> None:
        """Switch the current process context (used by the process manager)."""
        if asid < 0:
            raise ValueError("ASID must be non-negative")
        self.asid = asid

    # ----------------------------------------------------------------- execution
    def execute(self, instruction: Instruction) -> ExecutionTrace:
        """Execute one instruction and return its trace entry."""
        handler = {
            Opcode.MA_CFG: self._execute_cfg,
            Opcode.MA_MOVE: self._execute_move,
            Opcode.MA_INIT: self._execute_init,
            Opcode.MA_STASH: self._execute_stash,
            Opcode.MA_READ: self._execute_read,
            Opcode.MA_STATE: self._execute_state,
            Opcode.MA_CLEAR: self._execute_clear,
        }[instruction.opcode]
        trace = handler(instruction)
        self.trace.append(trace)
        self.cycles_executed += trace.cycles
        return trace

    def execute_program(self, program) -> List[ExecutionTrace]:
        """Execute every instruction of an assembled :class:`~repro.isa.assembler.Program`."""
        return [self.execute(instruction) for instruction in program]

    # ------------------------------------------------------------------ handlers
    def _read_parameters(self, instruction: Instruction) -> List[int]:
        return self.registers.read_block(instruction.rn, PARAMETER_REGISTERS)

    def _allocate_entry(self, instruction: Instruction) -> int:
        maid = self.mtq.allocate(self.asid)
        if maid is None:
            raise MPAISExecutionError(
                f"{instruction.opcode.value}: no free MTQ entry for ASID {self.asid}"
            )
        return maid

    def _execute_cfg(self, instruction: Instruction) -> ExecutionTrace:
        parameters = self._read_parameters(instruction)
        descriptor = GEMMDescriptor.unpack(parameters)
        maid = self._allocate_entry(instruction)
        self.mmae.submit_gemm(maid, self.asid, descriptor)
        self.registers.write(instruction.rd, maid)
        return ExecutionTrace(instruction, maid, None, INSTRUCTION_CYCLES[Opcode.MA_CFG])

    def _execute_move(self, instruction: Instruction) -> ExecutionTrace:
        parameters = self._read_parameters(instruction)
        descriptor = MoveDescriptor.unpack(parameters)
        maid = self._allocate_entry(instruction)
        self.mmae.submit_move(maid, self.asid, descriptor)
        self.registers.write(instruction.rd, maid)
        return ExecutionTrace(instruction, maid, None, INSTRUCTION_CYCLES[Opcode.MA_MOVE])

    def _execute_init(self, instruction: Instruction) -> ExecutionTrace:
        parameters = self._read_parameters(instruction)
        descriptor = InitDescriptor.unpack(parameters)
        maid = self._allocate_entry(instruction)
        self.mmae.submit_init(maid, self.asid, descriptor)
        self.registers.write(instruction.rd, maid)
        return ExecutionTrace(instruction, maid, None, INSTRUCTION_CYCLES[Opcode.MA_INIT])

    def _execute_stash(self, instruction: Instruction) -> ExecutionTrace:
        parameters = self._read_parameters(instruction)
        descriptor = StashDescriptor.unpack(parameters)
        maid = self._allocate_entry(instruction)
        self.mmae.submit_stash(maid, self.asid, descriptor)
        self.registers.write(instruction.rd, maid)
        return ExecutionTrace(instruction, maid, None, INSTRUCTION_CYCLES[Opcode.MA_STASH])

    def _execute_read(self, instruction: Instruction) -> ExecutionTrace:
        maid = self.registers.read(instruction.rn)
        status = self.mtq.query(maid)
        self.registers.write(instruction.rd, status)
        return ExecutionTrace(instruction, maid, status, INSTRUCTION_CYCLES[Opcode.MA_READ])

    def _execute_state(self, instruction: Instruction) -> ExecutionTrace:
        maid = self.registers.read(instruction.rn)
        status = self.mtq.query_and_release(maid, self.asid)
        self.registers.write(instruction.rd, status)
        return ExecutionTrace(instruction, maid, status, INSTRUCTION_CYCLES[Opcode.MA_STATE])

    def _execute_clear(self, instruction: Instruction) -> ExecutionTrace:
        maid = self.registers.read(instruction.rn)
        self.mtq.clear(maid)
        return ExecutionTrace(instruction, maid, None, INSTRUCTION_CYCLES[Opcode.MA_CLEAR])
