"""The MMAE's DMA engines.

Two DMA engines move tiles between the L3 system cache and the A/B/C buffers
(paper Fig. 2(a)) and also service the MA_MOVE / MA_INIT bulk operations.  The
timing model is latency-bandwidth limited: each engine keeps a bounded number
of outstanding line requests, so its sustained bandwidth is
``min(peak_bandwidth, outstanding_bytes / round_trip_latency)`` — the quantity
that degrades as more compute nodes contend for the L3 slices and the DDR
controllers (the Fig. 7 effect).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.mem.address import DEFAULT_LINE_SIZE


@dataclass
class DMATransferResult:
    """Outcome of one DMA transfer."""

    bytes_transferred: int
    cycles: int
    translation_stall_cycles: int = 0

    @property
    def total_cycles(self) -> int:
        return self.cycles + self.translation_stall_cycles


@dataclass
class DMAEngine:
    """One DMA engine of the Accelerator Data Engine.

    ``peak_bytes_per_cycle`` is the engine's datapath width (the NoC interface
    provides 256 bits at the MMAE clock, i.e. 32 bytes per MMAE cycle per
    direction); ``max_outstanding_lines`` bounds the memory-level parallelism.
    """

    engine_id: int = 0
    peak_bytes_per_cycle: float = 32.0
    max_outstanding_lines: int = 32
    line_size: int = DEFAULT_LINE_SIZE
    frequency_hz: float = 2.5e9
    bytes_transferred: int = 0
    transfers: int = 0

    def __post_init__(self) -> None:
        if self.peak_bytes_per_cycle <= 0:
            raise ValueError("peak bandwidth must be positive")
        if self.max_outstanding_lines <= 0:
            raise ValueError("need at least one outstanding request")

    # ----------------------------------------------------------------- bandwidth
    @property
    def peak_bandwidth_bytes_per_s(self) -> float:
        return self.peak_bytes_per_cycle * self.frequency_hz

    def sustained_bytes_per_cycle(self, round_trip_latency_cycles: float) -> float:
        """Little's-law bandwidth under a given memory round-trip latency."""
        if round_trip_latency_cycles <= 0:
            return self.peak_bytes_per_cycle
        window_bytes = self.max_outstanding_lines * self.line_size
        latency_limited = window_bytes / round_trip_latency_cycles
        return min(self.peak_bytes_per_cycle, latency_limited)

    def sustained_bandwidth_bytes_per_s(self, round_trip_latency_s: float) -> float:
        latency_cycles = round_trip_latency_s * self.frequency_hz
        return self.sustained_bytes_per_cycle(latency_cycles) * self.frequency_hz

    # ------------------------------------------------------------------ transfers
    def transfer(
        self,
        size_bytes: int,
        round_trip_latency_cycles: float = 0.0,
        translation_stall_cycles: int = 0,
    ) -> DMATransferResult:
        """Time a transfer of ``size_bytes`` under the given memory latency."""
        if size_bytes < 0:
            raise ValueError("transfer size cannot be negative")
        self.transfers += 1
        self.bytes_transferred += size_bytes
        if size_bytes == 0:
            return DMATransferResult(0, 0, translation_stall_cycles)
        bandwidth = self.sustained_bytes_per_cycle(round_trip_latency_cycles)
        # The first line's latency is exposed; the rest pipelines behind it.
        cycles = math.ceil(round_trip_latency_cycles + size_bytes / bandwidth)
        return DMATransferResult(size_bytes, cycles, translation_stall_cycles)

    def reset_stats(self) -> None:
        self.bytes_transferred = 0
        self.transfers = 0
