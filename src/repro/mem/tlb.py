"""TLB models: single level and the ITLB/DTLB + shared L2 TLB hierarchy of Table I."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.mem.address import DEFAULT_PAGE_SIZE, page_number, page_offset
from repro.mem.page_table import PageFaultError, PageTable, PageTableWalker


@dataclass(frozen=True)
class TLBEntry:
    """One cached translation."""

    asid: int
    vpn: int
    pfn: int


@dataclass
class TLBStats:
    hits: int = 0
    misses: int = 0
    flushes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class TLB:
    """A fully associative, LRU-replaced TLB (the paper's TLBs are fully associative)."""

    def __init__(self, entries: int, page_size: int = DEFAULT_PAGE_SIZE, name: str = "tlb") -> None:
        if entries <= 0:
            raise ValueError("TLB must have at least one entry")
        self.capacity = entries
        self.page_size = page_size
        self.name = name
        self.stats = TLBStats()
        self._entries: OrderedDict[tuple[int, int], int] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, asid: int, vaddr: int) -> Optional[int]:
        """Return the physical address on hit, ``None`` on miss (stats are updated)."""
        vpn = page_number(vaddr, self.page_size)
        key = (asid, vpn)
        pfn = self._entries.get(key)
        if pfn is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return pfn * self.page_size + page_offset(vaddr, self.page_size)

    def lookup_batch(self, asid: int, vaddrs: Sequence[int]) -> np.ndarray:
        """Look up many addresses at once; misses yield ``-1``.

        Equivalent to calling :meth:`lookup` per address in order: the same
        hit/miss counts accrue and hits refresh the LRU order in sequence.
        Lookups never change TLB membership, so the per-address work reduces to
        one dict probe (plus the LRU touch on hits).
        """
        v = np.asarray(vaddrs, dtype=np.int64)
        shift = self.page_size.bit_length() - 1
        entries = self._entries
        get = entries.get
        move = entries.move_to_end
        pfns = np.empty(len(v), dtype=np.int64)
        hits = 0
        for index, vpn in enumerate((v >> shift).tolist()):
            pfn = get((asid, vpn))
            if pfn is None:
                pfns[index] = -1
            else:
                move((asid, vpn))
                hits += 1
                pfns[index] = pfn
        self.stats.hits += hits
        self.stats.misses += len(v) - hits
        mask = pfns >= 0
        return np.where(mask, (pfns << shift) | (v & (self.page_size - 1)), -1)

    def probe(self, asid: int, vaddr: int) -> bool:
        """Check for a translation without touching LRU state or stats."""
        return (asid, page_number(vaddr, self.page_size)) in self._entries

    def insert(self, asid: int, vaddr: int, paddr: int) -> None:
        """Install a translation, evicting the least recently used entry if full."""
        vpn = page_number(vaddr, self.page_size)
        pfn = page_number(paddr, self.page_size)
        key = (asid, vpn)
        if key in self._entries:
            self._entries.move_to_end(key)
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[key] = pfn

    def flush(self, asid: Optional[int] = None) -> None:
        """Invalidate all entries, or only those of one ASID."""
        self.stats.flushes += 1
        if asid is None:
            self._entries.clear()
        else:
            stale = [key for key in self._entries if key[0] == asid]
            for key in stale:
                del self._entries[key]


@dataclass
class TranslationResult:
    """Outcome of a translation through the TLB hierarchy."""

    paddr: int
    cycles: int
    level: str  # "l1", "l2" or "walk"

    @property
    def hit(self) -> bool:
        return self.level != "walk"


#: Per-address level codes used by the batched translation path.
LEVEL_L1, LEVEL_L2, LEVEL_WALK, LEVEL_FAULT = 0, 1, 2, 3


@dataclass
class BatchTranslationResult:
    """Outcome of translating a batch of addresses through the hierarchy.

    ``levels`` holds one of ``LEVEL_L1``/``LEVEL_L2``/``LEVEL_WALK``/
    ``LEVEL_FAULT`` per address; faulted addresses (skip mode only) carry
    ``paddr == -1`` and zero cycles.
    """

    paddrs: np.ndarray
    cycles: np.ndarray
    levels: np.ndarray

    def __len__(self) -> int:
        return len(self.paddrs)

    @property
    def walk_count(self) -> int:
        return int(np.count_nonzero(self.levels == LEVEL_WALK))

    @property
    def walk_cycles_total(self) -> int:
        return int(self.cycles[self.levels == LEVEL_WALK].sum())

    @property
    def fault_count(self) -> int:
        return int(np.count_nonzero(self.levels == LEVEL_FAULT))

    @property
    def ok_cycles_total(self) -> int:
        """Total cycles over the non-faulted addresses."""
        return int(self.cycles[self.levels != LEVEL_FAULT].sum())


class TLBHierarchy:
    """The per-core translation machinery: L1 TLB, shared L2 TLB, page-table walker.

    The MMAE shares the CPU core's L2 ("shared") TLB via a customised interface
    (paper Section III.A); :meth:`translate` is the path exercised both by CPU
    loads/stores and by mATLB pre-walk requests.
    """

    def __init__(
        self,
        l1_entries: int = 48,
        l2_entries: int = 1024,
        page_size: int = DEFAULT_PAGE_SIZE,
        l1_latency_cycles: int = 1,
        l2_latency_cycles: int = 4,
        walker: Optional[PageTableWalker] = None,
        name: str = "dtlb",
    ) -> None:
        self.l1 = TLB(l1_entries, page_size, name=f"{name}.l1")
        self.l2 = TLB(l2_entries, page_size, name=f"{name}.l2")
        self.page_size = page_size
        self.l1_latency_cycles = l1_latency_cycles
        self.l2_latency_cycles = l2_latency_cycles
        self.walker = walker if walker is not None else PageTableWalker()
        self.name = name

    def translate(self, page_table: PageTable, vaddr: int) -> TranslationResult:
        """Translate ``vaddr`` for the address space behind ``page_table``."""
        asid = page_table.asid
        paddr = self.l1.lookup(asid, vaddr)
        if paddr is not None:
            return TranslationResult(paddr, self.l1_latency_cycles, "l1")
        paddr = self.l2.lookup(asid, vaddr)
        if paddr is not None:
            self.l1.insert(asid, vaddr, paddr)
            return TranslationResult(paddr, self.l1_latency_cycles + self.l2_latency_cycles, "l2")
        walk = self.walker.walk(page_table, vaddr)
        self.l1.insert(asid, vaddr, walk.paddr)
        self.l2.insert(asid, vaddr, walk.paddr)
        cycles = self.l1_latency_cycles + self.l2_latency_cycles + walk.cycles
        return TranslationResult(walk.paddr, cycles, "walk")

    def prewalk(self, page_table: PageTable, vaddr: int) -> TranslationResult:
        """Install a translation ahead of use (issued by the mATLB).

        Identical to :meth:`translate` except the caller treats the returned
        cycles as background work that can overlap with computation.
        """
        return self.translate(page_table, vaddr)

    def translate_batch(
        self,
        page_table: PageTable,
        vaddrs: Sequence[int],
        on_fault: str = "raise",
    ) -> BatchTranslationResult:
        """Translate a batch of addresses exactly as per-address :meth:`translate` calls.

        The per-address hit levels, charged cycles, L1/L2 stats and LRU/eviction
        behaviour match the scalar loop bit for bit; page-table walks are issued
        through :meth:`PageTableWalker.walk_batch` in access order once the
        lookup pass has decided which addresses miss both TLB levels.

        ``on_fault`` selects the scalar caller being replicated: ``"raise"``
        propagates :class:`PageFaultError` at the first unmapped address (after
        charging the walker for the walks that preceded it, as the scalar loop
        would have); ``"skip"`` marks the address ``LEVEL_FAULT`` and continues,
        mirroring callers that catch the fault per address and move on.  In
        raise mode the exception carries ``batch_processed``/``batch_walks``/
        ``batch_walk_cycles`` attributes so upstream stats stay exact.
        """
        if on_fault not in ("raise", "skip"):
            raise ValueError(f"on_fault must be 'raise' or 'skip', got {on_fault!r}")
        v = np.asarray(vaddrs, dtype=np.int64)
        count = len(v)
        pfns = np.empty(count, dtype=np.int64)
        levels = np.empty(count, dtype=np.uint8)
        cycles = np.zeros(count, dtype=np.int64)
        if count == 0:
            return BatchTranslationResult(pfns, cycles, levels)

        asid = page_table.asid
        shift = self.page_size.bit_length() - 1
        pt_shift = page_table.page_size.bit_length() - 1
        pt_mask = page_table.page_size - 1
        mapped = page_table.mapped_mask(v).tolist()
        vaddr_list = v.tolist()

        l1_entries = self.l1._entries
        l2_entries = self.l2._entries
        l1_capacity = self.l1.capacity
        l2_capacity = self.l2.capacity
        l1_cost = self.l1_latency_cycles
        l2_cost = l1_cost + self.l2_latency_cycles
        pt_lookup = page_table.lookup
        l1_hits = l1_misses = l2_hits = l2_misses = 0
        walk_indices: List[int] = []

        fault_index = -1
        for index, vaddr in enumerate(vaddr_list):
            key = (asid, vaddr >> shift)
            pfn = l1_entries.get(key)
            if pfn is not None:
                l1_entries.move_to_end(key)
                l1_hits += 1
                pfns[index] = pfn
                levels[index] = LEVEL_L1
                cycles[index] = l1_cost
                continue
            l1_misses += 1
            pfn = l2_entries.get(key)
            if pfn is not None:
                l2_entries.move_to_end(key)
                l2_hits += 1
                if len(l1_entries) >= l1_capacity:
                    l1_entries.popitem(last=False)
                l1_entries[key] = pfn
                pfns[index] = pfn
                levels[index] = LEVEL_L2
                cycles[index] = l2_cost
                continue
            l2_misses += 1
            if not mapped[index]:
                if on_fault == "skip":
                    pfns[index] = -1
                    levels[index] = LEVEL_FAULT
                    continue
                fault_index = index
                break
            # Miss at both levels: the walk's translation is known from the page
            # table, so the entry installs immediately (later duplicates in the
            # batch must hit it) and only the walk-cycle charging is deferred.
            paddr = (pt_lookup(vaddr >> pt_shift) << pt_shift) | (vaddr & pt_mask)
            pfn = paddr >> shift
            if len(l1_entries) >= l1_capacity:
                l1_entries.popitem(last=False)
            l1_entries[key] = pfn
            if len(l2_entries) >= l2_capacity:
                l2_entries.popitem(last=False)
            l2_entries[key] = pfn
            walk_indices.append(index)
            pfns[index] = pfn
            levels[index] = LEVEL_WALK

        self.l1.stats.hits += l1_hits
        self.l1.stats.misses += l1_misses
        self.l2.stats.hits += l2_hits
        self.l2.stats.misses += l2_misses

        walk_cycles_total = 0
        if walk_indices:
            walk_idx = np.asarray(walk_indices, dtype=np.int64)
            _, walk_cycles = self.walker.walk_batch(page_table, v[walk_idx])
            cycles[walk_idx] = l2_cost + walk_cycles
            walk_cycles_total = int((l2_cost + walk_cycles).sum())

        if fault_index >= 0:
            error = PageFaultError(asid, int(vaddr_list[fault_index]))
            error.batch_processed = fault_index + 1
            error.batch_walks = len(walk_indices)
            error.batch_walk_cycles = walk_cycles_total
            raise error

        mask = pfns >= 0
        paddrs = np.where(mask, (pfns << shift) | (v & (self.page_size - 1)), -1)
        return BatchTranslationResult(paddrs, cycles, levels)

    def flush(self, asid: Optional[int] = None) -> None:
        self.l1.flush(asid)
        self.l2.flush(asid)

    @property
    def total_misses(self) -> int:
        return self.l2.stats.misses

    @property
    def total_accesses(self) -> int:
        return self.l1.stats.accesses
