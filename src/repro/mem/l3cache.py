"""The distributed L3 "system cache" with stash and lock support.

The L3 is distributed among the CCMs on the mesh and shared by all compute
nodes (paper Section III.A).  The paper's GEMM+ mapping scheme relies on two
operations this model provides (Section IV.B, Fig. 5(b)):

* **stash** — prefetch a region from main memory into the L3 ahead of use
  (issued by the MA_STASH instruction or by the MMAE itself), and
* **lock** — pin the stashed lines so the GEMM working set cannot be evicted
  while the CPU's non-GEMM operators and the MMAE's DMA streams share the L3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.mem.address import AddressRange, DEFAULT_LINE_SIZE
from repro.mem.cache import CacheConfig, SetAssociativeCache
from repro.mem.coherence import DirectoryController


@dataclass(frozen=True)
class StashRequest:
    """A request to prefetch (and optionally lock) an address range into the L3."""

    range: AddressRange
    lock: bool = False
    requester: int = 0  # node id issuing the stash


@dataclass
class StashResult:
    """Outcome of a stash operation."""

    lines_fetched: int
    lines_already_resident: int
    lines_locked: int
    bytes_fetched: int


@dataclass
class L3AccessResult:
    hit: bool
    latency_cycles: int
    from_dram: bool


class L3Slice:
    """One CCM's slice of the system cache: a set-associative array plus a directory."""

    def __init__(self, slice_id: int, config: CacheConfig) -> None:
        self.slice_id = slice_id
        self.cache = SetAssociativeCache(config)
        self.directory = DirectoryController(name=f"ccm{slice_id}")

    @property
    def config(self) -> CacheConfig:
        return self.cache.config


class DistributedL3Cache:
    """The full system cache: ``num_slices`` L3 slices, line-interleaved by address.

    Latency parameters are expressed in NoC cycles; the caller converts to the
    relevant clock domain.  ``dram_latency_cycles`` is the extra cost of a miss
    serviced by the DDR controller.
    """

    def __init__(
        self,
        num_slices: int = 4,
        slice_size_bytes: int = 8 * 1024 * 1024,
        associativity: int = 16,
        line_size: int = DEFAULT_LINE_SIZE,
        hit_latency_cycles: int = 40,
        dram_latency_cycles: int = 160,
        max_locked_fraction: float = 0.75,
    ) -> None:
        if num_slices <= 0:
            raise ValueError("num_slices must be positive")
        if not 0.0 < max_locked_fraction <= 1.0:
            raise ValueError("max_locked_fraction must be in (0, 1]")
        self.line_size = line_size
        self.hit_latency_cycles = hit_latency_cycles
        self.dram_latency_cycles = dram_latency_cycles
        self.max_locked_fraction = max_locked_fraction
        self.slices: List[L3Slice] = [
            L3Slice(
                slice_id,
                CacheConfig(
                    name=f"l3.slice{slice_id}",
                    size_bytes=slice_size_bytes,
                    associativity=associativity,
                    line_size=line_size,
                    hit_latency_cycles=hit_latency_cycles,
                ),
            )
            for slice_id in range(num_slices)
        ]
        self.stash_requests = 0
        self.locked_bytes = 0

    # ------------------------------------------------------------------ geometry
    @property
    def num_slices(self) -> int:
        return len(self.slices)

    @property
    def total_size_bytes(self) -> int:
        return sum(s.config.size_bytes for s in self.slices)

    @property
    def total_locked_lines(self) -> int:
        return sum(s.cache.locked_lines for s in self.slices)

    def slice_for(self, address: int) -> L3Slice:
        """Line-interleaved home-slice mapping."""
        return self.slices[(address // self.line_size) % self.num_slices]

    # -------------------------------------------------------------------- access
    def access(self, node_id: int, address: int, write: bool = False) -> L3AccessResult:
        """Access one line on behalf of ``node_id`` (CPU or MMAE DMA)."""
        home = self.slice_for(address)
        if write:
            home.directory.handle_write(node_id, self._line_address(address))
        else:
            home.directory.handle_read(node_id, self._line_address(address))
        result = home.cache.access(address, write=write)
        if result.hit:
            return L3AccessResult(True, self.hit_latency_cycles, from_dram=False)
        return L3AccessResult(
            False, self.hit_latency_cycles + self.dram_latency_cycles, from_dram=True
        )

    def access_range(self, node_id: int, byte_range: AddressRange, write: bool = False) -> Dict[str, int]:
        """Access every line of a byte range; returns hit/miss line counts."""
        hits = 0
        misses = 0
        for line_address in byte_range.lines(self.line_size):
            if self.access(node_id, line_address, write=write).hit:
                hits += 1
            else:
                misses += 1
        return {"hits": hits, "misses": misses}

    def _line_address(self, address: int) -> int:
        return address - (address % self.line_size)

    def probe(self, address: int) -> bool:
        return self.slice_for(address).cache.probe(address)

    # --------------------------------------------------------------- stash / lock
    def stash(self, request: StashRequest) -> StashResult:
        """Prefetch ``request.range`` into the L3, optionally locking the lines.

        Locking is refused (the line is still stashed, just not pinned) once the
        locked fraction of the cache would exceed ``max_locked_fraction`` — the
        hardware must always keep some ways available for demand traffic.
        """
        self.stash_requests += 1
        fetched = 0
        resident = 0
        locked = 0
        lock_budget_lines = int(
            self.max_locked_fraction * sum(s.config.num_lines for s in self.slices)
        )
        for line_address in request.range.lines(self.line_size):
            home = self.slice_for(line_address)
            if home.cache.probe(line_address):
                resident += 1
            else:
                home.cache.fill(line_address)
                home.directory.handle_read(request.requester, line_address)
                fetched += 1
            if request.lock and self.total_locked_lines < lock_budget_lines:
                if home.cache.lock(line_address):
                    locked += 1
        self.locked_bytes += locked * self.line_size
        return StashResult(
            lines_fetched=fetched,
            lines_already_resident=resident,
            lines_locked=locked,
            bytes_fetched=fetched * self.line_size,
        )

    def unlock_range(self, byte_range: AddressRange) -> int:
        """Unpin every line of a range; returns the number of lines unlocked."""
        unlocked = 0
        for line_address in byte_range.lines(self.line_size):
            if self.slice_for(line_address).cache.unlock(line_address):
                unlocked += 1
        self.locked_bytes = max(0, self.locked_bytes - unlocked * self.line_size)
        return unlocked

    def unlock_all(self) -> int:
        unlocked = sum(s.cache.unlock_all() for s in self.slices)
        self.locked_bytes = 0
        return unlocked

    # ------------------------------------------------------------------- metrics
    def hit_rate(self) -> float:
        hits = sum(s.cache.stats.hits for s in self.slices)
        accesses = sum(s.cache.stats.accesses for s in self.slices)
        return hits / accesses if accesses else 0.0

    def residency_of(self, byte_range: AddressRange) -> float:
        """Fraction of the range's lines currently resident in the L3."""
        lines = byte_range.lines(self.line_size)
        if not lines:
            return 0.0
        resident = sum(1 for line in lines if self.probe(line))
        return resident / len(lines)
