"""Tests for iteration-level continuous batching (repro.serve, batching="step").

Covers the public surface (exports, scheduler-name round-trips), the
determinism guarantees from docs/ARCHITECTURE.md section 4, the byte-exact
degenerate parity with the request-level loop (DESIGN.md section 8.3), the
preemption/victim policy, the SLO metrics, and the CLI flags.
"""

import json

import pytest

import repro.serve
from repro.cli import _parse_slo, build_parser, main
from repro.core import maco_default_config
from repro.gemm import Precision
from repro.serve import (
    SCHEDULER_NAMES,
    DEFAULT_KV_BUDGET_BYTES,
    PriorityScheduler,
    Request,
    ServeSimulator,
    SLOScheduler,
    llm_tenants,
    poisson_trace,
    scheduler_by_name,
)
from repro.workloads import workload_graph_by_name

#: Small LLaMA proxy: one prefill step plus four 8-token decode blocks, so
#: step-mode scenarios run in well under a second.
VARIANT = "llama-7b@layers=2,prompt=128,decode=32,block=8"
#: Longer-decode variant whose resident KV grows across eight decode steps —
#: enough headroom between admission and peak for a tight budget to force
#: mid-flight preemptions (the short variant is admission-gated instead).
LONG_VARIANT = "llama-7b@layers=2,prompt=128,decode=64,block=8"


def llm_trace(seed=7, tenants=2, utilization=1.1, requests=40, config=None,
              variant=VARIANT):
    config = config or maco_default_config(num_nodes=4)
    sizing = ServeSimulator(config=config)
    specs = sizing.suggest_rates(llm_tenants(tenants, variant=variant),
                                 utilization=utilization)
    duration = requests / sum(spec.rate_rps for spec in specs)
    return poisson_trace(specs, duration, seed=seed)


def step_simulator(**overrides):
    defaults = dict(config=maco_default_config(num_nodes=4), scheduler="fcfs",
                    batching="step", max_batch=4)
    defaults.update(overrides)
    return ServeSimulator(**defaults)


def make_request(request_id, arrival=0.0, priority=0, ttft_slo_s=None):
    return Request(request_id=request_id, tenant="t0", workload=VARIANT,
                   arrival_s=arrival, priority=priority, ttft_slo_s=ttft_slo_s)


class TestPublicSurface:
    def test_every_export_resolves(self):
        for name in repro.serve.__all__:
            assert getattr(repro.serve, name) is not None, name

    def test_scheduler_names_round_trip(self):
        for name in SCHEDULER_NAMES:
            policy = scheduler_by_name(name, estimator=lambda request: 1.0)
            assert policy.name == name

    def test_sjf_requires_estimator(self):
        with pytest.raises(ValueError, match="estimator"):
            scheduler_by_name("sjf")

    def test_unknown_name_lists_options(self):
        with pytest.raises(ValueError, match="slo"):
            scheduler_by_name("deadline")


class TestPolicies:
    def test_priority_serves_higher_tiers_first(self):
        policy = PriorityScheduler()
        policy.push(make_request("r0", arrival=0.0, priority=0))
        policy.push(make_request("r1", arrival=1.0, priority=2))
        policy.push(make_request("r2", arrival=2.0, priority=1))
        assert [policy.pop().request_id for _ in range(3)] == ["r1", "r2", "r0"]

    def test_slo_is_edf_within_a_tier(self):
        policy = SLOScheduler()
        policy.push(make_request("r0", arrival=0.0, ttft_slo_s=9.0))
        policy.push(make_request("r1", arrival=1.0, ttft_slo_s=2.0))
        policy.push(make_request("r2", arrival=2.0))  # no target: deadline inf
        assert [policy.pop().request_id for _ in range(3)] == ["r1", "r0", "r2"]

    def test_slo_priority_tier_beats_deadline(self):
        policy = SLOScheduler()
        policy.push(make_request("r0", arrival=0.0, ttft_slo_s=0.1))
        policy.push(make_request("r1", arrival=0.0, priority=1, ttft_slo_s=9.0))
        assert policy.pop().request_id == "r1"

    def test_victim_is_lowest_tier_then_newest(self):
        policy = scheduler_by_name("fcfs")
        running = [
            make_request("r0", arrival=0.0, priority=1),
            make_request("r1", arrival=2.0),
            make_request("r2", arrival=1.0),
        ]
        assert policy.victim(running).request_id == "r1"
        assert policy.victim(running[:1] + running[2:]).request_id == "r2"


class TestDeterminism:
    def test_step_mode_reruns_byte_identical(self):
        first = step_simulator(scheduler="slo").run(llm_trace())
        second = step_simulator(scheduler="slo").run(llm_trace())
        assert first.to_json() == second.to_json()

    def test_jobs_do_not_change_step_reports(self):
        serial = step_simulator().run(llm_trace())
        parallel = step_simulator(jobs=2).run(llm_trace())
        assert serial.to_json() == parallel.to_json()

    def test_preemption_is_deterministic(self):
        def tight():
            simulator = step_simulator()
            peak = simulator.service_profile(LONG_VARIANT).peak_state_bytes
            return step_simulator(kv_budget_bytes=peak * 1.5)

        trace = llm_trace(variant=LONG_VARIANT, requests=60)
        first, second = tight().run(trace), tight().run(trace)
        assert first.preemptions > 0
        assert first.to_json() == second.to_json()


class TestDegenerateParity:
    def test_batch_one_no_preemption_is_byte_exact_legacy(self):
        trace = llm_trace()
        legacy = ServeSimulator(config=maco_default_config(num_nodes=4)).run(trace)
        step = step_simulator(max_batch=1, preemption=False).run(trace)
        legacy_payload = json.loads(legacy.to_json())
        step_payload = json.loads(step.to_json())
        # Only the mode label differs: the degenerate configuration delegates
        # to the request-level loop but still reports what was configured.
        assert legacy_payload.pop("batching") == "request"
        assert step_payload.pop("batching") == "step"
        assert step_payload == legacy_payload

    def test_general_step_loop_at_batch_one_matches_legacy_closely(self):
        # With preemption on, batch 1 runs the real iteration loop; an
        # uncontended budget never evicts, so it must agree with the legacy
        # dispatcher up to quantization: the request-level engine now runs
        # on integer nanosecond ticks, so per-request times agree with the
        # float step loop only to ~1 ns, which compounds to ~1e-8 relative
        # on second-scale latencies.
        trace = llm_trace()
        legacy = ServeSimulator(config=maco_default_config(num_nodes=4)).run(trace)
        step = step_simulator(max_batch=1, preemption=True).run(trace)
        assert step.preemptions == 0
        assert step.throughput_rps == pytest.approx(legacy.throughput_rps, rel=1e-7)
        assert step.latency_p95_s == pytest.approx(legacy.latency_p95_s, rel=1e-7)
        assert step.latency_p50_s == pytest.approx(legacy.latency_p50_s, rel=1e-7)


class TestStepExecution:
    def test_all_requests_complete(self):
        trace = llm_trace()
        report = step_simulator().run(trace)
        assert sum(tenant.requests for tenant in report.tenants) == len(trace)
        assert report.batching == "step"

    def test_budget_must_fit_one_request(self):
        with pytest.raises(ValueError, match="kv_budget_bytes"):
            step_simulator(kv_budget_bytes=1024).run(llm_trace(requests=4))

    def test_no_preemption_keeps_residents(self):
        # Same tight budget that forces preemptions above: with preemption
        # disabled it only gates admission, so nobody is ever evicted.
        simulator = step_simulator()
        peak = simulator.service_profile(LONG_VARIANT).peak_state_bytes
        report = step_simulator(kv_budget_bytes=peak * 1.5, preemption=False).run(
            llm_trace(variant=LONG_VARIANT, requests=60))
        assert report.preemptions == 0

    def test_preemption_charges_restore_and_slows_victims(self):
        trace = llm_trace(variant=LONG_VARIANT, requests=60)
        simulator = step_simulator()
        peak = simulator.service_profile(LONG_VARIANT).peak_state_bytes
        roomy = step_simulator(kv_budget_bytes=DEFAULT_KV_BUDGET_BYTES).run(trace)
        tight = step_simulator(kv_budget_bytes=peak * 1.5).run(trace)
        assert tight.preemptions > 0
        assert sum(t.requests for t in tight.tenants) == len(trace)
        assert roomy.preemptions == 0

    def test_service_profile_partitions_request_latency(self):
        simulator = step_simulator()
        profile = simulator.service_profile(VARIANT)
        assert len(profile.steps) > 1
        assert sum(step.seconds for step in profile.steps) == pytest.approx(
            profile.latency_s, rel=1e-12)
        assert profile.peak_state_bytes == max(step.state_bytes for step in profile.steps)


class TestSLOMetrics:
    def test_goodput_never_exceeds_throughput(self):
        report = step_simulator(scheduler="slo").run(llm_trace())
        assert 0.0 <= report.goodput_rps <= report.throughput_rps + 1e-12
        assert 0.0 <= report.slo_attainment <= 1.0

    def test_no_targets_means_full_attainment(self):
        report = step_simulator().run(llm_trace())
        assert report.slo_attainment == 1.0
        assert report.goodput_rps == pytest.approx(report.throughput_rps)

    def test_ttft_tpot_percentiles_are_ordered(self):
        report = step_simulator().run(llm_trace())
        assert report.ttft_p50_s <= report.ttft_p95_s <= report.ttft_p99_s
        assert report.tpot_p50_s <= report.tpot_p95_s <= report.tpot_p99_s
        assert report.ttft_p50_s > 0.0


class TestWorkloadTokens:
    def test_decode_phases_carry_token_counts(self):
        graph = workload_graph_by_name(VARIANT, Precision.FP32)
        decode_tokens = [phase.tokens for phase in graph.phases if "decode" in phase.name]
        assert decode_tokens and all(tokens > 0 for tokens in decode_tokens)
        assert sum(decode_tokens) == graph.total_tokens

    def test_profile_tokens_match_graph(self):
        simulator = step_simulator()
        graph = workload_graph_by_name(VARIANT, Precision.FP32)
        profile = simulator.service_profile(VARIANT)
        assert profile.total_tokens == graph.total_tokens


class TestCLI:
    def test_serve_step_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.batching == "request"
        assert args.max_batch == 8
        assert args.kv_budget is None
        assert not args.no_preemption
        assert args.slo is None

    def test_scheduler_choices_track_registry(self):
        for name in SCHEDULER_NAMES:
            args = build_parser().parse_args(["serve", "--scheduler", name])
            assert args.scheduler == name

    def test_parse_slo_forms(self):
        assert _parse_slo("0.5") == (0.5, None)
        assert _parse_slo(":0.1") == (None, 0.1)
        assert _parse_slo("0.5:0.1") == (0.5, 0.1)

    @pytest.mark.parametrize("text", ["", ":", "fast", "-1", "0.5:-1"])
    def test_parse_slo_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            _parse_slo(text)

    def test_malformed_slo_exits_cleanly(self, capsys):
        assert main(["serve", "--trace", "poisson", "--tenants", "2",
                     "--tenant-mix", "llm", "--requests", "8", "--nodes", "2",
                     "--slo", "banana"]) == 2
        assert "--slo" in capsys.readouterr().err

    def test_step_serve_command_reports_slo_table(self, capsys):
        assert main(["serve", "--trace", "poisson", "--tenants", "2",
                     "--tenant-mix", "llm", "--seed", "7", "--requests", "12",
                     "--nodes", "2", "--batching", "step", "--max-batch", "4",
                     "--scheduler", "slo", "--slo", "0.5:0.1"]) == 0
        output = capsys.readouterr().out
        assert "SLO" in output
        assert "preemptions" in output
