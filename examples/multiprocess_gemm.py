#!/usr/bin/env python
"""Multi-process GEMM submission and exception handling on one compute node.

Demonstrates the machinery of the paper's Section III.C: two processes share
one CPU+MMAE pair, each submits a GEMM task through MA_CFG, the OS switches
between them, and both can later retrieve their task state from the MTQ —
the entries are keyed by MAID and tagged with the ASID, so they survive the
context switches.  The example also shows the exception path: a task whose
operands are not mapped terminates with the PAGE_FAULT exception and must be
cleared with MA_CLEAR before the entry can be reused.
"""

import numpy as np

from repro.core import MACOSystem, maco_default_config
from repro.cpu.exceptions import ExceptionType
from repro.cpu.mtq import StatusWord
from repro.gemm import Precision
from repro.isa.assembler import assemble_program
from repro.isa.instructions import GEMMDescriptor


def submit(node, descriptor) -> int:
    """MA_CFG: pack the descriptor into X2..X7 and request an MTQ entry."""
    node.cpu.registers.write_block(2, descriptor.pack())
    trace = node.executor.execute_program(assemble_program("MA_CFG X1, X2"))[0]
    return trace.maid


def query(node, maid: int, release: bool = False) -> StatusWord:
    """MA_READ / MA_STATE on the entry identified by ``maid``."""
    node.cpu.registers.write(1, maid)
    mnemonic = "MA_STATE X4, X1" if release else "MA_READ X4, X1"
    trace = node.executor.execute_program(assemble_program(mnemonic))[0]
    return StatusWord.unpack(trace.status_word)


def main() -> None:
    system = MACOSystem(maco_default_config(num_nodes=1))
    node = system.node(0)
    rng = np.random.default_rng(3)

    # ----------------------------------------------------------- two processes
    process_a = node.default_process
    process_b = node.cpu.processes.create_process("worker-b")
    node.cpu.mmu.register_page_table(process_b.address_space.page_table)

    size = 64
    a = rng.standard_normal((size, size))
    b = rng.standard_normal((size, size))
    addr_a, _ = node.allocate_matrix(size, size, Precision.FP64, data=a)
    addr_b, _ = node.allocate_matrix(size, size, Precision.FP64, data=b)
    addr_c, c_array = node.allocate_matrix(size, size, Precision.FP64)
    good_descriptor = GEMMDescriptor(
        addr_a=addr_a, addr_b=addr_b, addr_c=addr_c, m=size, n=size, k=size,
        tile_rows=size, tile_cols=size, ttr=size, ttc=size,
    )

    print(f"Process A (ASID {process_a.asid}) submits a {size}^3 GEMM via MA_CFG...")
    maid_a = submit(node, good_descriptor)
    print(f"  allocated MAID {maid_a}")

    # Switch to process B, which submits a task with unmapped operands.
    node.switch_process = node.cpu.switch_process  # alias for readability
    node.switch_process(process_b.asid)
    bad_descriptor = GEMMDescriptor(
        addr_a=0xDEAD0000, addr_b=0xBEEF0000, addr_c=0xFEED0000, m=64, n=64, k=64,
        tile_rows=64, tile_cols=64, ttr=64, ttc=64,
    )
    print(f"Process B (ASID {process_b.asid}) submits a GEMM with unmapped operands...")
    maid_b = submit(node, bad_descriptor)
    print(f"  allocated MAID {maid_b}")

    # The MMAE drains its task queue (both buffered tasks execute in order).
    node.mmae.execute_pending()

    # Process B checks its task: it completed with a PAGE_FAULT exception.
    status_b = query(node, maid_b)
    print(f"Process B task state: done={status_b.done}, exception={status_b.exception_type.name}")
    assert status_b.exception_type is ExceptionType.PAGE_FAULT
    node.cpu.registers.write(1, maid_b)
    node.executor.execute_program(assemble_program("MA_CLEAR X1"))
    print("  entry cleared with MA_CLEAR")

    # Back to process A: its result survived the context switches.
    node.cpu.switch_process(process_a.asid)
    status_a = query(node, maid_a, release=True)
    reference = a @ b
    error = float(np.max(np.abs(c_array - reference)))
    print(f"Process A task state: done={status_a.done}, exception_en={status_a.exception_en}")
    print(f"  max |error| vs numpy: {error:.2e}")
    assert status_a.done and not status_a.exception_en and error < 1e-9
    print("Both processes observed their own task outcomes through the MTQ.")


if __name__ == "__main__":
    main()
