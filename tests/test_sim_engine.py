"""Tests for the event queue, simulation engine and statistics registry."""

import pytest

from repro.sim import Counter, EventQueue, Histogram, SimulationEngine, StatsRegistry


class TestEventQueue:
    def test_events_pop_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(3.0, lambda: order.append("c"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(2.0, lambda: order.append("b"))
        while queue:
            queue.pop().fire()
        assert order == ["a", "b", "c"]

    def test_same_time_respects_priority_then_fifo(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, lambda: order.append("low"), priority=1)
        queue.push(1.0, lambda: order.append("first"), priority=0)
        queue.push(1.0, lambda: order.append("second"), priority=0)
        while queue:
            queue.pop().fire()
        assert order == ["first", "second", "low"]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, lambda: fired.append(1))
        event.cancel()
        assert queue.pop() is None
        assert fired == []

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        assert len(queue) == 1

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.push(-1.0, lambda: None)

    def test_peek_time(self):
        queue = EventQueue()
        queue.push(5.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.peek_time() == 2.0


class TestSimulationEngine:
    def test_run_advances_time(self):
        engine = SimulationEngine()
        engine.schedule(10.0, lambda: None)
        assert engine.run() == 10.0

    def test_schedule_after_uses_relative_delay(self):
        engine = SimulationEngine()
        times = []
        engine.schedule_after(5.0, lambda: times.append(engine.now))
        engine.run()
        assert times == [5.0]

    def test_cascading_events(self):
        engine = SimulationEngine()
        log = []

        def first():
            log.append(("first", engine.now))
            engine.schedule_after(2.0, second)

        def second():
            log.append(("second", engine.now))

        engine.schedule(1.0, first)
        engine.run()
        assert log == [("first", 1.0), ("second", 3.0)]

    def test_run_until_stops_before_later_events(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(10))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0

    def test_cannot_schedule_in_the_past(self):
        engine = SimulationEngine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule(1.0, lambda: None)

    def test_max_events_limit(self):
        engine = SimulationEngine()
        for t in range(10):
            engine.schedule(float(t), lambda: None)
        engine.run(max_events=3)
        assert engine.events_fired == 3

    def test_stop_from_callback(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: (fired.append(1), engine.stop()))
        engine.schedule(2.0, lambda: fired.append(2))
        engine.run()
        assert fired == [1]

    def test_reset_clears_state(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        engine.reset()
        assert engine.now == 0.0
        assert engine.events_fired == 0


class TestStats:
    def test_counter_accumulates(self):
        counter = Counter("x")
        counter.add(2)
        counter.add(3.5)
        assert counter.value == 5.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").add(-1)

    def test_histogram_tracks_min_mean_max(self):
        hist = Histogram("lat")
        for sample in (1.0, 2.0, 6.0):
            hist.observe(sample)
        assert hist.minimum == 1.0
        assert hist.maximum == 6.0
        assert hist.mean == pytest.approx(3.0)

    def test_registry_creates_and_reuses_counters(self):
        stats = StatsRegistry(prefix="node0")
        stats.counter("hits").add(1)
        stats.counter("hits").add(1)
        assert stats.snapshot()["node0.hits"] == 2

    def test_registry_snapshot_includes_histograms(self):
        stats = StatsRegistry()
        stats.histogram("lat").observe(4.0)
        snap = stats.snapshot()
        assert snap["lat.count"] == 1
        assert snap["lat.mean"] == 4.0

    def test_registry_reset(self):
        stats = StatsRegistry()
        stats.counter("hits").add(5)
        stats.reset()
        assert stats.snapshot()["hits"] == 0

    def test_report_lines_sorted(self):
        stats = StatsRegistry()
        stats.counter("b").add(1)
        stats.counter("a").add(2)
        lines = stats.report_lines()
        assert lines == ["a = 2", "b = 1"]
