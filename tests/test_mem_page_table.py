"""Tests for page tables, address spaces, frame allocation and the walker."""

import pytest

from repro.mem.page_table import (
    AddressSpace,
    FrameAllocator,
    PageFaultError,
    PageTable,
    PageTableWalker,
)


class TestFrameAllocator:
    def test_allocates_consecutive_frames(self):
        allocator = FrameAllocator(total_frames=16)
        assert allocator.allocate(3) == [0, 1, 2]
        assert allocator.allocate(2) == [3, 4]

    def test_out_of_frames(self):
        allocator = FrameAllocator(total_frames=2)
        allocator.allocate(2)
        with pytest.raises(MemoryError):
            allocator.allocate(1)

    def test_free_count(self):
        allocator = FrameAllocator(total_frames=10)
        allocator.allocate(4)
        assert allocator.frames_free == 6


class TestPageTable:
    def test_translate_mapped_page(self):
        table = PageTable(asid=1)
        table.map_page(vpn=5, pfn=42)
        paddr = table.translate(5 * 4096 + 123)
        assert paddr == 42 * 4096 + 123

    def test_unmapped_page_faults(self):
        table = PageTable(asid=1)
        with pytest.raises(PageFaultError) as excinfo:
            table.translate(0x10000)
        assert excinfo.value.asid == 1

    def test_unmap(self):
        table = PageTable(asid=0)
        table.map_page(1, 1)
        table.unmap_page(1)
        assert not table.is_mapped(4096)

    def test_mapped_pages_count(self):
        table = PageTable(asid=0)
        for vpn in range(8):
            table.map_page(vpn, vpn + 100)
        assert table.mapped_pages == 8


class TestAddressSpace:
    def test_region_allocation_is_page_aligned_and_mapped(self):
        space = AddressSpace(asid=3, frame_allocator=FrameAllocator(1024))
        base = space.allocate_region("a", 10000)
        assert base % 4096 == 0
        # Every byte of the region translates without faulting.
        assert space.translate(base) >= 0
        assert space.translate(base + 9999) >= 0

    def test_regions_do_not_overlap(self):
        space = AddressSpace(asid=0, frame_allocator=FrameAllocator(1024))
        base_a = space.allocate_region("a", 4096)
        base_b = space.allocate_region("b", 4096)
        assert base_b >= base_a + 4096

    def test_duplicate_region_name_rejected(self):
        space = AddressSpace(asid=0, frame_allocator=FrameAllocator(1024))
        space.allocate_region("a", 100)
        with pytest.raises(ValueError):
            space.allocate_region("a", 100)

    def test_region_lookup(self):
        space = AddressSpace(asid=0, frame_allocator=FrameAllocator(1024))
        base = space.allocate_region("weights", 8192)
        assert space.region("weights") == (base, 8192)
        with pytest.raises(KeyError):
            space.region("missing")

    def test_distinct_address_spaces_use_distinct_frames(self):
        allocator = FrameAllocator(1024)
        space_a = AddressSpace(asid=0, frame_allocator=allocator)
        space_b = AddressSpace(asid=1, frame_allocator=allocator)
        base_a = space_a.allocate_region("x", 4096)
        base_b = space_b.allocate_region("x", 4096)
        assert space_a.translate(base_a) != space_b.translate(base_b)


class TestPageTableWalker:
    def _mapped_table(self, pages: int = 64) -> PageTable:
        table = PageTable(asid=0)
        for vpn in range(pages):
            table.map_page(vpn, vpn + 1000)
        return table

    def test_walk_returns_correct_translation(self):
        walker = PageTableWalker()
        table = self._mapped_table()
        result = walker.walk(table, 3 * 4096 + 17)
        assert result.paddr == table.translate(3 * 4096 + 17)

    def test_walk_charges_one_access_per_level(self):
        walker = PageTableWalker()
        table = self._mapped_table()
        result = walker.walk(table, 0)
        assert result.memory_accesses == table.levels

    def test_repeated_walks_get_cheaper(self):
        walker = PageTableWalker()
        table = self._mapped_table()
        first = walker.walk(table, 0).cycles
        second = walker.walk(table, 64).cycles  # same leaf region, upper levels cached
        assert second < first

    def test_walk_faults_propagate(self):
        walker = PageTableWalker()
        table = PageTable(asid=0)
        with pytest.raises(PageFaultError):
            walker.walk(table, 0xDEADBEEF)

    def test_average_walk_cycles_tracked(self):
        walker = PageTableWalker()
        table = self._mapped_table()
        walker.walk(table, 0)
        walker.walk(table, 4096)
        assert walker.walks_performed == 2
        assert walker.average_walk_cycles > 0
