"""The Accelerator Data Engine (ADE).

The ADE owns the MMAE's two DMA engines and is responsible for moving tile
data between the L3 system cache and the A/B/C scratchpad buffers (paper
Fig. 2(a)).  For the functional execution path it also performs the actual
NumPy sub-block reads/writes against the :class:`~repro.mem.hostmem.HostMemory`
view, translating virtual addresses through the mATLB (predictive path) or the
shared MMU (demand path) so the tests exercise the same translation machinery
the timing model charges for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.gemm.tiling import Tile
from repro.isa.instructions import GEMMDescriptor
from repro.mem.hostmem import HostMemory
from repro.mmae.buffers import BufferSet
from repro.mmae.dma import DMAEngine, DMATransferResult
from repro.mmae.matlb import MATLB, MatrixLayout


@dataclass
class TileTransferPlan:
    """Byte volumes a second-level tile moves through the DMA engines."""

    a_bytes: int
    b_bytes: int
    c_read_bytes: int
    c_write_bytes: int

    @property
    def load_bytes(self) -> int:
        return self.a_bytes + self.b_bytes + self.c_read_bytes

    @property
    def total_bytes(self) -> int:
        return self.load_bytes + self.c_write_bytes


class AcceleratorDataEngine:
    """Schedules tile transfers over the MMAE's DMA engines."""

    def __init__(
        self,
        buffers: Optional[BufferSet] = None,
        num_engines: int = 2,
        frequency_hz: float = 2.5e9,
        matlb: Optional[MATLB] = None,
    ) -> None:
        if num_engines <= 0:
            raise ValueError("the ADE needs at least one DMA engine")
        self.buffers = buffers if buffers is not None else BufferSet()
        self.engines: List[DMAEngine] = [
            DMAEngine(engine_id=index, frequency_hz=frequency_hz) for index in range(num_engines)
        ]
        self.matlb = matlb if matlb is not None else MATLB()
        self.translation_stall_cycles = 0
        self.demand_translations = 0

    # ------------------------------------------------------------------ planning
    @staticmethod
    def plan_tile(tile: Tile, element_bytes: int, accumulate: bool) -> TileTransferPlan:
        """Transfer plan for one second-level tile.

        ``accumulate`` is True when the C tile holds partial sums from a
        previous K block and must therefore be read before the MACs and written
        back afterwards; the first K block only writes.
        """
        a_bytes = tile.rows * tile.depth * element_bytes
        b_bytes = tile.depth * tile.cols * element_bytes
        c_bytes = tile.rows * tile.cols * element_bytes
        return TileTransferPlan(
            a_bytes=a_bytes,
            b_bytes=b_bytes,
            c_read_bytes=c_bytes if accumulate else 0,
            c_write_bytes=c_bytes,
        )

    def transfer_cycles(self, plan: TileTransferPlan, round_trip_latency_cycles: float = 0.0) -> int:
        """Cycles to move a tile's data, splitting the load across both engines."""
        per_engine = plan.total_bytes / len(self.engines)
        results = [
            engine.transfer(int(round(per_engine)), round_trip_latency_cycles)
            for engine in self.engines
        ]
        return max(result.total_cycles for result in results)

    # ----------------------------------------------------------------- functional
    def load_operands(
        self,
        memory: HostMemory,
        descriptor: GEMMDescriptor,
        tile: Tile,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Read the A, B and C sub-blocks of a tile from host memory."""
        a = memory.matrix_at(descriptor.addr_a)
        b = memory.matrix_at(descriptor.addr_b)
        c = memory.matrix_at(descriptor.addr_c)
        a_block = a[tile.row_start : tile.row_end, tile.k_start : tile.k_end]
        b_block = b[tile.k_start : tile.k_end, tile.col_start : tile.col_end]
        c_block = c[tile.row_start : tile.row_end, tile.col_start : tile.col_end]
        return a_block, b_block, c_block

    def store_result(
        self,
        memory: HostMemory,
        descriptor: GEMMDescriptor,
        tile: Tile,
        values: np.ndarray,
    ) -> None:
        """Write a computed C sub-block back to host memory in the C matrix's dtype."""
        c = memory.matrix_at(descriptor.addr_c)
        c[tile.row_start : tile.row_end, tile.col_start : tile.col_end] = values.astype(c.dtype)

    # ---------------------------------------------------------------- translation
    def translate_tile(
        self,
        mmu,
        asid: int,
        layout: MatrixLayout,
        tile_rows: Tuple[int, int],
        tile_cols: Tuple[int, int],
        prediction_enabled: bool,
    ) -> int:
        """Translate every page a tile touches; returns the exposed stall cycles.

        With prediction the mATLB pre-walks the pages (walk cycles are treated
        as hidden) and the demand lookups hit; without prediction each page
        missing from the mATLB costs a demand walk through the shared MMU.
        """
        row_start, row_count = tile_rows
        col_start, col_count = tile_cols
        pages = self.matlb.predictor.tile_page_addresses(
            layout, row_start, row_count, col_start, col_count
        )
        stall_cycles = 0
        if prediction_enabled:
            self.matlb.prewalk_pages(mmu, asid, pages)
        for page_vaddr in pages:
            if self.matlb.lookup(page_vaddr) is None:
                result = mmu.translate_data(asid, page_vaddr)
                self.demand_translations += 1
                stall_cycles += result.cycles
        self.translation_stall_cycles += stall_cycles
        return stall_cycles

    @property
    def total_bytes_transferred(self) -> int:
        return sum(engine.bytes_transferred for engine in self.engines)
