"""Mapping GEMM and GEMM+ workloads onto MACO's compute nodes (paper Section IV.B).

Two pieces are modelled:

* **multi-core GEMM partitioning** (Fig. 5(a)) — the output matrix Y is tiled
  and the tiles are distributed across the compute nodes.  The reproduction
  partitions the larger output dimension (rows or columns), which matches the
  figure's one-tile-column-per-node example for square matrices and keeps the
  per-node sub-GEMMs well shaped for the skewed layers of DL networks.  The
  operand that every node reads in full (B when rows are split, A when columns
  are split) is stashed and locked in the L3 once and shared.
* **GEMM+ scheduling** (Fig. 5(b)/(c)) — the CPU issues stash/lock requests
  ahead of the MMAE's tiles, distributes the non-GEMM tail operators of the
  previous layer across the CPU cores, and runs them while the MMAEs compute
  the next layer.  Without the mapping scheme the tail operators serialise
  after the GEMMs on the launching core and stream cold (unlocked) data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Literal

from repro.gemm.workloads import GEMMShape, GEMMWorkload

SplitDimension = Literal["rows", "cols"]


@dataclass(frozen=True)
class NodeAssignment:
    """The slice of a GEMM one compute node executes."""

    node_id: int
    shape: GEMMShape
    dimension: SplitDimension
    start: int
    end: int

    @property
    def extent(self) -> int:
        """Number of columns (or rows) this node covers."""
        return self.end - self.start


@dataclass
class MappingPlan:
    """How one GEMM is split across compute nodes (Fig. 5(a))."""

    original: GEMMShape
    dimension: SplitDimension
    assignments: List[NodeAssignment] = field(default_factory=list)
    shared_operand_bytes: int = 0
    per_node_private_bytes: int = 0

    @property
    def num_nodes(self) -> int:
        """Nodes that actually received work (can be fewer than requested)."""
        return len(self.assignments)

    @property
    def stash_bytes(self) -> int:
        """Bytes stashed and locked in the L3 ahead of the computation."""
        return self.shared_operand_bytes + self.num_nodes * self.per_node_private_bytes

    def covers_output(self) -> bool:
        """True if the assignments exactly tile the split dimension of Y."""
        covered = sorted((a.start, a.end) for a in self.assignments)
        cursor = 0
        for start, end in covered:
            if start != cursor:
                return False
            cursor = end
        target = self.original.m if self.dimension == "rows" else self.original.n
        return cursor == target

    def total_assigned_flops(self) -> int:
        """FLOPs across all assignments (equals the source shape's FLOPs)."""
        return sum(assignment.shape.flops for assignment in self.assignments)


def partition_gemm(shape: GEMMShape, num_nodes: int) -> MappingPlan:
    """Split a GEMM's output across ``num_nodes`` compute nodes (Fig. 5(a)).

    The larger output dimension is partitioned so the per-node sub-GEMMs stay
    as square as possible; if there are more nodes than elements along that
    dimension, the surplus nodes receive no work.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    element = shape.precision.bytes_per_element
    dimension: SplitDimension = "rows" if shape.m >= shape.n else "cols"
    extent = shape.m if dimension == "rows" else shape.n
    usable_nodes = min(num_nodes, extent)
    base, extra = divmod(extent, usable_nodes)

    assignments = []
    cursor = 0
    for node_id in range(usable_nodes):
        length = base + (1 if node_id < extra else 0)
        if dimension == "rows":
            sub_shape = GEMMShape(length, shape.n, shape.k, shape.precision)
        else:
            sub_shape = GEMMShape(shape.m, length, shape.k, shape.precision)
        assignments.append(
            NodeAssignment(
                node_id=node_id, shape=sub_shape, dimension=dimension,
                start=cursor, end=cursor + length,
            )
        )
        cursor += length

    largest = base + (1 if extra else 0)
    if dimension == "rows":
        # Every node reads the whole B; each node owns its A rows and C rows.
        shared_bytes = shape.k * shape.n * element
        private_bytes = largest * (shape.k + shape.n) * element
    else:
        # Every node reads the whole A; each node owns its B and C columns.
        shared_bytes = shape.m * shape.k * element
        private_bytes = largest * (shape.k + shape.m) * element

    return MappingPlan(
        original=shape,
        dimension=dimension,
        assignments=assignments,
        shared_operand_bytes=shared_bytes,
        per_node_private_bytes=private_bytes,
    )


@dataclass
class GemmPlusSchedule:
    """Timing of a GEMM+ workload on the compute nodes (Fig. 5(c)).

    ``mmae_seconds`` is the per-node MMAE busy time summed over the workload's
    GEMMs; ``cpu_seconds`` is the CPU time spent on the non-GEMM tail operators
    (already distributed across cores when the mapping scheme is on, on the
    single launching core when it is off).  With the mapping scheme the CPU
    work overlaps with the next layer's GEMM; without it every layer's tail
    serialises after its GEMM and streams cold data.
    """

    mmae_seconds: float
    cpu_seconds: float
    stash_seconds: float
    mapping_enabled: bool
    #: Fraction of the CPU tail that cannot be hidden even with the mapping
    #: scheme (the final layer's tail plus scheduling slack).
    exposed_tail_fraction: float = 0.08
    #: Bandwidth degradation of the CPU tail when its inputs are not locked in
    #: the L3 (cache misses to DRAM roughly halve the streaming rate).
    unmapped_cpu_slowdown: float = 2.0

    @property
    def total_seconds(self) -> float:
        """End-to-end workload time under the overlap model."""
        if self.mapping_enabled:
            hidden_cpu = self.cpu_seconds * (1.0 - self.exposed_tail_fraction)
            exposed_cpu = self.cpu_seconds * self.exposed_tail_fraction
            # Stash requests for weights are issued ahead of the tiles and overlap
            # with compute, but a dependent layer's activations can only be
            # stashed once the previous layer has produced them, so part of the
            # stash traffic stays on the critical path.
            exposed_stash = min(self.stash_seconds, 0.10 * self.mmae_seconds + 1e-9)
            return max(self.mmae_seconds, hidden_cpu) + exposed_cpu + exposed_stash
        # Without the mapping scheme: no stash (operands stream from DRAM on
        # demand), and the CPU tail serialises at degraded bandwidth.
        return self.mmae_seconds + self.cpu_seconds * self.unmapped_cpu_slowdown


def schedule_gemm_plus(
    mmae_seconds: float,
    cpu_seconds: float,
    stash_seconds: float,
    mapping_enabled: bool = True,
) -> GemmPlusSchedule:
    """Build the GEMM+ overlap schedule from the per-node component times."""
    for name, value in (("mmae", mmae_seconds), ("cpu", cpu_seconds), ("stash", stash_seconds)):
        if value < 0:
            raise ValueError(f"{name} time cannot be negative")
    return GemmPlusSchedule(
        mmae_seconds=mmae_seconds,
        cpu_seconds=cpu_seconds,
        stash_seconds=stash_seconds,
        mapping_enabled=mapping_enabled,
    )


def partition_workload(
    workload: GEMMWorkload, num_nodes: int
) -> List[List[GEMMShape]]:
    """Per-node GEMM lists for a full workload, partitioning every layer's GEMM.

    Layers execute in order (they are data dependent), so each layer's GEMM is
    split across all nodes rather than assigning whole layers to nodes.
    """
    per_node: List[List[GEMMShape]] = [[] for _ in range(num_nodes)]
    for shape in workload:
        plan = partition_gemm(shape, num_nodes)
        for assignment in plan.assignments:
            per_node[assignment.node_id].append(assignment.shape)
        # Nodes beyond the usable count simply skip this layer.
    return per_node
