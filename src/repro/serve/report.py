"""Aggregated results of a serving simulation.

:class:`ServeReport` is the single artefact a simulation run produces: fleet
throughput and tail latency, per-tenant and per-node breakdowns, queueing and
context-switch statistics, and — for LLM-style workloads — the serving
metrics that matter at iteration granularity:

* **TTFT** (time to first token): arrival to the end of the request's first
  step, i.e. how long a user stares at an empty screen;
* **TPOT** (time per output token): the decode-side pace, ``(finish - first
  token) / output tokens``, including any preemption stalls;
* **SLO attainment**: the fraction of requests that met *both* of their
  TTFT/TPOT targets (a request without targets counts as met);
* **goodput**: throughput counting only SLO-met requests — the number a
  capacity planner actually cares about under overload.

It renders as aligned ASCII tables (for eyeballs and diffs) or a stable JSON
document (``to_json`` sorts keys, so two runs with the same seed produce
byte-identical output — the determinism tests compare these strings directly).
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import latency_summary, render_table
from repro.serve.autoscale import AutoscaleStats

__all__ = [
    "TenantStats",
    "NodeStats",
    "ServeReport",
    "build_report",
    "build_report_from_columns",
]


def _percentiles(values: Sequence[float]) -> Dict[str, float]:
    """``latency_summary`` with an all-zero fallback for empty inputs."""
    if not values:
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
    return latency_summary(values)


def _slo_met(entry: dict) -> bool:
    """Did this completion meet its SLO targets?  No targets counts as met."""
    ttft_slo = entry.get("ttft_slo_s")
    tpot_slo = entry.get("tpot_slo_s")
    if ttft_slo is not None and entry.get("ttft_s", 0.0) > ttft_slo:
        return False
    if tpot_slo is not None and entry.get("tpot_s", 0.0) > tpot_slo:
        return False
    return True


@dataclass(frozen=True)
class TenantStats:
    """Per-tenant serving outcome: request counts, throughput, tail latency."""

    name: str
    requests: int
    throughput_rps: float
    latency_mean_s: float
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    wait_mean_s: float
    ttft_p50_s: float = 0.0
    ttft_p95_s: float = 0.0
    ttft_p99_s: float = 0.0
    tpot_p50_s: float = 0.0
    tpot_p95_s: float = 0.0
    tpot_p99_s: float = 0.0
    slo_attainment: float = 1.0
    goodput_rps: float = 0.0
    preemptions: int = 0


@dataclass(frozen=True)
class NodeStats:
    """Per-node serving outcome: completions, utilization, tenant switches."""

    node_id: int
    completed: int
    busy_s: float
    utilization: float
    tenant_switches: int
    switch_s: float
    preemptions: int = 0


@dataclass(frozen=True)
class ServeReport:
    """Everything a serving simulation measured, in one frozen record."""

    trace: str
    scheduler: str
    num_nodes: int
    total_requests: int
    makespan_s: float
    throughput_rps: float
    latency_mean_s: float
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    queue_depth_mean: float
    queue_depth_max: int
    context_switch_s: float
    batching: str = "request"
    ttft_p50_s: float = 0.0
    ttft_p95_s: float = 0.0
    ttft_p99_s: float = 0.0
    tpot_p50_s: float = 0.0
    tpot_p95_s: float = 0.0
    tpot_p99_s: float = 0.0
    slo_attainment: float = 1.0
    goodput_rps: float = 0.0
    preemptions: int = 0
    tenants: List[TenantStats] = field(default_factory=list)
    nodes: List[NodeStats] = field(default_factory=list)
    #: Populated only by autoscaled runs (``None`` keeps fixed-fleet reports
    #: byte-identical to their pre-autoscale form, and lets the min==max
    #: neutrality check compare ``replace(report, autoscale=None)`` strings).
    autoscale: Optional[AutoscaleStats] = None

    @property
    def mean_utilization(self) -> float:
        """Average busy fraction across the fleet's nodes."""
        if not self.nodes:
            return 0.0
        return sum(node.utilization for node in self.nodes) / len(self.nodes)

    def to_dict(self) -> dict:
        """The report as plain nested dicts/lists (JSON-able, round-trips)."""
        return asdict(self)

    def to_json(self, indent: int = 2) -> str:
        """Stable JSON text: sorted keys, so identical runs compare equal."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Render the report as ASCII tables plus a fleet summary line."""
        def ms(seconds: float) -> str:
            return f"{seconds * 1e3:.2f}"

        tenant_rows = [
            [stats.name, stats.requests, f"{stats.throughput_rps:.2f}",
             ms(stats.latency_p50_s), ms(stats.latency_p95_s), ms(stats.latency_p99_s),
             ms(stats.wait_mean_s)]
            for stats in self.tenants
        ]
        slo_rows = [
            [stats.name, ms(stats.ttft_p50_s), ms(stats.ttft_p95_s),
             ms(stats.tpot_p50_s), ms(stats.tpot_p95_s),
             f"{stats.slo_attainment * 100:.1f}%", f"{stats.goodput_rps:.2f}",
             stats.preemptions]
            for stats in self.tenants
        ]
        node_rows = [
            [stats.node_id, stats.completed, f"{stats.busy_s * 1e3:.1f}",
             f"{stats.utilization * 100:.1f}%", stats.tenant_switches, stats.preemptions]
            for stats in self.nodes
        ]
        sections = [
            f"Serve report - {self.scheduler} scheduler ({self.batching} batching), "
            f"trace {self.trace}: "
            f"{self.total_requests} requests on {self.num_nodes} nodes "
            f"in {self.makespan_s:.3f} s ({self.throughput_rps:.2f} req/s, "
            f"goodput {self.goodput_rps:.2f} req/s)",
            render_table(
                ["tenant", "requests", "req/s", "p50 (ms)", "p95 (ms)", "p99 (ms)", "mean wait (ms)"],
                tenant_rows, title="Per-tenant latency and throughput"),
            render_table(
                ["tenant", "ttft p50 (ms)", "ttft p95 (ms)", "tpot p50 (ms)", "tpot p95 (ms)",
                 "slo met", "goodput (req/s)", "preemptions"],
                slo_rows, title="Per-tenant token latency and SLO attainment"),
            render_table(
                ["node", "completed", "busy (ms)", "utilization", "tenant switches", "preemptions"],
                node_rows, title="Per-node utilization"),
            (f"fleet: p50 {ms(self.latency_p50_s)} ms, p95 {ms(self.latency_p95_s)} ms, "
             f"p99 {ms(self.latency_p99_s)} ms | ttft p95 {ms(self.ttft_p95_s)} ms, "
             f"tpot p95 {ms(self.tpot_p95_s)} ms | slo attainment "
             f"{self.slo_attainment * 100:.1f}% | mean utilization "
             f"{self.mean_utilization * 100:.1f}% | queue depth mean {self.queue_depth_mean:.2f} "
             f"max {self.queue_depth_max} | context-switch time {self.context_switch_s * 1e3:.3f} ms"
             f" | preemptions {self.preemptions}"),
        ]
        if self.autoscale is not None:
            auto = self.autoscale
            sections.append(
                f"autoscale: {auto.min_groups}..{auto.max_groups} groups of "
                f"{auto.nodes_per_group} node(s), {len(auto.events)} scale events, "
                f"{auto.node_seconds:.3f} node-seconds, goodput "
                f"{auto.goodput_per_node_second:.3f} req/node-s "
                f"(provisioning delay {auto.provision_delay_s:.2f} s)")
        return "\n\n".join(sections)


def build_report(
    trace_name: str,
    scheduler_name: str,
    num_nodes: int,
    completions: Sequence[dict],
    node_stats: Sequence[NodeStats],
    queue_depth_mean: float,
    queue_depth_max: int,
    batching: str = "request",
    autoscale: Optional[AutoscaleStats] = None,
) -> ServeReport:
    """Assemble a :class:`ServeReport` from raw per-request completion records.

    ``completions`` entries carry ``tenant``, ``arrival_s``, ``start_s``,
    ``finish_s`` and ``switch_s``; latency is ``finish - arrival`` and wait is
    ``start - arrival``.  Step-mode entries additionally carry ``ttft_s``,
    ``tpot_s``, the SLO targets (``ttft_slo_s``/``tpot_slo_s``) and a
    ``preemptions`` count — all optional, so request-level records and older
    callers keep working unchanged.  The makespan is the last finish time, and
    every throughput figure divides by it, so per-tenant throughputs (and
    goodputs) sum exactly to the fleet numbers.
    """
    makespan = max((entry["finish_s"] for entry in completions), default=0.0)
    latencies = [entry["finish_s"] - entry["arrival_s"] for entry in completions]
    by_tenant: Dict[str, List[dict]] = {}
    for entry in completions:
        by_tenant.setdefault(entry["tenant"], []).append(entry)

    tenants = []
    for name in sorted(by_tenant):
        entries = by_tenant[name]
        tenant_latencies = [entry["finish_s"] - entry["arrival_s"] for entry in entries]
        waits = [entry["start_s"] - entry["arrival_s"] for entry in entries]
        summary = latency_summary(tenant_latencies)
        ttft = _percentiles([entry.get("ttft_s", 0.0) for entry in entries])
        tpot = _percentiles([entry.get("tpot_s", 0.0) for entry in entries])
        met = sum(1 for entry in entries if _slo_met(entry))
        tenants.append(TenantStats(
            name=name,
            requests=len(entries),
            throughput_rps=len(entries) / makespan if makespan else 0.0,
            latency_mean_s=summary["mean"],
            latency_p50_s=summary["p50"],
            latency_p95_s=summary["p95"],
            latency_p99_s=summary["p99"],
            wait_mean_s=sum(waits) / len(waits),
            ttft_p50_s=ttft["p50"],
            ttft_p95_s=ttft["p95"],
            ttft_p99_s=ttft["p99"],
            tpot_p50_s=tpot["p50"],
            tpot_p95_s=tpot["p95"],
            tpot_p99_s=tpot["p99"],
            slo_attainment=met / len(entries),
            goodput_rps=met / makespan if makespan else 0.0,
            preemptions=sum(int(entry.get("preemptions", 0)) for entry in entries),
        ))

    fleet = _percentiles(latencies)
    fleet_ttft = _percentiles([entry.get("ttft_s", 0.0) for entry in completions])
    fleet_tpot = _percentiles([entry.get("tpot_s", 0.0) for entry in completions])
    fleet_met = sum(1 for entry in completions if _slo_met(entry))
    return ServeReport(
        trace=trace_name,
        scheduler=scheduler_name,
        num_nodes=num_nodes,
        total_requests=len(completions),
        makespan_s=makespan,
        throughput_rps=len(completions) / makespan if makespan else 0.0,
        latency_mean_s=fleet["mean"],
        latency_p50_s=fleet["p50"],
        latency_p95_s=fleet["p95"],
        latency_p99_s=fleet["p99"],
        queue_depth_mean=queue_depth_mean,
        queue_depth_max=queue_depth_max,
        context_switch_s=sum(node.switch_s for node in node_stats),
        batching=batching,
        ttft_p50_s=fleet_ttft["p50"],
        ttft_p95_s=fleet_ttft["p95"],
        ttft_p99_s=fleet_ttft["p99"],
        tpot_p50_s=fleet_tpot["p50"],
        tpot_p95_s=fleet_tpot["p95"],
        tpot_p99_s=fleet_tpot["p99"],
        slo_attainment=fleet_met / len(completions) if completions else 1.0,
        goodput_rps=fleet_met / makespan if makespan else 0.0,
        preemptions=sum(int(entry.get("preemptions", 0)) for entry in completions),
        tenants=tenants,
        nodes=list(node_stats),
        autoscale=autoscale,
    )


# -------------------------------------------------------- columnar assembly
#: Integer time base of the array event engines: one tick is a nanosecond.
#: (Re-exported by :mod:`repro.serve.engine`; defined here so the builder has
#: no import cycle with the engine.)
TICKS_PER_SECOND = 10**9


def _exact_sum(values: np.ndarray) -> int:
    """Sum an int64 array exactly, immune to int64 overflow.

    The tick-domain accumulators must be exact — shard merging relies on
    integer addition being associative — so the sum is split into 32-bit
    halves: ``v == (v >> 32) << 32 | (v & 0xffffffff)`` holds per element
    (arithmetic shift), each half-sum stays below ``2**63`` for any array
    shorter than ``2**31`` elements, and the halves recombine as Python
    ints.  Fully vectorised, no overflow guard or scalar fallback needed.
    """
    if not len(values):
        return 0
    high = int((values >> 32).sum(dtype=np.int64))
    low = int((values & np.int64(0xFFFFFFFF)).sum(dtype=np.int64))
    return (high << 32) + low


def _rank_select(values: np.ndarray, q: float) -> float:
    """Nearest-rank percentile of a non-empty array via ``np.partition``."""
    rank = max(1, math.ceil(q / 100.0 * len(values)))
    return float(np.partition(values, rank - 1)[rank - 1])


def _select_ranks(values: np.ndarray) -> Tuple[float, float, float]:
    """The p50/p95/p99 nearest-rank elements of a non-empty array.

    One ``np.partition`` call with all three order statistics places each at
    its sorted index in a single pass — the same elements three separate
    selections would pick, for a third of the copies.
    """
    count = len(values)
    ranks = [max(1, math.ceil(q / 100.0 * count)) - 1 for q in (50, 95, 99)]
    part = np.partition(values, sorted(set(ranks)))
    return float(part[ranks[0]]), float(part[ranks[1]]), float(part[ranks[2]])


def _tick_percentiles(ticks: np.ndarray) -> Dict[str, float]:
    """Mean/p50/p95/p99 of an int64 tick array, in seconds."""
    if not len(ticks):
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
    p50, p95, p99 = _select_ranks(ticks)
    return {
        "mean": _exact_sum(ticks) / (len(ticks) * TICKS_PER_SECOND),
        "p50": p50 / TICKS_PER_SECOND,
        "p95": p95 / TICKS_PER_SECOND,
        "p99": p99 / TICKS_PER_SECOND,
    }


def _float_percentiles(values: np.ndarray) -> Dict[str, float]:
    """p50/p95/p99 of a float array (per-request TPOT, already in seconds)."""
    if not len(values):
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    p50, p95, p99 = _select_ranks(values)
    return {"p50": p50, "p95": p95, "p99": p99}


def _queue_depth_max(arrival_ticks: np.ndarray, start_ticks: np.ndarray) -> int:
    """Peak number of simultaneously waiting requests.

    A request waits from its arrival to its dispatch start; the peak is the
    running maximum of the +-1 event sweep, with arrivals ordered before
    starts at equal ticks (a request arriving the instant another starts sees
    that request still queued).  The sweep's maximum is always attained just
    after the last arrival of some arrival tick, so instead of sorting the
    merged event stream it suffices to evaluate, at every arrival,
    ``#{arrivals <= t} - #{starts < t}`` — two ``searchsorted`` passes over
    the already-sorted arrival column plus one sort of the start column.
    """
    count = len(arrival_ticks)
    if not count:
        return 0
    starts = np.sort(start_ticks)
    # #{arrivals <= t}: the arrival column is sorted, so this is the index
    # just past each tick's tie group — every group member inherits the last
    # member's index via a backward minimum over the group boundaries.
    boundary = np.empty(count, bool)
    boundary[-1] = True
    np.not_equal(arrival_ticks[1:], arrival_ticks[:-1], out=boundary[:-1])
    arrived = np.where(boundary, np.arange(1, count + 1, dtype=np.int64), 2**62)
    arrived = np.minimum.accumulate(arrived[::-1])[::-1]
    started = np.searchsorted(starts, arrival_ticks, side="left")
    return int((arrived - started).max())


def build_report_from_columns(
    trace_name: str,
    scheduler_name: str,
    num_nodes: int,
    tenant_names: Sequence[str],
    tenant_id: np.ndarray,
    arrival_ticks: np.ndarray,
    start_ticks: np.ndarray,
    first_ticks: np.ndarray,
    finish_ticks: np.ndarray,
    tokens: np.ndarray,
    ttft_slo_s: np.ndarray,
    tpot_slo_s: np.ndarray,
    node_accumulators: np.ndarray,
    batching: str = "request",
) -> ServeReport:
    """Assemble a :class:`ServeReport` from tick-domain completion columns.

    The array-engine counterpart of :func:`build_report`: completions arrive
    as parallel int64 nanosecond-tick arrays in canonical request order plus
    the per-node accumulator matrix ``(completed, busy, switch, switches)``
    (tick columns as int64 rows, one per server).  All reductions are either
    exact integer arithmetic (sums, nearest-rank selection on ticks) or a
    fixed float expression of exact integers, so any decomposition of the
    trace that produces the same columns — one engine or another, one shard
    or many — yields a byte-identical report.

    The queue-depth figures are defined directly on the columns: the mean is
    the exact waiting-time integral ``sum(start - arrival) / makespan`` and
    the max is the peak of the arrival/start event sweep.  (The legacy loop
    sampled the same integral at event granularity, which undercounted
    requests that had arrived but were not yet admitted; the columnar form
    has no sampling error.)
    """
    count = len(arrival_ticks)
    makespan_ticks = int(finish_ticks.max()) if count else 0
    makespan = makespan_ticks / TICKS_PER_SECOND
    latency_ticks = finish_ticks - arrival_ticks
    wait_ticks = start_ticks - arrival_ticks
    ttft_ticks = first_ticks - arrival_ticks
    tpot_seconds = np.divide(
        finish_ticks - first_ticks, tokens * TICKS_PER_SECOND,
        out=np.zeros(count, np.float64), where=tokens > 0)
    ttft_has_slo = ~np.isnan(ttft_slo_s)
    tpot_has_slo = ~np.isnan(tpot_slo_s)
    if not ttft_has_slo.any() and not tpot_has_slo.any():
        # No deadlines anywhere: every request trivially meets its (absent)
        # SLO, so skip the comparison passes over the full columns.
        met = None
    else:
        met = ~(
            (ttft_has_slo & ((ttft_ticks / TICKS_PER_SECOND) > ttft_slo_s))
            | (tpot_has_slo & (tpot_seconds > tpot_slo_s))
        )

    tenants = []
    present = (np.flatnonzero(np.bincount(tenant_id, minlength=len(tenant_names)))
               if count else ())
    for tid in present:
        rows = np.flatnonzero(tenant_id == tid)
        summary = _tick_percentiles(latency_ticks[rows])
        ttft = _tick_percentiles(ttft_ticks[rows])
        tpot = _float_percentiles(tpot_seconds[rows])
        tenant_met = len(rows) if met is None else int(met[rows].sum())
        tenants.append(TenantStats(
            name=tenant_names[tid],
            requests=len(rows),
            throughput_rps=len(rows) / makespan if makespan else 0.0,
            latency_mean_s=summary["mean"],
            latency_p50_s=summary["p50"],
            latency_p95_s=summary["p95"],
            latency_p99_s=summary["p99"],
            wait_mean_s=_exact_sum(wait_ticks[rows]) / (len(rows) * TICKS_PER_SECOND),
            ttft_p50_s=ttft["p50"],
            ttft_p95_s=ttft["p95"],
            ttft_p99_s=ttft["p99"],
            tpot_p50_s=tpot["p50"],
            tpot_p95_s=tpot["p95"],
            tpot_p99_s=tpot["p99"],
            slo_attainment=tenant_met / len(rows),
            goodput_rps=tenant_met / makespan if makespan else 0.0,
            preemptions=0,
        ))

    node_stats = [
        NodeStats(
            node_id=node,
            completed=int(node_accumulators[node, 0]),
            busy_s=int(node_accumulators[node, 1]) / TICKS_PER_SECOND,
            utilization=(int(node_accumulators[node, 1]) / TICKS_PER_SECOND / makespan
                         if makespan else 0.0),
            tenant_switches=int(node_accumulators[node, 3]),
            switch_s=int(node_accumulators[node, 2]) / TICKS_PER_SECOND,
            preemptions=0,
        )
        for node in range(len(node_accumulators))
    ]

    fleet = _tick_percentiles(latency_ticks)
    fleet_ttft = _tick_percentiles(ttft_ticks)
    fleet_tpot = _float_percentiles(tpot_seconds)
    fleet_met = count if met is None else int(met.sum())
    total_switch_ticks = _exact_sum(node_accumulators[:, 2])
    depth_area = _exact_sum(wait_ticks)
    return ServeReport(
        trace=trace_name,
        scheduler=scheduler_name,
        num_nodes=num_nodes,
        total_requests=count,
        makespan_s=makespan,
        throughput_rps=count / makespan if makespan else 0.0,
        latency_mean_s=fleet["mean"],
        latency_p50_s=fleet["p50"],
        latency_p95_s=fleet["p95"],
        latency_p99_s=fleet["p99"],
        queue_depth_mean=depth_area / makespan_ticks if makespan_ticks else 0.0,
        queue_depth_max=_queue_depth_max(arrival_ticks, start_ticks),
        context_switch_s=total_switch_ticks / TICKS_PER_SECOND,
        batching=batching,
        ttft_p50_s=fleet_ttft["p50"],
        ttft_p95_s=fleet_ttft["p95"],
        ttft_p99_s=fleet_ttft["p99"],
        tpot_p50_s=fleet_tpot["p50"],
        tpot_p95_s=fleet_tpot["p95"],
        tpot_p99_s=fleet_tpot["p99"],
        slo_attainment=fleet_met / count if count else 1.0,
        goodput_rps=fleet_met / makespan if makespan else 0.0,
        preemptions=0,
        tenants=tenants,
        nodes=node_stats,
    )
