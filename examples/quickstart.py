#!/usr/bin/env python
"""Quickstart: run a GEMM on MACO through the MPAIS instruction path.

The example builds a small MACO system, allocates matrices in a compute
node's address space, submits the GEMM with the MA_CFG instruction, lets the
MMAE execute it functionally (through the systolic-array datapath model), and
checks the result against NumPy.  It then uses the cycle-approximate model to
report what a full-size version of the same GEMM would achieve.
"""

import numpy as np

from repro.core import MACORuntime, MACOSystem, maco_default_config
from repro.gemm import GEMMShape, Precision


def main() -> None:
    config = maco_default_config(num_nodes=4)
    system = MACOSystem(config)
    runtime = MACORuntime(system=system)

    # ---------------------------------------------------------------- functional
    rng = np.random.default_rng(seed=7)
    m, k, n = 96, 128, 80
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    c = rng.standard_normal((m, n))

    print(f"Running a {m}x{k}x{n} FP64 GEMM through MPAIS (MA_CFG -> MMAE -> MA_STATE)...")
    result = runtime.gemm(a, b, c, precision=Precision.FP64)
    reference = a @ b + c
    max_error = float(np.max(np.abs(result - reference)))
    print(f"  max |error| vs numpy: {max_error:.2e}")
    assert max_error < 1e-9, "functional GEMM does not match the NumPy reference"

    # The MTQ entry was released by MA_STATE; nothing should be outstanding.
    print(f"  outstanding MTQ tasks: {runtime.outstanding_tasks()}")

    # ------------------------------------------------------------ cycle-accurate
    shape = GEMMShape(4096, 4096, 4096, Precision.FP64)
    print(f"\nEstimating a {shape} on a single MMAE...")
    timing = system.node(0).run_gemm_timed(shape, active_nodes=1)
    print(f"  total cycles       : {timing.total_cycles:,.0f}")
    print(f"  achieved           : {timing.achieved_gflops:.1f} GFLOPS "
          f"({timing.efficiency * 100:.1f}% of {timing.peak_gflops:.0f} GFLOPS peak)")
    print(f"  translation stalls : {timing.translation_stall_cycles:,.0f} cycles "
          f"(prediction {'on' if timing.prediction_enabled else 'off'})")

    print(f"\nSame GEMM partitioned across {config.num_nodes} compute nodes...")
    multi = system.run_gemm(shape)
    print(f"  time               : {multi.seconds * 1e3:.2f} ms")
    print(f"  throughput         : {multi.gflops:.1f} GFLOPS "
          f"({multi.efficiency * 100:.1f}% of the {multi.peak_gflops:.0f} GFLOPS aggregate peak)")


if __name__ == "__main__":
    main()
