"""Closed-form NoC + memory-system contention model.

The Fig. 7 experiment runs an independent GEMM on 1..16 compute nodes and
observes an average per-node efficiency loss of up to ~10% at 16 nodes,
attributed by the paper to the NoC being unable to satisfy every node's
bandwidth demand simultaneously.  Simulating 16 nodes streaming tens of
gigabytes flit-by-flit is infeasible in Python, so the sweeps use this
closed-form model, which captures the two real bottlenecks:

* **link contention** — with X-Y routing and traffic uniformly spread over the
  distributed L3 slices, the most-loaded mesh link carries a growing multiple
  of a single node's traffic as more nodes become active; and
* **memory bandwidth** — the DDR controllers behind the CCMs bound the
  aggregate fill/writeback bandwidth.

The model computes, for ``n`` active nodes each demanding ``d`` bytes/s, the
sustained per-node bandwidth ``min(d, node_limit, link_limit, dram_share)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.mem.dram import DRAMModel
from repro.noc.mesh import MeshTopology
from repro.noc.network import NocConfig
from repro.noc.routing import route_links


@dataclass
class NocContentionModel:
    """Estimates sustained per-node bandwidth under concurrent streaming."""

    config: NocConfig = field(default_factory=NocConfig)
    dram: DRAMModel = field(default_factory=DRAMModel)
    #: Fraction of each node's L3 traffic that misses and must also traverse DRAM.
    l3_miss_fraction: float = 0.35
    #: Protocol/header overhead on every transfer (flit headers, coherence messages).
    protocol_overhead: float = 0.08

    def __post_init__(self) -> None:
        if not 0.0 <= self.l3_miss_fraction <= 1.0:
            raise ValueError("l3_miss_fraction must be within [0, 1]")
        if self.protocol_overhead < 0:
            raise ValueError("protocol_overhead cannot be negative")
        self.topology = MeshTopology(self.config.width, self.config.height)

    # ------------------------------------------------------------------ link load
    def _active_nodes(self, num_active: int) -> List[int]:
        """The compute nodes activated for an ``num_active``-node run.

        Nodes are activated in id order, matching the paper's scaling experiments
        (1, 2, 4, 8, 16 nodes on the 4x4 mesh).
        """
        num_nodes = self.topology.num_nodes
        if not 1 <= num_active <= num_nodes:
            raise ValueError(f"num_active must be in 1..{num_nodes}")
        return list(range(num_active))

    def max_link_load_factor(self, num_active: int) -> float:
        """Traffic multiple carried by the most-loaded link, per unit of per-node demand.

        Each active node spreads its L3 traffic uniformly over all L3 slices
        (line-interleaved addresses), i.e. uniformly over all mesh nodes.  The
        returned factor is the worst-case sum over links of per-node demand
        fractions routed through that link.
        """
        active = self._active_nodes(num_active)
        num_slices = self.topology.num_nodes
        link_load: Dict[tuple, float] = {}
        share = 1.0 / num_slices
        for src in active:
            for dst in range(num_slices):
                if src == dst:
                    continue
                for link in route_links(self.topology, src, dst):
                    link_load[link] = link_load.get(link, 0.0) + share
        if not link_load:
            return 0.0
        return max(link_load.values())

    # -------------------------------------------------------------- bandwidth model
    def sustained_node_bandwidth(self, num_active: int, demand_bytes_per_s: float) -> float:
        """Per-node bandwidth sustained when ``num_active`` nodes each demand ``demand``.

        Returns a value in ``(0, demand]``.
        """
        if demand_bytes_per_s <= 0:
            raise ValueError("demand must be positive")
        effective_demand = demand_bytes_per_s * (1.0 + self.protocol_overhead)

        # 1. The node's own injection/ejection port.
        node_limit = self.config.node_bandwidth_bytes_per_s

        # 2. The most loaded mesh link.
        load_factor = self.max_link_load_factor(num_active)
        if load_factor > 0:
            link_limit = self.config.link_bandwidth_bytes_per_s / load_factor
        else:
            link_limit = float("inf")

        # 3. The DRAM subsystem (only the L3-miss portion reaches DRAM).
        if self.l3_miss_fraction > 0:
            dram_share = self.dram.effective_bandwidth(num_active) / num_active
            dram_limit = dram_share / self.l3_miss_fraction
        else:
            dram_limit = float("inf")

        sustained = min(effective_demand, node_limit, link_limit, dram_limit)
        # Remove the protocol overhead again to express payload bandwidth.
        return sustained / (1.0 + self.protocol_overhead)

    def slowdown(self, num_active: int, demand_bytes_per_s: float) -> float:
        """Demand / sustained bandwidth ratio (>= 1.0)."""
        sustained = self.sustained_node_bandwidth(num_active, demand_bytes_per_s)
        return demand_bytes_per_s / sustained if sustained > 0 else float("inf")

    def saturation_node_count(self, demand_bytes_per_s: float) -> int:
        """Smallest active-node count at which per-node bandwidth drops below demand."""
        for count in range(1, self.topology.num_nodes + 1):
            if self.sustained_node_bandwidth(count, demand_bytes_per_s) < demand_bytes_per_s * 0.999:
                return count
        return self.topology.num_nodes + 1
