"""Gemmini-like baseline: a loosely-coupled accelerator without MACO's extensions.

Gemmini (Genc et al., DAC 2021) attaches a systolic-array accelerator to the
core over a co-processor interface, with its own scratchpads and DMA and with
address-translation support.  The MACO paper's criticism of this design point
(Section I) is what this model removes relative to a MACO node:

* **no predictive address translation** — demand page-table walks stall the
  DMA streams on large workloads (the Fig. 6 "without prediction" path);
* **no stash/lock mapping scheme** — operand re-reads are not pinned in the
  L3 and the CPU's tail operators do not overlap with the accelerator;
* **host-synchronised task execution** — without the MTQ/STQ queues, the core
  issues one accelerator task at a time and blocks on a fence before the next
  layer (``host_sync_overhead_s`` per GEMM), and multi-process sharing is not
  supported.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.baselines.common import BaselineModel
from repro.core.mapping import partition_gemm
from repro.core.metrics import WorkloadResult
from repro.core.perf import estimate_node_gemm_cached, memory_environment
from repro.cpu.core import CPUCore
from repro.gemm.precision import Precision
from repro.gemm.workloads import GEMMWorkload


class GemminiLikeBaseline(BaselineModel):
    """A loosely-coupled accelerator without prediction, stash/lock or task queues."""

    name = "gemmini-like"

    #: Host round trip per accelerator task: configure over the co-processor
    #: interface, launch, and fence on completion (no queued tasks to hide it).
    host_sync_overhead_s: float = 12e-6
    #: Utilisation ceiling of the accelerator on DNN layers.  Gemmini's own
    #: evaluation reports well below-peak utilisation on ResNet-50-class layers
    #: because the RoCC command stream, scratchpad double-buffering limits and
    #: im2col handling leave the array idle part of the time; this constant is
    #: the one calibration knob and is reported in EXPERIMENTS.md.
    utilization_ceiling: float = 0.80

    def run_workload(self, workload: GEMMWorkload, num_nodes: Optional[int] = None) -> WorkloadResult:
        nodes = num_nodes if num_nodes is not None else self.config.num_nodes
        if not 1 <= nodes <= self.config.num_nodes:
            raise ValueError(f"num_nodes must be in 1..{self.config.num_nodes}")
        precision = workload.shapes[0].precision if workload.shapes else Precision.FP32

        env = memory_environment(self.config, nodes)
        # Without stash/lock the accelerator cannot keep its re-read working set
        # resident in the shared L3 (same collapse as Baseline-2).
        env = replace(env, l3_share_bytes=max(env.l3_share_bytes * 0.125, 64 * 1024))

        gemm_seconds = 0.0
        gemm_flops = 0
        for shape in workload:
            plan = partition_gemm(shape, nodes)
            layer_seconds = 0.0
            for assignment in plan.assignments:
                timing = estimate_node_gemm_cached(
                    self.config, assignment.shape, active_nodes=nodes,
                    prediction_enabled=False, env=env,
                )
                layer_seconds = max(layer_seconds, timing.seconds)
            gemm_seconds += layer_seconds / self.utilization_ceiling + self.host_sync_overhead_s
            gemm_flops += shape.flops

        cpu_cfg = self.config.cpu
        core = CPUCore(
            core_id=0,
            frequency_hz=cpu_cfg.frequency_hz,
            fmac_lanes=cpu_cfg.fmac_lanes,
            memory_bandwidth_bytes_per_s=cpu_cfg.memory_bandwidth_bytes_per_s,
        )
        # Tail operators are distributed across the CPU cores (that part needs
        # no accelerator support) but run after the accelerator finishes,
        # streaming unlocked (cold) data.
        non_gemm_seconds = core.run_elementwise(
            int(workload.non_gemm_flops / nodes), int(workload.non_gemm_bytes / nodes)
        ).seconds * 2.0

        total = gemm_seconds + non_gemm_seconds
        mmae = self.config.mmae
        peak_per_node = {
            Precision.FP64: mmae.peak_gflops_fp64,
            Precision.FP32: mmae.peak_gflops_fp32,
            Precision.FP16: mmae.peak_gflops_fp16,
        }[precision]
        return WorkloadResult(
            name=workload.name,
            system=self.name,
            num_nodes=nodes,
            seconds=total,
            gemm_flops=gemm_flops,
            total_flops=workload.total_flops,
            peak_gflops=peak_per_node * nodes,
            gemm_seconds=gemm_seconds,
            non_gemm_seconds=non_gemm_seconds,
            overlap_enabled=False,
        )
