"""Table II — the MPAIS instruction set.

Regenerates the instruction catalogue and validates that every listed
instruction assembles, encodes and decodes through the binary format.
"""

from repro.analysis import render_table
from repro.isa import (
    INSTRUCTION_TABLE,
    Opcode,
    assemble,
    decode_instruction,
    encode_instruction,
)


def build_table2() -> str:
    rows = []
    for opcode in Opcode:
        info = INSTRUCTION_TABLE[opcode]
        rows.append([info.function, opcode.value, info.description, info.usage])
    return render_table(["Functions", "Instruction", "Description", "Usage"], rows,
                        title="Table II - the proposed MPAIS instruction set")


def test_table2_instruction_set(benchmark):
    def regenerate() -> str:
        # Every instruction must survive the assemble -> encode -> decode path.
        for opcode in Opcode:
            usage = INSTRUCTION_TABLE[opcode].usage.replace("MA_CLEAR,", "MA_CLEAR")
            instruction = assemble(usage.replace("Rd", "X1").replace("Rn", "X2"))
            assert decode_instruction(encode_instruction(instruction)) == instruction
        return build_table2()

    table = benchmark(regenerate)
    print("\n" + table)
    assert table.count("MA_") >= 7
    for function in ("Data migration", "GEMM computing", "Task management"):
        assert function in table
