"""Command-line interface for the MACO reproduction.

Usage (after ``pip install -e .``)::

    python -m repro.cli fig6                 # predictive-translation sweep
    python -m repro.cli fig7                 # scalability sweep
    python -m repro.cli fig8                 # DL workload comparison
    python -m repro.cli table4               # CPU vs MMAE area/power table
    python -m repro.cli gemm --size 4096 --nodes 8 --precision fp64
    python -m repro.cli explore --sample lhs --points 200 --jobs 4 --format csv
    python -m repro.cli workloads describe llama-7b@decode
    python -m repro.cli parallel --parallel tp:4,tp2d:2x2
    python -m repro.cli serve --trace poisson --tenants 3 --seed 7 --tenant-mix llm
    python -m repro.cli serve --tenant-mix llm --batching step --max-batch 8 \
        --scheduler slo --slo 0.5:0.1
    python -m repro.cli conformance run        # golden corpus vs tests/golden/
    python -m repro.cli conformance fuzz --cases 200 --seed 0

The CLI is a thin wrapper over the same APIs the benchmarks use, so its output
matches the rows recorded in EXPERIMENTS.md.  The sweep-shaped commands
(``fig6``, ``fig7``, ``fig8``, ``explore``, ``parallel``, ``serve``) accept
``--jobs N`` to fan the independent evaluations out over a worker pool; the
small fixed figure sweeps default to serial, while ``explore`` defaults to all
CPU cores.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis import (
    compare_cpu_mmae,
    efficiency_by_size,
    efficiency_gap,
    format_gflops,
    format_percent,
    render_csv,
    render_series,
    render_table,
)
from repro.baselines import (
    CPUOnlyBaseline,
    GemminiLikeBaseline,
    NoMappingBaseline,
    RASALikeBaseline,
    compare_systems,
)
from repro.core import (
    DesignSpaceExplorer,
    MACOSystem,
    SweepRunner,
    maco_default_config,
    pareto_front,
    sweep_prediction,
    sweep_scalability,
)
from repro.gemm import GEMMShape, Precision, hpl_like_workloads
from repro.gemm.workloads import FIG6_MATRIX_SIZES, FIG7_MATRIX_SIZES
from repro.serve.scheduler import SCHEDULER_NAMES
from repro.workloads import (
    WorkloadGraph,
    catalog_entry,
    describe_workload,
    dl_benchmark_suite,
    workload_catalog,
    workload_graph_by_name,
)


def _cmd_gemm(args: argparse.Namespace) -> int:
    config = maco_default_config(num_nodes=args.nodes, prediction_enabled=not args.no_prediction)
    system = MACOSystem(config)
    shape = GEMMShape(args.size, args.size, args.size, Precision.from_string(args.precision))
    result = system.run_gemm(shape)
    print(f"GEMM {shape}: {result.seconds * 1e3:.2f} ms, "
          f"{format_gflops(result.gflops)} ({format_percent(result.efficiency)} of peak) "
          f"on {result.num_nodes} nodes")
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    config = maco_default_config()
    sizes = list(FIG6_MATRIX_SIZES)
    points = sweep_prediction(config, sizes, jobs=args.jobs)
    with_prediction = efficiency_by_size(points, prediction_enabled=True)
    without = efficiency_by_size(points, prediction_enabled=False)
    gaps = efficiency_gap(points)
    print(render_series(
        "matrix size", sizes,
        {
            "with prediction": [with_prediction[s] for s in sizes],
            "without prediction": [without[s] for s in sizes],
            "gap": [gaps[s] for s in sizes],
        },
        value_formatter=format_percent,
        title="Fig. 6 - efficiency with/without predictive address translation",
    ))
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    config = maco_default_config()
    sizes = list(FIG7_MATRIX_SIZES)
    node_counts = [1, 2, 4, 8, 16]
    points = sweep_scalability(config, sizes, node_counts, jobs=args.jobs)
    # One efficiency_by_size pass per node count (not per matrix size).
    by_nodes = {nodes: efficiency_by_size(points, active_nodes=nodes) for nodes in node_counts}
    series = {
        f"{nodes}-core": [by_nodes[nodes][s] for s in sizes]
        for nodes in node_counts
    }
    print(render_series("matrix size", sizes, series, value_formatter=format_percent,
                        title="Fig. 7 - per-node efficiency vs active compute nodes"))
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    config = maco_default_config(num_nodes=args.nodes)
    suite = dl_benchmark_suite()
    systems = [CPUOnlyBaseline(config), NoMappingBaseline(config),
               RASALikeBaseline(config), GemminiLikeBaseline(config),
               MACOSystem(config)]
    comparison = compare_systems(systems, suite, num_nodes=args.nodes, jobs=args.jobs)
    rows = [
        [system] + [format_gflops(comparison.throughput(system, w.name)) for w in suite]
        for system in comparison.systems()
    ]
    print(render_table(["system"] + [w.name for w in suite], rows,
                       title=f"Fig. 8 - DL inference throughput ({args.nodes} nodes, FP32)"))
    return 0


def _explore_workload(args: argparse.Namespace):
    precision = Precision.from_string(args.precision)
    if args.workload == "hpl":
        return hpl_like_workloads(max_size=args.size, step=max(args.size // 4, 256),
                                  precision=precision)
    if args.workload == "square":
        return GEMMShape(args.size, args.size, args.size, precision)
    # Anything else must be a workload-catalog name (base[@spec]), which
    # evaluates per-phase through the WorkloadGraph IR.
    return workload_graph_by_name(args.workload, precision)


def _cmd_explore(args: argparse.Namespace) -> int:
    explorer = DesignSpaceExplorer()
    points = DesignSpaceExplorer.sample(args.sample, args.points, seed=args.seed)
    if args.sample == "grid" and args.points != 64:
        print(f"note: --sample grid is the full {len(points)}-point factorial grid; "
              "--points/--seed apply to random and lhs sampling only", file=sys.stderr)
    workload = _explore_workload(args)
    if args.parallel:
        from repro.parallel import ParallelismSpec

        degree = ParallelismSpec.parse(args.parallel).degree
        hosts = [point for point in points if point.num_nodes >= degree]
        if len(hosts) != len(points):
            print(f"note: --parallel {args.parallel} dropped "
                  f"{len(points) - len(hosts)} design point(s) with fewer than "
                  f"{degree} nodes", file=sys.stderr)
        points = hosts
        if not points:
            raise ValueError(f"--parallel {args.parallel}: no sampled design point "
                             f"has at least {degree} nodes")
    runner = SweepRunner(jobs=args.jobs)
    graph_results = None
    if isinstance(workload, WorkloadGraph):
        graph_results = explorer.explore_graph(points, workload, objective=args.objective,
                                               runner=runner, parallelism=args.parallel)
        results = [entry.aggregate for entry in graph_results]
    else:
        if args.per_phase:
            raise ValueError("--per-phase needs a catalog workload "
                             f"(options: {workload_catalog()}), not --workload {args.workload}")
        if args.parallel:
            raise ValueError("--parallel needs a catalog workload "
                             f"(options: {workload_catalog()}), not --workload {args.workload}")
        results = explorer.explore(points, workload, objective=args.objective, runner=runner)

    if args.per_phase:
        headers = ["design point", "phase", "kind", "step", "repeat",
                   "seconds", "gflops", "efficiency"]
        raw_rows = [
            [entry.aggregate.point.name, phase.name, phase.kind, phase.step, phase.repeat,
             phase.seconds, phase.gflops, phase.efficiency]
            for entry in graph_results
            for phase in entry.phases
        ]
        if args.parallel:
            headers += ["compute_seconds", "comm_seconds", "comm_overlapped_seconds"]
            for row, phase in zip(raw_rows, (phase for entry in graph_results
                                             for phase in entry.phases)):
                row += [phase.compute_seconds, phase.comm_seconds,
                        phase.comm_overlapped_seconds]
        title = (f"Design-space exploration - {len(results)} points by {args.objective}, "
                 "per phase")
    else:
        front = {id(result) for result in pareto_front(results)}
        headers = ["design point", "sa", "buffer_kb", "nodes", "gflops", "efficiency",
                   "gflops_per_mm2", "gflops_per_watt", "seconds", "pareto"]
        raw_rows = [
            [result.point.name, f"{result.point.sa_rows}x{result.point.sa_cols}",
             result.point.buffer_kb, result.point.num_nodes,
             result.gflops, result.efficiency, result.gflops_per_mm2,
             result.gflops_per_watt, result.seconds, id(result) in front]
            for result in results
        ]
        title = f"Design-space exploration - {len(results)} points by {args.objective}"

    if args.format == "json":
        records = [dict(zip(headers, row)) for row in raw_rows]
        text = json.dumps(records, indent=2)
    elif args.format == "csv":
        text = render_csv(headers, _format_cells(raw_rows, stringify=False))
    else:
        shown = raw_rows if args.top <= 0 else raw_rows[:args.top]
        text = render_table(headers, _format_cells(shown), title=title)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {len(results)} results to {args.output}")
    else:
        print(text)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro import bench

    report = bench.run_benchmarks(quick=args.quick, repeat=args.repeat)
    print(bench.format_report(report))
    bench.write_report(report, args.output)
    print(f"wrote {args.output}")
    if args.baseline:
        failures = bench.check_regression(
            report, bench.load_report(args.baseline), factor=args.regression_factor
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.baseline} "
              f"(threshold: baseline speedup / {args.regression_factor:g})")
    return 0


def _format_cells(rows, stringify: bool = True) -> List[List]:
    """Format float cells as ``%.6g`` (and optionally stringify the rest)."""
    return [[f"{cell:.6g}" if isinstance(cell, float) else (str(cell) if stringify else cell)
             for cell in row] for row in rows]


def _parse_degrees(text: str) -> List[int]:
    """Parse the ``--degree`` comma list (e.g. ``4`` or ``1,2,4,8``)."""
    try:
        degrees = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise ValueError(f"--degree {text!r} is not a comma-separated integer list") from None
    if not degrees or any(degree < 1 for degree in degrees):
        raise ValueError(f"--degree {text!r} must list integers >= 1")
    return degrees


#: Flags already warned about this process — deprecated aliases warn once.
_DEPRECATION_WARNED: set = set()


def _warn_once_deprecated(flag: str, replacement: str) -> None:
    if flag not in _DEPRECATION_WARNED:
        _DEPRECATION_WARNED.add(flag)
        print(f"warning: {flag} is deprecated; use {replacement}", file=sys.stderr)


def _parallel_specs(args: argparse.Namespace) -> List[str]:
    """The parallelism specs the ``parallel`` command should plan.

    ``--parallel`` takes a comma list of specs (``tp:1,tp2d:2x2``); the old
    ``--strategy``/``--degree`` pair stays accepted as a deprecated alias
    (its cross product becomes the spec list) and warns once per process.
    """
    if args.parallel is not None:
        if args.strategy is not None or args.degree is not None:
            raise ValueError(
                "--parallel replaces the deprecated --strategy/--degree; pass one or the other"
            )
        specs = [part.strip() for part in args.parallel.split(",") if part.strip()]
        if not specs:
            raise ValueError(f"--parallel {args.parallel!r} lists no specs")
        return specs
    if args.strategy is not None:
        _warn_once_deprecated("--strategy", "--parallel SPEC (e.g. --parallel tp:4)")
    if args.degree is not None:
        _warn_once_deprecated("--degree", "--parallel SPEC (e.g. --parallel tp:1,tp:4)")
    strategy = args.strategy if args.strategy is not None else "tp"
    degrees = _parse_degrees(args.degree if args.degree is not None else "1,2,4,8")
    return [f"{strategy}:{degree}" for degree in degrees]


def _cmd_parallel(args: argparse.Namespace) -> int:
    from repro.parallel import ParallelismSpec

    config = maco_default_config(num_nodes=args.nodes)
    precision = Precision.from_string(args.precision)
    graph = workload_graph_by_name(args.workload, precision)
    specs = [ParallelismSpec.parse(spec) for spec in _parallel_specs(args)]
    # Like serve: stay serial unless --jobs asks for a pool (the cells are
    # cheap; SweepRunner(None) would default to all CPU cores).
    runner = SweepRunner(jobs=args.jobs if args.jobs is not None else 1)
    plans = runner.sweep_parallelism(config, graph, specs=specs)

    frequency = config.mmae.frequency_hz
    phase_headers = ["spec", "strategy", "degree", "phase", "kind", "repeat",
                     "compute_cycles", "comm_cycles", "overlapped_cycles",
                     "seconds", "collective"]
    phase_rows = [
        [str(plan.spec), plan.strategy, plan.degree, phase.name, phase.kind,
         phase.repeat, phase.compute_seconds * frequency,
         phase.comm_seconds * frequency,
         phase.comm_overlapped_seconds * frequency,
         phase.seconds, phase.collective]
        for plan in plans
        for phase in plan.phases
    ]
    summary_headers = ["spec", "strategy", "degree", "compute_s", "comm_s",
                       "overlapped_s", "total_s", "single_node_s", "speedup",
                       "comm_share", "interval_s"]
    summary_rows = [
        [str(plan.spec), plan.strategy, plan.degree, plan.compute_seconds,
         plan.comm_seconds, plan.comm_overlapped_seconds, plan.total_seconds,
         plan.unsharded_seconds, plan.speedup, plan.comm_fraction,
         plan.pipeline_interval_seconds]
        for plan in plans
    ]
    # The calibrated overhead-factor decomposition (SUMMA plans carry one).
    overhead_headers = ["spec", "factor", "loop_control", "memory_ops", "pipeline_stalls"]
    overhead_rows = []
    for plan in plans:
        if plan.overhead is not None:
            components = plan.overhead.component_factors()
            overhead_rows.append([str(plan.spec), plan.overhead.factor,
                                  components["loop_control"], components["memory_ops"],
                                  components["pipeline_stalls"]])

    if args.format == "json":
        payload = {
            "workload": graph.name,
            "phases": [dict(zip(phase_headers, row)) for row in phase_rows],
            "summary": [dict(zip(summary_headers, row)) for row in summary_rows],
        }
        if overhead_rows:
            payload["overhead"] = [dict(zip(overhead_headers, row))
                                   for row in overhead_rows]
        text = json.dumps(payload, indent=2)
    elif args.format == "csv":
        text = render_csv(phase_headers, _format_cells(phase_rows))
    else:
        sections = [
            render_table(phase_headers, _format_cells(phase_rows),
                         title=f"Parallel plan - {graph.name} "
                               f"(cycles at the {frequency / 1e9:g} GHz MMAE clock)"),
            render_table(summary_headers, _format_cells(summary_rows),
                         title="Plan summary - latency vs single-node execution"),
        ]
        if overhead_rows:
            sections.append(render_table(
                overhead_headers, _format_cells(overhead_rows),
                title="Compute overhead factor - calibrated on the functional path"))
        text = "\n\n".join(sections)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {len(plans)} plan(s) to {args.output}")
    else:
        print(text)
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    precision = Precision.from_string(args.precision)

    if args.action == "list":
        entries = []
        for name in workload_catalog():
            variant = catalog_entry(name)
            graph = workload_graph_by_name(name, precision)
            entries.append({
                "name": name,
                "parameters": {key: default for key, default in variant.defaults},
                "phases": len(graph),
                "gemms": sum(len(phase.shapes) * phase.repeat for phase in graph),
                "gflop": graph.total_flops / 1e9,
                "summary": variant.summary,
            })
        if args.format == "json":
            text = json.dumps(entries, indent=2, sort_keys=True)
        else:
            rows = [
                [entry["name"],
                 ",".join(f"{key}={value}" for key, value in entry["parameters"].items()
                          if key != "phases"),
                 entry["phases"], entry["gemms"], f"{entry['gflop']:.1f}", entry["summary"]]
                for entry in entries
            ]
            text = render_table(
                ["name", "parameters (defaults)", "phases", "gemms", "gflop", "description"],
                [[str(cell) for cell in row] for row in rows],
                title=f"Workload catalog - {len(entries)} variants "
                      "(parameterize as name@key=value,...)",
            )
    elif args.action == "describe":
        if not args.name:
            raise ValueError("workloads describe needs a catalog name (base[@spec])")
        graph = workload_graph_by_name(args.name, precision)
        description = describe_workload(args.name, precision, graph=graph)
        if args.format == "json":
            text = json.dumps(description, indent=2, sort_keys=True)
        else:
            rows = [
                [name, kind, str(repeat), str(gemms), f"{gflop:.1f}", f"{footprint:.1f}",
                 f"{state:.1f}", f"{reuse:.1f}"]
                for name, kind, repeat, gemms, gflop, footprint, state, reuse
                in graph.summary_rows()
            ]
            totals = (f"total: {description['gemm_flops'] / 1e9:.1f} GFLOP of GEMMs, "
                      f"{description['total_flops'] / 1e9:.1f} GFLOP overall, "
                      f"footprint {description['footprint_bytes'] / 1e6:.1f} MB, "
                      f"peak resident state {description['peak_state_bytes'] / 1e6:.1f} MB")
            text = "\n\n".join([
                render_table(
                    ["phase", "kind", "repeat", "gemms", "gflop", "stream (MB)",
                     "state (MB)", "flop/byte"],
                    rows, title=f"{description['name']} - {len(graph)} phases"),
                totals,
            ])
    else:  # export
        if not args.name:
            raise ValueError("workloads export needs a catalog name (base[@spec])")
        text = workload_graph_by_name(args.name, precision).to_json()

    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.action} output to {args.output}")
    else:
        print(text)
    return 0


def _parse_slo(text: str) -> tuple:
    """Parse ``--slo TTFT[:TPOT]`` into ``(ttft_slo_s, tpot_slo_s)`` seconds.

    ``"0.5"`` sets only a TTFT target, ``"0.5:0.1"`` both, ``":0.1"`` only a
    TPOT target.  Targets must be positive.
    """
    ttft_text, _, tpot_text = text.partition(":")
    try:
        ttft = float(ttft_text) if ttft_text.strip() else None
        tpot = float(tpot_text) if tpot_text.strip() else None
    except ValueError:
        raise ValueError(
            f"malformed --slo {text!r}: expected TTFT[:TPOT] in seconds, e.g. 0.5:0.1")
    if ttft is None and tpot is None:
        raise ValueError(f"--slo {text!r} sets no target; pass TTFT, :TPOT or TTFT:TPOT")
    if (ttft is not None and ttft <= 0) or (tpot is not None and tpot <= 0):
        raise ValueError(f"--slo targets must be positive seconds, got {text!r}")
    return ttft, tpot


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import (
        ServeSimulator,
        bursty_trace,
        default_tenants,
        llm_tenants,
        poisson_trace,
        replay_trace,
    )

    if args.kv_budget is None:
        kv_budget_bytes = None
    elif args.kv_budget == "auto":
        kv_budget_bytes = "auto"
    else:
        try:
            megabytes = float(args.kv_budget)
        except ValueError:
            raise ValueError(
                f"--kv-budget must be a size in MB or 'auto', got {args.kv_budget!r}")
        kv_budget_bytes = float("inf") if megabytes == 0 else megabytes * 1e6
    autoscale = None
    if args.autoscale:
        from repro.serve import AutoscalePolicy

        if args.batching != "step":
            raise ValueError("--autoscale needs --batching step")
        degree = 1
        if args.parallel is not None:
            from repro.parallel import ParallelismSpec

            degree = ParallelismSpec.parse(args.parallel).degree
        min_nodes = args.min_nodes if args.min_nodes is not None else degree
        max_nodes = args.max_nodes if args.max_nodes is not None else args.nodes
        for flag, value in (("--min-nodes", min_nodes), ("--max-nodes", max_nodes)):
            if value % degree:
                raise ValueError(
                    f"{flag} ({value}) must be a multiple of the parallelism "
                    f"group size ({degree})")
        if not 0 < min_nodes <= max_nodes <= args.nodes:
            raise ValueError(
                f"--autoscale needs 0 < --min-nodes <= --max-nodes <= --nodes, "
                f"got {min_nodes}/{max_nodes}/{args.nodes}")
        autoscale = AutoscalePolicy(min_groups=min_nodes // degree,
                                    max_groups=max_nodes // degree)
    elif args.min_nodes is not None or args.max_nodes is not None:
        raise ValueError("--min-nodes/--max-nodes only apply with --autoscale")
    config = maco_default_config(num_nodes=args.nodes)
    simulator = ServeSimulator(system=MACOSystem(config), scheduler=args.scheduler,
                               jobs=args.jobs, parallelism=args.parallel,
                               batching=args.batching, max_batch=args.max_batch,
                               kv_budget_bytes=kv_budget_bytes,
                               preemption=not args.no_preemption,
                               autoscale=autoscale)
    precision = Precision.from_string(args.precision)
    if args.trace == "replay":
        if not args.trace_file:
            raise ValueError("--trace replay requires --trace-file")
        parser_defaults = {"tenants": 3, "requests": 200, "rate": None,
                           "utilization": 0.7, "burst_factor": 8.0, "precision": "fp32",
                           "tenant_mix": "suite", "slo": None}
        ignored = [f"--{name.replace('_', '-')}" for name, default in parser_defaults.items()
                   if getattr(args, name) != default]
        if ignored:
            print("warning: replayed traces carry their own arrivals and precision; "
                  f"ignoring {', '.join(ignored)}", file=sys.stderr)
        trace = replay_trace(args.trace_file)
    else:
        if args.requests < 1:
            raise ValueError(f"request target must be >= 1, got {args.requests}")
        if args.tenant_mix == "llm":
            specs = llm_tenants(args.tenants)
        else:
            specs = default_tenants(args.tenants)
        if args.rate is not None:
            specs = [spec.with_rate(args.rate) for spec in specs]
        else:
            specs = simulator.suggest_rates(specs, utilization=args.utilization,
                                            precision=precision)
        if args.slo is not None:
            ttft_slo, tpot_slo = _parse_slo(args.slo)
            specs = [spec.with_slo(ttft_slo_s=ttft_slo, tpot_slo_s=tpot_slo)
                     for spec in specs]
        duration = args.requests / sum(spec.rate_rps for spec in specs)
        if args.trace == "bursty":
            trace = bursty_trace(specs, duration, seed=args.seed, precision=precision,
                                 burst_factor=args.burst_factor)
        else:
            trace = poisson_trace(specs, duration, seed=args.seed, precision=precision)

    report = simulator.run(trace, shards=args.shards)
    if args.functional_smoke:
        verified = simulator.functional_smoke(trace)
        print(f"functional smoke: {verified} GEMMs verified through the MPAIS async path",
              file=sys.stderr)
    text = report.to_json() if args.format == "json" else report.render()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote serve report for {report.total_requests} requests to {args.output}")
    else:
        print(text)
    return 0


def _cmd_conformance(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.conformance import (
        GoldenCase,
        RegenRefused,
        fuzz as run_fuzz,
        replay as replay_fuzz,
        run_case,
        run_corpus,
    )

    def _write_failures(specs: List[dict]) -> None:
        if args.failures and specs:
            Path(args.failures).write_text(
                json.dumps({"failures": specs}, indent=2) + "\n")
            print(f"wrote {len(specs)} failure spec(s) to {args.failures}",
                  file=sys.stderr)

    if args.action == "run":
        golden_dir = Path(args.golden_dir) if args.golden_dir else None
        try:
            report = run_corpus(golden_dir=golden_dir, regen=args.regen,
                                allow_dirty=args.allow_dirty)
        except RegenRefused as error:
            print(f"{args.command}: error: {error}", file=sys.stderr)
            return 2
        rows = report.rows()
        print(render_table(rows[0], rows[1:], title="golden conformance corpus"))
        if report.regenerated:
            print(f"regenerated {len(report.regenerated)} golden file(s)")
        _write_failures(report.failure_specs())
        if not report.passed:
            for spec in report.failure_specs():
                print(json.dumps(spec), file=sys.stderr)
            print(f"{len(report.failures)} of {len(report.results)} golden "
                  "case(s) failed", file=sys.stderr)
            return 1
        print(f"all {len(report.results)} golden case(s) passed")
        return 0

    if args.action == "fuzz":
        report = run_fuzz(cases=args.cases, seed=args.seed,
                          kinds=args.kind or None)
        counts = ", ".join(f"{kind}={count}"
                           for kind, count in sorted(report.kind_counts().items()))
        print(f"fuzzed {report.cases} scenario(s) with seed {report.seed}: {counts}")
        _write_failures(report.failure_specs())
        if not report.passed:
            for spec in report.failure_specs():
                print(json.dumps(spec), file=sys.stderr)
            print(f"{len(report.failures)} scenario(s) violated an invariant",
                  file=sys.stderr)
            return 1
        print("all scenarios passed")
        return 0

    # replay: re-run the failure spec(s) recorded by `run`/`fuzz --failures`.
    text = Path(args.spec).read_text()
    try:
        record = json.loads(text)
    except json.JSONDecodeError as error:
        raise ValueError(f"replay spec {args.spec} is not valid JSON: {error}")
    specs = record["failures"] if isinstance(record, dict) and "failures" in record \
        else [record]
    failed = 0
    for spec in specs:
        if not isinstance(spec, dict) or "type" not in spec:
            raise ValueError(
                f"replay spec {args.spec}: each record needs a 'type' of "
                "'golden' or 'fuzz'")
        if spec["type"] == "golden":
            result = run_case(GoldenCase.from_dict(spec["case"]))
            name = result.case.name
            message = None if result.passed else result.message
        elif spec["type"] == "fuzz":
            message = replay_fuzz(spec)
            name = f"{spec.get('kind')}[{spec.get('index', '?')}]"
        else:
            raise ValueError(f"unknown replay spec type {spec['type']!r}")
        if message is None:
            print(f"{name}: PASS")
        else:
            print(f"{name}: FAIL — {message}")
            failed += 1
    return 1 if failed else 0


def _cmd_table4(args: argparse.Namespace) -> int:
    comparison = compare_cpu_mmae()
    print(render_table(
        ["", "Freq (GHz)", "Area (mm2)", "Power (W)", "FMACs", "Peak Perf (GFLOPS)"],
        [comparison.cpu.as_row(), comparison.mmae.as_row()],
        title="Table IV - comparison of the CPU core and MMAE",
    ))
    for key, value in comparison.summary().items():
        print(f"  {key}: {value:.2f}")
    return 0


#: One help string for every command's --parallel flag (satellite of the
#: ParallelismSpec redesign: a single spelling, a single grammar message).
_PARALLEL_SPEC_HELP = (
    "parallelism spec, strategy:degree or strategy:RxC — "
    "e.g. tp:4, tp2d:2x4, pp:2, auto:4"
)


def _add_parallel_spec_argument(parser: argparse.ArgumentParser,
                                help_suffix: str = "") -> None:
    """Add the shared ``--parallel SPEC`` argument with the common help text."""
    parser.add_argument("--parallel", default=None, metavar="SPEC",
                        help=_PARALLEL_SPEC_HELP + help_suffix)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    subparsers = parser.add_subparsers(dest="command", required=True)

    gemm = subparsers.add_parser("gemm", help="time one square GEMM on MACO")
    gemm.add_argument("--size", type=int, default=4096)
    gemm.add_argument("--nodes", type=int, default=16)
    gemm.add_argument("--precision", default="fp64", choices=["fp64", "fp32", "fp16"])
    gemm.add_argument("--no-prediction", action="store_true",
                      help="disable predictive address translation")
    gemm.set_defaults(handler=_cmd_gemm)

    # The figure sweeps are small and fixed, so they stay serial (and warm
    # the process-wide cache) unless --jobs asks for a pool; explore campaigns
    # are open-ended and default to all CPU cores.
    fig_jobs_help = "worker processes for the sweep (default: serial)"

    fig6 = subparsers.add_parser("fig6", help="regenerate the Fig. 6 sweep")
    fig6.add_argument("--jobs", type=int, default=None, help=fig_jobs_help)
    fig6.set_defaults(handler=_cmd_fig6)

    fig7 = subparsers.add_parser("fig7", help="regenerate the Fig. 7 sweep")
    fig7.add_argument("--jobs", type=int, default=None, help=fig_jobs_help)
    fig7.set_defaults(handler=_cmd_fig7)

    fig8 = subparsers.add_parser("fig8", help="regenerate the Fig. 8 comparison")
    fig8.add_argument("--nodes", type=int, default=8)
    fig8.add_argument("--jobs", type=int, default=None, help=fig_jobs_help)
    fig8.set_defaults(handler=_cmd_fig8)

    table4 = subparsers.add_parser("table4", help="regenerate the Table IV comparison")
    table4.set_defaults(handler=_cmd_table4)

    bench = subparsers.add_parser(
        "bench",
        help="time the functional fast path (page prediction, translation, emulator)")
    bench.add_argument("--quick", action="store_true",
                       help="smaller workloads for CI smoke runs")
    bench.add_argument("--repeat", type=int, default=1,
                       help="timing repetitions (best-of)")
    bench.add_argument("--output", default="BENCH_functional.json",
                       help="where to write the JSON report")
    bench.add_argument("--baseline", default=None,
                       help="committed baseline report to compare speedups against")
    bench.add_argument("--regression-factor", type=float, default=2.0,
                       help="fail if a speedup drops below baseline/factor")
    bench.set_defaults(handler=_cmd_bench)

    explore = subparsers.add_parser(
        "explore", help="design-space exploration over architectural knobs")
    explore.add_argument("--sample", default="grid", choices=["grid", "random", "lhs"],
                         help="design-point generator (grid, uniform random, Latin hypercube)")
    explore.add_argument("--points", type=int, default=64,
                         help="sample size for --sample random/lhs")
    explore.add_argument("--seed", type=int, default=0, help="sampling seed")
    explore.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: all CPU cores)")
    explore.add_argument("--objective", default="gflops",
                         choices=["gflops", "efficiency", "gflops_per_mm2", "gflops_per_watt"],
                         help="ranking objective")
    explore.add_argument("--workload", default="square",
                         help="evaluation workload: 'square' (one GEMM), 'hpl' (a size "
                              "ladder), or any workload-catalog name such as "
                              "llama-7b@decode (see 'repro workloads list')")
    explore.add_argument("--size", type=int, default=2048,
                         help="matrix size for --workload square/hpl")
    explore.add_argument("--precision", default="fp64", choices=["fp64", "fp32", "fp16"])
    explore.add_argument("--per-phase", action="store_true",
                         help="emit one row per (design point, phase) instead of aggregates "
                              "(catalog workloads only)")
    _add_parallel_spec_argument(
        explore, "; shards the workload across a node group at every design "
                 "point (catalog workloads only)")
    explore.add_argument("--top", type=int, default=10,
                         help="rows shown in table output (<= 0 for all)")
    explore.add_argument("--format", default="table", choices=["table", "csv", "json"])
    explore.add_argument("--output", default=None,
                         help="write the rendered output to this file instead of stdout")
    explore.set_defaults(handler=_cmd_explore)

    parallel = subparsers.add_parser(
        "parallel",
        help="shard a workload across mesh nodes and report compute vs communication")
    parallel.add_argument("--workload", default="llama-7b@decode",
                          help="workload-catalog name, e.g. llama-7b@decode "
                               "(see 'repro workloads list')")
    _add_parallel_spec_argument(
        parallel, " — comma separated to plan several, e.g. tp:1,tp:4,tp2d:2x2")
    parallel.add_argument("--strategy", default=None, choices=["tp", "pp", "auto"],
                          help="deprecated alias: use --parallel STRATEGY:DEGREE")
    parallel.add_argument("--degree", default=None,
                          help="deprecated alias: use --parallel STRATEGY:DEGREE "
                               "(comma list, e.g. 4 or 1,2,4)")
    parallel.add_argument("--nodes", type=int, default=16,
                          help="compute nodes in the configuration (degree must fit)")
    parallel.add_argument("--precision", default="fp32", choices=["fp64", "fp32", "fp16"])
    parallel.add_argument("--jobs", type=int, default=None,
                          help="worker processes for the strategy x degree sweep "
                               "(default: serial; results are identical either way)")
    parallel.add_argument("--format", default="table", choices=["table", "csv", "json"])
    parallel.add_argument("--output", default=None,
                          help="write the rendered output to this file instead of stdout")
    parallel.set_defaults(handler=_cmd_parallel)

    workloads = subparsers.add_parser(
        "workloads", help="list, describe and export the workload scenario catalog")
    workloads.add_argument("action", choices=["list", "describe", "export"],
                           help="list the catalog, describe one variant's phases, "
                                "or export its WorkloadGraph JSON")
    workloads.add_argument("name", nargs="?", default=None,
                           help="catalog name with optional parameters, e.g. "
                                "llama-7b@decode,batch=2 (describe/export)")
    workloads.add_argument("--precision", default="fp32", choices=["fp64", "fp32", "fp16"])
    workloads.add_argument("--format", default="table", choices=["table", "json"],
                           help="output format for list/describe (export is always JSON)")
    workloads.add_argument("--output", default=None,
                           help="write the output to this file instead of stdout")
    workloads.set_defaults(handler=_cmd_workloads)

    serve = subparsers.add_parser(
        "serve", help="trace-driven multi-tenant inference serving simulation")
    serve.add_argument("--trace", default="poisson", choices=["poisson", "bursty", "replay"],
                       help="arrival process, or replay a recorded JSON trace")
    serve.add_argument("--trace-file", default=None,
                       help="JSON arrival records for --trace replay")
    serve.add_argument("--tenants", type=int, default=3,
                       help="tenant count for generated traces")
    serve.add_argument("--tenant-mix", default="suite", choices=["suite", "llm"],
                       help="tenant workload mixes: rotate the Fig. 8 suite, or "
                            "alternate prefill-heavy and decode-heavy LLM tenants")
    serve.add_argument("--requests", type=int, default=200,
                       help="target total request count for generated traces")
    serve.add_argument("--rate", type=float, default=None,
                       help="per-tenant mean arrival rate in req/s "
                            "(default: sized for --utilization)")
    serve.add_argument("--utilization", type=float, default=0.7,
                       help="target fleet utilization used to size the default rate")
    serve.add_argument("--burst-factor", type=float, default=8.0,
                       help="burst rate multiplier for --trace bursty")
    serve.add_argument("--scheduler", default="fcfs", choices=list(SCHEDULER_NAMES),
                       help="admission/batching policy")
    serve.add_argument("--batching", default="request", choices=["request", "step"],
                       help="execution model: whole-request dispatch, or iteration-level "
                            "continuous batching over workload-graph steps")
    serve.add_argument("--max-batch", type=int, default=8,
                       help="resident requests per server under --batching step")
    serve.add_argument("--kv-budget", default=None, metavar="MB|auto",
                       help="per-server budget for resident KV state under --batching "
                            "step, in MB (default 4096; 0 = unlimited), or 'auto' to "
                            "derive it from the DRAM capacity model: the node's "
                            "capacity share minus the resident sharded model weights")
    serve.add_argument("--no-preemption", action="store_true",
                       help="never evict resident requests under --batching step; the "
                            "KV budget then only gates admission")
    serve.add_argument("--autoscale", action="store_true",
                       help="autoscale the fleet between --min-nodes and --max-nodes "
                            "under --batching step: scale out on sustained queue-depth "
                            "or SLO pressure, drain idle groups back in; the report "
                            "gains a fleet timeline and node-second accounting")
    serve.add_argument("--min-nodes", type=int, default=None, metavar="N",
                       help="smallest committed fleet under --autoscale, in nodes "
                            "(default: one parallelism group)")
    serve.add_argument("--max-nodes", type=int, default=None, metavar="N",
                       help="largest committed fleet under --autoscale, in nodes "
                            "(default: --nodes)")
    serve.add_argument("--slo", default=None, metavar="TTFT[:TPOT]",
                       help="TTFT/TPOT targets in seconds applied to every generated "
                            "tenant, e.g. 0.5:0.1 (reported as SLO attainment/goodput; "
                            "the slo scheduler prioritises by TTFT deadline)")
    serve.add_argument("--nodes", type=int, default=8, help="compute nodes in the fleet")
    _add_parallel_spec_argument(
        serve, "; serves each request on a node group instead of one node "
               "(--nodes must divide into groups of the spec's degree)")
    serve.add_argument("--precision", default="fp32", choices=["fp64", "fp32", "fp16"])
    serve.add_argument("--seed", type=int, default=0, help="trace generation seed")
    serve.add_argument("--jobs", type=int, default=None,
                       help="worker processes for service-time estimation and "
                            "--shards simulation (default: serial)")
    serve.add_argument("--shards", type=int, default=None, metavar="N",
                       help="split the trace at provable idle points and simulate the "
                            "segments independently (request-level shards fan out over "
                            "--jobs; step-level segments run serially from a cold "
                            "fleet); the merged report is byte-identical for every N "
                            "and --jobs setting")
    serve.add_argument("--format", default="table", choices=["table", "json"])
    serve.add_argument("--output", default=None,
                       help="write the report to this file instead of stdout")
    serve.add_argument("--functional-smoke", action="store_true",
                       help="also verify a few small GEMMs through the MPAIS async path")
    serve.set_defaults(handler=_cmd_serve)

    conformance = subparsers.add_parser(
        "conformance",
        help="golden-model conformance corpus and property-based scenario fuzzing")
    conformance_actions = conformance.add_subparsers(dest="action", required=True)

    conf_run = conformance_actions.add_parser(
        "run", help="execute the golden corpus against tests/golden/")
    conf_run.add_argument("--regen", action="store_true",
                          help="rewrite the committed golden files from the current "
                               "golden models (guarded: refuses on a dirty corpus)")
    conf_run.add_argument("--allow-dirty", action="store_true",
                          help="let --regen overwrite uncommitted golden files "
                               "(refused in CI)")
    conf_run.add_argument("--golden-dir", default=None,
                          help="corpus directory (default: the committed tests/golden/)")
    conf_run.add_argument("--failures", default=None, metavar="FILE",
                          help="write failing case specs to FILE as replayable JSON")
    conf_run.set_defaults(handler=_cmd_conformance)

    conf_fuzz = conformance_actions.add_parser(
        "fuzz", help="property-based scenario fuzzing over the exact invariants")
    conf_fuzz.add_argument("--cases", type=int, default=100,
                           help="number of scenarios to sample")
    conf_fuzz.add_argument("--seed", type=int, default=0,
                           help="run seed; (seed, index) fully determines scenario i")
    conf_fuzz.add_argument("--kind", action="append", default=None,
                           help="restrict to a scenario kind (repeatable)")
    conf_fuzz.add_argument("--failures", default=None, metavar="FILE",
                           help="write violated scenario specs to FILE as replayable JSON")
    conf_fuzz.set_defaults(handler=_cmd_conformance)

    conf_replay = conformance_actions.add_parser(
        "replay", help="re-run a recorded failure spec file")
    conf_replay.add_argument("spec", help="JSON spec from --failures (or a single record)")
    conf_replay.set_defaults(handler=_cmd_conformance)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error
        # worth reporting (matches conventional CLI behaviour).
        return 0
    except (ValueError, OSError) as error:
        # Domain validation (node counts, sample sizes, buffer capacities, ...)
        # raises ValueError; --output can hit unwritable paths.  Report both
        # like an argparse error instead of a traceback.
        print(f"{parser.prog} {args.command}: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
