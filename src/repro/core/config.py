"""Configuration dataclasses for the MACO system.

Defaults follow the paper's published parameters: Table I (CPU core), Table IV
(frequencies, areas, power, FMAC counts), Section III.A (MMAE buffers, NoC
geometry and bandwidth, distributed L3), and Section V.B.2 (page size and
tiling used by the evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.gemm.tiling import TileConfig
from repro.mem.dram import DRAMConfig
from repro.mmae.dataflow import MMAETimingParameters
from repro.mmae.matlb import TranslationTimingParameters
from repro.noc.network import NocConfig


@dataclass(frozen=True)
class CPUConfig:
    """Architectural parameters of one CPU core (paper Table I / Table IV)."""

    frequency_hz: float = 2.2e9
    instruction_width_bits: int = 64
    data_bus_width_bits: int = 256
    instruction_fetch_width_bits: int = 128
    pipeline_stages: int = 12
    issue_width: int = 4
    out_of_order: bool = True
    l1i_size_bytes: int = 48 * 1024
    l1i_associativity: int = 4
    l1d_size_bytes: int = 48 * 1024
    l1d_associativity: int = 4
    l2_size_bytes: int = 512 * 1024
    l2_associativity: int = 8
    itlb_entries: int = 48
    dtlb_entries: int = 48
    l2_tlb_entries: int = 1024
    fmac_lanes: int = 8
    mtq_entries: int = 8
    memory_bandwidth_bytes_per_s: float = 32e9
    area_mm2: float = 6.25
    power_w: float = 2.0

    @property
    def frequency_ghz(self) -> float:
        """Core clock in GHz."""
        return self.frequency_hz / 1e9

    @property
    def peak_gflops_fp64(self) -> float:
        """Theoretical peak: 2 x freq x FMACs (Table IV footnote)."""
        return 2.0 * self.frequency_ghz * self.fmac_lanes

    @property
    def peak_gflops_fp32(self) -> float:
        """FP32 peak: twice the FP64 rate (each lane splits in two)."""
        return 2.0 * self.peak_gflops_fp64


@dataclass(frozen=True)
class MMAEConfig:
    """Architectural parameters of one MMAE (paper Table IV / Fig. 2)."""

    frequency_hz: float = 2.5e9
    sa_rows: int = 4
    sa_cols: int = 4
    a_buffer_bytes: int = 64 * 1024
    b_buffer_bytes: int = 64 * 1024
    c_buffer_bytes: int = 64 * 1024
    dma_engines: int = 2
    dma_outstanding_lines: int = 32
    stq_entries: int = 8
    matlb_entries: int = 64
    area_mm2: float = 1.58
    power_w: float = 1.5
    #: Area breakdown fractions (Table IV footnote b).
    area_breakdown: tuple = (("buffers", 0.367), ("systolic_array", 0.247),
                             ("controller", 0.234), ("data_engine", 0.158))

    @property
    def frequency_ghz(self) -> float:
        """MMAE clock in GHz."""
        return self.frequency_hz / 1e9

    @property
    def fmac_lanes(self) -> int:
        """FP64 MAC lanes of the systolic array (Table IV reports 16)."""
        return self.sa_rows * self.sa_cols

    @property
    def total_buffer_bytes(self) -> int:
        """Combined capacity of the A/B/C scratchpad buffers."""
        return self.a_buffer_bytes + self.b_buffer_bytes + self.c_buffer_bytes

    @property
    def peak_gflops_fp64(self) -> float:
        """Theoretical FP64 peak: 2 x freq x systolic MAC lanes."""
        return 2.0 * self.frequency_ghz * self.fmac_lanes

    @property
    def peak_gflops_fp32(self) -> float:
        """FP32 peak: twice the FP64 rate."""
        return 2.0 * self.peak_gflops_fp64

    @property
    def peak_gflops_fp16(self) -> float:
        """FP16 peak: four times the FP64 rate."""
        return 4.0 * self.peak_gflops_fp64

    def timing_parameters(self) -> MMAETimingParameters:
        """Build the timing-parameter bundle used by the dataflow model."""
        return MMAETimingParameters(
            frequency_hz=self.frequency_hz,
            sa_rows=self.sa_rows,
            sa_cols=self.sa_cols,
            dma_engines=self.dma_engines,
            dma_outstanding_lines=self.dma_outstanding_lines,
            translation=TranslationTimingParameters(),
        )


@dataclass(frozen=True)
class MemoryConfig:
    """Shared memory-system parameters: distributed L3, DDR controllers, paging."""

    l3_slice_bytes: int = 8 * 1024 * 1024
    l3_slices: int = 4
    l3_associativity: int = 16
    line_size: int = 64
    page_size: int = 4096
    dram: DRAMConfig = field(default_factory=lambda: DRAMConfig(
        num_channels=4, channel_bandwidth_bytes_per_s=51.2e9, access_latency_ns=80.0,
    ))
    #: Base round-trip latency of an L3 access from a compute node (NoC + CCM + slice).
    l3_round_trip_ns: float = 60.0
    #: Extra round-trip latency when the access misses to DRAM.
    dram_round_trip_ns: float = 95.0
    #: Queueing delay added per additional active node (CCM and DDR controller queues).
    queue_ns_per_active_node: float = 4.0

    @property
    def l3_total_bytes(self) -> int:
        """Total distributed L3 capacity across all slices."""
        return self.l3_slice_bytes * self.l3_slices


@dataclass(frozen=True)
class MACOConfig:
    """Top-level configuration of a MACO system instance."""

    num_nodes: int = 16
    cpu: CPUConfig = field(default_factory=CPUConfig)
    mmae: MMAEConfig = field(default_factory=MMAEConfig)
    noc: NocConfig = field(default_factory=NocConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    level1_tile: TileConfig = field(default_factory=lambda: TileConfig(1024, 1024))
    level2_tile: TileConfig = field(default_factory=lambda: TileConfig(64, 64))
    prediction_enabled: bool = True
    mapping_scheme_enabled: bool = True

    def __post_init__(self) -> None:
        max_nodes = self.noc.width * self.noc.height
        if not 1 <= self.num_nodes <= max_nodes:
            raise ValueError(
                f"num_nodes must be between 1 and the mesh size ({max_nodes}), got {self.num_nodes}"
            )

    def peak_gflops(self, precision) -> float:
        """Aggregate MMAE peak across all compute nodes for a precision."""
        from repro.gemm.precision import Precision

        per_node = {
            Precision.FP64: self.mmae.peak_gflops_fp64,
            Precision.FP32: self.mmae.peak_gflops_fp32,
            Precision.FP16: self.mmae.peak_gflops_fp16,
        }[precision]
        return per_node * self.num_nodes

    def with_nodes(self, num_nodes: int) -> "MACOConfig":
        """A copy of this configuration with a different node count."""
        return replace(self, num_nodes=num_nodes)

    def with_prediction(self, enabled: bool) -> "MACOConfig":
        """Copy of this config with predictive address translation toggled."""
        return replace(self, prediction_enabled=enabled)

    def with_mapping(self, enabled: bool) -> "MACOConfig":
        """Copy of this config with the stash/lock mapping scheme toggled."""
        return replace(self, mapping_scheme_enabled=enabled)


def maco_default_config(
    num_nodes: int = 16,
    prediction_enabled: bool = True,
    mapping_scheme_enabled: bool = True,
) -> MACOConfig:
    """The paper's default MACO configuration with ``num_nodes`` compute nodes."""
    return MACOConfig(
        num_nodes=num_nodes,
        prediction_enabled=prediction_enabled,
        mapping_scheme_enabled=mapping_scheme_enabled,
    )
