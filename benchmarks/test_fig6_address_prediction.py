"""Fig. 6 — computational efficiency with and without predictive address translation.

Setup follows the paper (Section V.B.2): a single compute node, 4 KB pages,
first-level tiling <Tr, Tc> = <1024, 1024>, second-level <ttr, ttc> = <64, 64>,
square FP64 GEMMs of size 256 .. 9216.  The harness prints both series and the
per-size gap and asserts the paper's qualitative claims: prediction always
helps, the gain is below 2% for matrices smaller than 512, and it peaks (at a
handful of percent, the paper reports 6.5%) once rows span multiple pages.
"""

from repro.analysis import efficiency_by_size, efficiency_gap, format_percent, render_series
from repro.core import sweep_prediction
from repro.gemm.workloads import FIG6_MATRIX_SIZES


def test_fig6_address_prediction(benchmark, paper_config):
    sizes = list(FIG6_MATRIX_SIZES)

    def regenerate():
        return sweep_prediction(paper_config, sizes)

    points = benchmark(regenerate)

    with_prediction = efficiency_by_size(points, prediction_enabled=True)
    without_prediction = efficiency_by_size(points, prediction_enabled=False)
    gaps = efficiency_gap(points)

    print("\n" + render_series(
        "matrix size",
        sizes,
        {
            "with prediction": [with_prediction[s] for s in sizes],
            "without prediction": [without_prediction[s] for s in sizes],
            "gap": [gaps[s] for s in sizes],
        },
        value_formatter=format_percent,
        title="Fig. 6 - MACO efficiency with/without page-table-address prediction (single node, FP64)",
    ))

    # Prediction never hurts.
    for size in sizes:
        assert with_prediction[size] >= without_prediction[size]
    # Both curves stay in the figure's 88-100% band.
    for size in sizes:
        assert with_prediction[size] > 0.90
        assert without_prediction[size] > 0.88
    # Below size 512 the gain is insignificant (< 2%).
    assert gaps[256] < 0.02
    # The gap peaks for page-spanning matrices; the paper reports up to 6.5%.
    peak_gap = max(gaps.values())
    assert 0.04 < peak_gap < 0.09
    assert max(gaps, key=gaps.get) >= 1024
