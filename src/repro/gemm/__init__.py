"""GEMM algorithms, tiling schemes, precisions and workload generators.

This package is the numerical substrate of the reproduction: it defines the
precisions the MMAE supports (FP64, 2-way FP32, 4-way FP16), the two-level
tiling used by the paper's evaluation (first-level <Tr, Tc> = <1024, 1024>,
second-level <ttr, ttc> = <64, 64>), reference GEMM implementations used to
validate the systolic-array model, and generators for the synthetic (HPL-like)
and deep-learning GEMM workloads the evaluation sweeps.
"""

from repro.gemm.precision import Precision
from repro.gemm.workloads import (
    GEMMShape,
    GEMMWorkload,
    paper_matrix_sizes,
    square_workload,
    sweep_square_sizes,
    random_workloads,
    hpl_like_workloads,
)
from repro.gemm.tiling import TileConfig, Tile, TwoLevelTiling, tile_ranges
from repro.gemm.reference import (
    reference_gemm,
    blocked_gemm,
    conv2d_reference,
    im2col_patches,
    tiled_gemm_trace,
)

__all__ = [
    "Precision",
    "GEMMShape",
    "GEMMWorkload",
    "paper_matrix_sizes",
    "square_workload",
    "sweep_square_sizes",
    "random_workloads",
    "hpl_like_workloads",
    "TileConfig",
    "Tile",
    "TwoLevelTiling",
    "tile_ranges",
    "reference_gemm",
    "blocked_gemm",
    "conv2d_reference",
    "im2col_patches",
    "tiled_gemm_trace",
]
