"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.cache import CacheConfig, SetAssociativeCache


def small_cache(size=4096, assoc=4, line=64) -> SetAssociativeCache:
    return SetAssociativeCache(CacheConfig(name="test", size_bytes=size, associativity=assoc, line_size=line))


class TestCacheConfig:
    def test_geometry(self):
        config = CacheConfig("l1", 48 * 1024, 4, 64)
        assert config.num_sets == 192
        assert config.num_lines == 768

    def test_indivisible_size_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", 1000, 4, 64)

    def test_table1_cache_sizes_valid(self):
        # Every cache of the paper's Table I must be constructible.
        CacheConfig("l1i", 48 * 1024, 4)
        CacheConfig("l1d", 48 * 1024, 4)
        CacheConfig("l2", 512 * 1024, 8)


class TestCacheBehaviour:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(0x100).hit
        assert cache.access(0x100).hit

    def test_same_line_different_bytes_hit(self):
        cache = small_cache()
        cache.access(0x100)
        assert cache.access(0x13F).hit  # same 64-byte line

    def test_lru_eviction_within_set(self):
        cache = small_cache(size=4 * 64, assoc=4, line=64)  # one set, 4 ways
        for way in range(4):
            cache.access(way * 64)
        cache.access(0)              # make line 0 most recently used
        result = cache.access(4 * 64)  # must evict line 1 (the LRU)
        assert result.evicted_address == 64
        assert cache.access(0).hit
        assert not cache.access(64).hit

    def test_dirty_eviction_reports_writeback(self):
        cache = small_cache(size=2 * 64, assoc=2, line=64)
        cache.access(0, write=True)
        cache.access(64)
        result = cache.access(128)  # evicts the dirty line 0
        assert result.writeback
        assert cache.stats.writebacks == 1

    def test_fill_does_not_count_access(self):
        cache = small_cache()
        cache.fill(0x200)
        assert cache.stats.accesses == 0
        assert cache.probe(0x200)

    def test_invalidate(self):
        cache = small_cache()
        cache.access(0x40)
        assert cache.invalidate(0x40)
        assert not cache.probe(0x40)

    def test_stats_hit_rate(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        cache.access(0)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_occupancy(self):
        cache = small_cache(size=1024, assoc=4, line=64)
        for line in range(8):
            cache.access(line * 64)
        assert cache.occupancy == pytest.approx(0.5)


class TestCacheLocking:
    def test_locked_line_survives_eviction_pressure(self):
        cache = small_cache(size=2 * 64, assoc=2, line=64)  # one set, two ways
        cache.access(0)
        assert cache.lock(0)
        # Stream many conflicting lines through the set.
        for line in range(1, 10):
            cache.access(line * 64)
        assert cache.probe(0), "the locked line must remain resident"

    def test_fully_locked_set_bypasses_fill(self):
        cache = small_cache(size=2 * 64, assoc=2, line=64)
        cache.access(0)
        cache.access(64)
        cache.lock(0)
        cache.lock(64)
        result = cache.access(128)
        assert not result.hit
        assert not cache.probe(128)  # bypassed, nothing evicted
        assert cache.probe(0) and cache.probe(64)

    def test_unlock_restores_evictability(self):
        cache = small_cache(size=2 * 64, assoc=2, line=64)
        cache.access(0)
        cache.lock(0)
        cache.unlock(0)
        cache.access(64)
        cache.access(128)
        cache.access(192)
        assert not cache.probe(0)

    def test_lock_missing_line_returns_false(self):
        cache = small_cache()
        assert not cache.lock(0xABC0)

    def test_unlock_all_counts(self):
        cache = small_cache()
        for line in range(4):
            cache.access(line * 64)
            cache.lock(line * 64)
        assert cache.unlock_all() == 4
        assert cache.locked_lines == 0


class TestCacheProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300))
    def test_resident_lines_never_exceed_capacity(self, addresses):
        cache = small_cache(size=2048, assoc=2, line=64)
        for address in addresses:
            cache.access(address)
        assert cache.resident_lines <= cache.config.num_lines

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300))
    def test_accesses_equal_hits_plus_misses(self, addresses):
        cache = small_cache()
        for address in addresses:
            cache.access(address)
        assert cache.stats.accesses == len(addresses)
        assert cache.stats.hits + cache.stats.misses == len(addresses)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=200))
    def test_immediate_re_access_always_hits(self, addresses):
        cache = small_cache()
        for address in addresses:
            cache.access(address)
            assert cache.access(address).hit
