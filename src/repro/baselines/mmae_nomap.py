"""Baseline-2: MACO with MMAEs but without the Section IV.B mapping scheme.

The MMAEs still execute the GEMMs, but:

* operand tiles are not stashed/locked in the L3, so the re-read traffic of
  the tile schedule spills to DRAM and competes with the other nodes
  (modelled by collapsing the node's effective L3 share); and
* the CPU's non-GEMM tail operators do not overlap with the MMAE and stream
  their inputs from DRAM (the locked-in-L3 guarantee is gone).

Everything else — the MPAIS interface, the predictive address translation,
the per-node partitioning — is identical to MACO, so the measured gap isolates
the mapping scheme's contribution (the paper reports 1.45x).
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.common import BaselineModel
from repro.core.maco import MACOSystem
from repro.core.metrics import WorkloadResult
from repro.gemm.workloads import GEMMWorkload


class NoMappingBaseline(BaselineModel):
    """Baseline-2 of the paper's Fig. 8."""

    name = "baseline-2"

    def __init__(self, config=None) -> None:
        super().__init__(config)
        self._system = MACOSystem(self.config.with_mapping(False))

    def run_workload(self, workload: GEMMWorkload, num_nodes: Optional[int] = None) -> WorkloadResult:
        result = self._system.run_workload(
            workload, num_nodes=num_nodes, mapping_enabled=False,
        )
        result.system = self.name
        return result
