"""Tests for the TLB models and the per-core TLB hierarchy."""

import pytest

from repro.mem.page_table import PageTable
from repro.mem.tlb import TLB, TLBHierarchy


def make_page_table(pages: int = 256, asid: int = 0) -> PageTable:
    table = PageTable(asid=asid)
    for vpn in range(pages):
        table.map_page(vpn, vpn + 5000)
    return table


class TestTLB:
    def test_miss_then_hit(self):
        tlb = TLB(entries=4)
        assert tlb.lookup(0, 0x1000) is None
        tlb.insert(0, 0x1000, 0x8000)
        assert tlb.lookup(0, 0x1234) == 0x8234

    def test_lru_eviction(self):
        tlb = TLB(entries=2)
        tlb.insert(0, 0x0000, 0x10000)
        tlb.insert(0, 0x1000, 0x11000)
        tlb.lookup(0, 0x0000)              # touch page 0 so page 1 becomes LRU
        tlb.insert(0, 0x2000, 0x12000)     # evicts page 1
        assert tlb.probe(0, 0x0000)
        assert not tlb.probe(0, 0x1000)
        assert tlb.probe(0, 0x2000)

    def test_asid_isolation(self):
        tlb = TLB(entries=8)
        tlb.insert(0, 0x1000, 0x8000)
        assert tlb.lookup(1, 0x1000) is None

    def test_flush_by_asid(self):
        tlb = TLB(entries=8)
        tlb.insert(0, 0x1000, 0x8000)
        tlb.insert(1, 0x1000, 0x9000)
        tlb.flush(asid=0)
        assert not tlb.probe(0, 0x1000)
        assert tlb.probe(1, 0x1000)

    def test_stats_track_hits_and_misses(self):
        tlb = TLB(entries=4)
        tlb.lookup(0, 0)
        tlb.insert(0, 0, 0x4000)
        tlb.lookup(0, 0)
        assert tlb.stats.misses == 1
        assert tlb.stats.hits == 1
        assert tlb.stats.hit_rate == pytest.approx(0.5)

    def test_capacity_never_exceeded(self):
        tlb = TLB(entries=4)
        for vpn in range(32):
            tlb.insert(0, vpn * 4096, vpn * 4096)
        assert len(tlb) == 4

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            TLB(entries=0)


class TestTLBHierarchy:
    def test_first_access_walks_then_hits_l1(self):
        hierarchy = TLBHierarchy(l1_entries=4, l2_entries=16)
        table = make_page_table()
        first = hierarchy.translate(table, 0x2000)
        second = hierarchy.translate(table, 0x2008)
        assert first.level == "walk"
        assert second.level == "l1"
        assert second.cycles < first.cycles
        assert first.paddr + 8 == second.paddr

    def test_l1_eviction_falls_back_to_l2(self):
        hierarchy = TLBHierarchy(l1_entries=2, l2_entries=64)
        table = make_page_table()
        for vpn in range(8):
            hierarchy.translate(table, vpn * 4096)
        result = hierarchy.translate(table, 0)  # evicted from L1 but still in L2
        assert result.level == "l2"

    def test_paper_table1_geometry_defaults(self):
        hierarchy = TLBHierarchy()
        assert hierarchy.l1.capacity == 48
        assert hierarchy.l2.capacity == 1024

    def test_prewalk_installs_translation(self):
        hierarchy = TLBHierarchy()
        table = make_page_table()
        hierarchy.prewalk(table, 0x5000)
        result = hierarchy.translate(table, 0x5010)
        assert result.hit

    def test_flush_clears_both_levels(self):
        hierarchy = TLBHierarchy()
        table = make_page_table()
        hierarchy.translate(table, 0x3000)
        hierarchy.flush()
        assert hierarchy.translate(table, 0x3000).level == "walk"

    def test_translation_correctness_across_levels(self):
        hierarchy = TLBHierarchy(l1_entries=2, l2_entries=8)
        table = make_page_table()
        expected = {vaddr: table.translate(vaddr) for vaddr in range(0, 16 * 4096, 4096)}
        for _ in range(3):
            for vaddr, paddr in expected.items():
                assert hierarchy.translate(table, vaddr).paddr == paddr
