"""The Matrix Multiplication Acceleration Engine (MMAE).

Each MACO compute node pairs its CPU core with one MMAE (paper Section III.A,
Fig. 2).  The MMAE contains:

* a 4x4 systolic array with the classical input-stationary dataflow, extended
  with SIMD-like 2-way FP32 and 4-way FP16 compute modes;
* 192 KB of A/B/C scratchpad buffers;
* an Accelerator Data Engine (ADE) with two DMA engines that move tiles
  between the L3 system cache and the buffers;
* an Accelerator Controller (AC) that receives task configurations from the
  CPU (via MA_CFG) and schedules the array, the ADE and the DMA engines;
* a Slave Task Queue (STQ) mirroring the CPU-side MTQ entries; and
* the mATLB, which performs predictive address translation ahead of the DMA
  streams (paper Section IV.A).
"""

from repro.mmae.pe import ProcessingElement
from repro.mmae.systolic_array import (
    SystolicArray,
    SystolicArrayEmulator,
    TileComputeResult,
    VectorizedSystolicArrayEmulator,
)
from repro.mmae.buffers import ScratchpadBuffer, BufferSet, BufferAllocationError
from repro.mmae.dma import DMAEngine, DMATransferResult
from repro.mmae.matlb import MATLB, TranslationStallEstimate, PageTablePredictor
from repro.mmae.stq import SlaveTaskQueue, STQEntry, STQEntryState
from repro.mmae.data_engine import AcceleratorDataEngine, TileTransferPlan
from repro.mmae.dataflow import (
    MMAETimingParameters,
    TileSchedule,
    GEMMTimingBreakdown,
    build_tile_schedule,
    estimate_gemm_timing,
)
from repro.mmae.controller import AcceleratorController, TaskResult

__all__ = [
    "ProcessingElement",
    "SystolicArray",
    "SystolicArrayEmulator",
    "VectorizedSystolicArrayEmulator",
    "TileComputeResult",
    "ScratchpadBuffer",
    "BufferSet",
    "BufferAllocationError",
    "DMAEngine",
    "DMATransferResult",
    "MATLB",
    "TranslationStallEstimate",
    "PageTablePredictor",
    "SlaveTaskQueue",
    "STQEntry",
    "STQEntryState",
    "AcceleratorDataEngine",
    "TileTransferPlan",
    "MMAETimingParameters",
    "TileSchedule",
    "GEMMTimingBreakdown",
    "build_tile_schedule",
    "estimate_gemm_timing",
    "AcceleratorController",
    "TaskResult",
]
