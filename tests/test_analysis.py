"""Tests for the area/power model (Table IV), efficiency summaries and reporting."""

import pytest

from repro.analysis import (
    compare_cpu_mmae,
    cpu_budget,
    efficiency_by_size,
    efficiency_gap,
    format_gflops,
    format_percent,
    mmae_area_breakdown,
    mmae_budget,
    render_series,
    render_table,
    summarize_scalability,
)
from repro.core import maco_default_config, sweep_prediction, sweep_scalability


class TestTable4Model:
    def test_cpu_row_matches_table4(self):
        cpu = cpu_budget()
        assert cpu.frequency_ghz == pytest.approx(2.2)
        assert cpu.area_mm2 == pytest.approx(6.25)
        assert cpu.power_w == pytest.approx(2.0)
        assert cpu.fmacs == 8
        assert cpu.peak_gflops_fp64 == pytest.approx(35.2)

    def test_mmae_row_matches_table4(self):
        mmae = mmae_budget()
        assert mmae.frequency_ghz == pytest.approx(2.5)
        assert mmae.area_mm2 == pytest.approx(1.58)
        assert mmae.power_w == pytest.approx(1.5)
        assert mmae.fmacs == 16
        assert mmae.peak_gflops_fp64 == pytest.approx(80.0)
        assert mmae.peak_gflops_fp16 == pytest.approx(320.0)

    def test_mmae_area_is_about_quarter_of_cpu(self):
        comparison = compare_cpu_mmae()
        assert comparison.area_ratio == pytest.approx(0.25, abs=0.03)

    def test_mmae_power_is_25_percent_lower(self):
        comparison = compare_cpu_mmae()
        assert comparison.power_ratio == pytest.approx(0.75, abs=0.01)

    def test_peak_ratio_over_2x(self):
        assert compare_cpu_mmae().peak_ratio_fp64 > 2.0

    def test_area_efficiency_gain_about_9x(self):
        """Paper: the MMAE has ~9x the GFLOPS/mm^2 of the CPU core."""
        gain = compare_cpu_mmae().area_efficiency_gain
        assert 8.0 < gain < 10.0

    def test_power_efficiency_gain_at_least_2x(self):
        """Paper: at least 2x the GFLOPS/W of the CPU core (Table IV gives ~3x)."""
        gain = compare_cpu_mmae().power_efficiency_gain
        assert 2.0 < gain < 3.5

    def test_area_breakdown_sums_to_total(self):
        parts = mmae_area_breakdown()
        assert sum(area for _, area in parts) == pytest.approx(1.58, rel=0.02)
        assert dict(parts)["buffers"] > dict(parts)["data_engine"]

    def test_as_row_formats_all_columns(self):
        row = mmae_budget().as_row()
        assert row[0] == "MMAE"
        assert len(row) == 6
        assert "FP16" in row[-1]

    def test_summary_keys(self):
        summary = compare_cpu_mmae().summary()
        assert {"area_ratio", "area_efficiency_gain", "power_efficiency_gain"} <= set(summary)


class TestEfficiencySummaries:
    @pytest.fixture(scope="class")
    def fig6_points(self):
        return sweep_prediction(maco_default_config(), [256, 1024])

    def test_efficiency_by_size_filters(self, fig6_points):
        values = efficiency_by_size(fig6_points, prediction_enabled=True)
        assert set(values) == {256, 1024}
        assert all(0 < value <= 1 for value in values.values())

    def test_efficiency_gap_positive(self, fig6_points):
        gaps = efficiency_gap(fig6_points)
        assert all(gap >= 0 for gap in gaps.values())
        assert gaps[1024] > gaps[256]

    def test_summarize_scalability_structure(self):
        points = sweep_scalability(maco_default_config(), [1024], [1, 16])
        summary = summarize_scalability(points)
        assert set(summary) == {1, 16}
        for stats in summary.values():
            assert stats["min"] <= stats["mean"] <= stats["max"]


class TestReporting:
    def test_format_percent(self):
        assert format_percent(0.915) == "91.5%"

    def test_format_gflops_switches_to_tflops(self):
        assert format_gflops(123.4) == "123.4 GFLOPS"
        assert format_gflops(1234.0) == "1.23 TFLOPS"

    def test_render_table_alignment_and_content(self):
        text = render_table(["name", "value"], [["a", "1"], ["longer", "22"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only one"]])

    def test_render_series(self):
        text = render_series("size", [1, 2], {"eff": [0.5, 0.6]}, value_formatter=format_percent)
        assert "50.0%" in text and "60.0%" in text

    def test_render_series_length_check(self):
        with pytest.raises(ValueError):
            render_series("x", [1, 2, 3], {"s": [1.0]})
