"""Benchmark harness for the vectorized functional fast path.

Runs the same benchmarks as ``python -m repro.cli bench`` (in quick mode) and
asserts two things: the vectorized kernels are bit-identical to the scalar
references on the timed workloads, and they are actually faster.  The strict
regression gate (speedup must stay within 2x of the committed baseline) lives
in CI via ``repro.cli bench --baseline benchmarks/BENCH_baseline.json``; the
thresholds here are deliberately loose so the tier-1 suite stays robust on
slow or noisy machines.
"""

from __future__ import annotations

import pytest

from repro import bench


@pytest.fixture(scope="module")
def report():
    return bench.run_benchmarks(quick=True, repeat=1)


class TestFunctionalFastPath:
    def test_page_enumeration_parity_and_speedup(self, report):
        result = report["results"]["page_enumeration"]
        assert result["parity"]
        assert result["speedup"] > 2.0

    def test_tile_translation_parity_and_speedup(self, report):
        result = report["results"]["tile_translation"]
        assert result["parity"]
        assert result["prediction"] is True
        assert result["speedup"] > 2.0

    def test_tile_translation_without_prediction_parity(self, report):
        result = report["results"]["tile_translation_nopred"]
        assert result["parity"]
        assert result["speedup"] > 1.0

    def test_emulator_parity_and_speedup(self, report):
        result = report["results"]["emulator"]
        assert result["parity"]
        assert result["speedup"] > 2.0

    def test_functional_gemm_reports_throughput(self, report):
        result = report["results"]["functional_gemm"]
        assert result["seconds"] > 0
        assert result["gflops"] > 0

    def test_report_round_trips_through_json(self, report, tmp_path):
        path = tmp_path / "bench.json"
        bench.write_report(report, str(path))
        loaded = bench.load_report(str(path))
        assert loaded["results"].keys() == report["results"].keys()

    def test_regression_gate_passes_against_self(self, report):
        assert bench.check_regression(report, report) == []

    def test_regression_gate_catches_slowdown(self, report):
        import copy

        inflated = copy.deepcopy(report)
        for result in inflated["results"].values():
            if "speedup" in result:
                result["speedup"] *= 10.0
        failures = bench.check_regression(report, inflated)
        assert failures and all("fell below" in failure for failure in failures)
