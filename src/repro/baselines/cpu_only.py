"""Baseline-1: MACO with CPU cores only (the MMAEs are unused).

Every GEMM runs on the CPU cores' vector FP pipelines with cache blocking, and
the non-GEMM tail operators run on the same cores afterwards.  The GEMMs are
column-partitioned across the cores exactly like the MACO mapping, so the only
differences from MACO are the compute engine and the absence of overlap.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.common import BaselineModel
from repro.core.mapping import partition_gemm
from repro.core.metrics import WorkloadResult
from repro.cpu.core import CPUCore
from repro.gemm.precision import Precision
from repro.gemm.workloads import GEMMWorkload


class CPUOnlyBaseline(BaselineModel):
    """Baseline-1 of the paper's Fig. 8."""

    name = "baseline-1"

    def _build_core(self) -> CPUCore:
        cpu = self.config.cpu
        return CPUCore(
            core_id=0,
            frequency_hz=cpu.frequency_hz,
            fmac_lanes=cpu.fmac_lanes,
            issue_width=cpu.issue_width,
            l2_size=cpu.l2_size_bytes,
            memory_bandwidth_bytes_per_s=cpu.memory_bandwidth_bytes_per_s,
        )

    def run_workload(self, workload: GEMMWorkload, num_nodes: Optional[int] = None) -> WorkloadResult:
        nodes = num_nodes if num_nodes is not None else self.config.num_nodes
        if not 1 <= nodes <= self.config.num_nodes:
            raise ValueError(f"num_nodes must be in 1..{self.config.num_nodes}")
        core = self._build_core()
        precision = workload.shapes[0].precision if workload.shapes else Precision.FP32

        gemm_seconds = 0.0
        gemm_flops = 0
        for shape in workload:
            plan = partition_gemm(shape, nodes)
            layer_seconds = max(
                core.run_gemm(assignment.shape).seconds for assignment in plan.assignments
            )
            gemm_seconds += layer_seconds
            gemm_flops += shape.flops

        per_core_flops = int(workload.non_gemm_flops / nodes)
        per_core_bytes = int(workload.non_gemm_bytes / nodes)
        non_gemm_seconds = core.run_elementwise(per_core_flops, per_core_bytes).seconds

        total = gemm_seconds + non_gemm_seconds
        cpu_peak = (
            self.config.cpu.peak_gflops_fp64
            if precision is Precision.FP64
            else self.config.cpu.peak_gflops_fp32
        )
        return WorkloadResult(
            name=workload.name,
            system=self.name,
            num_nodes=nodes,
            seconds=total,
            gemm_flops=gemm_flops,
            total_flops=workload.total_flops,
            peak_gflops=cpu_peak * nodes,
            gemm_seconds=gemm_seconds,
            non_gemm_seconds=non_gemm_seconds,
            overlap_enabled=False,
        )
