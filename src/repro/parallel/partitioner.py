"""Shard a :class:`~repro.workloads.graph.WorkloadGraph` across mesh nodes.

Three sharding strategies, all producing a :class:`ParallelPlan` whose
per-phase rows separate *compute* from *communication* — and, where the
schedule overlaps the two, exposed from hidden communication — so the
trade-off the plan makes is visible (``repro.cli parallel`` renders exactly
these rows):

* **tensor parallel** (``tp``) — every GEMM of every phase is split across
  the whole group along its larger free dimension: an ``N`` split gives each
  node a column slice of the output (replicated afterwards with a ring
  all-gather), a ``K`` split gives each node a partial sum over its slice of
  the reduction dimension (combined with a ring all-reduce).  Compute per
  node is the extent-proportional slice of the unsharded phase time — the
  shards execute the same tile schedule over a fraction of the tiles — so
  summing the per-node compute over the group reproduces the unsharded
  phase exactly (the conservation property ``tests/test_parallel.py``
  checks), and a degree-1 plan is bit-identical to the single-node numbers.
* **2-D tensor parallel** (``tp2d:RxC``) — every GEMM is sharded SUMMA-style
  over an R x C grid: grid row ``r`` owns the A row-panel, grid column ``c``
  the B column-panel, and PE ``(r, c)`` its C tile, so per-node compute is
  the ``(m_r / M) * (n_c / N)`` share of the unsharded time (conservation
  again holds by construction).  The K dimension is walked in
  ``lcm(R, C)`` pipeline steps whose row/column panel broadcasts run under
  the previous step's compute; phase timing follows the pipelined closed
  form ``max(compute, bcast) + exposed tail`` of
  :func:`~repro.parallel.summa.summa_pipeline_seconds`, never worse than
  the serial sum.  The final output replication is priced with the
  asymmetric :meth:`~repro.parallel.collective.CollectiveCostModel.gather_seconds`
  and stays fully exposed (nothing left to hide it under).
* **pipeline parallel** (``pp``) — the phase list is cut into ``degree``
  contiguous stages balanced on unsharded phase seconds (contiguity respects
  the data dependence between phases); each stage runs its phases whole on
  one node and hands the boundary activation to the next stage with a
  point-to-point transfer.  For a single request nothing overlaps — the
  request's latency is the sum of the stages plus the transfers — but the
  fleet regains throughput because a group admits the next request after one
  :attr:`~ParallelPlan.pipeline_interval_seconds`.

``auto`` plans both 1-D strategies and keeps the one with the lower request
latency.

Communication is priced by :class:`~repro.parallel.collective.CollectiveCostModel`
on the actual mesh (X-Y routes, link sharing, co-scheduled background
groups), not a flat bandwidth constant; see docs/PARALLELISM.md for the
derivations and worked examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import MACOConfig
from repro.core.perf import TimingCache, estimate_node_gemm_cached, memory_environment
from repro.mmae.dataflow import MemoryEnvironment
from repro.parallel.collective import CollectiveCostModel
from repro.parallel.summa import (
    OverheadBreakdown,
    calibrate_overhead_factor,
    summa_grid,
    summa_pipeline_seconds,
    summa_steps,
)
from repro.workloads.graph import Phase, WorkloadGraph

__all__ = [
    "PARALLELISM_STRATEGIES",
    "PARALLEL_STRATEGIES",
    "ParallelismSpec",
    "PhasePlan",
    "ParallelPlan",
    "StrategyInfo",
    "node_groups",
    "plan_parallel",
]


@dataclass(frozen=True)
class StrategyInfo:
    """One entry of the strategy registry: how a strategy is spelled and sized."""

    name: str
    #: ``True`` when the spec's size is an ``RxC`` grid (degree = R * C)
    #: rather than a plain integer degree.
    takes_grid: bool
    #: One-line summary surfaced in CLI help and error messages.
    summary: str

    @property
    def spec_example(self) -> str:
        return f"{self.name}:2x4" if self.takes_grid else f"{self.name}:4"


#: The strategy registry: every spelling a spec parser accepts, in the order
#: the docs present them.  ``auto`` resolves to whichever 1-D strategy scores
#: the lower request latency.
PARALLELISM_STRATEGIES: Dict[str, StrategyInfo] = {
    info.name: info
    for info in (
        StrategyInfo("tp", False, "1-D tensor parallel: split each GEMM's larger free dim"),
        StrategyInfo("tp2d", True, "2-D SUMMA tensor parallel on an RxC grid with overlap"),
        StrategyInfo("pp", False, "pipeline parallel: contiguous phase stages, p2p hand-off"),
        StrategyInfo("auto", False, "plan tp and pp, keep the lower request latency"),
    )
}

#: Back-compat tuple of the registry's names (older callers iterate this).
PARALLEL_STRATEGIES: Tuple[str, ...] = tuple(PARALLELISM_STRATEGIES)


def _spec_grammar() -> str:
    examples = ", ".join(info.spec_example for info in PARALLELISM_STRATEGIES.values())
    return f"strategy:degree or strategy:RxC (one of: {examples})"


@dataclass(frozen=True)
class ParallelismSpec:
    """How to shard: a strategy name plus its size (degree, or an RxC grid).

    Grid strategies (``tp2d``) carry ``grid=(rows, cols)`` and derive
    ``degree = rows * cols`` when it is not given explicitly; scalar
    strategies must leave ``grid`` unset.  :meth:`parse` and :meth:`format`
    round-trip exactly: ``ParallelismSpec.parse(spec.format()) == spec``.
    """

    strategy: str
    degree: int = 0
    grid: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        info = PARALLELISM_STRATEGIES.get(self.strategy)
        if info is None:
            raise ValueError(
                f"unknown parallel strategy {self.strategy!r}; "
                f"options: {sorted(PARALLELISM_STRATEGIES)}"
            )
        if self.grid is not None:
            if not info.takes_grid:
                raise ValueError(
                    f"strategy {self.strategy!r} takes a plain degree "
                    f"(e.g. {info.spec_example}), not an RxC grid"
                )
            rows, cols = self.grid
            if rows < 1 or cols < 1:
                raise ValueError(
                    f"parallelism grid dimensions must be >= 1, got {rows}x{cols}"
                )
            object.__setattr__(self, "grid", (int(rows), int(cols)))
            if self.degree == 0:
                object.__setattr__(self, "degree", rows * cols)
            elif self.degree != rows * cols:
                raise ValueError(
                    f"degree {self.degree} contradicts grid {rows}x{cols} "
                    f"({rows * cols} nodes)"
                )
        elif info.takes_grid:
            raise ValueError(
                f"strategy {self.strategy!r} needs an RxC grid, "
                f"e.g. {info.spec_example}"
            )
        if self.degree < 1:
            raise ValueError(f"parallel degree must be >= 1, got {self.degree}")

    @classmethod
    def parse(cls, text: "ParallelismSpec | str") -> "ParallelismSpec":
        """Parse ``"strategy:degree"`` / ``"strategy:RxC"``; passes specs through."""
        if isinstance(text, ParallelismSpec):
            return text
        strategy, separator, raw_size = text.strip().lower().partition(":")
        if not separator or not raw_size:
            raise ValueError(
                f"parallelism spec {text!r} must look like {_spec_grammar()}"
            )
        info = PARALLELISM_STRATEGIES.get(strategy)
        if info is not None and info.takes_grid:
            raw_rows, grid_separator, raw_cols = raw_size.partition("x")
            if not grid_separator:
                raise ValueError(
                    f"parallelism spec {text!r}: strategy {strategy!r} needs an "
                    f"RxC grid, e.g. {info.spec_example}"
                )
            try:
                rows, cols = int(raw_rows), int(raw_cols)
            except ValueError:
                raise ValueError(
                    f"parallelism spec {text!r}: grid {raw_size!r} is not RxC "
                    "with integer dimensions"
                ) from None
            return cls(strategy=strategy, grid=(rows, cols))
        if info is not None and "x" in raw_size:
            raise ValueError(
                f"parallelism spec {text!r}: strategy {strategy!r} takes a "
                f"plain degree (e.g. {info.spec_example}), not an RxC grid"
            )
        try:
            degree = int(raw_size)
        except ValueError:
            raise ValueError(
                f"parallelism spec {text!r}: degree {raw_size!r} is not an integer"
            ) from None
        return cls(strategy=strategy, degree=degree)

    def format(self) -> str:
        """The canonical spelling; ``parse(spec.format())`` is ``spec`` exactly."""
        if self.grid is not None:
            return f"{self.strategy}:{self.grid[0]}x{self.grid[1]}"
        return f"{self.strategy}:{self.degree}"

    def __str__(self) -> str:
        return self.format()


@dataclass(frozen=True)
class PhasePlan:
    """One workload phase under the plan: who computes what, who talks to whom.

    Seconds fields cover all ``repeat`` executions of the phase.  The
    tensor-parallel compute models keep per-node seconds extent-proportional,
    so ``sum(node_compute_seconds) == unsharded_seconds`` whenever every node
    received work (conservation); the phase's wall-clock compute time is the
    slowest node, :attr:`compute_seconds`.

    ``comm_seconds`` is the *serial* price of the phase's collectives;
    ``comm_overlapped_seconds`` is the part of it the schedule hides under
    compute (zero for ``tp``/``pp``, whose collectives land after the
    compute), so the wall clock only pays :attr:`comm_exposed_seconds`.
    """

    name: str
    kind: str
    step: int
    repeat: int
    stage: int
    nodes: Tuple[int, ...]
    unsharded_seconds: float
    node_compute_seconds: Tuple[float, ...]
    comm_seconds: float
    comm_bytes: int
    collective: str
    comm_overlapped_seconds: float = 0.0

    @property
    def compute_seconds(self) -> float:
        """Wall-clock compute time of the phase: the slowest node's share."""
        return max(self.node_compute_seconds)

    @property
    def comm_exposed_seconds(self) -> float:
        """Communication left on the critical path after overlap."""
        return self.comm_seconds - self.comm_overlapped_seconds

    @property
    def seconds(self) -> float:
        """Phase wall-clock time: compute plus the exposed communication."""
        return self.compute_seconds + self.comm_exposed_seconds

    @property
    def comm_fraction(self) -> float:
        """Share of the phase's wall clock spent communicating (0 at degree 1)."""
        return self.comm_exposed_seconds / self.seconds if self.seconds > 0 else 0.0


@dataclass
class ParallelPlan:
    """A sharded execution plan for one workload graph on one node group."""

    workload: str
    strategy: str
    degree: int
    group: Tuple[int, ...]
    phases: List[PhasePlan] = field(default_factory=list)
    #: Compute overhead decomposition calibrated on the functional path
    #: (attached by the SUMMA planner; a report field, not a timing input).
    overhead: Optional[OverheadBreakdown] = None
    #: The R x C grid for ``tp2d`` plans (``None`` for the 1-D strategies);
    #: kept so reports can render the full spec — degree alone cannot tell
    #: a 2x4 grid from a 4x2.
    grid: Optional[Tuple[int, int]] = None

    @property
    def spec(self) -> ParallelismSpec:
        """The spec this plan realises (``auto`` plans report the winner)."""
        return ParallelismSpec(self.strategy, self.degree, self.grid)

    @property
    def compute_seconds(self) -> float:
        """Critical-path compute seconds summed over the (sequential) phases."""
        return sum(phase.compute_seconds for phase in self.phases)

    @property
    def comm_seconds(self) -> float:
        """Serial collective and hand-off seconds summed over the phases."""
        return sum(phase.comm_seconds for phase in self.phases)

    @property
    def comm_overlapped_seconds(self) -> float:
        """Communication hidden under compute by the pipelined schedules."""
        return sum(phase.comm_overlapped_seconds for phase in self.phases)

    @property
    def comm_exposed_seconds(self) -> float:
        """Communication that stays on the request's critical path."""
        return sum(phase.comm_exposed_seconds for phase in self.phases)

    @property
    def total_seconds(self) -> float:
        """End-to-end latency of one request under the plan."""
        return self.compute_seconds + self.comm_exposed_seconds

    @property
    def unsharded_seconds(self) -> float:
        """The same phases executed whole on a single node (the baseline)."""
        return sum(phase.unsharded_seconds for phase in self.phases)

    @property
    def speedup(self) -> float:
        """Latency speedup over single-node execution (< degree: comm + imbalance)."""
        return self.unsharded_seconds / self.total_seconds if self.total_seconds > 0 else 0.0

    @property
    def pipeline_interval_seconds(self) -> float:
        """Steady-state seconds between request completions on this group.

        For pipeline parallelism this is the busiest stage (compute plus its
        hand-off); back-to-back requests overlap across stages, so the group
        finishes one request per interval.  Tensor parallelism keeps the whole
        group busy for the whole request, so the interval is the full latency.
        """
        if self.strategy != "pp":
            return self.total_seconds
        per_stage: dict = {}
        for phase in self.phases:
            per_stage[phase.stage] = per_stage.get(phase.stage, 0.0) + phase.seconds
        return max(per_stage.values()) if per_stage else 0.0

    @property
    def comm_fraction(self) -> float:
        """Fraction of the request latency spent communicating."""
        return (
            self.comm_exposed_seconds / self.total_seconds if self.total_seconds > 0 else 0.0
        )


def node_groups(num_nodes: int, degree: int) -> List[Tuple[int, ...]]:
    """Partition nodes ``0..num_nodes-1`` into contiguous groups of ``degree``.

    Contiguous ids keep each group's ring compact on the row-major mesh.
    ``num_nodes`` must divide evenly — a partial group could neither run a
    ``degree``-wide plan nor serve on its own, so it is rejected loudly.
    """
    if degree < 1:
        raise ValueError(f"parallel degree must be >= 1, got {degree}")
    if num_nodes < degree:
        raise ValueError(f"need at least {degree} nodes for degree {degree}, got {num_nodes}")
    if num_nodes % degree != 0:
        raise ValueError(
            f"{num_nodes} nodes do not divide into groups of {degree}; "
            "choose a degree that divides the fleet"
        )
    return [tuple(range(start, start + degree)) for start in range(0, num_nodes, degree)]


def _balanced_shares(extent: int, degree: int) -> List[int]:
    """Split ``extent`` into ``degree`` near-equal integer shares (surplus nodes get 0)."""
    usable = min(degree, extent)
    base, extra = divmod(extent, usable)
    shares = [base + (1 if index < extra else 0) for index in range(usable)]
    shares.extend([0] * (degree - usable))
    return shares


def _contiguous_stages(weights: Sequence[float], stages: int) -> List[int]:
    """Assign each phase to a stage: contiguous blocks minimising the busiest stage.

    Classic linear-partition dynamic program over the per-phase weights —
    O(phases^2 x stages), trivially small here.  Returns one stage index per
    phase, non-decreasing.
    """
    count = len(weights)
    stages = min(stages, count)
    prefix = [0.0]
    for weight in weights:
        prefix.append(prefix[-1] + weight)

    def block(start: int, end: int) -> float:
        return prefix[end] - prefix[start]

    infinity = float("inf")
    # best[s][i]: minimal busiest-stage weight splitting the first i phases into s stages.
    best = [[infinity] * (count + 1) for _ in range(stages + 1)]
    cut = [[0] * (count + 1) for _ in range(stages + 1)]
    best[0][0] = 0.0
    for stage in range(1, stages + 1):
        for end in range(1, count + 1):
            for start in range(stage - 1, end):
                candidate = max(best[stage - 1][start], block(start, end))
                if candidate < best[stage][end]:
                    best[stage][end] = candidate
                    cut[stage][end] = start
    # Walk the cuts back into per-phase stage indices.
    bounds = [count]
    position = count
    for stage in range(stages, 0, -1):
        position = cut[stage][position]
        bounds.append(position)
    bounds.reverse()  # [0, ..., count]
    assignment = []
    for stage in range(stages):
        assignment.extend([stage] * (bounds[stage + 1] - bounds[stage]))
    return assignment


def _unsharded_phase_seconds(
    config: MACOConfig,
    phase: Phase,
    env: MemoryEnvironment,
    cache: Optional[TimingCache],
) -> float:
    """One node executing the whole phase (all repeats), zero communication."""
    once = sum(
        estimate_node_gemm_cached(config, shape, env=env, cache=cache).seconds
        for shape in phase.shapes
    )
    return once * phase.repeat


def _tp_phase_plan(
    config: MACOConfig,
    phase: Phase,
    group: Tuple[int, ...],
    env: MemoryEnvironment,
    cache: Optional[TimingCache],
    collectives: CollectiveCostModel,
    background: Sequence[Sequence[int]],
    include_communication: bool,
) -> PhasePlan:
    degree = len(group)
    node_seconds = [0.0] * degree
    comm_seconds = 0.0
    comm_bytes = 0
    collective_kinds: List[str] = []
    unsharded_once = 0.0
    for shape in phase.shapes:
        whole = estimate_node_gemm_cached(config, shape, env=env, cache=cache).seconds
        unsharded_once += whole
        # Split the larger free dimension: N keeps the reduction local (the
        # outputs are disjoint column slices, replicated with an all-gather),
        # K shards the reduction itself (partial sums, combined with an
        # all-reduce).  Shards run the same tile schedule over their slice of
        # the tiles, so per-node compute is the extent-proportional share.
        split = "n" if shape.n >= shape.k else "k"
        extent = shape.n if split == "n" else shape.k
        for node_index, share in enumerate(_balanced_shares(extent, degree)):
            node_seconds[node_index] += whole * (share / extent)
        if degree > 1 and include_communication:
            payload = shape.bytes_c
            if split == "k":
                comm_seconds += collectives.ring_allreduce_seconds(group, payload, background)
                wire = int(payload * 2 * (degree - 1) / degree)
                kind = "ring-all-reduce"
            else:
                comm_seconds += collectives.all_gather_seconds(group, payload, background)
                wire = int(payload * (degree - 1) / degree)
                kind = "all-gather"
            comm_bytes += wire
            if kind not in collective_kinds:
                collective_kinds.append(kind)
    return PhasePlan(
        name=phase.name,
        kind=phase.kind.value,
        step=phase.step,
        repeat=phase.repeat,
        stage=0,
        nodes=group,
        unsharded_seconds=unsharded_once * phase.repeat,
        node_compute_seconds=tuple(seconds * phase.repeat for seconds in node_seconds),
        comm_seconds=comm_seconds * phase.repeat,
        comm_bytes=comm_bytes * phase.repeat,
        collective="+".join(collective_kinds) if collective_kinds else "none",
    )


def _tp2d_phase_plan(
    config: MACOConfig,
    phase: Phase,
    group: Tuple[int, ...],
    grid: Tuple[int, int],
    env: MemoryEnvironment,
    cache: Optional[TimingCache],
    collectives: CollectiveCostModel,
    background: Sequence[Sequence[int]],
    include_communication: bool,
) -> PhasePlan:
    """SUMMA-shard one phase over the R x C grid with pipelined broadcasts.

    Per GEMM ``C[M,N] += A[M,K] @ B[K,N]``: node ``(r, c)`` computes the
    ``m_r x n_c`` tile, an extent-proportional ``(m_r / M) * (n_c / N)``
    share of the unsharded seconds — the shares sum to 1 over the grid, so
    conservation holds by construction, and ``_balanced_shares`` hands the
    remainder elements to the first rows/columns so node ``(0, 0)`` is the
    phase's critical node for every shape.  The K loop runs in
    ``lcm(R, C)`` pipeline steps; each step's A k-panel is chain-multicast
    along every grid row concurrently (payload ``bytes_a / (R * S)`` per
    row) and the B k-panel down every grid column, and all but the first
    step's broadcasts hide under the previous step's compute.  The closed
    form in :func:`summa_pipeline_seconds` prices the resulting wall clock;
    whatever it hides is reported as ``comm_overlapped_seconds``.  The final
    C replication is an asymmetric gather and stays fully exposed — it can
    only start when the last tile is done.
    """
    rows, cols = grid
    degree = len(group)
    grid_rows, grid_cols = summa_grid(group, rows, cols)
    steps = summa_steps(rows, cols)
    node_seconds = [0.0] * degree
    comm_seconds = 0.0
    comm_overlapped = 0.0
    comm_bytes = 0
    collective_kinds: List[str] = []
    unsharded_once = 0.0
    for shape in phase.shapes:
        whole = estimate_node_gemm_cached(config, shape, env=env, cache=cache).seconds
        unsharded_once += whole
        m_shares = _balanced_shares(shape.m, rows)
        n_shares = _balanced_shares(shape.n, cols)
        for row_index in range(rows):
            row_fraction = m_shares[row_index] / shape.m
            for col_index in range(cols):
                node_seconds[row_index * cols + col_index] += (
                    whole * row_fraction * (n_shares[col_index] / shape.n)
                )
        if degree > 1 and include_communication:
            # This shape's wall-clock compute is node (0, 0)'s share — the
            # largest by the balanced-shares remainder convention.
            shape_compute = whole * (m_shares[0] / shape.m) * (n_shares[0] / shape.n)
            step_broadcast = collectives.multicast_seconds(
                grid_rows, shape.bytes_a / (rows * steps), background
            ) + collectives.multicast_seconds(
                grid_cols, shape.bytes_b / (cols * steps), background
            )
            broadcast = step_broadcast * steps
            gather = collectives.gather_seconds(group, shape.bytes_c, background)
            pipelined = summa_pipeline_seconds(shape_compute, broadcast, steps)
            exposed = (pipelined - shape_compute) + gather
            comm_seconds += broadcast + gather
            comm_overlapped += (broadcast + gather) - exposed
            # Wire bytes: each node ends up holding its row-panel of A
            # (receiving the (C-1)/C it did not store), its column-panel of
            # B, and the gathered C.
            comm_bytes += (
                shape.bytes_a * (cols - 1) // cols
                + shape.bytes_b * (rows - 1) // rows
                + shape.bytes_c * (degree - 1) // degree
            )
            if broadcast > 0 and "summa-bcast" not in collective_kinds:
                collective_kinds.append("summa-bcast")
            if gather > 0 and "gather" not in collective_kinds:
                collective_kinds.append("gather")
    return PhasePlan(
        name=phase.name,
        kind=phase.kind.value,
        step=phase.step,
        repeat=phase.repeat,
        stage=0,
        nodes=group,
        unsharded_seconds=unsharded_once * phase.repeat,
        node_compute_seconds=tuple(seconds * phase.repeat for seconds in node_seconds),
        comm_seconds=comm_seconds * phase.repeat,
        comm_bytes=comm_bytes * phase.repeat,
        collective="+".join(collective_kinds) if collective_kinds else "none",
        comm_overlapped_seconds=comm_overlapped * phase.repeat,
    )


def _pp_phase_plans(
    config: MACOConfig,
    graph: WorkloadGraph,
    group: Tuple[int, ...],
    env: MemoryEnvironment,
    cache: Optional[TimingCache],
    collectives: CollectiveCostModel,
    background: Sequence[Sequence[int]],
    include_communication: bool,
) -> List[PhasePlan]:
    degree = len(group)
    unsharded = [_unsharded_phase_seconds(config, phase, env, cache) for phase in graph.phases]
    assignment = _contiguous_stages(unsharded, degree)
    plans: List[PhasePlan] = []
    for index, phase in enumerate(graph.phases):
        stage = assignment[index]
        node_seconds = [0.0] * degree
        node_seconds[stage] = unsharded[index]
        comm_seconds = 0.0
        comm_bytes = 0
        collective = "none"
        last_of_stage = index + 1 == len(graph.phases) or assignment[index + 1] != stage
        if last_of_stage and index + 1 < len(graph.phases) and include_communication:
            # Hand the boundary activation (the phase's final output tile) to
            # the next stage's node.  The transfer happens once per request —
            # repeats inside the phase stay on-stage.
            payload = phase.shapes[-1].bytes_c
            next_stage = assignment[index + 1]
            comm_seconds = collectives.point_to_point_seconds(
                group[stage], group[next_stage], payload, background
            )
            comm_bytes = payload
            collective = "p2p"
        plans.append(
            PhasePlan(
                name=phase.name,
                kind=phase.kind.value,
                step=phase.step,
                repeat=phase.repeat,
                stage=stage,
                nodes=(group[stage],),
                unsharded_seconds=unsharded[index],
                node_compute_seconds=tuple(node_seconds),
                comm_seconds=comm_seconds,
                comm_bytes=comm_bytes,
                collective=collective,
            )
        )
    return plans


def plan_parallel(
    graph: WorkloadGraph,
    config: MACOConfig,
    spec: "ParallelismSpec | str",
    group: Optional[Sequence[int]] = None,
    env: Optional[MemoryEnvironment] = None,
    cache: Optional[TimingCache] = None,
    collectives: Optional[CollectiveCostModel] = None,
    background: Sequence[Sequence[int]] = (),
    include_communication: bool = True,
) -> ParallelPlan:
    """Shard ``graph`` across a node group under ``spec`` and price the result.

    ``group`` defaults to nodes ``0..degree-1`` (the convention the paper's
    scaling experiments use); ``env`` defaults to the memory environment with
    ``degree`` active nodes, so a standalone plan sees exactly the contention
    its own group creates — the serving simulator overrides both to model a
    fully loaded fleet.  ``background`` lists co-scheduled groups whose
    collective traffic shares mesh links with ours.
    ``include_communication=False`` zeroes the collectives (used by the
    conservation tests and for isolating compute scaling).

    Deterministic and side-effect free: every timing walk goes through the
    shared :class:`~repro.core.perf.TimingCache`, so plans are cheap to sweep
    and bit-identical for any ``--jobs`` fan-out.
    """
    spec = ParallelismSpec.parse(spec)
    if spec.degree > config.num_nodes:
        raise ValueError(
            f"parallel degree {spec.degree} exceeds the configuration's "
            f"{config.num_nodes} nodes"
        )
    if collectives is None:
        collectives = CollectiveCostModel(config=config.noc)
    if spec.degree > collectives.topology.num_nodes:
        raise ValueError(
            f"parallel degree {spec.degree} exceeds the "
            f"{collectives.topology.width}x{collectives.topology.height} mesh"
        )
    group = tuple(group) if group is not None else tuple(range(spec.degree))
    if len(group) != spec.degree:
        raise ValueError(f"node group {group} has {len(group)} members but degree is {spec.degree}")
    if env is None:
        env = memory_environment(config, spec.degree)

    if spec.strategy == "auto":
        candidates = [
            plan_parallel(
                graph,
                config,
                ParallelismSpec(strategy, spec.degree),
                group=group,
                env=env,
                cache=cache,
                collectives=collectives,
                background=background,
                include_communication=include_communication,
            )
            for strategy in ("tp", "pp")
        ]
        # Lower request latency wins; ties go to tensor parallel (listed first).
        return min(candidates, key=lambda plan: plan.total_seconds)

    overhead: Optional[OverheadBreakdown] = None
    if spec.strategy == "tp":
        phases = [
            _tp_phase_plan(config, phase, group, env, cache, collectives, background, include_communication)
            for phase in graph.phases
        ]
    elif spec.strategy == "tp2d":
        assert spec.grid is not None  # enforced by ParallelismSpec
        phases = [
            _tp2d_phase_plan(
                config, phase, group, spec.grid, env, cache, collectives,
                background, include_communication,
            )
            for phase in graph.phases
        ]
        overhead = calibrate_overhead_factor(config.mmae.sa_rows, config.mmae.sa_cols)
    else:
        phases = _pp_phase_plans(config, graph, group, env, cache, collectives,
                                 background, include_communication)
    return ParallelPlan(
        workload=graph.name,
        strategy=spec.strategy,
        degree=spec.degree,
        group=group,
        phases=phases,
        overhead=overhead,
        grid=spec.grid,
    )
