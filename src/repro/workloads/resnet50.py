"""ResNet-50 inference as a GEMM stream (He et al., CVPR 2016).

The layer table below follows the standard ResNet-50 architecture: a 7x7 stem,
four stages of bottleneck blocks (3/4/6/3 blocks with 1x1-3x3-1x1
convolutions), and the final fully-connected classifier.  Each convolution is
lowered to its im2col GEMM; the batch-norm/ReLU tails are summarised as
element-wise work for the GEMM+ mapping model.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.gemm.precision import Precision
from repro.gemm.workloads import GEMMShape, GEMMWorkload
from repro.workloads.graph import Phase, PhaseKind, WorkloadGraph
from repro.workloads.layers import LayerKind, LayerSpec, conv2d_gemm, elementwise_cost, linear_gemm


def _bottleneck_stage(
    stage_name: str, input_size: int, in_channels: int, mid_channels: int, blocks: int, stride: int
) -> List[LayerSpec]:
    """One ResNet stage: ``blocks`` bottlenecks, the first possibly strided."""
    out_channels = mid_channels * 4
    layers: List[LayerSpec] = []
    current_in = in_channels
    current_size = input_size
    for block in range(blocks):
        block_stride = stride if block == 0 else 1
        prefix = f"{stage_name}.block{block}"
        layers.append(LayerSpec(f"{prefix}.conv1", LayerKind.CONV2D, current_in, mid_channels, 1, 1, current_size))
        layers.append(
            LayerSpec(f"{prefix}.conv2", LayerKind.CONV2D, mid_channels, mid_channels, 3, block_stride, current_size)
        )
        post_size = -(-current_size // block_stride)
        layers.append(LayerSpec(f"{prefix}.conv3", LayerKind.CONV2D, mid_channels, out_channels, 1, 1, post_size))
        if block == 0:
            # Projection shortcut on the first block of each stage.
            layers.append(
                LayerSpec(f"{prefix}.downsample", LayerKind.CONV2D, current_in, out_channels, 1, block_stride, current_size)
            )
        current_in = out_channels
        current_size = post_size
    return layers


def _build_layers() -> List[LayerSpec]:
    layers: List[LayerSpec] = [
        LayerSpec("stem.conv1", LayerKind.CONV2D, 3, 64, 7, 2, 224),
    ]
    layers += _bottleneck_stage("stage1", 56, 64, 64, blocks=3, stride=1)
    layers += _bottleneck_stage("stage2", 56, 256, 128, blocks=4, stride=2)
    layers += _bottleneck_stage("stage3", 28, 512, 256, blocks=6, stride=2)
    layers += _bottleneck_stage("stage4", 14, 1024, 512, blocks=3, stride=2)
    layers.append(LayerSpec("fc", LayerKind.LINEAR, 2048, 1000))
    return layers


#: The full ResNet-50 layer table used by :func:`resnet50_workload`.
RESNET50_LAYERS: List[LayerSpec] = _build_layers()


def _lower_layer(layer: LayerSpec, batch: int, precision: Precision) -> Tuple[GEMMShape, int, int]:
    """One layer's im2col/FC GEMM plus its element-wise (BN + ReLU) tail."""
    if layer.kind is LayerKind.CONV2D:
        shape = conv2d_gemm(
            batch, layer.in_channels, layer.out_channels, layer.kernel, layer.stride,
            layer.input_size, precision,
        )
        # Batch-norm + ReLU over the layer's output activations.
        flops, bytes_touched = elementwise_cost(shape.m * shape.n, flops_per_element=4.0,
                                                precision=precision)
    else:
        shape = linear_gemm(batch, layer.in_channels, layer.out_channels, precision)
        flops, bytes_touched = elementwise_cost(shape.m * shape.n, flops_per_element=1.0,
                                                precision=precision)
    return shape, flops, bytes_touched


def resnet50_graph(
    batch: int = 8, precision: Precision = Precision.FP32, conv_only: bool = False
) -> WorkloadGraph:
    """ResNet-50 as a phase graph: one CONV phase per stage plus the FC tail.

    Phases follow the network's stages (``stem``, ``stage1`` .. ``stage4``,
    ``fc``); each conv phase carries the stage's im2col GEMMs in layer order,
    so ``flatten()`` reproduces :func:`resnet50_workload` exactly.
    ``conv_only`` drops the FC classifier, leaving the pure conv stream (the
    ``resnet50-conv`` registry variant).
    """
    if batch <= 0:
        raise ValueError("batch must be positive")
    stages: List[Tuple[str, List[LayerSpec]]] = []
    for layer in RESNET50_LAYERS:
        stage_name = layer.name.split(".", 1)[0]
        if not stages or stages[-1][0] != stage_name:
            stages.append((stage_name, []))
        stages[-1][1].append(layer)

    phases: List[Phase] = []
    for stage_name, layers in stages:
        if conv_only and all(layer.kind is LayerKind.LINEAR for layer in layers):
            continue
        shapes: List[GEMMShape] = []
        stage_flops = 0
        stage_bytes = 0
        for layer in layers:
            shape, flops, bytes_touched = _lower_layer(layer, batch, precision)
            shapes.append(shape)
            stage_flops += flops
            stage_bytes += bytes_touched
        kind = (PhaseKind.CONV if any(layer.kind is LayerKind.CONV2D for layer in layers)
                else PhaseKind.LINEAR)
        phases.append(
            Phase(
                name=stage_name,
                kind=kind,
                shapes=tuple(shapes),
                non_gemm_flops=stage_flops,
                non_gemm_bytes=stage_bytes,
            )
        )
    suffix = "conv" if conv_only else ""
    name = f"resnet50{'-' + suffix if suffix else ''}-b{batch}"
    return WorkloadGraph(
        name=name,
        phases=phases,
        params={"batch": batch, "precision": precision.value, "conv_only": conv_only},
    )


def resnet50_workload(batch: int = 8, precision: Precision = Precision.FP32) -> GEMMWorkload:
    """ResNet-50 inference for a batch, expressed as a flat GEMM workload.

    ``batch = 8`` gives GEMM sizes large enough to exercise the MMAE tiling
    while keeping the per-image latency realistic for inference serving.
    This is :func:`resnet50_graph` flattened back to the legacy form.
    """
    return resnet50_graph(batch=batch, precision=precision).flatten(name=f"resnet50-b{batch}")
