"""Integer-tick request-level event engines for the serving simulator.

This module is the array-first rebuild of the legacy ``_run_request_level``
loop (see DESIGN.md section 9).  Three decisions give it both speed and the
repo's byte-identical determinism guarantees:

**Integer nanosecond ticks.**  All event arithmetic runs on int64 nanosecond
ticks (:data:`TICKS_PER_SECOND`); float seconds appear only at the report
boundary.  Service estimates convert with a *ceiling* (a request is never
reported faster than its analytic estimate), arrivals round to the nearest
tick.  Integer math is exact and associative, so two different engines — or
one trace split into shards — produce bit-equal completion columns, and the
shared :func:`~repro.serve.report.build_report_from_columns` turns equal
columns into byte-identical JSON.

**Two engines, one contract.**  :func:`simulate_segments` runs either the
``scalar`` reference engine (a straightforward per-event Python loop with
tuple-keyed policy heaps — the readable specification) or the ``array``
engine (bulk admission over the sorted arrival array, packed integer policy
keys, and a fully vectorised closed form for the FCFS single-server case:
with one server the dispatch order is the canonical order, so start times
collapse to a max-plus prefix scan ``start = cumsum(cost) +
running_max(arrival - cumsum(cost))`` — no event loop at all).  The parity
suite asserts the two produce byte-identical reports across every policy.

**Deterministic idle-point sharding.**  :func:`segment_bounds` computes a
conservative drain bound — the makespan of a single server executing every
request serially at its worst-case per-server cost, again a max-plus scan —
and cuts the trace wherever the bound finishes before the next arrival.  At
such a cut *any* work-conserving multi-server schedule has drained, so each
segment simulates from a cold fleet and the merged columns are identical for
every shard count: the cuts depend only on the trace, never on the execution.
Segments restart with no resident tenant — a tenant switch across a provable
idle gap overlaps the idle time instead of delaying the request, so it is
absorbed (and not charged).  ``shards=None`` skips segmentation entirely and
reproduces the legacy continuous semantics.

The engine consumes the columnar trace (:class:`~repro.serve.trace.
TraceColumns`) directly — requests are rank indices into arrays, and no
``Request`` objects are materialised on the hot path.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.serve.report import TICKS_PER_SECOND

__all__ = [
    "TICKS_PER_SECOND",
    "EngineTrace",
    "ENGINE_NAMES",
    "segment_bounds",
    "shard_plan",
    "simulate_segments",
]

#: Selectable request-level engines: the vectorised fast path and the
#: per-event reference it is tested against.
ENGINE_NAMES = ("array", "scalar")

#: Deadline sentinel for requests without a TTFT SLO under the slo policy:
#: far beyond any reachable tick, so deadline-less requests order after every
#: deadline-carrying one of equal priority (the legacy ``inf`` tie-break).
NO_DEADLINE = 2**62


@dataclass(frozen=True)
class EngineTrace:
    """A trace lowered to canonical-order tick arrays plus service tables.

    Rows are *ranks*: requests sorted by ``(arrival tick, request id)``.  Per
    rank, ``pair`` indexes the distinct ``(workload, precision)`` tables;
    ``latency/interval/first_table`` hold each pair's ceiling-tick service
    figures per server (one column per server — the np.take lookup that
    replaces a dict hit per event).  ``svc0`` (server-0 latency, the sjf key),
    ``priority`` and ``deadline`` (arrival + TTFT SLO, :data:`NO_DEADLINE`
    when absent) are pre-expanded per rank because the policy queues consume
    them on every push.  The whole record is plain arrays and ints, so it
    pickles cheaply to shard workers.
    """

    policy: str
    num_servers: int
    switch_ticks: int
    arrival: np.ndarray
    tenant: np.ndarray
    pair: np.ndarray
    latency_table: np.ndarray
    interval_table: np.ndarray
    first_table: np.ndarray
    tokens_table: np.ndarray
    svc0: np.ndarray
    priority: np.ndarray
    deadline: np.ndarray
    uniform_interval: bool

    def __len__(self) -> int:
        return len(self.arrival)


# -------------------------------------------------------------- policy queues
class _FifoQueue:
    """FCFS: ranks are pushed in rank order, so a head pointer suffices."""

    __slots__ = ("_ranks", "_head")

    def __init__(self) -> None:
        self._ranks: List[int] = []
        self._head = 0

    def push(self, rank: int) -> None:
        self._ranks.append(rank)

    def pop(self) -> int:
        rank = self._ranks[self._head]
        self._head += 1
        if self._head > 4096 and self._head * 2 > len(self._ranks):
            del self._ranks[: self._head]
            self._head = 0
        return rank

    def __len__(self) -> int:
        return len(self._ranks) - self._head


class _TupleHeapQueue:
    """Reference policy heap: ``key(rank) + (rank,)`` tuples, min-heap order.

    The trailing rank reproduces the legacy ``(arrival, id)`` tie-break —
    canonical rank order *is* ``(arrival tick, id)`` order.
    """

    __slots__ = ("_key", "_heap")

    def __init__(self, key) -> None:
        self._key = key
        self._heap: List[Tuple[int, ...]] = []

    def push(self, rank: int) -> None:
        heapq.heappush(self._heap, self._key(rank) + (rank,))

    def pop(self) -> int:
        return heapq.heappop(self._heap)[-1]

    def __len__(self) -> int:
        return len(self._heap)


class _PackedHeapQueue:
    """Array-engine policy heap: one precomputed integer key per rank.

    Keys are ``composite * n + (rank - lo)`` Python ints (arbitrary
    precision, so stacking priority/deadline/service components can never
    overflow), built in one vectorised pass per segment.  Heap order on the
    packed key equals lexicographic order on ``(composite, rank)``.
    """

    __slots__ = ("_keys", "_lo", "_n", "_heap")

    def __init__(self, keys: List[int], lo: int, n: int) -> None:
        self._keys = keys
        self._lo = lo
        self._n = n
        self._heap: List[int] = []

    def push(self, rank: int) -> None:
        heapq.heappush(self._heap, self._keys[rank - self._lo])

    def pop(self) -> int:
        return self._lo + heapq.heappop(self._heap) % self._n

    def __len__(self) -> int:
        return len(self._heap)


class _RoundRobinQueue:
    """Port of the legacy RoundRobinScheduler over rank indices.

    Tenants enter the rotation in first-arrival order, each tenant's queue is
    FIFO (pushes happen in rank order), and a pop advances the cursor past
    the served tenant, so every tenant with queued work is visited before any
    tenant is served twice.
    """

    __slots__ = ("_tenant", "_queues", "_heads", "_rotation", "_cursor", "_size")

    def __init__(self, tenant_of: np.ndarray) -> None:
        self._tenant = tenant_of
        self._queues: Dict[int, List[int]] = {}
        self._heads: Dict[int, int] = {}
        self._rotation: List[int] = []
        self._cursor = 0
        self._size = 0

    def push(self, rank: int) -> None:
        tenant = int(self._tenant[rank])
        queue = self._queues.get(tenant)
        if queue is None:
            self._queues[tenant] = [rank]
            self._heads[tenant] = 0
            self._rotation.append(tenant)
        else:
            queue.append(rank)
        self._size += 1

    def pop(self) -> int:
        length = len(self._rotation)
        for offset in range(length):
            index = (self._cursor + offset) % length
            tenant = self._rotation[index]
            head = self._heads[tenant]
            queue = self._queues[tenant]
            if head < len(queue):
                self._heads[tenant] = head + 1
                self._cursor = (index + 1) % length
                self._size -= 1
                return queue[head]
        raise IndexError("pop from an empty round-robin queue")

    def __len__(self) -> int:
        return self._size


def _reference_queue(et: EngineTrace):
    """The scalar engine's policy queue: tuple keys, one push per admission."""
    if et.policy == "fcfs":
        return _FifoQueue()
    if et.policy == "rr":
        return _RoundRobinQueue(et.tenant)
    if et.policy == "sjf":
        return _TupleHeapQueue(lambda rank: (int(et.svc0[rank]),))
    if et.policy == "priority":
        return _TupleHeapQueue(lambda rank: (-int(et.priority[rank]),))
    if et.policy == "slo":
        return _TupleHeapQueue(
            lambda rank: (-int(et.priority[rank]), int(et.deadline[rank])))
    raise ValueError(f"unknown scheduling policy {et.policy!r}")


def _packed_queue(et: EngineTrace, lo: int, hi: int):
    """The array engine's policy queue: vectorised key precomputation."""
    if et.policy == "fcfs":
        return _FifoQueue()
    if et.policy == "rr":
        return _RoundRobinQueue(et.tenant)
    n = hi - lo
    offsets = np.arange(n, dtype=np.int64)
    if et.policy == "sjf":
        composite = et.svc0[lo:hi]
    elif et.policy == "priority":
        composite = -et.priority[lo:hi]
    elif et.policy == "slo":
        # Two stacked components exceed int64, so pack through Python ints.
        priorities = (-et.priority[lo:hi]).tolist()
        deadlines = et.deadline[lo:hi].tolist()
        keys = [
            ((priorities[i] * (NO_DEADLINE + 1) + deadlines[i]) * n) + i
            for i in range(n)
        ]
        return _PackedHeapQueue(keys, lo, n)
    else:
        raise ValueError(f"unknown scheduling policy {et.policy!r}")
    if len(composite) and int(np.abs(composite).max()) < (2**62) // max(n, 1):
        keys = (composite * n + offsets).tolist()
    else:
        keys = [int(value) * n + i for i, value in enumerate(composite.tolist())]
    return _PackedHeapQueue(keys, lo, n)


# ------------------------------------------------------------------- engines
def _run_segment_scalar(et: EngineTrace, lo: int, hi: int):
    """Reference engine: the legacy event loop, one rank at a time, in ticks.

    Semantics (identical to the pre-vectorisation loop): pick the earliest
    free server (``(free_at, node)`` heap), admit every arrival up to its
    clock, pop the policy, gate a tenant change on the pipeline drain, charge
    the constant switch cost, occupy the server for one pipeline interval and
    drain it at the full latency.
    """
    count = hi - lo
    start = np.empty(count, np.int64)
    first = np.empty(count, np.int64)
    finish = np.empty(count, np.int64)
    accumulators = np.zeros((et.num_servers, 4), np.int64)
    arrival, tenant, pair = et.arrival, et.tenant, et.pair
    latency_table, interval_table, first_table = (
        et.latency_table, et.interval_table, et.first_table)
    switch_ticks = et.switch_ticks
    queue = _reference_queue(et)
    servers = [(0, node) for node in range(et.num_servers)]
    drain = [0] * et.num_servers
    last_tenant: List[Optional[int]] = [None] * et.num_servers
    index = lo
    while index < hi or len(queue):
        free_at, node = servers[0]
        while index < hi and arrival[index] <= free_at:
            queue.push(index)
            index += 1
        if not len(queue):
            now = int(arrival[index])
            while index < hi and arrival[index] <= now:
                queue.push(index)
                index += 1
            continue
        rank = queue.pop()
        this_tenant = int(tenant[rank])
        begin = max(free_at, int(arrival[rank]))
        switch = 0
        if last_tenant[node] is not None and last_tenant[node] != this_tenant:
            begin = max(begin, drain[node])
            switch = switch_ticks
            accumulators[node, 3] += 1
        row = int(pair[rank])
        dispatch = begin + switch
        done = dispatch + int(latency_table[row, node])
        start[rank - lo] = begin
        first[rank - lo] = dispatch + int(first_table[row, node])
        finish[rank - lo] = done
        interval = int(interval_table[row, node])
        heapq.heapreplace(servers, (dispatch + interval, node))
        drain[node] = done
        last_tenant[node] = this_tenant
        accumulators[node, 0] += 1
        accumulators[node, 1] += switch + interval
        accumulators[node, 2] += switch
    return start, first, finish, accumulators


def _run_segment_closed_form(et: EngineTrace, lo: int, hi: int):
    """FCFS on one uniform-interval server: dispatch is a prefix scan.

    With a single server FCFS dispatches in rank order, so with ``cost_r =
    switch_r + latency_r`` the recurrence ``start_r = max(start_{r-1} +
    cost_{r-1}, arrival_r)`` unrolls to ``start_r = C_{r-1} + max_{j<=r}
    (arrival_j - C_{j-1})`` where ``C`` is the inclusive cost prefix sum —
    one ``cumsum`` plus one ``maximum.accumulate``, no event loop.  Exact on
    int64, so it is bit-equal to the reference engine by construction (the
    parity tests enforce it anyway).
    """
    arrival = et.arrival[lo:hi]
    tenant = et.tenant[lo:hi]
    pair = et.pair[lo:hi]
    latency = et.latency_table[pair, 0]
    count = hi - lo
    changed = np.empty(count, dtype=bool)
    changed[0] = False  # a cold server adopts its first tenant for free
    np.not_equal(tenant[1:], tenant[:-1], out=changed[1:])
    switch = changed * np.int64(et.switch_ticks)
    cost = switch + latency
    inclusive = np.cumsum(cost)
    exclusive = inclusive - cost
    start = exclusive + np.maximum.accumulate(arrival - exclusive)
    dispatch = start + switch
    finish = dispatch + latency
    first = dispatch + et.first_table[pair, 0]
    switches = int(np.count_nonzero(changed))
    accumulators = np.zeros((1, 4), np.int64)
    accumulators[0, 0] = count
    # cumsum already computed the exact cost total (the closed form is only
    # valid when the prefix sums fit int64 anyway), and every switch charges
    # the same constant, so neither sum needs another pass.
    accumulators[0, 1] = int(inclusive[-1])
    accumulators[0, 2] = switches * et.switch_ticks
    accumulators[0, 3] = switches
    return start, first, finish, accumulators


def _run_segment_array(et: EngineTrace, lo: int, hi: int):
    """Array engine: closed form when eligible, else a bulk-admission loop.

    The general loop differs from the reference in mechanics, not semantics:
    arrivals live in local Python lists (no per-element numpy boxing),
    admission windows come from one binary search per event instead of a
    peek-per-request scan, and the policy heaps hold precomputed packed
    integer keys.
    """
    if et.policy == "fcfs" and et.num_servers == 1 and et.uniform_interval:
        return _run_segment_closed_form(et, lo, hi)
    from bisect import bisect_right

    count = hi - lo
    start = np.empty(count, np.int64)
    first = np.empty(count, np.int64)
    finish = np.empty(count, np.int64)
    accumulators = np.zeros((et.num_servers, 4), np.int64)
    arrival = et.arrival[lo:hi].tolist()
    tenant = et.tenant[lo:hi].tolist()
    pair = et.pair[lo:hi].tolist()
    latency_rows = et.latency_table.tolist()
    interval_rows = et.interval_table.tolist()
    first_rows = et.first_table.tolist()
    switch_ticks = et.switch_ticks
    queue = _packed_queue(et, lo, hi)
    start_list = start  # direct ndarray writes are fine; assignment is int64
    servers = [(0, node) for node in range(et.num_servers)]
    drain = [0] * et.num_servers
    last_tenant: List[Optional[int]] = [None] * et.num_servers
    admitted = 0
    push = queue.push
    while admitted < count or len(queue):
        free_at, node = servers[0]
        if admitted < count:
            # One binary search finds the whole admission window.
            window = bisect_right(arrival, free_at, admitted)
            for position in range(admitted, window):
                push(lo + position)
            admitted = window
            if not len(queue):
                now = arrival[admitted]
                window = bisect_right(arrival, now, admitted)
                for position in range(admitted, window):
                    push(lo + position)
                admitted = window
                continue
        rank = queue.pop()
        position = rank - lo
        this_tenant = tenant[position]
        begin = free_at if free_at > arrival[position] else arrival[position]
        switch = 0
        was = last_tenant[node]
        if was is not None and was != this_tenant:
            if drain[node] > begin:
                begin = drain[node]
            switch = switch_ticks
            accumulators[node, 3] += 1
        row = pair[position]
        dispatch = begin + switch
        done = dispatch + latency_rows[row][node]
        start_list[position] = begin
        first[position] = dispatch + first_rows[row][node]
        finish[position] = done
        interval = interval_rows[row][node]
        heapq.heapreplace(servers, (dispatch + interval, node))
        drain[node] = done
        last_tenant[node] = this_tenant
        accumulators[node, 0] += 1
        accumulators[node, 1] += switch + interval
        accumulators[node, 2] += switch
    return start, first, finish, accumulators


_SEGMENT_ENGINES = {"scalar": _run_segment_scalar, "array": _run_segment_array}


# ------------------------------------------------------------------ sharding
def segment_bounds(et: EngineTrace) -> List[Tuple[int, int]]:
    """Cut the trace at provable full-idle points, deterministically.

    ``bound_r`` is the drain time of a single server executing requests 0..r
    serially in canonical order, each at its worst per-server cost (switch +
    max-over-servers latency): ``bound_r = max(bound_{r-1}, arrival_r) +
    worst_r``, the same max-plus scan as the closed-form engine.  Any
    work-conserving schedule on >= 1 servers drains no later, so wherever
    ``bound_r < arrival_{r+1}`` the whole fleet is provably idle and the
    trace can restart cold.  The cuts depend only on the trace and the
    service tables — never on policy, engine, or shard count — which is what
    makes sharded reports invariant.
    """
    count = len(et)
    if count == 0:
        return []
    worst = et.latency_table.max(axis=1)[et.pair] + et.switch_ticks
    inclusive = np.cumsum(worst)
    bound = inclusive + np.maximum.accumulate(et.arrival - (inclusive - worst))
    cuts = (np.flatnonzero(bound[:-1] < et.arrival[1:]) + 1).tolist()
    edges = [0, *cuts, count]
    return list(zip(edges[:-1], edges[1:]))


def shard_plan(segments: List[Tuple[int, int]], shards: int) -> List[List[Tuple[int, int]]]:
    """Group segments into at most ``shards`` contiguous, size-balanced chunks.

    Grouping is pure distribution: every chunk simulates its segments
    independently and the merge concatenates in rank order, so any grouping
    gives identical columns — this one just balances worker wall-clock.
    """
    if not segments:
        return []
    shards = max(1, min(shards, len(segments)))
    total = segments[-1][1] - segments[0][0]
    target = total / shards
    chunks: List[List[Tuple[int, int]]] = [[]]
    filled = 0
    for segment in segments:
        # Leave enough segments for the remaining chunks to get one each.
        remaining = len(chunks) < shards and segments[-1] is not segment
        if chunks[-1] and filled >= target * len(chunks) and remaining:
            chunks.append([])
        chunks[-1].append(segment)
        filled += segment[1] - segment[0]
    return chunks


def simulate_segments(
    et: EngineTrace, segments: List[Tuple[int, int]], engine: str
):
    """Run each segment cold and concatenate the completion columns.

    Returns ``(start, first, finish, accumulators)`` covering the contiguous
    rank span of ``segments``; accumulators are summed across segments
    (integer addition, so the fold order cannot matter).
    """
    run = _SEGMENT_ENGINES[engine]
    if len(segments) == 1:
        return run(et, segments[0][0], segments[0][1])
    starts, firsts, finishes = [], [], []
    accumulators = np.zeros((et.num_servers, 4), np.int64)
    for lo, hi in segments:
        start, first, finish, acc = run(et, lo, hi)
        starts.append(start)
        firsts.append(first)
        finishes.append(finish)
        accumulators += acc
    return (
        np.concatenate(starts) if starts else np.empty(0, np.int64),
        np.concatenate(firsts) if firsts else np.empty(0, np.int64),
        np.concatenate(finishes) if finishes else np.empty(0, np.int64),
        accumulators,
    )


def shard_worker(payload):
    """Pool worker: simulate one chunk of segments (SweepRunner task shape)."""
    (et, segments, engine), _cache = payload
    return simulate_segments(et, segments, engine)
