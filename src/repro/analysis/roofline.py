"""Roofline analysis for MACO compute nodes.

A roofline model relates a kernel's arithmetic intensity (FLOPs per byte moved
at some level of the memory hierarchy) to the attainable throughput given the
compute peak and the memory bandwidth.  The MACO evaluation never plots a
roofline, but the model is the standard lens for the questions the paper's
figures answer (when is the MMAE compute-bound? when does the NoC/DRAM share
start to matter?), so the analysis package provides it for the examples and
for design-space exploration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import MACOConfig, maco_default_config
from repro.core.perf import memory_environment, node_peak_gflops
from repro.gemm.precision import Precision
from repro.gemm.workloads import GEMMShape
from repro.mmae.dataflow import build_tile_schedule


@dataclass(frozen=True)
class Roofline:
    """A two-ceiling roofline: compute peak and one memory bandwidth."""

    peak_gflops: float
    bandwidth_gbytes_per_s: float

    def __post_init__(self) -> None:
        if self.peak_gflops <= 0 or self.bandwidth_gbytes_per_s <= 0:
            raise ValueError("peak and bandwidth must be positive")

    @property
    def ridge_intensity(self) -> float:
        """Arithmetic intensity (FLOP/byte) where the kernel becomes compute bound."""
        return self.peak_gflops / self.bandwidth_gbytes_per_s

    def attainable_gflops(self, intensity: float) -> float:
        """Attainable throughput for a kernel of the given arithmetic intensity."""
        if intensity <= 0:
            raise ValueError("arithmetic intensity must be positive")
        return min(self.peak_gflops, intensity * self.bandwidth_gbytes_per_s)

    def is_compute_bound(self, intensity: float) -> bool:
        return intensity >= self.ridge_intensity


@dataclass
class RooflinePoint:
    """One kernel placed on the roofline."""

    label: str
    intensity: float
    attainable_gflops: float
    compute_bound: bool


def node_roofline(
    config: Optional[MACOConfig] = None,
    precision: Precision = Precision.FP64,
    active_nodes: int = 1,
    level: str = "dram",
) -> Roofline:
    """The roofline of one MACO compute node at a given contention level.

    ``level`` selects the bandwidth ceiling: ``"noc"`` uses the node's NoC port
    (the L3-traffic ceiling), ``"dram"`` uses the node's share of the DDR
    controllers (the ceiling that moves as more nodes become active).
    """
    config = config if config is not None else maco_default_config()
    env = memory_environment(config, active_nodes)
    if level == "noc":
        bandwidth = env.noc_node_bandwidth_bytes_per_s
    elif level == "dram":
        bandwidth = env.dram_bandwidth_share_bytes_per_s
    else:
        raise ValueError(f"unknown roofline level {level!r}; expected 'noc' or 'dram'")
    return Roofline(
        peak_gflops=node_peak_gflops(config, precision),
        bandwidth_gbytes_per_s=bandwidth / 1e9,
    )


def place_gemm(
    shape: GEMMShape,
    config: Optional[MACOConfig] = None,
    active_nodes: int = 1,
    level: str = "dram",
) -> RooflinePoint:
    """Place a (tiled) GEMM on the node roofline using the modelled traffic.

    The arithmetic intensity uses the tile schedule's traffic at the selected
    level (L3 traffic for ``"noc"``, DRAM traffic for ``"dram"``), i.e. the
    reuse the buffers / the L3 actually achieve, not the ideal operand sizes.
    """
    config = config if config is not None else maco_default_config()
    env = memory_environment(config, active_nodes)
    schedule = build_tile_schedule(
        shape, config.level1_tile, config.level2_tile, config.mmae.timing_parameters(), env
    )
    if level == "noc":
        bytes_moved = schedule.l3_traffic_bytes
    elif level == "dram":
        bytes_moved = schedule.dram_traffic_bytes
    else:
        raise ValueError(f"unknown roofline level {level!r}")
    intensity = shape.flops / bytes_moved if bytes_moved else float("inf")
    roofline = node_roofline(config, shape.precision, active_nodes, level)
    return RooflinePoint(
        label=f"{shape.m}x{shape.n}x{shape.k} ({shape.precision})",
        intensity=intensity,
        attainable_gflops=roofline.attainable_gflops(intensity),
        compute_bound=roofline.is_compute_bound(intensity),
    )


def roofline_sweep(
    sizes: List[int],
    config: Optional[MACOConfig] = None,
    precision: Precision = Precision.FP64,
    active_nodes: int = 1,
    level: str = "dram",
) -> Dict[int, RooflinePoint]:
    """Place a square GEMM of every size on the roofline."""
    return {
        size: place_gemm(GEMMShape(size, size, size, precision), config, active_nodes, level)
        for size in sizes
    }
