"""Collective-communication cost model priced on the mesh NoC.

Sharding a workload across compute nodes introduces traffic the single-node
model never sees: tensor-parallel GEMMs exchange partial sums or gathered
output slices after every layer, and pipeline stages hand activations to
their successor.  This module prices those collectives on the *actual* mesh
— X-Y routes, per-link bandwidth, router pipeline latency — instead of a
flat bandwidth constant, so a group whose ring wraps around the mesh pays
more than a compact one, and co-scheduled groups that share links slow each
other down.

Five primitives cover the strategies in :mod:`repro.parallel.partitioner`:

* **ring all-reduce** — the standard bandwidth-optimal algorithm: ``p``
  nodes arranged in a ring run ``p - 1`` reduce-scatter steps followed by
  ``p - 1`` all-gather steps, each step moving ``payload / p`` bytes per
  node to its ring successor.  Every step's transfers happen concurrently,
  so the step time is set by the ring edge whose X-Y route crosses the
  most-loaded mesh link.
* **ring all-gather** — the second half of the all-reduce on its own
  (``p - 1`` steps), used when nodes hold disjoint output slices that must
  be replicated rather than summed.
* **point-to-point** — one X-Y routed transfer, used for pipeline-stage
  activation hand-off.
* **chain multicast** — a root's panel pipelined along the open chain of a
  sub-group (no wrap-around), every listed sub-group concurrently; the 2-D
  SUMMA planner prices its per-step row and column broadcasts with this.
* **asymmetric gather** — the all-gather wire pattern with every payload
  byte costed ``gather_asymmetry`` times the broadcast direction.  Real
  meshes collect measurably slower than they distribute (csl-experiments
  measured a D2H gather at 0.298 words/cycle against an H2D broadcast at
  0.868 — 2.9x slower per byte); the knob is configurable and only the
  serialization term scales, router latency is direction-agnostic.

Contention between concurrent groups is modelled by overlaying the
*background* groups' ring edges onto the same link-load map before taking
the bottleneck: the serving simulator passes every co-scheduled group as
background, which is the steady-state worst case, consistent with how
:func:`repro.core.perf.memory_environment` treats DRAM and L3 sharing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.noc.mesh import MeshTopology
from repro.noc.network import NocConfig
from repro.noc.routing import route_hops, route_links

__all__ = ["DEFAULT_GATHER_ASYMMETRY", "CollectiveCostModel"]

Link = Tuple[int, int]

#: Default gather-vs-broadcast per-byte cost ratio: csl-experiments measured
#: D2H gathers at 0.298 words/cycle against H2D broadcasts at 0.868 (~2.9x).
DEFAULT_GATHER_ASYMMETRY = 2.9


@dataclass
class CollectiveCostModel:
    """Prices collectives on the mesh described by a :class:`NocConfig`.

    ``protocol_overhead`` matches the default of
    :class:`~repro.noc.contention.NocContentionModel` so the collective and
    streaming sides of the model stay calibrated together.
    """

    config: NocConfig = field(default_factory=NocConfig)
    #: Flit-header / flow-control overhead applied to every payload byte.
    protocol_overhead: float = 0.08
    #: Per-byte cost of collecting relative to distributing (>= applied to
    #: :meth:`gather_seconds` only; broadcasts and rings stay symmetric).
    gather_asymmetry: float = DEFAULT_GATHER_ASYMMETRY

    def __post_init__(self) -> None:
        if self.protocol_overhead < 0:
            raise ValueError("protocol_overhead cannot be negative")
        if self.gather_asymmetry <= 0:
            raise ValueError("gather_asymmetry must be positive")
        self.topology = MeshTopology(self.config.width, self.config.height)

    # --------------------------------------------------------------- ring shape
    def ring_edges(self, group: Sequence[int]) -> List[Link]:
        """The directed ``node -> successor`` edges of the group's ring.

        The ring follows the given group order and wraps around; a group of
        one node has no edges (nothing to exchange).
        """
        nodes = self._validated_group(group)
        if len(nodes) < 2:
            return []
        return [(nodes[i], nodes[(i + 1) % len(nodes)]) for i in range(len(nodes))]

    def chain_edges(self, group: Sequence[int]) -> List[Link]:
        """The open chain of the group — the ring without the wrap-around edge.

        A pipelined multicast forwards the payload root -> next -> ... -> last,
        so only consecutive pairs carry traffic; a single-node chain has none.
        """
        nodes = self._validated_group(group)
        return [(nodes[i], nodes[i + 1]) for i in range(len(nodes) - 1)]

    def _validated_group(self, group: Sequence[int]) -> List[int]:
        nodes = list(group)
        if not nodes:
            raise ValueError("node group cannot be empty")
        if len(set(nodes)) != len(nodes):
            raise ValueError(f"node group has duplicate members: {nodes}")
        for node in nodes:
            if not 0 <= node < self.topology.num_nodes:
                raise ValueError(
                    f"node {node} outside the {self.topology.width}x{self.topology.height} mesh",
                )
        return nodes

    def _link_loads(self, edges: Iterable[Link]) -> Dict[Link, int]:
        """How many concurrent flows each directed mesh link carries."""
        loads: Dict[Link, int] = {}
        for src, dst in edges:
            for link in route_links(self.topology, src, dst):
                loads[link] = loads.get(link, 0) + 1
        return loads

    def _bottleneck_load(self, edges: Sequence[Link], background: Sequence[Sequence[int]]) -> int:
        """Worst link load seen by ``edges`` when background rings run concurrently.

        Background groups contribute their own ring edges to the load map
        (every group is assumed to be mid-collective — the steady-state worst
        case); the returned load is the maximum over the links the *foreground*
        edges actually traverse, so background traffic on disjoint links does
        not slow the group down.
        """
        overlay = list(edges)
        for group in background:
            overlay.extend(self.ring_edges(group))
        loads = self._link_loads(overlay)
        worst = 1
        for src, dst in edges:
            for link in route_links(self.topology, src, dst):
                worst = max(worst, loads[link])
        return worst

    def _step_seconds(
        self,
        edges: Sequence[Link],
        chunk_bytes: float,
        background: Sequence[Sequence[int]],
    ) -> float:
        """Time of one ring step: every edge moves ``chunk_bytes`` concurrently."""
        load = self._bottleneck_load(edges, background)
        wire_bytes = chunk_bytes * (1.0 + self.protocol_overhead)
        serialization = wire_bytes * load / self.config.link_bandwidth_bytes_per_s
        max_hops = max(route_hops(self.topology, src, dst) for src, dst in edges)
        latency = (max_hops + 1) * self.config.router_pipeline_cycles * self.config.cycle_time_s
        return serialization + latency

    # -------------------------------------------------------------- collectives
    def ring_allreduce_seconds(
        self,
        group: Sequence[int],
        payload_bytes: int,
        background: Sequence[Sequence[int]] = (),
    ) -> float:
        """Seconds to all-reduce ``payload_bytes`` (per node) across the group.

        ``2 * (p - 1)`` ring steps of ``payload / p`` bytes each: the
        reduce-scatter half leaves every node with one fully reduced shard,
        the all-gather half replicates the shards.  Zero for a single-node
        group or an empty payload.
        """
        if payload_bytes < 0:
            raise ValueError("payload cannot be negative")
        edges = self.ring_edges(group)
        if not edges or payload_bytes == 0:
            return 0.0
        p = len(list(group))
        chunk = payload_bytes / p
        return 2 * (p - 1) * self._step_seconds(edges, chunk, background)

    def all_gather_seconds(
        self,
        group: Sequence[int],
        payload_bytes: int,
        background: Sequence[Sequence[int]] = (),
    ) -> float:
        """Seconds to replicate disjoint ``payload / p`` slices to every node.

        The all-gather half of the ring all-reduce on its own: ``p - 1``
        steps of ``payload / p`` bytes — exactly half the all-reduce cost for
        the same payload, which the tests pin down.
        """
        if payload_bytes < 0:
            raise ValueError("payload cannot be negative")
        edges = self.ring_edges(group)
        if not edges or payload_bytes == 0:
            return 0.0
        p = len(list(group))
        chunk = payload_bytes / p
        return (p - 1) * self._step_seconds(edges, chunk, background)

    def point_to_point_seconds(
        self,
        src: int,
        dst: int,
        payload_bytes: int,
        background: Sequence[Sequence[int]] = (),
    ) -> float:
        """Seconds for one X-Y routed transfer from ``src`` to ``dst``.

        Used for pipeline-stage activation hand-off; a same-node transfer is
        free (the activation never leaves the node's L2/L3 slice).
        """
        if payload_bytes < 0:
            raise ValueError("payload cannot be negative")
        self._validated_group([src])
        self._validated_group([dst])
        if src == dst or payload_bytes == 0:
            return 0.0
        return self._step_seconds([(src, dst)], float(payload_bytes), background)

    def multicast_seconds(
        self,
        groups: Sequence[Sequence[int]],
        payload_bytes: float,
        background: Sequence[Sequence[int]] = (),
    ) -> float:
        """Seconds for every sub-group to chain-multicast ``payload_bytes`` at once.

        Each sub-group's first node forwards the payload along the group's
        open chain (a pipelined multicast crosses every chain link exactly
        once), and all sub-groups run concurrently — the SUMMA planner passes
        every grid row (or column) here, so a step's time is set by the
        worst-loaded link across all the chains plus the deepest chain's
        router latency.  Zero when no chain has an edge (all singleton
        sub-groups) or the payload is empty.
        """
        if payload_bytes < 0:
            raise ValueError("payload cannot be negative")
        edges: List[Link] = []
        for group in groups:
            edges.extend(self.chain_edges(group))
        if not edges or payload_bytes == 0:
            return 0.0
        return self._step_seconds(edges, float(payload_bytes), background)

    def gather_seconds(
        self,
        group: Sequence[int],
        payload_bytes: int,
        background: Sequence[Sequence[int]] = (),
    ) -> float:
        """Seconds to collect and replicate ``payload_bytes`` with asymmetric pricing.

        The wire pattern is the ring all-gather (``p - 1`` steps of
        ``payload / p`` bytes), but every byte is costed
        :attr:`gather_asymmetry` times the broadcast direction — only the
        serialization term scales; the per-hop router latency is
        direction-agnostic.  With ``gather_asymmetry=1`` this degenerates to
        :meth:`all_gather_seconds` exactly.
        """
        if payload_bytes < 0:
            raise ValueError("payload cannot be negative")
        edges = self.ring_edges(group)
        if not edges or payload_bytes == 0:
            return 0.0
        p = len(list(group))
        chunk = payload_bytes / p * self.gather_asymmetry
        return (p - 1) * self._step_seconds(edges, chunk, background)
