"""Aggregated results of a serving simulation.

:class:`ServeReport` is the single artefact a simulation run produces: fleet
throughput and tail latency, per-tenant and per-node breakdowns, queueing and
context-switch statistics, and — for LLM-style workloads — the serving
metrics that matter at iteration granularity:

* **TTFT** (time to first token): arrival to the end of the request's first
  step, i.e. how long a user stares at an empty screen;
* **TPOT** (time per output token): the decode-side pace, ``(finish - first
  token) / output tokens``, including any preemption stalls;
* **SLO attainment**: the fraction of requests that met *both* of their
  TTFT/TPOT targets (a request without targets counts as met);
* **goodput**: throughput counting only SLO-met requests — the number a
  capacity planner actually cares about under overload.

It renders as aligned ASCII tables (for eyeballs and diffs) or a stable JSON
document (``to_json`` sorts keys, so two runs with the same seed produce
byte-identical output — the determinism tests compare these strings directly).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Sequence

from repro.analysis.reporting import latency_summary, render_table

__all__ = ["TenantStats", "NodeStats", "ServeReport", "build_report"]


def _percentiles(values: Sequence[float]) -> Dict[str, float]:
    """``latency_summary`` with an all-zero fallback for empty inputs."""
    if not values:
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
    return latency_summary(values)


def _slo_met(entry: dict) -> bool:
    """Did this completion meet its SLO targets?  No targets counts as met."""
    ttft_slo = entry.get("ttft_slo_s")
    tpot_slo = entry.get("tpot_slo_s")
    if ttft_slo is not None and entry.get("ttft_s", 0.0) > ttft_slo:
        return False
    if tpot_slo is not None and entry.get("tpot_s", 0.0) > tpot_slo:
        return False
    return True


@dataclass(frozen=True)
class TenantStats:
    """Per-tenant serving outcome: request counts, throughput, tail latency."""

    name: str
    requests: int
    throughput_rps: float
    latency_mean_s: float
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    wait_mean_s: float
    ttft_p50_s: float = 0.0
    ttft_p95_s: float = 0.0
    ttft_p99_s: float = 0.0
    tpot_p50_s: float = 0.0
    tpot_p95_s: float = 0.0
    tpot_p99_s: float = 0.0
    slo_attainment: float = 1.0
    goodput_rps: float = 0.0
    preemptions: int = 0


@dataclass(frozen=True)
class NodeStats:
    """Per-node serving outcome: completions, utilization, tenant switches."""

    node_id: int
    completed: int
    busy_s: float
    utilization: float
    tenant_switches: int
    switch_s: float
    preemptions: int = 0


@dataclass(frozen=True)
class ServeReport:
    """Everything a serving simulation measured, in one frozen record."""

    trace: str
    scheduler: str
    num_nodes: int
    total_requests: int
    makespan_s: float
    throughput_rps: float
    latency_mean_s: float
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    queue_depth_mean: float
    queue_depth_max: int
    context_switch_s: float
    batching: str = "request"
    ttft_p50_s: float = 0.0
    ttft_p95_s: float = 0.0
    ttft_p99_s: float = 0.0
    tpot_p50_s: float = 0.0
    tpot_p95_s: float = 0.0
    tpot_p99_s: float = 0.0
    slo_attainment: float = 1.0
    goodput_rps: float = 0.0
    preemptions: int = 0
    tenants: List[TenantStats] = field(default_factory=list)
    nodes: List[NodeStats] = field(default_factory=list)

    @property
    def mean_utilization(self) -> float:
        """Average busy fraction across the fleet's nodes."""
        if not self.nodes:
            return 0.0
        return sum(node.utilization for node in self.nodes) / len(self.nodes)

    def to_dict(self) -> dict:
        """The report as plain nested dicts/lists (JSON-able, round-trips)."""
        return asdict(self)

    def to_json(self, indent: int = 2) -> str:
        """Stable JSON text: sorted keys, so identical runs compare equal."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Render the report as ASCII tables plus a fleet summary line."""
        def ms(seconds: float) -> str:
            return f"{seconds * 1e3:.2f}"

        tenant_rows = [
            [stats.name, stats.requests, f"{stats.throughput_rps:.2f}",
             ms(stats.latency_p50_s), ms(stats.latency_p95_s), ms(stats.latency_p99_s),
             ms(stats.wait_mean_s)]
            for stats in self.tenants
        ]
        slo_rows = [
            [stats.name, ms(stats.ttft_p50_s), ms(stats.ttft_p95_s),
             ms(stats.tpot_p50_s), ms(stats.tpot_p95_s),
             f"{stats.slo_attainment * 100:.1f}%", f"{stats.goodput_rps:.2f}",
             stats.preemptions]
            for stats in self.tenants
        ]
        node_rows = [
            [stats.node_id, stats.completed, f"{stats.busy_s * 1e3:.1f}",
             f"{stats.utilization * 100:.1f}%", stats.tenant_switches, stats.preemptions]
            for stats in self.nodes
        ]
        sections = [
            f"Serve report - {self.scheduler} scheduler ({self.batching} batching), "
            f"trace {self.trace}: "
            f"{self.total_requests} requests on {self.num_nodes} nodes "
            f"in {self.makespan_s:.3f} s ({self.throughput_rps:.2f} req/s, "
            f"goodput {self.goodput_rps:.2f} req/s)",
            render_table(
                ["tenant", "requests", "req/s", "p50 (ms)", "p95 (ms)", "p99 (ms)", "mean wait (ms)"],
                tenant_rows, title="Per-tenant latency and throughput"),
            render_table(
                ["tenant", "ttft p50 (ms)", "ttft p95 (ms)", "tpot p50 (ms)", "tpot p95 (ms)",
                 "slo met", "goodput (req/s)", "preemptions"],
                slo_rows, title="Per-tenant token latency and SLO attainment"),
            render_table(
                ["node", "completed", "busy (ms)", "utilization", "tenant switches", "preemptions"],
                node_rows, title="Per-node utilization"),
            (f"fleet: p50 {ms(self.latency_p50_s)} ms, p95 {ms(self.latency_p95_s)} ms, "
             f"p99 {ms(self.latency_p99_s)} ms | ttft p95 {ms(self.ttft_p95_s)} ms, "
             f"tpot p95 {ms(self.tpot_p95_s)} ms | slo attainment "
             f"{self.slo_attainment * 100:.1f}% | mean utilization "
             f"{self.mean_utilization * 100:.1f}% | queue depth mean {self.queue_depth_mean:.2f} "
             f"max {self.queue_depth_max} | context-switch time {self.context_switch_s * 1e3:.3f} ms"
             f" | preemptions {self.preemptions}"),
        ]
        return "\n\n".join(sections)


def build_report(
    trace_name: str,
    scheduler_name: str,
    num_nodes: int,
    completions: Sequence[dict],
    node_stats: Sequence[NodeStats],
    queue_depth_mean: float,
    queue_depth_max: int,
    batching: str = "request",
) -> ServeReport:
    """Assemble a :class:`ServeReport` from raw per-request completion records.

    ``completions`` entries carry ``tenant``, ``arrival_s``, ``start_s``,
    ``finish_s`` and ``switch_s``; latency is ``finish - arrival`` and wait is
    ``start - arrival``.  Step-mode entries additionally carry ``ttft_s``,
    ``tpot_s``, the SLO targets (``ttft_slo_s``/``tpot_slo_s``) and a
    ``preemptions`` count — all optional, so request-level records and older
    callers keep working unchanged.  The makespan is the last finish time, and
    every throughput figure divides by it, so per-tenant throughputs (and
    goodputs) sum exactly to the fleet numbers.
    """
    makespan = max((entry["finish_s"] for entry in completions), default=0.0)
    latencies = [entry["finish_s"] - entry["arrival_s"] for entry in completions]
    by_tenant: Dict[str, List[dict]] = {}
    for entry in completions:
        by_tenant.setdefault(entry["tenant"], []).append(entry)

    tenants = []
    for name in sorted(by_tenant):
        entries = by_tenant[name]
        tenant_latencies = [entry["finish_s"] - entry["arrival_s"] for entry in entries]
        waits = [entry["start_s"] - entry["arrival_s"] for entry in entries]
        summary = latency_summary(tenant_latencies)
        ttft = _percentiles([entry.get("ttft_s", 0.0) for entry in entries])
        tpot = _percentiles([entry.get("tpot_s", 0.0) for entry in entries])
        met = sum(1 for entry in entries if _slo_met(entry))
        tenants.append(TenantStats(
            name=name,
            requests=len(entries),
            throughput_rps=len(entries) / makespan if makespan else 0.0,
            latency_mean_s=summary["mean"],
            latency_p50_s=summary["p50"],
            latency_p95_s=summary["p95"],
            latency_p99_s=summary["p99"],
            wait_mean_s=sum(waits) / len(waits),
            ttft_p50_s=ttft["p50"],
            ttft_p95_s=ttft["p95"],
            ttft_p99_s=ttft["p99"],
            tpot_p50_s=tpot["p50"],
            tpot_p95_s=tpot["p95"],
            tpot_p99_s=tpot["p99"],
            slo_attainment=met / len(entries),
            goodput_rps=met / makespan if makespan else 0.0,
            preemptions=sum(int(entry.get("preemptions", 0)) for entry in entries),
        ))

    fleet = _percentiles(latencies)
    fleet_ttft = _percentiles([entry.get("ttft_s", 0.0) for entry in completions])
    fleet_tpot = _percentiles([entry.get("tpot_s", 0.0) for entry in completions])
    fleet_met = sum(1 for entry in completions if _slo_met(entry))
    return ServeReport(
        trace=trace_name,
        scheduler=scheduler_name,
        num_nodes=num_nodes,
        total_requests=len(completions),
        makespan_s=makespan,
        throughput_rps=len(completions) / makespan if makespan else 0.0,
        latency_mean_s=fleet["mean"],
        latency_p50_s=fleet["p50"],
        latency_p95_s=fleet["p95"],
        latency_p99_s=fleet["p99"],
        queue_depth_mean=queue_depth_mean,
        queue_depth_max=queue_depth_max,
        context_switch_s=sum(node.switch_s for node in node_stats),
        batching=batching,
        ttft_p50_s=fleet_ttft["p50"],
        ttft_p95_s=fleet_ttft["p95"],
        ttft_p99_s=fleet_ttft["p99"],
        tpot_p50_s=fleet_tpot["p50"],
        tpot_p95_s=fleet_tpot["p95"],
        tpot_p99_s=fleet_tpot["p99"],
        slo_attainment=fleet_met / len(completions) if completions else 1.0,
        goodput_rps=fleet_met / makespan if makespan else 0.0,
        preemptions=sum(int(entry.get("preemptions", 0)) for entry in completions),
        tenants=tenants,
        nodes=list(node_stats),
    )
