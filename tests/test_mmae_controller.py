"""Tests for the STQ, the accelerator controller and the dataflow timing model."""

import numpy as np
import pytest

from repro.cpu.exceptions import ExceptionType
from repro.gemm.precision import Precision
from repro.gemm.tiling import TileConfig
from repro.gemm.workloads import GEMMShape
from repro.isa.instructions import GEMMDescriptor, InitDescriptor, MoveDescriptor, StashDescriptor
from repro.mem.address import AddressRange
from repro.mem.hostmem import HostMemory
from repro.mem.l3cache import DistributedL3Cache
from repro.mmae.controller import AcceleratorController
from repro.mmae.dataflow import (
    MemoryEnvironment,
    MMAETimingParameters,
    build_tile_schedule,
    estimate_gemm_timing,
)
from repro.mmae.stq import STQEntryState, SlaveTaskQueue


class TestSlaveTaskQueue:
    def test_receive_and_execute_in_order(self):
        stq = SlaveTaskQueue(capacity=4)
        stq.receive(0, 0, "gemm", "first")
        stq.receive(1, 0, "gemm", "second")
        assert stq.next_task().descriptor == "first"

    def test_capacity_enforced(self):
        stq = SlaveTaskQueue(capacity=1)
        stq.receive(0, 0, "gemm", None)
        with pytest.raises(RuntimeError):
            stq.receive(1, 0, "gemm", None)

    def test_completion_callback_reaches_mtq(self):
        stq = SlaveTaskQueue()
        notifications = []
        stq.on_completion(lambda maid, exc: notifications.append((maid, exc)))
        entry = stq.receive(3, 0, "gemm", None)
        entry.mark_running()
        stq.complete(entry, cycles=100.0)
        assert notifications == [(3, ExceptionType.NONE)]

    def test_failure_callback_carries_exception(self):
        stq = SlaveTaskQueue()
        notifications = []
        stq.on_completion(lambda maid, exc: notifications.append((maid, exc)))
        entry = stq.receive(5, 0, "gemm", None)
        entry.mark_running()
        stq.fail(entry, ExceptionType.BUFFER_OVERFLOW)
        assert notifications == [(5, ExceptionType.BUFFER_OVERFLOW)]
        assert entry.state is STQEntryState.ERROR

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SlaveTaskQueue().receive(0, 0, "matmul", None)

    def test_retire_finished(self):
        stq = SlaveTaskQueue()
        entry = stq.receive(0, 0, "gemm", None)
        entry.mark_running()
        stq.complete(entry, 1.0)
        stq.receive(1, 0, "gemm", None)
        assert stq.retire_finished() == 1
        assert stq.occupancy == 1


def make_controller(host_memory=None, l3=None, mmu=None, prediction=True) -> AcceleratorController:
    controller = AcceleratorController(
        node_id=0, host_memory=host_memory, l3=l3, mmu=mmu, prediction_enabled=prediction,
    )
    controller.stq.on_completion(lambda maid, exc: None)
    return controller


def square_descriptor(addr_a, addr_b, addr_c, size, precision=Precision.FP64) -> GEMMDescriptor:
    return GEMMDescriptor(
        addr_a=addr_a, addr_b=addr_b, addr_c=addr_c, m=size, n=size, k=size,
        precision=precision, tile_rows=max(size, 64), tile_cols=max(size, 64),
        ttr=min(64, size), ttc=min(64, size),
    )


class TestControllerGEMM:
    def test_timing_mode_completes_and_reports_cycles(self):
        controller = make_controller()
        controller.submit_gemm(0, 0, square_descriptor(0x1000, 0x2000, 0x3000, 256))
        results = controller.execute_pending()
        assert len(results) == 1
        assert results[0].succeeded
        assert results[0].cycles > 0
        assert results[0].timing.efficiency > 0.5

    def test_functional_mode_matches_numpy(self, rng):
        memory = HostMemory()
        size = 96
        a = rng.standard_normal((size, size))
        b = rng.standard_normal((size, size))
        c = np.zeros((size, size))
        memory.register_matrix(0x10_0000, a)
        memory.register_matrix(0x20_0000, b)
        memory.register_matrix(0x30_0000, c)
        controller = make_controller(host_memory=memory)
        controller.submit_gemm(0, 0, square_descriptor(0x10_0000, 0x20_0000, 0x30_0000, size))
        result = controller.execute_pending()[0]
        assert result.functional
        np.testing.assert_allclose(memory.matrix_at(0x30_0000), a @ b, rtol=1e-10)

    def test_functional_fp32_within_tolerance(self, rng):
        memory = HostMemory()
        size = 64
        a = rng.standard_normal((size, size)).astype(np.float32)
        b = rng.standard_normal((size, size)).astype(np.float32)
        c = np.zeros((size, size), dtype=np.float32)
        for addr, mat in ((0x1000, a), (0x40000, b), (0x80000, c)):
            memory.register_matrix(addr, mat)
        controller = make_controller(host_memory=memory)
        controller.submit_gemm(0, 0, square_descriptor(0x1000, 0x40000, 0x80000, size, Precision.FP32))
        controller.execute_pending()
        np.testing.assert_allclose(
            memory.matrix_at(0x80000), a.astype(np.float64) @ b.astype(np.float64), rtol=1e-3, atol=1e-3
        )

    def test_buffer_overflow_exception(self):
        controller = make_controller()
        descriptor = GEMMDescriptor(
            addr_a=0x1000, addr_b=0x2000, addr_c=0x3000, m=512, n=512, k=512,
            tile_rows=512, tile_cols=512, ttr=512, ttc=512,  # far beyond 64 KB buffers
        )
        controller.submit_gemm(0, 0, descriptor)
        result = controller.execute_pending()[0]
        assert not result.succeeded
        assert result.exception is ExceptionType.BUFFER_OVERFLOW
        assert controller.failed_tasks == 1

    def test_mismatched_operand_shapes_raise_invalid_config(self, rng):
        memory = HostMemory()
        memory.register_matrix(0x1000, rng.standard_normal((32, 32)))
        memory.register_matrix(0x9000, rng.standard_normal((32, 32)))
        memory.register_matrix(0x12000, rng.standard_normal((16, 16)))  # wrong C shape
        controller = make_controller(host_memory=memory)
        controller.submit_gemm(0, 0, square_descriptor(0x1000, 0x9000, 0x12000, 32))
        result = controller.execute_pending()[0]
        assert result.exception is ExceptionType.INVALID_CONFIG

    def test_tasks_execute_in_submission_order(self):
        controller = make_controller()
        controller.submit_gemm(0, 0, square_descriptor(0x1000, 0x2000, 0x3000, 128))
        controller.submit_gemm(1, 0, square_descriptor(0x4000, 0x5000, 0x6000, 128))
        results = controller.execute_pending()
        assert [result.maid for result in results] == [0, 1]
        assert controller.completed_tasks == 2

    def test_prediction_toggle_changes_timing(self):
        with_pred = make_controller(prediction=True)
        without_pred = make_controller(prediction=False)
        descriptor = square_descriptor(0x1000, 0x200000, 0x400000, 1024)
        with_pred.submit_gemm(0, 0, descriptor)
        without_pred.submit_gemm(0, 0, descriptor)
        cycles_with = with_pred.execute_pending()[0].cycles
        cycles_without = without_pred.execute_pending()[0].cycles
        assert cycles_without > cycles_with


class TestControllerDataMigration:
    def test_move_copies_between_regions(self, rng):
        memory = HostMemory()
        src = rng.standard_normal((16, 16))
        dst = np.zeros((16, 16))
        memory.register_matrix(0x1000, src)
        memory.register_matrix(0x8000, dst)
        controller = make_controller(host_memory=memory)
        controller.submit_move(0, 0, MoveDescriptor(src_addr=0x1000, dst_addr=0x8000,
                                                    length_bytes=src.nbytes))
        result = controller.execute_pending()[0]
        assert result.succeeded and result.cycles > 0
        np.testing.assert_array_equal(memory.matrix_at(0x8000), src)

    def test_init_zeroes_region(self):
        memory = HostMemory()
        memory.register_matrix(0x4000, np.ones((8, 8)))
        controller = make_controller(host_memory=memory)
        controller.submit_init(0, 0, InitDescriptor(dst_addr=0x4000, length_bytes=512))
        controller.execute_pending()
        assert np.all(memory.matrix_at(0x4000) == 0)

    def test_stash_populates_l3(self):
        l3 = DistributedL3Cache(num_slices=2, slice_size_bytes=256 * 1024)
        controller = make_controller(l3=l3)
        controller.submit_stash(0, 0, StashDescriptor(addr=0x2000, length_bytes=8192, lock=True))
        result = controller.execute_pending()[0]
        assert result.succeeded
        assert l3.residency_of(AddressRange(0x2000, 8192)) == 1.0
        assert l3.total_locked_lines == 128


class TestDataflowTiming:
    ENV = MemoryEnvironment()
    PARAMS = MMAETimingParameters()

    def test_schedule_counts_match_tiling(self):
        shape = GEMMShape(2048, 2048, 2048, Precision.FP64)
        schedule = build_tile_schedule(shape, TileConfig(1024, 1024), TileConfig(64, 64),
                                       self.PARAMS, self.ENV)
        assert schedule.num_level1_tiles == 8
        assert schedule.num_level2_tiles == 8 * 16 * 16 * 16

    def test_compute_cycles_at_least_ideal(self):
        shape = GEMMShape(1024, 1024, 1024)
        schedule = build_tile_schedule(shape, TileConfig(1024, 1024), TileConfig(64, 64),
                                       self.PARAMS, self.ENV)
        ideal = shape.macs / 16
        assert schedule.compute_cycles >= ideal
        assert schedule.compute_cycles < ideal * 1.05

    def test_dram_traffic_never_exceeds_l3_traffic(self):
        for size in (256, 1024, 4096):
            schedule = build_tile_schedule(GEMMShape(size, size, size), TileConfig(1024, 1024),
                                           TileConfig(64, 64), self.PARAMS, self.ENV)
            assert schedule.dram_traffic_bytes <= schedule.l3_traffic_bytes + 1
            assert schedule.dram_traffic_bytes >= 0.9 * GEMMShape(size, size, size).total_bytes

    def test_efficiency_bounded_by_one(self):
        timing = estimate_gemm_timing(GEMMShape(512, 512, 512))
        assert 0 < timing.efficiency <= 1.0

    def test_large_gemm_is_compute_bound_single_node(self):
        timing = estimate_gemm_timing(GEMMShape(4096, 4096, 4096))
        assert timing.efficiency > 0.95
        assert timing.exposed_dma_cycles == 0

    def test_starved_memory_environment_exposes_dma(self):
        env = MemoryEnvironment(
            l3_share_bytes=1 << 20,
            dram_bandwidth_share_bytes_per_s=2e9,
            l3_round_trip_ns=300.0,
            dram_round_trip_ns=400.0,
        )
        timing = estimate_gemm_timing(GEMMShape(2048, 2048, 2048), env=env)
        assert timing.exposed_dma_cycles > 0
        assert timing.efficiency < 0.9

    def test_prediction_reduces_total_cycles(self):
        shape = GEMMShape(2048, 2048, 2048)
        with_pred = estimate_gemm_timing(shape, prediction_enabled=True)
        without = estimate_gemm_timing(shape, prediction_enabled=False)
        assert without.total_cycles > with_pred.total_cycles
        assert without.translation_stall_cycles > with_pred.translation_stall_cycles

    def test_peak_matches_precision(self):
        assert estimate_gemm_timing(GEMMShape(256, 256, 256, Precision.FP32)).peak_gflops == pytest.approx(160.0)
        assert estimate_gemm_timing(GEMMShape(256, 256, 256, Precision.FP16)).peak_gflops == pytest.approx(320.0)

    def test_summary_keys(self):
        summary = estimate_gemm_timing(GEMMShape(256, 256, 256)).summary()
        assert {"total_cycles", "compute_cycles", "efficiency"} <= set(summary)
