"""Tests for address arithmetic and range helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.address import (
    AddressRange,
    align_down,
    align_up,
    cache_index,
    cache_tag,
    matrix_row_ranges,
    page_number,
    page_offset,
)


class TestAlignment:
    def test_align_down(self):
        assert align_down(0x1234, 0x1000) == 0x1000

    def test_align_up(self):
        assert align_up(0x1234, 0x1000) == 0x2000

    def test_align_up_already_aligned(self):
        assert align_up(0x2000, 0x1000) == 0x2000

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            align_down(100, 3)

    @given(st.integers(min_value=0, max_value=2**48), st.sampled_from([64, 4096, 1 << 20]))
    def test_align_down_properties(self, address, alignment):
        aligned = align_down(address, alignment)
        assert aligned <= address
        assert aligned % alignment == 0
        assert address - aligned < alignment


class TestPaging:
    def test_page_number_and_offset(self):
        assert page_number(0x3456, 4096) == 3
        assert page_offset(0x3456, 4096) == 0x456

    @given(st.integers(min_value=0, max_value=2**48))
    def test_page_decomposition_roundtrip(self, address):
        assert page_number(address) * 4096 + page_offset(address) == address


class TestCacheIndexing:
    def test_index_wraps_by_set_count(self):
        assert cache_index(0, 64, 128) == 0
        assert cache_index(64 * 128, 64, 128) == 0
        assert cache_index(64 * 129, 64, 128) == 1

    def test_tag_counts_full_cache_strides(self):
        assert cache_tag(0, 64, 128) == 0
        assert cache_tag(64 * 128, 64, 128) == 1

    def test_non_power_of_two_sets_allowed(self):
        # The paper's 48 KB 4-way L1 has 192 sets.
        assert cache_index(64 * 192, 64, 192) == 0

    @given(st.integers(min_value=0, max_value=2**40))
    def test_index_tag_reconstruct_line(self, address):
        line_size, num_sets = 64, 192
        line = address // line_size
        index = cache_index(address, line_size, num_sets)
        tag = cache_tag(address, line_size, num_sets)
        assert tag * num_sets + index == line


class TestAddressRange:
    def test_end_and_contains(self):
        r = AddressRange(100, 50)
        assert r.end == 150
        assert r.contains(100) and r.contains(149)
        assert not r.contains(150)

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            AddressRange(0, 0)

    def test_overlaps(self):
        assert AddressRange(0, 100).overlaps(AddressRange(50, 10))
        assert not AddressRange(0, 100).overlaps(AddressRange(100, 10))

    def test_pages_spanning_boundary(self):
        r = AddressRange(4000, 200)  # crosses the first 4 KB page boundary
        assert r.pages(4096) == [0, 1]

    def test_lines(self):
        r = AddressRange(60, 10)  # crosses one 64-byte line boundary
        assert r.lines(64) == [0, 64]

    def test_split_by_page_covers_range_exactly(self):
        r = AddressRange(1000, 10000)
        chunks = list(r.split_by_page(4096))
        assert chunks[0].start == 1000
        assert chunks[-1].end == r.end
        assert sum(chunk.length for chunk in chunks) == r.length
        for chunk in chunks:
            assert len(chunk.pages(4096)) == 1

    @given(st.integers(min_value=0, max_value=1 << 30), st.integers(min_value=1, max_value=1 << 16))
    def test_split_by_page_is_partition(self, start, length):
        r = AddressRange(start, length)
        chunks = list(r.split_by_page())
        cursor = r.start
        for chunk in chunks:
            assert chunk.start == cursor
            cursor = chunk.end
        assert cursor == r.end


class TestMatrixRowRanges:
    def test_row_count_and_width(self):
        ranges = matrix_row_ranges(
            base_address=0x1000, row_start=2, row_count=3, col_start=4, col_count=8,
            row_stride_elements=64, element_bytes=8,
        )
        assert len(ranges) == 3
        assert all(r.length == 8 * 8 for r in ranges)
        assert ranges[0].start == 0x1000 + (2 * 64 + 4) * 8

    def test_rows_are_stride_apart(self):
        ranges = matrix_row_ranges(0, 0, 4, 0, 16, 128, 4)
        deltas = {b.start - a.start for a, b in zip(ranges, ranges[1:])}
        assert deltas == {128 * 4}

    def test_block_exceeding_stride_rejected(self):
        with pytest.raises(ValueError):
            matrix_row_ranges(0, 0, 1, 60, 10, 64, 8)
