"""The processing element (PE) of the systolic array.

Each PE holds a stationary operand (an element of the B sub-matrix in the
input-stationary dataflow of Fig. 1), receives an A element and a partial sum
from its neighbours each cycle, performs a multiply-accumulate, and forwards
the updated partial sum down its column.  The SIMD modes of Fig. 2(c)/(d) pack
two FP32 or four FP16 lanes into one PE: the PE then holds a short vector of
stationary operands and processes the matching vector of A elements per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.gemm.precision import Precision


@dataclass
class ProcessingElement:
    """One MAC unit of the systolic array."""

    row: int
    col: int
    precision: Precision = Precision.FP64
    weights: List[float] = field(default_factory=list)
    macs_performed: int = 0

    @property
    def lanes(self) -> int:
        """Number of SIMD lanes in the current precision mode."""
        return self.precision.simd_ways

    def set_precision(self, precision: Precision) -> None:
        """Switch compute mode; clears the stationary operands."""
        self.precision = precision
        self.weights = []

    def load_weights(self, values: Sequence[float]) -> None:
        """Load the stationary operand vector (length must equal the lane count)."""
        if len(values) != self.lanes:
            raise ValueError(
                f"PE({self.row},{self.col}): expected {self.lanes} stationary values, got {len(values)}"
            )
        dtype = self.precision.dtype
        self.weights = [float(np.asarray(v, dtype=dtype)) for v in values]

    def mac(self, activations: Sequence[float], partial_sums: Sequence[float]) -> List[float]:
        """One cycle of work: ``partial + activation * weight`` per lane.

        Arithmetic is performed in the accumulator precision (FP32 for FP16
        inputs, native otherwise) to mirror the hardware datapath.
        """
        if not self.weights:
            raise RuntimeError(f"PE({self.row},{self.col}): stationary operands not loaded")
        if len(activations) != self.lanes or len(partial_sums) != self.lanes:
            raise ValueError(
                f"PE({self.row},{self.col}): expected {self.lanes} lanes of inputs"
            )
        in_dtype = self.precision.dtype
        acc_dtype = self.precision.accumulate_dtype
        results = []
        for activation, weight, partial in zip(activations, self.weights, partial_sums):
            a = np.asarray(activation, dtype=in_dtype).astype(acc_dtype)
            w = np.asarray(weight, dtype=in_dtype).astype(acc_dtype)
            p = np.asarray(partial, dtype=acc_dtype)
            results.append(float(a * w + p))
            self.macs_performed += 1
        return results

    def reset(self) -> None:
        self.weights = []
        self.macs_performed = 0
