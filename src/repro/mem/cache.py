"""A set-associative, write-back cache model with LRU replacement.

Used for the per-core L1 instruction/data caches and private L2 of Table I,
and as the building block of the distributed L3 slices.  The model tracks tag
state only (no data payloads); the functional models keep data in NumPy arrays
and use the cache purely for hit/miss accounting and latency.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.mem.address import cache_index, cache_tag


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    associativity: int
    line_size: int = 64
    hit_latency_cycles: int = 4
    writeback: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.line_size <= 0:
            raise ValueError(f"invalid cache config: {self}")
        if self.size_bytes % (self.associativity * self.line_size):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} is not divisible by "
                f"associativity*line_size ({self.associativity * self.line_size})"
            )
        # The number of sets is allowed to be a non-power-of-two (the paper's 48 KB
        # four-way L1 caches have 192 sets); indexing is modulo the set count.

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_size)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate if self.accesses else 0.0


@dataclass
class CacheLine:
    tag: int
    dirty: bool = False
    locked: bool = False


@dataclass
class AccessResult:
    """Outcome of a cache access."""

    hit: bool
    latency_cycles: int
    evicted_address: Optional[int] = None
    writeback: bool = False


class SetAssociativeCache:
    """Tag-state-only set-associative cache with per-line lock support.

    Lines can be *locked* (pinned), which is how the MACO mapping scheme keeps
    stashed GEMM tiles resident in the L3 while the CPU runs the non-GEMM tail
    (paper Fig. 5(b)).  Locked lines are never chosen as eviction victims; if a
    set is entirely locked, the fill is treated as a bypass (uncached access).
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        # One ordered dict per set: key = tag, ordered oldest -> newest.
        self._sets: list[OrderedDict[int, CacheLine]] = [
            OrderedDict() for _ in range(config.num_sets)
        ]

    # ----------------------------------------------------------------- helpers
    def _locate(self, address: int) -> Tuple[int, int]:
        index = cache_index(address, self.config.line_size, self.config.num_sets)
        tag = cache_tag(address, self.config.line_size, self.config.num_sets)
        return index, tag

    def _line_address(self, index: int, tag: int) -> int:
        return (tag * self.config.num_sets + index) * self.config.line_size

    # ------------------------------------------------------------------ access
    def probe(self, address: int) -> bool:
        """Check residency without updating LRU or statistics."""
        index, tag = self._locate(address)
        return tag in self._sets[index]

    def access(self, address: int, write: bool = False) -> AccessResult:
        """Access one cache line; on miss the line is filled (allocate-on-miss)."""
        index, tag = self._locate(address)
        cache_set = self._sets[index]
        line = cache_set.get(tag)
        if line is not None:
            cache_set.move_to_end(tag)
            if write:
                line.dirty = True
            self.stats.hits += 1
            return AccessResult(hit=True, latency_cycles=self.config.hit_latency_cycles)
        self.stats.misses += 1
        evicted_address, writeback = self._fill(index, tag, dirty=write)
        return AccessResult(
            hit=False,
            latency_cycles=self.config.hit_latency_cycles,
            evicted_address=evicted_address,
            writeback=writeback,
        )

    def fill(self, address: int, dirty: bool = False, locked: bool = False) -> Optional[int]:
        """Install a line without counting an access (used by stash/prefetch paths).

        Returns the address of the evicted line, if any.
        """
        index, tag = self._locate(address)
        cache_set = self._sets[index]
        if tag in cache_set:
            line = cache_set[tag]
            line.dirty = line.dirty or dirty
            line.locked = line.locked or locked
            cache_set.move_to_end(tag)
            return None
        evicted_address, _ = self._fill(index, tag, dirty=dirty, locked=locked)
        return evicted_address

    def _fill(
        self, index: int, tag: int, dirty: bool, locked: bool = False
    ) -> Tuple[Optional[int], bool]:
        cache_set = self._sets[index]
        evicted_address: Optional[int] = None
        writeback = False
        if len(cache_set) >= self.config.associativity:
            victim_tag = self._choose_victim(cache_set)
            if victim_tag is None:
                # Every way is locked: bypass the cache for this fill.
                return None, False
            victim = cache_set.pop(victim_tag)
            evicted_address = self._line_address(index, victim_tag)
            self.stats.evictions += 1
            if victim.dirty and self.config.writeback:
                self.stats.writebacks += 1
                writeback = True
        cache_set[tag] = CacheLine(tag=tag, dirty=dirty, locked=locked)
        return evicted_address, writeback

    @staticmethod
    def _choose_victim(cache_set: "OrderedDict[int, CacheLine]") -> Optional[int]:
        for tag, line in cache_set.items():  # oldest first
            if not line.locked:
                return tag
        return None

    # ------------------------------------------------------------------ locking
    def lock(self, address: int) -> bool:
        """Pin the line holding ``address``; returns False if it is not resident."""
        index, tag = self._locate(address)
        line = self._sets[index].get(tag)
        if line is None:
            return False
        line.locked = True
        return True

    def unlock(self, address: int) -> bool:
        index, tag = self._locate(address)
        line = self._sets[index].get(tag)
        if line is None:
            return False
        line.locked = False
        return True

    def unlock_all(self) -> int:
        """Unlock every line; returns how many lines were locked."""
        count = 0
        for cache_set in self._sets:
            for line in cache_set.values():
                if line.locked:
                    line.locked = False
                    count += 1
        return count

    # ------------------------------------------------------------------- state
    def invalidate(self, address: int) -> bool:
        index, tag = self._locate(address)
        return self._sets[index].pop(tag, None) is not None

    def invalidate_all(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()

    @property
    def resident_lines(self) -> int:
        return sum(len(cache_set) for cache_set in self._sets)

    @property
    def locked_lines(self) -> int:
        return sum(
            1 for cache_set in self._sets for line in cache_set.values() if line.locked
        )

    @property
    def occupancy(self) -> float:
        return self.resident_lines / self.config.num_lines
