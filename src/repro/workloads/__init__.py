"""Deep-learning workload models and the phase-aware workload IR.

The Fig. 8 comparison runs ResNet-50, BERT and GPT-3 in FP32 inference; the
scenario catalog extends the set with LLM prefill/decode
(:mod:`repro.workloads.llm`), conv-only ResNet stages and mixture-of-experts
FFNs (:mod:`repro.workloads.moe`).  Every network is described as a
:class:`~repro.workloads.graph.WorkloadGraph` — an ordered list of GEMM
phases with footprint/reuse/state metadata — which ``flatten()`` lowers to
the legacy :class:`~repro.gemm.workloads.GEMMWorkload` for flat consumers.
"""

from repro.workloads.layers import (
    LayerKind,
    LayerSpec,
    conv2d_gemm,
    linear_gemm,
    attention_gemms,
    elementwise_cost,
)
from repro.workloads.graph import Phase, PhaseKind, WorkloadGraph
from repro.workloads.resnet50 import resnet50_graph, resnet50_workload, RESNET50_LAYERS
from repro.workloads.bert import bert_graph, bert_workload, encoder_layer_phase, BERT_BASE, BERT_LARGE
from repro.workloads.gpt3 import gpt3_graph, gpt3_workload, GPT3_CONFIGS
from repro.workloads.llm import (
    LLAMA_CONFIGS,
    kv_cache_bytes,
    llm_decode_phases,
    llm_prefill_phase,
    llm_workload_graph,
)
from repro.workloads.moe import (
    MoEConfig,
    balanced_routed_tokens,
    moe_workload_graph,
    route_topk,
)
from repro.workloads.registry import (
    WorkloadVariant,
    catalog_entry,
    describe_workload,
    dl_benchmark_suite,
    workload_by_name,
    workload_catalog,
    workload_graph_by_name,
    workload_names,
)

__all__ = [
    "LayerKind",
    "LayerSpec",
    "conv2d_gemm",
    "linear_gemm",
    "attention_gemms",
    "elementwise_cost",
    "Phase",
    "PhaseKind",
    "WorkloadGraph",
    "resnet50_graph",
    "resnet50_workload",
    "RESNET50_LAYERS",
    "bert_graph",
    "bert_workload",
    "encoder_layer_phase",
    "BERT_BASE",
    "BERT_LARGE",
    "gpt3_graph",
    "gpt3_workload",
    "GPT3_CONFIGS",
    "LLAMA_CONFIGS",
    "kv_cache_bytes",
    "llm_decode_phases",
    "llm_prefill_phase",
    "llm_workload_graph",
    "MoEConfig",
    "balanced_routed_tokens",
    "moe_workload_graph",
    "route_topk",
    "WorkloadVariant",
    "catalog_entry",
    "describe_workload",
    "dl_benchmark_suite",
    "workload_by_name",
    "workload_catalog",
    "workload_graph_by_name",
    "workload_names",
]
