"""Declarative golden kernels for the functional fidelity.

Each kernel follows the three-callable idiom of declarative golden scripts
(``generate_inputs`` / ``run_functional`` / ``compute_golden``): inputs are
rebuilt deterministically from the case's seed, the functional fidelity under
test produces one array, an independent NumPy (or plain-Python) model produces
the golden array, and the two are compared element-wise under the case's
``rtol``/``atol``.  Tolerances follow the precision policy in
:data:`PRECISION_TOLERANCES` — FP64 kernels must agree to reassociation noise,
FP32/FP16 kernels to their datapath rounding — and every case is pinned in a
committed JSON file under ``tests/golden/`` (see :mod:`repro.conformance.harness`).

The corpus spans the functional surfaces the repo's bit-identical guarantees
rest on:

* ``gemm`` — :meth:`SystolicArray.compute_tile` GEMMs (square and skewed,
  with and without a C accumulator) across all three :class:`Precision` modes;
* ``tiled-gemm`` — the full two-level MACO tile schedule via
  :meth:`SystolicArray.compute_gemm`, cross-checked bit-exactly against
  :func:`blocked_gemm` in FP64;
* ``im2col-conv`` — the conv lowering used by ``resnet50_graph``:
  :func:`im2col_patches` GEMM versus a direct SAME-padded convolution, with
  the patch matrix shape asserted against :func:`conv2d_gemm`;
* ``moe-topk`` — :func:`route_topk` expert selection and gate weights versus
  a per-token Python reference (including quantised logits that force ties);
* ``wavefront`` — the vectorized systolic emulator versus the plain matmul
  golden, with scalar-emulator bit-identity asserted inside the kernel;
* ``gemm-plus`` — :func:`schedule_gemm_plus` overlap timing versus the
  closed-form model documented in DESIGN.md;
* ``summa-pipeline`` — :func:`summa_pipeline_seconds`'s
  ``max(compute, bcast) + min(compute, bcast) / steps`` closed form versus
  the step-by-step pipeline timeline (prologue broadcast, ``S - 1``
  overlapped steps, epilogue compute) summed independently, with the
  ``lcm`` step count cross-checked against a gcd-based derivation;
* ``autoscale`` — the :class:`~repro.serve.autoscale.Autoscaler` hysteresis
  state machine replayed over synthetic per-window pressure observations
  (a bursty scale-out/drain-merge profile and a steady profile that must
  never scale) versus an independently coded replay of the DESIGN.md
  section 11 rules, emitting the committed-fleet timeline, the per-window
  scale delta and the decision reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Tuple

import numpy as np

from repro.core.mapping import schedule_gemm_plus
from repro.gemm.precision import Precision
from repro.gemm.reference import (
    blocked_gemm,
    conv2d_reference,
    im2col_patches,
    reference_gemm,
)
from repro.gemm.tiling import TileConfig, TwoLevelTiling
from repro.gemm.workloads import GEMMShape
from repro.mmae.systolic_array import (
    SystolicArray,
    SystolicArrayEmulator,
    VectorizedSystolicArrayEmulator,
)
from repro.workloads.layers import conv2d_gemm
from repro.workloads.moe import route_topk

__all__ = [
    "PRECISION_TOLERANCES",
    "GoldenCase",
    "KernelDef",
    "KERNELS",
    "default_corpus",
    "kernel_for",
]

#: ``(rtol, atol)`` per datapath precision.  FP64 kernels compute the same
#: IEEE operations as the golden up to reassociation, so they sit at 1e-12;
#: FP32 inputs round at 2^-24 and FP16 at 2^-11 (with FP32 accumulation), and
#: the tolerances allow the K-fold accumulation of that input rounding.
PRECISION_TOLERANCES: Dict[Precision, Tuple[float, float]] = {
    Precision.FP64: (1e-12, 1e-12),
    Precision.FP32: (1e-5, 1e-5),
    Precision.FP16: (2e-2, 5e-2),
}


class GoldenMismatch(AssertionError):
    """An internal cross-check inside a kernel failed (not a tolerance diff)."""


@dataclass(frozen=True)
class GoldenCase:
    """One declarative golden case: kernel name, seed, parameters, tolerances."""

    name: str
    kernel: str
    seed: int
    params: Tuple[Tuple[str, object], ...]
    rtol: float
    atol: float

    def param(self, key: str) -> object:
        for name, value in self.params:
            if name == key:
                return value
        raise KeyError(f"golden case {self.name!r} has no parameter {key!r}")

    @property
    def precision(self) -> Precision:
        return Precision.from_string(str(self.param("precision")))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kernel": self.kernel,
            "seed": self.seed,
            "params": {key: value for key, value in self.params},
            "rtol": self.rtol,
            "atol": self.atol,
        }

    @classmethod
    def from_dict(cls, record: Mapping) -> "GoldenCase":
        try:
            params = tuple(sorted(dict(record["params"]).items()))
            return cls(
                name=str(record["name"]),
                kernel=str(record["kernel"]),
                seed=int(record["seed"]),
                params=params,
                rtol=float(record["rtol"]),
                atol=float(record["atol"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(f"malformed golden case record: {error}") from error


def _case(
    name: str,
    kernel: str,
    seed: int,
    params: Mapping[str, object],
    rtol: float = None,
    atol: float = None,
) -> GoldenCase:
    """Build a case, defaulting tolerances from the precision policy."""
    precision = Precision.from_string(str(params.get("precision", "fp64")))
    default_rtol, default_atol = PRECISION_TOLERANCES[precision]
    return GoldenCase(
        name=name,
        kernel=kernel,
        seed=seed,
        params=tuple(sorted(params.items())),
        rtol=default_rtol if rtol is None else rtol,
        atol=default_atol if atol is None else atol,
    )


@dataclass(frozen=True)
class KernelDef:
    """One golden kernel: deterministic inputs, functional run, NumPy golden."""

    name: str
    generate_inputs: Callable[[GoldenCase, np.random.Generator], dict]
    run_functional: Callable[[GoldenCase, dict], np.ndarray]
    compute_golden: Callable[[GoldenCase, dict], np.ndarray]


# ------------------------------------------------------------------- gemm
def _gemm_inputs(case: GoldenCase, rng: np.random.Generator) -> dict:
    m, n, k = (int(case.param(key)) for key in ("m", "n", "k"))
    inputs = {
        "a": rng.standard_normal((m, k)),
        "b": rng.standard_normal((k, n)),
    }
    if case.param("accumulate"):
        inputs["c"] = rng.standard_normal((m, n))
    return inputs


def _gemm_functional(case: GoldenCase, inputs: dict) -> np.ndarray:
    result = SystolicArray().compute_tile(
        inputs["a"], inputs["b"], inputs.get("c"), precision=case.precision
    )
    return np.asarray(result.output, dtype=np.float64)


def _gemm_golden(case: GoldenCase, inputs: dict) -> np.ndarray:
    return reference_gemm(inputs["a"], inputs["b"], inputs.get("c"))


# ------------------------------------------------------------- tiled-gemm
def _tiled_gemm_functional(case: GoldenCase, inputs: dict) -> np.ndarray:
    precision = case.precision
    level1 = TileConfig(int(case.param("l1")), int(case.param("l1")))
    level2 = TileConfig(int(case.param("l2")), int(case.param("l2")))
    a, b = inputs["a"], inputs["b"]
    shape = GEMMShape(a.shape[0], b.shape[1], a.shape[1], precision)
    tiling = TwoLevelTiling(shape, level1, level2)
    if not tiling.check_covers_shape():
        raise GoldenMismatch(
            f"{case.name}: two-level tiling does not cover {shape} exactly"
        )
    result = SystolicArray().compute_gemm(
        a, b, precision=precision, level1=level1, level2=level2
    )
    if precision is Precision.FP64:
        # The FP64 schedule performs the same float64 tile matmuls and
        # additions as the plain-Python blocked reference, in the same
        # order, so the two must agree bit for bit — not just in tolerance.
        reference = blocked_gemm(a, b, level1=level1, level2=level2)
        if not np.array_equal(result.output, reference):
            raise GoldenMismatch(
                f"{case.name}: compute_gemm is not bit-identical to blocked_gemm"
            )
    return np.asarray(result.output, dtype=np.float64)


# ------------------------------------------------------------ im2col-conv
def _conv_inputs(case: GoldenCase, rng: np.random.Generator) -> dict:
    batch = int(case.param("batch"))
    in_channels = int(case.param("in_channels"))
    out_channels = int(case.param("out_channels"))
    kernel = int(case.param("kernel"))
    size = int(case.param("input_size"))
    return {
        "images": rng.standard_normal((batch, in_channels, size, size)),
        "weights": rng.standard_normal((out_channels, in_channels, kernel, kernel)),
    }


def _conv_functional(case: GoldenCase, inputs: dict) -> np.ndarray:
    kernel = int(case.param("kernel"))
    stride = int(case.param("stride"))
    images, weights = inputs["images"], inputs["weights"]
    patches = im2col_patches(images, kernel, stride)
    expected = conv2d_gemm(
        images.shape[0], images.shape[1], weights.shape[0], kernel, stride,
        images.shape[2], case.precision,
    )
    if patches.shape != (expected.m, expected.k):
        raise GoldenMismatch(
            f"{case.name}: im2col patches {patches.shape} disagree with "
            f"conv2d_gemm geometry ({expected.m}, {expected.k})"
        )
    w_matrix = weights.reshape(weights.shape[0], -1).T
    result = SystolicArray().compute_tile(patches, w_matrix, precision=case.precision)
    return np.asarray(result.output, dtype=np.float64)


def _conv_golden(case: GoldenCase, inputs: dict) -> np.ndarray:
    return conv2d_reference(inputs["images"], inputs["weights"], int(case.param("stride")))


# --------------------------------------------------------------- moe-topk
def _moe_inputs(case: GoldenCase, rng: np.random.Generator) -> dict:
    tokens = int(case.param("tokens"))
    experts = int(case.param("experts"))
    logits = rng.standard_normal((tokens, experts))
    if case.param("quantize"):
        # Coarse quantisation forces duplicate logits, exercising the
        # lower-expert-index tie-break.
        logits = np.round(logits)
    return {"logits": logits}


def _moe_functional(case: GoldenCase, inputs: dict) -> np.ndarray:
    indices, weights = route_topk(inputs["logits"], int(case.param("top_k")))
    return np.concatenate([indices.astype(np.float64), weights], axis=1)


def _moe_golden(case: GoldenCase, inputs: dict) -> np.ndarray:
    import math

    logits = inputs["logits"]
    top_k = int(case.param("top_k"))
    tokens, experts = logits.shape
    out = np.empty((tokens, 2 * top_k), dtype=np.float64)
    for token in range(tokens):
        row = logits[token]
        chosen = sorted(range(experts), key=lambda e: (-row[e], e))[:top_k]
        gates = [math.exp(float(row[e]) - float(row[chosen[0]])) for e in chosen]
        total = sum(gates)
        out[token, :top_k] = chosen
        out[token, top_k:] = [gate / total for gate in gates]
    return out


# -------------------------------------------------------------- wavefront
def _wavefront_inputs(case: GoldenCase, rng: np.random.Generator) -> dict:
    rows = int(case.param("rows"))
    cols = int(case.param("cols"))
    tr = int(case.param("tr"))
    return {
        "a_block": rng.standard_normal((tr, rows)),
        "b_block": rng.standard_normal((rows, cols)),
    }


def _wavefront_functional(case: GoldenCase, inputs: dict) -> np.ndarray:
    rows = int(case.param("rows"))
    cols = int(case.param("cols"))
    vectorized = VectorizedSystolicArrayEmulator(rows=rows, cols=cols)
    result = vectorized.run_block(inputs["a_block"], inputs["b_block"])
    scalar = SystolicArrayEmulator(rows=rows, cols=cols).run_block(
        inputs["a_block"], inputs["b_block"]
    )
    # The two emulators perform the same IEEE operations in the same cycle
    # order; parity is exact, not approximate (DESIGN.md section 6).
    if not np.array_equal(result.output, scalar.output):
        raise GoldenMismatch(
            f"{case.name}: vectorized emulator diverged from the scalar emulator"
        )
    if result.cycles != scalar.cycles or result.macs != scalar.macs:
        raise GoldenMismatch(
            f"{case.name}: emulator cycle/MAC counters diverged "
            f"({result.cycles}/{result.macs} vs {scalar.cycles}/{scalar.macs})"
        )
    return np.asarray(result.output, dtype=np.float64)


def _wavefront_golden(case: GoldenCase, inputs: dict) -> np.ndarray:
    return reference_gemm(inputs["a_block"], inputs["b_block"])


# -------------------------------------------------------------- gemm-plus
def _gemm_plus_inputs(case: GoldenCase, rng: np.random.Generator) -> dict:
    count = int(case.param("count"))
    return {
        "mmae": rng.uniform(0.01, 2.0, count),
        "cpu": rng.uniform(0.0, 1.0, count),
        "stash": rng.uniform(0.0, 0.5, count),
    }


def _gemm_plus_functional(case: GoldenCase, inputs: dict) -> np.ndarray:
    rows = []
    for mmae, cpu, stash in zip(inputs["mmae"], inputs["cpu"], inputs["stash"]):
        mapped = schedule_gemm_plus(float(mmae), float(cpu), float(stash), True)
        unmapped = schedule_gemm_plus(float(mmae), float(cpu), float(stash), False)
        rows.append([mapped.total_seconds, unmapped.total_seconds])
    return np.asarray(rows, dtype=np.float64)


def _gemm_plus_golden(case: GoldenCase, inputs: dict) -> np.ndarray:
    # The closed-form overlap model of DESIGN.md: with the mapping scheme the
    # hidden CPU tail overlaps the MMAE, the exposed tail and the dependent
    # stash traffic serialise; without it the tail serialises at halved
    # streaming bandwidth and nothing is stashed.
    exposed_fraction = 0.08
    slowdown = 2.0
    mmae, cpu, stash = inputs["mmae"], inputs["cpu"], inputs["stash"]
    hidden = cpu * (1.0 - exposed_fraction)
    exposed = cpu * exposed_fraction
    exposed_stash = np.minimum(stash, 0.10 * mmae + 1e-9)
    mapped = np.maximum(mmae, hidden) + exposed + exposed_stash
    unmapped = mmae + cpu * slowdown
    return np.stack([mapped, unmapped], axis=1)


# ---------------------------------------------------------- summa-pipeline
def _summa_inputs(case: GoldenCase, rng: np.random.Generator) -> dict:
    count = int(case.param("count"))
    compute = rng.uniform(0.01, 2.0, count)
    broadcast = rng.uniform(0.0, 2.0, count)
    # Pin the degenerate edges the closed form must honour exactly: a phase
    # with nothing to broadcast, and the comm-dominated regime.
    broadcast[0] = 0.0
    compute[1] = 0.01
    broadcast[1] = 2.0
    return {"compute": compute, "broadcast": broadcast}


def _summa_functional(case: GoldenCase, inputs: dict) -> np.ndarray:
    import math

    from repro.parallel.summa import summa_pipeline_seconds, summa_steps

    rows = int(case.param("rows"))
    cols = int(case.param("cols"))
    steps = summa_steps(rows, cols)
    # Independent step count: lcm via gcd, not math.lcm.
    if steps != rows * cols // math.gcd(rows, cols):
        raise GoldenMismatch(
            f"{case.name}: summa_steps({rows}, {cols}) = {steps} disagrees with "
            "the gcd-based lcm"
        )
    return np.asarray(
        [
            summa_pipeline_seconds(float(compute), float(broadcast), steps)
            for compute, broadcast in zip(inputs["compute"], inputs["broadcast"])
        ],
        dtype=np.float64,
    )


def _summa_golden(case: GoldenCase, inputs: dict) -> np.ndarray:
    # The pipeline timeline summed term by term: the first broadcast is
    # exposed, steps 2..S overlap the previous step's compute, the last
    # compute step runs with nothing behind it.  Algebraically equal to the
    # closed form max(compute, bcast) + min(compute, bcast) / S.
    import math

    rows = int(case.param("rows"))
    cols = int(case.param("cols"))
    steps = rows * cols // math.gcd(rows, cols)
    compute, broadcast = inputs["compute"], inputs["broadcast"]
    step_compute = compute / steps
    step_broadcast = broadcast / steps
    timeline = (
        step_broadcast
        + (steps - 1) * np.maximum(step_compute, step_broadcast)
        + step_compute
    )
    return np.where(broadcast == 0.0, compute, timeline)


# --------------------------------------------------------------- autoscale
def _autoscale_inputs(case: GoldenCase, rng: np.random.Generator) -> dict:
    windows = int(case.param("windows"))
    profile = str(case.param("profile"))
    quiet = windows // 4
    if profile == "bursty":
        # Quiet warmup, a long overload burst (deep queues plus SLO misses),
        # then an idle tail that forces the controller to drain back down.
        depth = np.concatenate([
            rng.integers(0, 2, quiet),
            rng.integers(10, 40, windows - 2 * quiet),
            np.zeros(quiet, dtype=np.int64),
        ])
        served = rng.integers(1, 5, windows)
        misses = np.zeros(windows, dtype=np.int64)
        burst = slice(quiet, windows - quiet)
        misses[burst] = np.minimum(
            served[burst], rng.integers(0, 5, windows - 2 * quiet))
    elif profile == "steady":
        # Depth pinned inside the hysteresis band for the minimum fleet and
        # perfect attainment: neither streak may ever reach the sustain gate.
        depth = rng.integers(2, 4, windows)
        served = rng.integers(2, 6, windows)
        misses = np.zeros(windows, dtype=np.int64)
    else:
        raise ValueError(f"unknown autoscale profile {profile!r}")
    return {
        "depth": depth.astype(np.int64),
        "served": served.astype(np.int64),
        "misses": misses.astype(np.int64),
    }


#: Reason codes for the autoscale kernel's third output column.
_AUTOSCALE_REASONS = {"queue-pressure": 1.0, "slo-pressure": 2.0, "idle": 3.0}


def _autoscale_functional(case: GoldenCase, inputs: dict) -> np.ndarray:
    from repro.serve.autoscale import AutoscalePolicy, Autoscaler, WindowStats

    policy = AutoscalePolicy(
        min_groups=int(case.param("min_groups")),
        max_groups=int(case.param("max_groups")),
        window_s=1.0,
        sustain_windows=int(case.param("sustain")),
        scale_out_queue_depth=float(case.param("out_depth")),
        scale_out_attainment=float(case.param("attainment")),
        scale_in_queue_depth=float(case.param("in_depth")),
        cooldown_s=float(case.param("cooldown_w")),
        provision_delay_s=0.5,
    )
    scaler = Autoscaler(policy)
    committed = policy.min_groups
    rows = []
    for window, (depth, served, misses) in enumerate(
            zip(inputs["depth"], inputs["served"], inputs["misses"])):
        stats = WindowStats(int(depth), int(served), int(misses))
        decision = scaler.evaluate(float(window + 1), stats, committed, 0)
        delta, code = 0, 0.0
        if decision is not None:
            direction, reason = decision
            delta = 1 if direction == "out" else -1
            code = _AUTOSCALE_REASONS[reason]
            committed += delta
        if not policy.min_groups <= committed <= policy.max_groups:
            raise GoldenMismatch(
                f"{case.name}: committed fleet {committed} escaped "
                f"[{policy.min_groups}, {policy.max_groups}] at window {window}"
            )
        rows.append([float(committed), float(delta), code])
    deltas = [row[1] for row in rows]
    profile = str(case.param("profile"))
    if profile == "steady" and any(deltas):
        raise GoldenMismatch(f"{case.name}: steady profile produced scale events")
    if profile == "bursty" and (1.0 not in deltas or -1.0 not in deltas):
        raise GoldenMismatch(
            f"{case.name}: bursty profile must both scale out and drain back in"
        )
    return np.asarray(rows, dtype=np.float64)


def _autoscale_golden(case: GoldenCase, inputs: dict) -> np.ndarray:
    # An independently coded replay of the DESIGN.md section 11 rules: streaks
    # advance on every window, decisions gate on the sustain count, capacity
    # bounds and the cooldown clock, and any decision resets both.
    min_groups = int(case.param("min_groups"))
    max_groups = int(case.param("max_groups"))
    sustain = int(case.param("sustain"))
    cooldown = float(case.param("cooldown_w"))
    out_depth = float(case.param("out_depth"))
    in_depth = float(case.param("in_depth"))
    target = float(case.param("attainment"))
    committed = min_groups
    out_streak = slo_streak = in_streak = 0
    cooldown_until = -np.inf
    rows = []
    for window, (depth, served, misses) in enumerate(
            zip(inputs["depth"], inputs["served"], inputs["misses"])):
        now = float(window + 1)
        pressured = depth > out_depth * committed
        degraded = served > 0 and (served - misses) / served < target
        if pressured or degraded:
            out_streak += 1
            slo_streak = slo_streak + 1 if degraded else 0
            in_streak = 0
        elif depth <= in_depth * committed:
            in_streak += 1
            out_streak = slo_streak = 0
        else:
            out_streak = slo_streak = in_streak = 0
        delta, code = 0, 0.0
        if now >= cooldown_until:
            if out_streak >= sustain:
                if committed < max_groups:
                    delta = 1
                    code = 2.0 if slo_streak >= sustain else 1.0
            elif in_streak >= sustain and committed > min_groups:
                delta = -1
                code = 3.0
            if delta:
                committed += delta
                out_streak = slo_streak = in_streak = 0
                cooldown_until = now + cooldown
        rows.append([float(committed), float(delta), code])
    return np.asarray(rows, dtype=np.float64)


KERNELS: Dict[str, KernelDef] = {
    kernel.name: kernel
    for kernel in (
        KernelDef("gemm", _gemm_inputs, _gemm_functional, _gemm_golden),
        KernelDef("tiled-gemm", _gemm_inputs, _tiled_gemm_functional, _gemm_golden),
        KernelDef("im2col-conv", _conv_inputs, _conv_functional, _conv_golden),
        KernelDef("moe-topk", _moe_inputs, _moe_functional, _moe_golden),
        KernelDef("wavefront", _wavefront_inputs, _wavefront_functional, _wavefront_golden),
        KernelDef("gemm-plus", _gemm_plus_inputs, _gemm_plus_functional, _gemm_plus_golden),
        KernelDef("summa-pipeline", _summa_inputs, _summa_functional, _summa_golden),
        KernelDef("autoscale", _autoscale_inputs, _autoscale_functional, _autoscale_golden),
    )
}


def kernel_for(case: GoldenCase) -> KernelDef:
    """The kernel definition a case executes under, or raise with options."""
    try:
        return KERNELS[case.kernel]
    except KeyError:
        raise ValueError(
            f"golden case {case.name!r} names unknown kernel {case.kernel!r}; "
            f"options: {sorted(KERNELS)}"
        ) from None


def default_corpus() -> List[GoldenCase]:
    """The committed golden corpus: ≥ 12 cases spanning every precision."""
    cases: List[GoldenCase] = []
    for precision in Precision:
        tag = precision.value
        cases.append(_case(
            f"gemm-square-{tag}", "gemm", 101,
            {"m": 96, "n": 96, "k": 96, "precision": tag, "accumulate": False},
        ))
        cases.append(_case(
            f"gemm-skewed-{tag}", "gemm", 211,
            {"m": 160, "n": 24, "k": 72, "precision": tag, "accumulate": True},
        ))
        cases.append(_case(
            f"tiled-gemm-{tag}", "tiled-gemm", 307,
            {"m": 72, "n": 68, "k": 80, "l1": 32, "l2": 8,
             "precision": tag, "accumulate": False},
        ))
        cases.append(_case(
            f"im2col-conv-{tag}", "im2col-conv", 401,
            {"batch": 2, "in_channels": 5, "out_channels": 8, "kernel": 3,
             "stride": 2, "input_size": 13, "precision": tag},
        ))
    cases.append(_case(
        "moe-topk-8x2", "moe-topk", 503,
        {"tokens": 96, "experts": 8, "top_k": 2, "quantize": False,
         "precision": "fp64"},
    ))
    cases.append(_case(
        "moe-topk-ties-16x4", "moe-topk", 509,
        {"tokens": 64, "experts": 16, "top_k": 4, "quantize": True,
         "precision": "fp64"},
    ))
    cases.append(_case(
        "wavefront-4x4", "wavefront", 601,
        {"rows": 4, "cols": 4, "tr": 24, "precision": "fp64"},
    ))
    cases.append(_case(
        "wavefront-6x3", "wavefront", 607,
        {"rows": 6, "cols": 3, "tr": 17, "precision": "fp64"},
    ))
    cases.append(_case(
        "gemm-plus-overlap", "gemm-plus", 701,
        {"count": 64, "precision": "fp64"},
    ))
    cases.append(_case(
        "summa-pipeline-2x4", "summa-pipeline", 809,
        {"rows": 2, "cols": 4, "count": 64, "precision": "fp64"},
    ))
    cases.append(_case(
        "summa-pipeline-3x3", "summa-pipeline", 811,
        {"rows": 3, "cols": 3, "count": 48, "precision": "fp64"},
    ))
    cases.append(_case(
        "autoscale-bursty", "autoscale", 907,
        {"windows": 48, "min_groups": 1, "max_groups": 4, "sustain": 2,
         "cooldown_w": 3.0, "out_depth": 4.0, "in_depth": 0.5,
         "attainment": 0.9, "profile": "bursty", "precision": "fp64"},
    ))
    cases.append(_case(
        "autoscale-steady", "autoscale", 911,
        {"windows": 48, "min_groups": 2, "max_groups": 4, "sustain": 2,
         "cooldown_w": 2.0, "out_depth": 4.0, "in_depth": 0.5,
         "attainment": 0.9, "profile": "steady", "precision": "fp64"},
    ))
    return cases
