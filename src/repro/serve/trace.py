"""Request traces for the multi-tenant serving simulator.

A serving scenario starts from a :class:`RequestTrace`: a time-ordered list of
:class:`Request` arrivals, each tagged with a tenant and a model from the
workload registry (:mod:`repro.workloads.registry`).  Traces come from three
generators —

* :func:`poisson_trace` — independent Poisson arrivals per tenant (the
  classic open-loop serving assumption);
* :func:`bursty_trace` — an on/off modulated Poisson process (Lewis–Shedler
  thinning) that concentrates arrivals into periodic bursts while preserving
  the mean rate;
* :func:`replay_trace` — arrivals replayed from a JSON file or records, for
  reproducing production traces.

All generators are seeded and fully deterministic: every tenant draws from a
private ``random.Random`` seeded with a string (string seeding hashes through
SHA-512, so it is stable across processes and ``PYTHONHASHSEED`` values).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.gemm.precision import Precision
from repro.workloads.registry import workload_names

__all__ = [
    "Request",
    "TenantSpec",
    "RequestTrace",
    "default_tenants",
    "llm_tenants",
    "poisson_trace",
    "bursty_trace",
    "replay_trace",
]


@dataclass(frozen=True)
class Request:
    """One inference request: a tenant asks for one model invocation.

    ``workload`` names an entry of the workload registry (``resnet50``,
    ``bert``, ``gpt3``); ``arrival_s`` is the arrival time in seconds from
    the start of the trace.  ``priority`` is the scheduling tier (larger is
    more important; the priority/slo policies serve higher tiers first and
    preempt lower ones), and ``ttft_slo_s``/``tpot_slo_s`` are the tenant's
    latency deadlines — time to first token and time per output token —
    against which the report scores SLO attainment and goodput (``None``
    means the request carries no deadline and always counts as met).
    """

    request_id: int
    tenant: str
    workload: str
    arrival_s: float
    precision: Precision = Precision.FP32
    priority: int = 0
    ttft_slo_s: Optional[float] = None
    tpot_slo_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError(f"arrival time cannot be negative, got {self.arrival_s}")
        if self.ttft_slo_s is not None and self.ttft_slo_s <= 0:
            raise ValueError(f"TTFT SLO must be positive, got {self.ttft_slo_s}")
        if self.tpot_slo_s is not None and self.tpot_slo_s <= 0:
            raise ValueError(f"TPOT SLO must be positive, got {self.tpot_slo_s}")


@dataclass(frozen=True)
class TenantSpec:
    """A tenant's traffic description: mean arrival rate and workload mix.

    ``mix`` is a tuple of ``(workload name, weight)`` pairs; weights are
    normalised when sampling, so they only need to be positive.
    ``priority`` and the TTFT/TPOT SLO targets are stamped onto every request
    the tenant generates (see :class:`Request`): priority tiers order
    admission and preemption under the priority/slo policies, and the
    deadlines feed the report's SLO-attainment and goodput figures.
    """

    name: str
    rate_rps: float = 8.0
    mix: Tuple[Tuple[str, float], ...] = (("bert", 1.0),)
    priority: int = 0
    ttft_slo_s: Optional[float] = None
    tpot_slo_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError(f"tenant {self.name!r}: rate must be positive, got {self.rate_rps}")
        if not self.mix:
            raise ValueError(f"tenant {self.name!r}: workload mix cannot be empty")
        if any(weight <= 0 for _, weight in self.mix):
            raise ValueError(f"tenant {self.name!r}: mix weights must be positive")
        if self.ttft_slo_s is not None and self.ttft_slo_s <= 0:
            raise ValueError(f"tenant {self.name!r}: TTFT SLO must be positive")
        if self.tpot_slo_s is not None and self.tpot_slo_s <= 0:
            raise ValueError(f"tenant {self.name!r}: TPOT SLO must be positive")

    def with_rate(self, rate_rps: float) -> "TenantSpec":
        """Copy of this spec with a different mean arrival rate."""
        return replace(self, rate_rps=rate_rps)

    def with_slo(
        self,
        ttft_slo_s: Optional[float] = None,
        tpot_slo_s: Optional[float] = None,
        priority: Optional[int] = None,
    ) -> "TenantSpec":
        """Copy of this spec with SLO deadlines (and optionally a priority tier)."""
        return replace(
            self,
            ttft_slo_s=ttft_slo_s,
            tpot_slo_s=tpot_slo_s,
            priority=self.priority if priority is None else priority,
        )

    def pick_workload(self, rng: random.Random) -> str:
        """Draw one workload name from the (normalised) mix."""
        total = sum(weight for _, weight in self.mix)
        draw = rng.random() * total
        cumulative = 0.0
        for name, weight in self.mix:
            cumulative += weight
            if draw < cumulative:
                return name
        return self.mix[-1][0]

    def mean_mix_weights(self) -> List[Tuple[str, float]]:
        """The mix with weights normalised to sum to 1."""
        total = sum(weight for _, weight in self.mix)
        return [(name, weight / total) for name, weight in self.mix]


@dataclass
class RequestTrace:
    """A time-ordered request arrival trace for one serving scenario."""

    name: str
    requests: List[Request] = field(default_factory=list)
    duration_s: float = 0.0

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise ValueError("trace duration cannot be negative")

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    @property
    def tenants(self) -> List[str]:
        """Tenant names appearing in the trace, sorted."""
        return sorted({request.tenant for request in self.requests})

    @property
    def workloads(self) -> List[str]:
        """Distinct workload names appearing in the trace, sorted."""
        return sorted({request.workload for request in self.requests})

    def to_records(self) -> List[dict]:
        """JSON-able arrival records (the :func:`replay_trace` input format).

        Priority and SLO fields are emitted only when set, so traces recorded
        before those fields existed keep their byte-identical JSON form.
        """
        records = []
        for request in self.requests:
            record = {
                "tenant": request.tenant,
                "workload": request.workload,
                "arrival_s": request.arrival_s,
                "precision": request.precision.name.lower(),
            }
            if request.priority != 0:
                record["priority"] = request.priority
            if request.ttft_slo_s is not None:
                record["ttft_slo_s"] = request.ttft_slo_s
            if request.tpot_slo_s is not None:
                record["tpot_slo_s"] = request.tpot_slo_s
            records.append(record)
        return records

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as a JSON record list that :func:`replay_trace` reads back."""
        Path(path).write_text(json.dumps(self.to_records(), indent=2) + "\n")


#: Per-request scheduling metadata carried through trace generation:
#: ``(priority, ttft_slo_s, tpot_slo_s)``.
_SLOFields = Tuple[int, Optional[float], Optional[float]]

_NO_SLO: _SLOFields = (0, None, None)


def _slo_fields(spec: TenantSpec) -> _SLOFields:
    return (spec.priority, spec.ttft_slo_s, spec.tpot_slo_s)


def _finalize(name: str, pending: List[Tuple[float, str, int, str, Precision, _SLOFields]],
              duration_s: float) -> RequestTrace:
    """Sort merged per-tenant arrivals and assign stable request ids.

    The sort key ``(arrival, tenant, per-tenant sequence)`` breaks ties
    deterministically, so the same inputs always produce the same ids.
    """
    pending.sort(key=lambda item: (item[0], item[1], item[2]))
    requests = [
        Request(request_id=index, tenant=tenant, workload=workload,
                arrival_s=arrival, precision=precision,
                priority=slo[0], ttft_slo_s=slo[1], tpot_slo_s=slo[2])
        for index, (arrival, tenant, _seq, workload, precision, slo) in enumerate(pending)
    ]
    return RequestTrace(name=name, requests=requests, duration_s=duration_s)


def default_tenants(count: int, rate_rps: float = 8.0) -> List[TenantSpec]:
    """``count`` tenants with rotating workload mixes over the registry.

    Tenant ``i`` leans 70% on registry model ``i mod len(registry)`` with the
    remaining 30% spread over the other models, so multi-tenant traces mix
    models without any randomness in the specs themselves.
    """
    if count < 1:
        raise ValueError(f"tenant count must be >= 1, got {count}")
    names = workload_names()
    specs = []
    for index in range(count):
        dominant = names[index % len(names)]
        others = [name for name in names if name != dominant]
        mix = [(dominant, 0.7)] + [(name, 0.3 / len(others)) for name in others]
        specs.append(TenantSpec(name=f"tenant{index}", rate_rps=rate_rps, mix=tuple(mix)))
    return specs


def llm_tenants(count: int, rate_rps: float = 8.0, variant: str = "llama-7b") -> List[TenantSpec]:
    """``count`` LLM tenants alternating prefill-heavy and decode-heavy mixes.

    Even-indexed tenants lean 80% on the prompt-ingest phase graph
    (``variant@prefill``) and odd-indexed tenants 80% on token generation
    (``variant@decode``), so a multi-tenant trace exercises both ends of the
    prefill/decode spectrum against the same fleet.  The registry names are
    resolved through :func:`repro.workloads.workload_graph_by_name`, so any
    catalog LLM variant works.
    """
    if count < 1:
        raise ValueError(f"tenant count must be >= 1, got {count}")
    # ``variant`` may already carry an @spec (e.g. "llama-7b@layers=2"); the
    # phase tag then joins the existing parameter list instead.  It must not
    # already select phases, though — the tenants are defined by adding the
    # prefill/decode split on top.
    spec = variant.partition("@")[2]
    # The registry resolves names case-insensitively, so normalize before
    # matching phase tags.
    tokens = [token.strip().lower() for token in spec.split(",") if token.strip()]
    if any(token in ("prefill", "decode") or token.startswith("phases=") for token in tokens):
        raise ValueError(
            f"variant {variant!r} already selects phases; pass the base variant "
            f"(e.g. 'llama-7b' or 'llama-7b@layers=2') and llm_tenants will add "
            f"the prefill/decode split per tenant")
    separator = "," if "@" in variant else "@"
    prefill = f"{variant}{separator}prefill"
    decode = f"{variant}{separator}decode"
    specs = []
    for index in range(count):
        if index % 2 == 0:
            name, mix = f"tenant{index}-prefill", ((prefill, 0.8), (decode, 0.2))
        else:
            name, mix = f"tenant{index}-decode", ((decode, 0.8), (prefill, 0.2))
        specs.append(TenantSpec(name=name, rate_rps=rate_rps, mix=mix))
    return specs


def poisson_trace(
    tenants: Sequence[TenantSpec],
    duration_s: float,
    seed: int = 0,
    precision: Precision = Precision.FP32,
) -> RequestTrace:
    """Independent Poisson arrivals per tenant over ``duration_s`` seconds."""
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    pending: List[Tuple[float, str, int, str, Precision, _SLOFields]] = []
    for spec in tenants:
        rng = random.Random(f"{seed}/poisson/{spec.name}")
        slo = _slo_fields(spec)
        clock, sequence = 0.0, 0
        while True:
            clock += rng.expovariate(spec.rate_rps)
            if clock >= duration_s:
                break
            pending.append((clock, spec.name, sequence, spec.pick_workload(rng), precision, slo))
            sequence += 1
    return _finalize(f"poisson-seed{seed}", pending, duration_s)


def bursty_trace(
    tenants: Sequence[TenantSpec],
    duration_s: float,
    seed: int = 0,
    precision: Precision = Precision.FP32,
    burst_factor: float = 8.0,
    burst_fraction: float = 0.2,
    cycle_s: float = 0.25,
) -> RequestTrace:
    """On/off modulated Poisson arrivals: periodic bursts, same mean rate.

    Each tenant's rate alternates between an elevated burst rate during the
    first ``burst_fraction`` of every ``cycle_s``-second cycle and a reduced
    off rate, chosen so the time-averaged rate equals ``rate_rps`` exactly:
    when ``burst_factor * burst_fraction >= 1`` all arrivals fall inside the
    bursts (burst rate ``rate / burst_fraction``), otherwise the burst rate is
    ``rate * burst_factor`` and the remainder spreads over the off phase.
    Sampling uses Lewis–Shedler thinning, which stays exact for any piecewise
    rate function and deterministic under the seeded generator.
    """
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    if burst_factor < 1:
        raise ValueError(f"burst factor must be >= 1, got {burst_factor}")
    if not 0 < burst_fraction < 1:
        raise ValueError(f"burst fraction must be in (0, 1), got {burst_fraction}")
    if cycle_s <= 0:
        raise ValueError(f"cycle length must be positive, got {cycle_s}")
    pending: List[Tuple[float, str, int, str, Precision, _SLOFields]] = []
    for spec in tenants:
        rng = random.Random(f"{seed}/bursty/{spec.name}")
        slo = _slo_fields(spec)
        if burst_factor * burst_fraction >= 1.0:
            on_rate = spec.rate_rps / burst_fraction
            off_rate = 0.0
        else:
            on_rate = spec.rate_rps * burst_factor
            off_rate = spec.rate_rps * (1.0 - burst_factor * burst_fraction) / (1.0 - burst_fraction)
        clock, sequence = 0.0, 0
        while True:
            clock += rng.expovariate(on_rate)
            if clock >= duration_s:
                break
            in_burst = (clock % cycle_s) / cycle_s < burst_fraction
            rate_now = on_rate if in_burst else off_rate
            if rng.random() * on_rate < rate_now:  # thinning acceptance
                pending.append((clock, spec.name, sequence, spec.pick_workload(rng),
                                precision, slo))
                sequence += 1
    return _finalize(f"bursty-seed{seed}", pending, duration_s)


def replay_trace(source: Union[str, Path, Iterable[dict]], name: str = "replay") -> RequestTrace:
    """Rebuild a trace from a JSON file path or an iterable of arrival records.

    Each record needs ``tenant``, ``workload`` and ``arrival_s``;
    ``precision``, ``priority`` and the ``ttft_slo_s``/``tpot_slo_s``
    deadlines are optional (default fp32, priority 0, no deadlines), so
    traces recorded before those fields existed replay unchanged.  Records
    are re-sorted and re-numbered, so a hand-edited file stays valid.
    """
    if isinstance(source, (str, Path)):
        records = json.loads(Path(source).read_text())
        name = Path(source).stem
    else:
        records = list(source)
    if not isinstance(records, list):
        raise ValueError("replay source must be a JSON list of arrival records")
    pending: List[Tuple[float, str, int, str, Precision, _SLOFields]] = []
    for sequence, record in enumerate(records):
        try:
            arrival = float(record["arrival_s"])
            tenant = str(record["tenant"])
            workload = str(record["workload"])
            priority = int(record.get("priority", 0))
            ttft_slo = record.get("ttft_slo_s")
            tpot_slo = record.get("tpot_slo_s")
            slo = (priority,
                   None if ttft_slo is None else float(ttft_slo),
                   None if tpot_slo is None else float(tpot_slo))
        except (KeyError, TypeError) as error:
            raise ValueError(f"replay record {sequence} is malformed: {record!r}") from error
        precision = Precision.from_string(record.get("precision", "fp32"))
        pending.append((arrival, tenant, sequence, workload, precision, slo))
    duration = max((item[0] for item in pending), default=0.0)
    return _finalize(name, pending, duration)
