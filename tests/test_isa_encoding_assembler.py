"""Tests for the MPAIS binary encoding and the assembler."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.assembler import AssemblyError, assemble, assemble_program
from repro.isa.encoding import (
    EncodingError,
    MPAIS_OPCODE_SPACE,
    decode_instruction,
    encode_instruction,
    is_mpais_word,
)
from repro.isa.instructions import Instruction, Opcode


class TestEncoding:
    def test_word_is_32_bit(self):
        word = encode_instruction(Instruction(Opcode.MA_CFG, 1, 2))
        assert 0 <= word < (1 << 32)

    def test_top_bits_are_mpais_space(self):
        word = encode_instruction(Instruction(Opcode.MA_MOVE, 3, 4))
        assert word >> 22 == MPAIS_OPCODE_SPACE

    def test_roundtrip_all_opcodes(self):
        for opcode in Opcode:
            instruction = Instruction(opcode, rd=5, rn=9)
            assert decode_instruction(encode_instruction(instruction)) == instruction

    @given(
        opcode=st.sampled_from(list(Opcode)),
        rd=st.integers(0, 31),
        rn=st.integers(0, 31),
    )
    def test_roundtrip_property(self, opcode, rd, rn):
        instruction = Instruction(opcode, rd, rn)
        assert decode_instruction(encode_instruction(instruction)) == instruction

    def test_distinct_instructions_encode_distinctly(self):
        words = {
            encode_instruction(Instruction(opcode, rd, rn))
            for opcode in Opcode for rd in (0, 7) for rn in (1, 30)
        }
        assert len(words) == len(Opcode) * 4

    def test_non_mpais_word_rejected(self):
        with pytest.raises(EncodingError):
            decode_instruction(0x00000000)

    def test_reserved_field_must_be_zero(self):
        word = encode_instruction(Instruction(Opcode.MA_CFG, 1, 2)) | (1 << 10)
        with pytest.raises(EncodingError):
            decode_instruction(word)

    def test_unknown_funct_rejected(self):
        word = (MPAIS_OPCODE_SPACE << 22) | (0b111111 << 16)
        with pytest.raises(EncodingError):
            decode_instruction(word)

    def test_is_mpais_word(self):
        assert is_mpais_word(encode_instruction(Instruction(Opcode.MA_READ, 0, 1)))
        assert not is_mpais_word(0xD503201F)  # an AArch64 NOP


class TestAssembler:
    def test_simple_instruction(self):
        instruction = assemble("MA_CFG X1, X2")
        assert instruction == Instruction(Opcode.MA_CFG, 1, 2)

    def test_lower_case_and_extra_spaces(self):
        assert assemble("  ma_read   x4 ,  x1 ") == Instruction(Opcode.MA_READ, 4, 1)

    def test_ma_clear_single_operand(self):
        instruction = assemble("MA_CLEAR X3")
        assert instruction.opcode is Opcode.MA_CLEAR
        assert instruction.rn == 3
        assert instruction.rd == 31

    def test_xzr_register(self):
        assert assemble("MA_READ XZR, X1").rd == 31

    def test_comments_ignored(self):
        assert assemble("MA_CFG X1, X2 ; configure the GEMM").opcode is Opcode.MA_CFG

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble("MA_BOGUS X1, X2")

    def test_bad_register(self):
        with pytest.raises(AssemblyError):
            assemble("MA_CFG X1, X99")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError):
            assemble("MA_CFG X1")
        with pytest.raises(AssemblyError):
            assemble("MA_CLEAR X1, X2")

    def test_program_assembly_skips_blank_and_comment_lines(self):
        program = assemble_program(
            """
            ; configure and poll a GEMM task
            MA_CFG X1, X2
            # poll
            MA_READ X3, X1
            MA_STATE X4, X1
            """
        )
        assert len(program) == 3
        assert [i.opcode for i in program] == [Opcode.MA_CFG, Opcode.MA_READ, Opcode.MA_STATE]

    def test_program_machine_words_decode_back(self):
        program = assemble_program("MA_CFG X1, X2\nMA_CLEAR X1")
        decoded = [decode_instruction(word) for word in program.machine_words()]
        assert decoded == program.instructions

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblyError) as excinfo:
            assemble_program("MA_CFG X1, X2\nMA_WRONG X1, X2")
        assert excinfo.value.line_number == 2

    def test_listing_contains_hex_words(self):
        program = assemble_program("MA_CFG X1, X2")
        assert "0x" in program.listing()
        assert "MA_CFG" in program.listing()
