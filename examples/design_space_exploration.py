#!/usr/bin/env python
"""Design-space exploration: what-if studies around the published MACO design.

Sweeps the systolic-array size, scratchpad capacity and node count around the
paper's configuration, evaluates every candidate on an HPL-style GEMM ladder
with the same cycle-approximate model used for the paper's figures, and
reports the throughput/efficiency/perf-per-watt ranking together with the
Pareto front and the roofline placement of the chosen workload.
"""

from repro.analysis import EnergyModel, format_gflops, format_percent, place_gemm, render_table
from repro.core import DesignPoint, DesignSpaceExplorer, MACOSystem, maco_default_config, pareto_front
from repro.gemm import GEMMShape, Precision, hpl_like_workloads


def main() -> None:
    explorer = DesignSpaceExplorer()
    workload = hpl_like_workloads(max_size=4096, step=1024)
    points = DesignSpaceExplorer.grid(
        sa_dims=(2, 4, 8),
        buffer_kbs=(32, 64, 128),
        node_counts=(8, 16),
    )
    print(f"Evaluating {len(points)} design points on {workload.name} "
          f"({workload.gemm_flops / 1e9:.0f} GFLOP of GEMMs)...")
    results = explorer.explore(points, workload, objective="gflops")

    rows = []
    for result in results[:10]:
        rows.append([
            result.point.name,
            format_gflops(result.gflops),
            format_percent(result.efficiency),
            f"{result.gflops_per_mm2:.1f}",
            f"{result.gflops_per_watt:.1f}",
        ])
    print(render_table(
        ["design point", "throughput", "efficiency", "GFLOPS/mm2", "GFLOPS/W"],
        rows, title="Top-10 design points by throughput",
    ))

    front = pareto_front(results)
    print("\nPareto-optimal points (throughput vs GFLOPS/W):")
    for result in sorted(front, key=lambda r: -r.gflops):
        print(f"  {result.point.name:24s} {format_gflops(result.gflops):>14s}  "
              f"{result.gflops_per_watt:.1f} GFLOPS/W")

    paper_point = DesignPoint(name="paper-4x4-64k-16n", sa_rows=4, sa_cols=4, buffer_kb=64, num_nodes=16)
    paper_result = explorer.evaluate(paper_point, workload)
    print(f"\nThe paper's design point: {format_gflops(paper_result.gflops)} at "
          f"{format_percent(paper_result.efficiency)} efficiency, "
          f"{paper_result.gflops_per_watt:.1f} GFLOPS/W")

    # Roofline placement of the workload's largest GEMM at full node count.
    shape = GEMMShape(4096, 4096, 4096, Precision.FP64)
    for nodes in (1, 16):
        point = place_gemm(shape, active_nodes=nodes)
        bound = "compute-bound" if point.compute_bound else "memory-bound"
        print(f"Roofline @ {nodes:2d} active nodes: intensity {point.intensity:.1f} FLOP/B, "
              f"attainable {format_gflops(point.attainable_gflops)} per node ({bound})")

    # Energy to solution for the paper's configuration on the same workload.
    system = MACOSystem(maco_default_config(num_nodes=16))
    run = system.run_workload(workload, num_nodes=16)
    energy = EnergyModel(num_nodes=16).for_workload(run)
    print(f"\nEnergy to solution (16 nodes): {energy.total_joules:.1f} J, "
          f"average power {energy.average_power_w:.1f} W, "
          f"{energy.gflops_per_watt:.1f} GFLOPS/W")


if __name__ == "__main__":
    main()
