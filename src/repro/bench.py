"""Benchmark harness for the functional fast path (``repro.cli bench``).

The functional execution path — page prediction, mATLB/MMU translation and the
wavefront emulator — ships with both a scalar reference implementation and a
vectorized fast path that must be bit-identical to it.  This module times the
two against each other on a BERT-sized layer and writes the measurements to
``BENCH_functional.json``, establishing the repo's performance trajectory:

* ``page_enumeration`` — :meth:`PageTablePredictor.tile_page_vaddrs` (template
  memo + ``arange``/``unique`` arithmetic) vs the scalar per-row walk;
* ``tile_translation`` — :meth:`AcceleratorDataEngine.translate_tile_batch`
  (enumeration + batched prewalk + batched lookup/demand) vs the scalar
  per-page loop, with and without predictive translation;
* ``emulator`` — :class:`VectorizedSystolicArrayEmulator` vs the per-PE
  scalar emulator;
* ``functional_gemm`` — end-to-end functional GEMM throughput through the
  controller (batch path), recorded for trend tracking;
* ``serve_throughput`` — requests simulated per wall-clock second by the
  serving event loop (request-level and step-level continuous batching) on a
  seeded multi-tenant LLM trace, with the service-time estimation pre-warmed
  so the number isolates the discrete-event loop itself;
* ``serve_scale`` — the array serve engine vs the scalar reference on a
  100k-request (quick) or million-request (full) trace, timing trace
  generation separately and recording end-to-end ``requests_per_s`` at
  scale, with the two engines' reports compared byte for byte.

Every comparative benchmark re-verifies scalar/vector parity on the timed runs
(identical stats and outputs) and reports it in the JSON, so a bench report
doubles as a correctness witness.  ``check_regression`` compares a fresh
report against a committed baseline and flags speedups that regressed by more
than the allowed factor; CI runs it via ``repro.cli bench --baseline``.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.cpu.mmu import MMU
from repro.cpu.process import ProcessManager
from repro.gemm.precision import Precision
from repro.isa.instructions import GEMMDescriptor
from repro.mem.hostmem import HostMemory
from repro.mmae.controller import AcceleratorController
from repro.mmae.data_engine import AcceleratorDataEngine
from repro.mmae.matlb import MATLB, MatrixLayout, PageTablePredictor
from repro.mmae.systolic_array import SystolicArrayEmulator, VectorizedSystolicArrayEmulator

#: Report schema version written to BENCH_functional.json.
SCHEMA_VERSION = 1

#: BERT-large-shaped layer used for the translation benchmarks: a batch of
#: 8 x 384 tokens against the hidden dimension (A operand of the first MLP
#: GEMM), FP32.  One matrix row is exactly one 4 KB page, the Fig. 4 regime
#: the mATLB targets.
BERT_TOKENS = 3072
BERT_HIDDEN = 1024
BERT_ELEMENT_BYTES = 4


def _best_of(repeat: int, fn: Callable[[], float]) -> float:
    """Run ``fn`` (which returns elapsed seconds) ``repeat`` times; keep the best."""
    return min(fn() for _ in range(max(1, repeat)))


def _bert_layout_and_tiles(quick: bool) -> Tuple[ProcessManager, int, MatrixLayout, List[Tuple[int, int, int, int]]]:
    """The A-operand layout and the controller-ordered tile stream for one layer.

    The stream mirrors ``_compute_gemm_functional``: level-2 tiles iterate
    (row, col, k) with k innermost, so the A tile of a fixed (row, k) pair is
    re-requested for every column block — the reuse pattern the mATLB's
    steady state serves.
    """
    manager = ProcessManager()
    process = manager.create_process("bench")
    base = process.address_space.allocate_region(
        "A", BERT_TOKENS * BERT_HIDDEN * BERT_ELEMENT_BYTES
    )
    layout = MatrixLayout(base, BERT_TOKENS, BERT_HIDDEN, BERT_HIDDEN, BERT_ELEMENT_BYTES)
    row_extent = 256 if quick else 1024
    tiles = [
        (row, 64, k, 64)
        for row in range(0, row_extent, 64)
        for _col in range(0, 1024, 64)
        for k in range(0, 1024, 64)
    ]
    return manager, process.asid, layout, tiles


def _fresh_translation_stack(manager: ProcessManager) -> Tuple[MMU, AcceleratorDataEngine]:
    mmu = MMU()
    mmu.register_page_table(manager.current.address_space.page_table)
    return mmu, AcceleratorDataEngine(matlb=MATLB(entries=64))


def _translation_state(mmu: MMU, ade: AcceleratorDataEngine):
    matlb = ade.matlb
    return (
        vars(matlb.stats).copy(),
        list(matlb._entries.items()),
        vars(mmu.stats).copy(),
        vars(mmu.dtlb.l1.stats).copy(),
        vars(mmu.dtlb.l2.stats).copy(),
        list(mmu.dtlb.l1._entries.items()),
        list(mmu.dtlb.l2._entries.items()),
        mmu.walker.walks_performed,
        mmu.walker.total_walk_cycles,
        ade.translation_stall_cycles,
        ade.demand_translations,
    )


def bench_page_enumeration(quick: bool, repeat: int) -> Dict[str, object]:
    """Scalar vs vectorized page enumeration over the BERT tile stream."""
    _, _, layout, tiles = _bert_layout_and_tiles(quick)

    def scalar_run() -> float:
        predictor = PageTablePredictor()
        start = time.perf_counter()
        for row, rows, col, cols in tiles:
            predictor.tile_page_addresses_scalar(layout, row, rows, col, cols)
        return time.perf_counter() - start

    def vector_run() -> float:
        predictor = PageTablePredictor()
        start = time.perf_counter()
        for row, rows, col, cols in tiles:
            predictor.tile_page_vaddrs(layout, row, rows, col, cols)
        return time.perf_counter() - start

    reference = PageTablePredictor()
    vectorized = PageTablePredictor()
    parity = all(
        reference.tile_page_addresses_scalar(layout, row, rows, col, cols)
        == vectorized.tile_page_vaddrs(layout, row, rows, col, cols).tolist()
        for row, rows, col, cols in tiles[:: max(1, len(tiles) // 64)]
    )
    scalar_s = _best_of(repeat, scalar_run)
    vector_s = _best_of(repeat, vector_run)
    return {
        "scalar_s": scalar_s,
        "vectorized_s": vector_s,
        "speedup": scalar_s / vector_s,
        "calls": len(tiles),
        "parity": parity,
    }


def bench_tile_translation(quick: bool, repeat: int, prediction: bool) -> Dict[str, object]:
    """Scalar vs batched tile translation (enumeration + prewalk + lookup/demand)."""
    manager, asid, layout, tiles = _bert_layout_and_tiles(quick)

    def run(batched: bool) -> Tuple[float, MMU, AcceleratorDataEngine]:
        mmu, ade = _fresh_translation_stack(manager)
        translate = ade.translate_tile_batch if batched else ade.translate_tile
        start = time.perf_counter()
        for row, rows, k, depth in tiles:
            translate(mmu, asid, layout, (row, rows), (k, depth), prediction)
        return time.perf_counter() - start, mmu, ade

    scalar_s, scalar_mmu, scalar_ade = run(batched=False)
    vector_s, vector_mmu, vector_ade = run(batched=True)
    parity = _translation_state(scalar_mmu, scalar_ade) == _translation_state(vector_mmu, vector_ade)
    scalar_s = min(scalar_s, _best_of(repeat - 1, lambda: run(batched=False)[0])) if repeat > 1 else scalar_s
    vector_s = min(vector_s, _best_of(repeat - 1, lambda: run(batched=True)[0])) if repeat > 1 else vector_s
    return {
        "scalar_s": scalar_s,
        "vectorized_s": vector_s,
        "speedup": scalar_s / vector_s,
        "calls": len(tiles),
        "prediction": prediction,
        "parity": parity,
    }


def bench_emulator(quick: bool, repeat: int) -> Dict[str, object]:
    """Scalar vs vectorized wavefront emulation of one stationary block."""
    rows = cols = 4
    tr = 192 if quick else 512
    rng = np.random.default_rng(2024)
    a_block = rng.standard_normal((tr, rows))
    b_block = rng.standard_normal((rows, cols))

    scalar = SystolicArrayEmulator(rows=rows, cols=cols)
    vectorized = VectorizedSystolicArrayEmulator(rows=rows, cols=cols)
    scalar_result = scalar.run_block(a_block, b_block)
    vector_result = vectorized.run_block(a_block, b_block)
    parity = (
        np.array_equal(scalar_result.output, vector_result.output)
        and scalar_result.cycles == vector_result.cycles
        and scalar_result.macs == vector_result.macs
    )

    def scalar_run() -> float:
        start = time.perf_counter()
        scalar.run_block(a_block, b_block)
        return time.perf_counter() - start

    def vector_run() -> float:
        start = time.perf_counter()
        vectorized.run_block(a_block, b_block)
        return time.perf_counter() - start

    scalar_s = _best_of(repeat, scalar_run)
    vector_s = _best_of(repeat, vector_run)
    return {
        "scalar_s": scalar_s,
        "vectorized_s": vector_s,
        "speedup": scalar_s / vector_s,
        "geometry": f"{rows}x{cols}",
        "tr": tr,
        "parity": parity,
    }


def bench_functional_gemm(quick: bool, repeat: int) -> Dict[str, object]:
    """End-to-end functional GEMM throughput through the controller (batch path)."""
    size = 256 if quick else 512
    precision = Precision.FP32
    rng = np.random.default_rng(7)
    memory = HostMemory()
    a = rng.standard_normal((size, size)).astype(np.float32)
    b = rng.standard_normal((size, size)).astype(np.float32)
    c = np.zeros((size, size), dtype=np.float32)
    addr_a, addr_b, addr_c = 0x10_0000, 0x80_0000, 0xF0_0000
    for addr, matrix in ((addr_a, a), (addr_b, b), (addr_c, c)):
        memory.register_matrix(addr, matrix)
    manager = ProcessManager()
    process = manager.create_process("bench-gemm")
    for addr, matrix in ((addr_a, a), (addr_b, b), (addr_c, c)):
        process.address_space.allocate_region(f"m{addr:x}", matrix.nbytes)

    descriptor = GEMMDescriptor(
        addr_a=addr_a, addr_b=addr_b, addr_c=addr_c, m=size, n=size, k=size,
        precision=precision, tile_rows=max(size, 64), tile_cols=max(size, 64),
        ttr=min(64, size), ttc=min(64, size),
    )

    def run() -> float:
        # Fresh MMU per repetition so best-of timings stay cold-state
        # comparable, matching the fresh-stack policy of the other benches.
        mmu = MMU()
        mmu.register_page_table(process.address_space.page_table)
        controller = AcceleratorController(host_memory=memory, mmu=mmu)
        controller.stq.on_completion(lambda maid, exc: None)
        controller.submit_gemm(0, process.asid, descriptor)
        start = time.perf_counter()
        results = controller.execute_pending()
        elapsed = time.perf_counter() - start
        assert results[0].functional and results[0].succeeded
        return elapsed

    seconds = _best_of(repeat, run)
    flops = 2.0 * size ** 3
    return {
        "seconds": seconds,
        "gflops": flops / seconds / 1e9,
        "m": size,
        "n": size,
        "k": size,
        "precision": "fp32",
    }


def bench_serve_throughput(quick: bool, repeat: int) -> Dict[str, object]:
    """Serving event-loop throughput: requests simulated per wall-clock second.

    A seeded Poisson trace (10k requests full, 2k quick) over two LLM tenants
    with fixed rates runs through both execution models on a 4-node fleet.
    Every (workload, precision) service profile is estimated before the timer
    starts, so the measurement is the discrete-event loop itself — the thing
    the continuous-batching refactor made more complex — not the analytic
    timing model.  Raw requests/s are machine-dependent, so
    :func:`check_regression` gates them with a wide slack factor.
    """
    from repro.core.config import maco_default_config
    from repro.serve import ServeSimulator, TenantSpec, poisson_trace

    variant = "llama-7b@layers=2,prompt=128,decode=32,block=8"
    specs = [
        TenantSpec(name="ingest", rate_rps=50.0, mix=((f"{variant},prefill", 1.0),)),
        TenantSpec(name="generate", rate_rps=50.0, mix=((f"{variant},decode", 1.0),)),
    ]
    target = 2_000 if quick else 10_000
    duration = target / sum(spec.rate_rps for spec in specs)
    trace = poisson_trace(specs, duration_s=duration, seed=2024)
    config = maco_default_config(num_nodes=4)

    def run(batching: str) -> Tuple[float, int]:
        simulator = ServeSimulator(
            config=config, scheduler="fcfs", batching=batching, max_batch=8)
        simulator._prepare_services(trace)  # warm the profile memo off-clock
        start = time.perf_counter()
        report = simulator.run(trace)
        return time.perf_counter() - start, report.total_requests

    request_s, completed = _best_of_with(repeat, lambda: run("request"))
    step_s, step_completed = _best_of_with(repeat, lambda: run("step"))
    assert completed == len(trace.requests) and step_completed == len(trace.requests)
    return {
        "requests": len(trace.requests),
        "request_mode_s": request_s,
        "step_mode_s": step_s,
        "requests_per_s": len(trace.requests) / request_s,
        "step_requests_per_s": len(trace.requests) / step_s,
    }


def bench_serve_scale(quick: bool, repeat: int) -> Dict[str, object]:
    """Serve-core throughput at scale: the array engine vs the scalar
    reference on a 100k-request (quick) or million-request (full) trace.

    The scenario pins FCFS on one node with a uniform pipeline interval, the
    regime where the array engine collapses the event loop into its max-plus
    closed form — the configuration the "million-request simulation" roadmap
    item targets.  Trace generation is timed separately (the vectorised
    Poisson sampler is part of the same refactor), service estimation is
    pre-warmed off-clock as in :func:`bench_serve_throughput`, and both
    engines run the identical trace with the reports compared byte for byte,
    so the speedup doubles as a parity witness at scale.
    """
    from repro.core.config import maco_default_config
    from repro.serve import ServeSimulator, TenantSpec, poisson_trace

    variant = "llama-7b@layers=2,prompt=128,decode=32,block=8"
    rate = 20_000.0
    specs = [
        TenantSpec(name="ingest", rate_rps=rate, mix=((f"{variant},prefill", 1.0),)),
        TenantSpec(name="generate", rate_rps=rate, mix=((f"{variant},decode", 1.0),)),
    ]
    target = 100_000 if quick else 1_000_000
    gen_start = time.perf_counter()
    trace = poisson_trace(specs, duration_s=target / (2 * rate), seed=2025)
    trace_gen_s = time.perf_counter() - gen_start
    config = maco_default_config(num_nodes=1)

    def run(engine: str):
        simulator = ServeSimulator(config=config, scheduler="fcfs", engine=engine)
        simulator._prepare_services(trace)  # warm the profile memo off-clock
        start = time.perf_counter()
        report = simulator.run(trace)
        return time.perf_counter() - start, report

    run("array")  # first-touch warm-up (page faults, numpy dispatch caches)
    array_s, array_report = _best_of_with(repeat, lambda: run("array"))
    scalar_s, scalar_report = _best_of_with(repeat, lambda: run("scalar"))
    assert array_report.total_requests == len(trace)
    return {
        "requests": len(trace),
        "trace_gen_s": trace_gen_s,
        "scalar_s": scalar_s,
        "vectorized_s": array_s,
        "speedup": scalar_s / array_s,
        "parity": array_report.to_json() == scalar_report.to_json(),
        "requests_per_s": len(trace) / array_s,
    }


def bench_serve_autoscale(quick: bool, repeat: int) -> Dict[str, object]:
    """Elastic serving throughput plus the min==max neutrality witness.

    A bursty 110%-overload LLM trace runs through the step-batching loop with
    the fleet autoscaling between one and four groups — the controller wakes
    on every window boundary, so this prices the elasticity bookkeeping the
    fixed-fleet benches never touch.  ``parity`` pins the subsystem's
    neutrality contract: a pinned ``min_groups == max_groups`` policy must
    produce, autoscale section aside, the byte-identical report of a plain
    fixed fleet.  Raw requests/s are host-dependent and gated with the wide
    throughput slack of :func:`check_regression`.
    """
    import dataclasses

    from repro.core.config import maco_default_config
    from repro.serve import AutoscalePolicy, ServeSimulator, bursty_trace, llm_tenants

    variant = "llama-7b@layers=2,prompt=128,decode=32,block=8"
    config = maco_default_config(num_nodes=4)

    def simulator(policy):
        return ServeSimulator(
            config=config, scheduler="fcfs", batching="step", max_batch=4,
            autoscale=policy)

    probe = simulator(None)
    tenants = probe.suggest_rates(llm_tenants(2, variant=variant), utilization=1.1)
    target = 300 if quick else 2_000
    duration = target / sum(spec.rate_rps for spec in tenants)
    trace = bursty_trace(tenants, duration_s=duration, seed=7, burst_factor=8.0)

    def run():
        elastic = simulator(AutoscalePolicy(min_groups=1, max_groups=4))
        elastic._prepare_services(trace)  # warm the profile memo off-clock
        start = time.perf_counter()
        report = elastic.run(trace)
        return time.perf_counter() - start, report

    elastic_s, elastic_report = _best_of_with(repeat, lambda: run())
    assert elastic_report.total_requests == len(trace.requests)
    groups = len(probe.groups)
    pinned_report = simulator(
        AutoscalePolicy(min_groups=groups, max_groups=groups)).run(trace)
    fixed_report = simulator(None).run(trace)
    parity = (
        dataclasses.replace(pinned_report, autoscale=None).to_json()
        == fixed_report.to_json())
    return {
        "requests": len(trace.requests),
        "elastic_s": elastic_s,
        "scale_events": len(elastic_report.autoscale.events),
        "node_seconds": elastic_report.autoscale.node_seconds,
        "requests_per_s": len(trace.requests) / elastic_s,
        "parity": parity,
    }


def _best_of_with(repeat: int, fn: Callable[[], Tuple[float, int]]) -> Tuple[float, int]:
    """Like :func:`_best_of` for functions returning ``(seconds, payload)``."""
    best = None
    for _ in range(max(1, repeat)):
        result = fn()
        if best is None or result[0] < best[0]:
            best = result
    return best


def run_benchmarks(quick: bool = False, repeat: int = 1) -> Dict[str, object]:
    """Run the full functional fast-path benchmark suite; returns the report."""
    results = {
        "page_enumeration": bench_page_enumeration(quick, repeat),
        "tile_translation": bench_tile_translation(quick, repeat, prediction=True),
        "tile_translation_nopred": bench_tile_translation(quick, repeat, prediction=False),
        "emulator": bench_emulator(quick, repeat),
        "functional_gemm": bench_functional_gemm(quick, repeat),
        "serve_throughput": bench_serve_throughput(quick, repeat),
        "serve_scale": bench_serve_scale(quick, repeat),
        "serve_autoscale": bench_serve_autoscale(quick, repeat),
    }
    return {"schema": SCHEMA_VERSION, "quick": quick, "repeat": repeat, "results": results}


def write_report(report: Dict[str, object], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")


def format_report(report: Dict[str, object]) -> str:
    """Human-readable summary of a bench report."""
    lines = ["functional fast-path benchmarks" + (" (quick)" if report.get("quick") else "")]
    for name, result in report["results"].items():
        if "speedup" in result:
            parity = "ok" if result.get("parity") else "MISMATCH"
            lines.append(
                f"  {name:<24} scalar {result['scalar_s'] * 1e3:8.1f} ms   "
                f"vectorized {result['vectorized_s'] * 1e3:8.1f} ms   "
                f"speedup {result['speedup']:6.1f}x   parity {parity}"
            )
        elif "node_seconds" in result:
            parity = "ok" if result.get("parity") else "MISMATCH"
            lines.append(
                f"  {name:<24} {result['requests']} requests   "
                f"elastic {result['requests_per_s']:8.0f} req/s   "
                f"{result['scale_events']} scale events   "
                f"node-seconds {result['node_seconds']:8.1f}   parity {parity}"
            )
        elif "requests_per_s" in result:
            lines.append(
                f"  {name:<24} {result['requests']} requests   "
                f"request-level {result['requests_per_s']:8.0f} req/s   "
                f"step-level {result['step_requests_per_s']:8.0f} req/s"
            )
        else:
            lines.append(
                f"  {name:<24} {result['seconds'] * 1e3:8.1f} ms   "
                f"{result['gflops']:.2f} GFLOP/s "
                f"({result['m']}x{result['n']}x{result['k']} {result['precision']})"
            )
    return "\n".join(lines)


def check_regression(
    report: Dict[str, object],
    baseline: Dict[str, object],
    factor: float = 2.0,
) -> List[str]:
    """Compare a fresh report against a committed baseline.

    Speedups are machine-relative ratios, so they transfer across hosts far
    better than raw seconds; a benchmark regresses when its speedup falls
    below ``baseline_speedup / factor``, and a parity mismatch always fails.
    Raw serving throughputs (``requests_per_s`` keys) depend on the host, so
    they are gated with four times the slack — the gate only catches an
    event-loop collapse (an accidentally quadratic admission scan), not host
    jitter.  Returns a list of human-readable failures (empty = pass).
    """
    failures = []
    for name, base in baseline.get("results", {}).items():
        throughput_keys = [key for key in base if key.endswith("requests_per_s")]
        if "speedup" not in base and not throughput_keys:
            continue
        current = report.get("results", {}).get(name)
        if current is None:
            failures.append(f"{name}: missing from the current report")
            continue
        if not current.get("parity", True):
            failures.append(f"{name}: scalar/vectorized parity mismatch")
        if "speedup" in base:
            floor = base["speedup"] / factor
            if current["speedup"] < floor:
                failures.append(
                    f"{name}: speedup {current['speedup']:.2f}x fell below "
                    f"{floor:.2f}x (baseline {base['speedup']:.2f}x / {factor:g})"
                )
        for key in throughput_keys:
            floor = base[key] / (factor * 4)
            if current.get(key, 0.0) < floor:
                failures.append(
                    f"{name}: {key} {current.get(key, 0.0):.0f} fell below "
                    f"{floor:.0f} (baseline {base[key]:.0f} / {factor * 4:g})"
                )
    return failures


def load_report(path: str) -> Dict[str, object]:
    with open(path) as handle:
        return json.load(handle)
