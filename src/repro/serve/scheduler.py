"""Batching policies for the serving simulator.

A :class:`BatchingPolicy` owns the *waiting* queue between request arrival
and admission into a server's running batch, and decides three things:

* **admission order** — ``push``/``peek``/``pop`` define which waiting
  request is admitted next when a server has a free batch slot;
* **priority tiers** — requests carry a ``priority`` (larger is more
  important) plus optional TTFT/TPOT SLO deadlines; the ``priority`` and
  ``slo`` policies order admission by tier (and, for ``slo``, by the
  earliest TTFT deadline within a tier);
* **preemption victim selection** — ``victim`` picks which running request
  loses its KV-cache residency when a step-mode server overflows its budget.

Five policies are provided.  The three request-level legacy policies are
re-expressed on this interface, so the request-level simulator behaves
exactly as before:

* :class:`FCFSScheduler` — first come, first served (arrival order);
* :class:`SJFScheduler` — shortest estimated job first, using the analytic
  per-request service-time estimate;
* :class:`RoundRobinScheduler` — one FIFO queue per tenant, served cyclically
  in first-seen tenant order, so no tenant can starve the others;
* :class:`PriorityScheduler` — higher priority tiers first, FCFS within a
  tier;
* :class:`SLOScheduler` — higher priority tiers first, earliest TTFT
  deadline (``arrival + ttft_slo_s``) first within a tier; requests without
  a deadline sort last in their tier.

All policies break ties on ``(arrival time, request id)``, which makes every
pop — and therefore the whole simulation, including preemption and resume
order — deterministic.  ``Scheduler`` remains as an alias of
:class:`BatchingPolicy` for the pre-batching API surface.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict, deque
from typing import Callable, List, Optional, Sequence, Tuple

from repro.serve.trace import Request

__all__ = [
    "BatchingPolicy",
    "Scheduler",
    "FCFSScheduler",
    "SJFScheduler",
    "RoundRobinScheduler",
    "PriorityScheduler",
    "SLOScheduler",
    "SCHEDULER_NAMES",
    "scheduler_by_name",
]


def preemption_key(request: Request) -> Tuple[int, float, int]:
    """Default victim ranking: the *largest* key is evicted first.

    The lowest priority tier loses first; within a tier the newest request
    (latest ``(arrival, id)``) is evicted, so an old request never loses its
    KV residency to a younger one and ties stay deterministic.
    """
    return (-request.priority, request.arrival_s, request.request_id)


class BatchingPolicy:
    """Base class: a waiting queue plus preemption-victim selection.

    ``push``/``peek``/``pop`` manage the policy-ordered waiting queue
    (``peek`` lets the simulator stop admission without disturbing the
    order when the head does not fit the KV budget or has not arrived at
    the admitting server's clock yet).  ``victim`` picks the running batch
    member to preempt; the default is shared by every built-in policy so
    preemption order is a property of the request metadata, not the
    admission policy.
    """

    #: Policy name used by the CLI and the report.
    name = "base"

    def push(self, request: Request) -> None:
        """Admit an arrived (or preempted) request into the waiting queue."""
        raise NotImplementedError

    def peek(self) -> Request:
        """Return (without removing) the next request ``pop`` would yield."""
        raise NotImplementedError

    def pop(self) -> Request:
        """Remove and return the next request to admit."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def victim(self, running: Sequence[Request]) -> Request:
        """Select the running request to preempt when the KV budget overflows."""
        if not running:
            raise ValueError("cannot select a preemption victim from an empty batch")
        return max(running, key=preemption_key)


#: Backward-compatible alias: the pre-batching scheduler API.
Scheduler = BatchingPolicy


class _HeapPolicy(BatchingPolicy):
    """Shared heap plumbing: subclasses define the ordering key."""

    def __init__(self) -> None:
        self._heap: List[Tuple] = []

    def _key(self, request: Request) -> Tuple:
        raise NotImplementedError

    def push(self, request: Request) -> None:
        heapq.heappush(self._heap, self._key(request) + (request,))

    def peek(self) -> Request:
        if not self._heap:
            raise IndexError("peek into an empty scheduler")
        return self._heap[0][-1]

    def pop(self) -> Request:
        if not self._heap:
            raise IndexError("pop from an empty scheduler")
        return heapq.heappop(self._heap)[-1]

    def __len__(self) -> int:
        return len(self._heap)


class FCFSScheduler(_HeapPolicy):
    """First come, first served: admit in arrival order."""

    name = "fcfs"

    def _key(self, request: Request) -> Tuple:
        return (request.arrival_s, request.request_id)


class SJFScheduler(_HeapPolicy):
    """Shortest (estimated) job first.

    ``estimator`` maps a request to its estimated service seconds; the queue
    orders by ``(service estimate, arrival, id)``.  Non-preemptive in
    request-level mode: a long request already running is never displaced.
    """

    name = "sjf"

    def __init__(self, estimator: Callable[[Request], float]) -> None:
        super().__init__()
        self._estimator = estimator

    def _key(self, request: Request) -> Tuple:
        return (self._estimator(request), request.arrival_s, request.request_id)


class PriorityScheduler(_HeapPolicy):
    """Strict priority tiers: higher ``priority`` first, FCFS within a tier."""

    name = "priority"

    def _key(self, request: Request) -> Tuple:
        return (-request.priority, request.arrival_s, request.request_id)


class SLOScheduler(_HeapPolicy):
    """SLO-aware admission: priority tiers, then earliest TTFT deadline.

    Within a tier, requests are ordered by their TTFT deadline
    ``arrival + ttft_slo_s`` (earliest-deadline-first); a request without a
    TTFT SLO has an infinite deadline and falls back to arrival order behind
    every deadlined request of its tier.
    """

    name = "slo"

    def _key(self, request: Request) -> Tuple:
        deadline = (request.arrival_s + request.ttft_slo_s
                    if request.ttft_slo_s is not None else float("inf"))
        return (-request.priority, deadline, request.arrival_s, request.request_id)


class RoundRobinScheduler(BatchingPolicy):
    """Round robin across tenants: per-tenant FIFO queues served cyclically.

    Tenants enter the rotation in first-seen order; empty queues are skipped.
    This is the fairness policy: one chatty tenant cannot monopolise the
    fleet, it only drains its own queue faster than it fills.  A preempted
    request re-enters its tenant queue ordered by ``(arrival, id)``, so
    resume never jumps a tenant-mate that arrived earlier.
    """

    name = "rr"

    def __init__(self) -> None:
        self._queues: "OrderedDict[str, deque[Request]]" = OrderedDict()
        self._rotation: List[str] = []
        self._cursor = 0
        self._size = 0

    def push(self, request: Request) -> None:
        if request.tenant not in self._queues:
            self._queues[request.tenant] = deque()
            self._rotation.append(request.tenant)
        queue = self._queues[request.tenant]
        queue.append(request)
        # A re-pushed (preempted) request carries its original arrival time;
        # restore FIFO order so resume cannot reorder a tenant's queue.
        if len(queue) > 1 and ((queue[-2].arrival_s, queue[-2].request_id)
                               > (queue[-1].arrival_s, queue[-1].request_id)):
            items = sorted(queue, key=lambda r: (r.arrival_s, r.request_id))
            queue.clear()
            queue.extend(items)
        self._size += 1

    def _next_tenant(self) -> int:
        """Rotation index of the next tenant with a non-empty queue."""
        if self._size == 0:
            raise IndexError("pop from an empty scheduler")
        for offset in range(len(self._rotation)):
            index = (self._cursor + offset) % len(self._rotation)
            if self._queues[self._rotation[index]]:
                return index
        raise AssertionError("size bookkeeping out of sync")  # pragma: no cover

    def peek(self) -> Request:
        return self._queues[self._rotation[self._next_tenant()]][0]

    def pop(self) -> Request:
        index = self._next_tenant()
        self._cursor = (index + 1) % len(self._rotation)
        self._size -= 1
        return self._queues[self._rotation[index]].popleft()

    def __len__(self) -> int:
        return self._size


#: CLI-facing policy names in the order they are documented.
SCHEDULER_NAMES = ("fcfs", "sjf", "rr", "priority", "slo")


def scheduler_by_name(
    name: str, estimator: Optional[Callable[[Request], float]] = None
) -> BatchingPolicy:
    """Build a batching policy by name (see :data:`SCHEDULER_NAMES`).

    ``sjf`` requires ``estimator`` (request -> estimated service seconds).
    """
    key = name.strip().lower()
    if key == "fcfs":
        return FCFSScheduler()
    if key == "sjf":
        if estimator is None:
            raise ValueError("the sjf policy needs a service-time estimator")
        return SJFScheduler(estimator)
    if key == "rr":
        return RoundRobinScheduler()
    if key == "priority":
        return PriorityScheduler()
    if key == "slo":
        return SLOScheduler()
    raise ValueError(f"unknown scheduler {name!r}; options: {list(SCHEDULER_NAMES)}")
