"""Tests for the DL workload models (ResNet-50, BERT, GPT-3) and layer lowering."""

import pytest

from repro.gemm.precision import Precision
from repro.workloads import (
    BERT_BASE,
    BERT_LARGE,
    GPT3_CONFIGS,
    attention_gemms,
    bert_workload,
    conv2d_gemm,
    dl_benchmark_suite,
    elementwise_cost,
    gpt3_workload,
    linear_gemm,
    resnet50_workload,
    workload_by_name,
)


class TestLayerLowering:
    def test_conv2d_im2col_dimensions(self):
        # 3x3 conv, 64->128 channels, 56x56 input, stride 1, batch 4.
        shape = conv2d_gemm(4, 64, 128, 3, 1, 56)
        assert shape.m == 4 * 56 * 56
        assert shape.k == 3 * 3 * 64
        assert shape.n == 128

    def test_strided_conv_shrinks_output(self):
        shape = conv2d_gemm(1, 64, 64, 3, 2, 56)
        assert shape.m == 28 * 28

    def test_conv_flops_formula(self):
        shape = conv2d_gemm(1, 3, 64, 7, 2, 224)
        assert shape.flops == 2 * (112 * 112) * (7 * 7 * 3) * 64

    def test_linear_gemm(self):
        shape = linear_gemm(32, 1024, 4096)
        assert (shape.m, shape.n, shape.k) == (32, 4096, 1024)

    def test_attention_block_structure(self):
        shapes = attention_gemms(batch=2, seq_len=128, hidden=768, heads=12)
        assert len(shapes) == 6
        # Q/K/V and output projections are token x hidden x hidden.
        assert shapes[0].m == 2 * 128 and shapes[0].n == 768 and shapes[0].k == 768
        # Logit GEMM reduces over the head dimension.
        assert shapes[3].k == 768 // 12

    def test_attention_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            attention_gemms(1, 64, 100, 3)

    def test_elementwise_cost(self):
        flops, bytes_touched = elementwise_cost(1000, flops_per_element=4.0, precision=Precision.FP32)
        assert flops == 4000
        assert bytes_touched == 8000


class TestResNet50:
    def test_layer_count_matches_architecture(self):
        workload = resnet50_workload(batch=1)
        # 1 stem + 16 bottlenecks x 3 convs + 4 downsample shortcuts + 1 FC = 54 GEMMs.
        assert len(workload) == 54

    def test_total_flops_in_expected_range(self):
        """ResNet-50 inference is ~4.1 GMACs, i.e. ~8.2 GFLOP, per 224x224 image."""
        workload = resnet50_workload(batch=1)
        per_image_gflops = workload.gemm_flops / 1e9
        assert 7.0 <= per_image_gflops <= 9.5

    def test_flops_scale_linearly_with_batch(self):
        single = resnet50_workload(batch=1).gemm_flops
        batched = resnet50_workload(batch=8).gemm_flops
        assert batched == pytest.approx(8 * single, rel=1e-6)

    def test_has_non_gemm_tail(self):
        workload = resnet50_workload(batch=4)
        assert workload.non_gemm_flops > 0
        assert workload.non_gemm_bytes > 0

    def test_precision_propagates(self):
        workload = resnet50_workload(batch=1, precision=Precision.FP16)
        assert all(shape.precision is Precision.FP16 for shape in workload)

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError):
            resnet50_workload(batch=0)


class TestBERT:
    def test_gemms_per_layer(self):
        workload = bert_workload(BERT_BASE, batch=1, seq_len=128)
        assert len(workload) == BERT_BASE.layers * 8  # 6 attention + 2 MLP per layer

    def test_base_flops_in_expected_range(self):
        """BERT-base at seq 128 is ~22.5 GFLOP of GEMMs per sequence."""
        workload = bert_workload(BERT_BASE, batch=1, seq_len=128)
        gflops = workload.gemm_flops / 1e9
        assert 18 <= gflops <= 28

    def test_large_has_more_work_than_base(self):
        base = bert_workload(BERT_BASE, batch=1, seq_len=128).gemm_flops
        large = bert_workload(BERT_LARGE, batch=1, seq_len=128).gemm_flops
        assert large > 2.5 * base

    def test_sequence_length_grows_attention_quadratically(self):
        short = bert_workload(BERT_BASE, batch=1, seq_len=128)
        long = bert_workload(BERT_BASE, batch=1, seq_len=512)
        assert long.gemm_flops > 3.9 * short.gemm_flops


class TestGPT3:
    def test_known_variants_exposed(self):
        assert {"gpt3-2.7b", "gpt3-6.7b", "gpt3-175b"} <= set(GPT3_CONFIGS)

    def test_layer_override(self):
        full = gpt3_workload("gpt3-2.7b", batch=1, seq_len=256)
        proxy = gpt3_workload("gpt3-2.7b", batch=1, seq_len=256, num_layers=4)
        assert len(proxy) == 4 * 8
        assert proxy.gemm_flops < full.gemm_flops

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            gpt3_workload("gpt3-13b")

    def test_hidden_divisible_by_heads_for_all_variants(self):
        for config in GPT3_CONFIGS.values():
            assert config.hidden % config.heads == 0

    def test_prefill_flops_scale_with_hidden_squared(self):
        small = gpt3_workload("gpt3-small", batch=1, seq_len=128, num_layers=2).gemm_flops
        large = gpt3_workload("gpt3-xl", batch=1, seq_len=128, num_layers=2).gemm_flops
        assert large > 4 * small


class TestRegistry:
    def test_suite_has_three_networks_in_paper_order(self):
        suite = dl_benchmark_suite()
        assert len(suite) == 3
        assert suite[0].name.startswith("resnet50")
        assert suite[1].name.startswith("bert")
        assert suite[2].name.startswith("gpt3")

    def test_suite_uses_fp32_by_default(self):
        for workload in dl_benchmark_suite():
            assert all(shape.precision is Precision.FP32 for shape in workload)

    def test_workload_by_name(self):
        assert workload_by_name("BERT").name.startswith("bert")
        with pytest.raises(ValueError):
            workload_by_name("alexnet")
