#!/usr/bin/env python
"""Exploration at scale with the parallel, cached SweepRunner.

Samples a large design space with Latin-hypercube sampling, fans the
evaluations out over a worker pool, and shows what the timing cache buys when
sweeps repeat shapes (reruns, DL workloads with repeated layers).  The same
campaign is available from the command line::

    python -m repro.cli explore --sample lhs --points 200 --jobs 4 --format csv
"""

import os
import time

from repro.analysis import format_gflops, format_percent, render_table
from repro.core import (
    DesignSpaceExplorer,
    SweepRunner,
    TimingCache,
    maco_default_config,
    pareto_front,
)
from repro.gemm import GEMMShape
from repro.gemm.workloads import FIG7_MATRIX_SIZES


def main() -> None:
    explorer = DesignSpaceExplorer()
    points = DesignSpaceExplorer.latin_hypercube(200, seed=7)
    shape = GEMMShape(4096, 4096, 4096)

    start = time.perf_counter()
    serial = explorer.explore(points, shape, jobs=1)
    serial_s = time.perf_counter() - start

    jobs = os.cpu_count() or 1
    start = time.perf_counter()
    parallel = explorer.explore(points, shape, jobs=jobs)
    parallel_s = time.perf_counter() - start

    identical = [(r.point, r.seconds, r.gflops) for r in serial] == \
                [(r.point, r.seconds, r.gflops) for r in parallel]
    print(f"Explored {len(points)} design points: serial {serial_s * 1e3:.0f} ms, "
          f"--jobs {jobs} {parallel_s * 1e3:.0f} ms "
          f"(bit-identical: {identical})")

    rows = [
        [r.point.name, format_gflops(r.gflops), format_percent(r.efficiency),
         f"{r.gflops_per_watt:.1f}"]
        for r in serial[:8]
    ]
    print(render_table(
        ["design point", "throughput", "efficiency", "GFLOPS/W"], rows,
        title="Top-8 design points by throughput",
    ))
    front = pareto_front(serial)
    print(f"{len(front)} of {len(serial)} points are Pareto-optimal "
          "(throughput vs GFLOPS/W)")

    # What the timing cache buys: rerunning a whole figure sweep is ~free.
    config = maco_default_config()
    cache = TimingCache()
    runner = SweepRunner(jobs=1, cache=cache)
    start = time.perf_counter()
    runner.sweep_scalability(config, list(FIG7_MATRIX_SIZES), [1, 2, 4, 8, 16])
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    runner.sweep_scalability(config, list(FIG7_MATRIX_SIZES), [1, 2, 4, 8, 16])
    warm_s = time.perf_counter() - start
    print(f"Fig. 7 sweep: cold {cold_s * 1e3:.0f} ms, warm rerun "
          f"{warm_s * 1e3:.1f} ms ({cold_s / warm_s:.0f}x, "
          f"{cache.hits} cache hits at {cache.hit_rate:.0%})")


if __name__ == "__main__":
    main()
