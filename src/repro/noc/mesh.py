"""2D mesh topology: node coordinates, neighbours and link enumeration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple


@dataclass(frozen=True)
class NodeCoordinate:
    """(x, y) position of a node in the mesh; x grows to the east, y to the north."""

    x: int
    y: int

    def manhattan_distance(self, other: "NodeCoordinate") -> int:
        return abs(self.x - other.x) + abs(self.y - other.y)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x},{self.y})"


class MeshTopology:
    """A ``width x height`` 2D mesh with bidirectional links between neighbours.

    Node ids are assigned row-major: ``node_id = y * width + x``, matching the
    compute-node numbering used by the MACO mapping scheme.
    """

    def __init__(self, width: int = 4, height: int = 4) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("mesh dimensions must be positive")
        self.width = width
        self.height = height

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def node_id(self, coord: NodeCoordinate) -> int:
        """The row-major node id at ``coord`` (raises if outside the mesh)."""
        self._check_coordinate(coord)
        return coord.y * self.width + coord.x

    def coordinate(self, node_id: int) -> NodeCoordinate:
        """The (x, y) position of ``node_id`` (raises if out of range)."""
        if not 0 <= node_id < self.num_nodes:
            raise ValueError(f"node id {node_id} out of range 0..{self.num_nodes - 1}")
        return NodeCoordinate(node_id % self.width, node_id // self.width)

    def _check_coordinate(self, coord: NodeCoordinate) -> None:
        if not (0 <= coord.x < self.width and 0 <= coord.y < self.height):
            raise ValueError(f"coordinate {coord} outside {self.width}x{self.height} mesh")

    def neighbors(self, node_id: int) -> List[int]:
        """Node ids adjacent to ``node_id`` (2 to 4 of them)."""
        coord = self.coordinate(node_id)
        candidates = [
            NodeCoordinate(coord.x + 1, coord.y),
            NodeCoordinate(coord.x - 1, coord.y),
            NodeCoordinate(coord.x, coord.y + 1),
            NodeCoordinate(coord.x, coord.y - 1),
        ]
        result = []
        for candidate in candidates:
            if 0 <= candidate.x < self.width and 0 <= candidate.y < self.height:
                result.append(self.node_id(candidate))
        return result

    def links(self) -> Iterator[Tuple[int, int]]:
        """All directed links (u, v) between adjacent nodes."""
        for node in range(self.num_nodes):
            for neighbor in self.neighbors(node):
                yield (node, neighbor)

    @property
    def num_links(self) -> int:
        return sum(1 for _ in self.links())

    def bisection_links(self) -> int:
        """Number of directed links crossing the vertical bisection of the mesh."""
        if self.width < 2:
            return 0
        return 2 * self.height  # one link each way per row across the middle column split

    def hop_distance(self, src: int, dst: int) -> int:
        """Manhattan distance between two nodes — the X-Y route's hop count."""
        return self.coordinate(src).manhattan_distance(self.coordinate(dst))

    def average_hop_distance(self) -> float:
        """Average Manhattan distance over all ordered node pairs (src != dst)."""
        total = 0
        pairs = 0
        for src in range(self.num_nodes):
            for dst in range(self.num_nodes):
                if src == dst:
                    continue
                total += self.hop_distance(src, dst)
                pairs += 1
        return total / pairs if pairs else 0.0

    def node_positions(self) -> Dict[int, NodeCoordinate]:
        """Every node id mapped to its mesh coordinate (for plots and tests)."""
        return {node_id: self.coordinate(node_id) for node_id in range(self.num_nodes)}
