"""Deep-learning workload models: the GEMM streams of ResNet-50, BERT and GPT-3.

The Fig. 8 comparison runs these three networks in FP32 inference.  The
evaluation only needs the sequence of GEMMs each network performs (plus the
element-wise tail operators for the GEMM+ mapping study), so each model is a
layer-shape description that expands into a :class:`~repro.gemm.workloads.GEMMWorkload`.
"""

from repro.workloads.layers import (
    LayerKind,
    LayerSpec,
    conv2d_gemm,
    linear_gemm,
    attention_gemms,
    elementwise_cost,
)
from repro.workloads.resnet50 import resnet50_workload, RESNET50_LAYERS
from repro.workloads.bert import bert_workload, BERT_BASE, BERT_LARGE
from repro.workloads.gpt3 import gpt3_workload, GPT3_CONFIGS
from repro.workloads.registry import dl_benchmark_suite, workload_by_name, workload_names

__all__ = [
    "LayerKind",
    "LayerSpec",
    "conv2d_gemm",
    "linear_gemm",
    "attention_gemms",
    "elementwise_cost",
    "resnet50_workload",
    "RESNET50_LAYERS",
    "bert_workload",
    "BERT_BASE",
    "BERT_LARGE",
    "gpt3_workload",
    "GPT3_CONFIGS",
    "dl_benchmark_suite",
    "workload_by_name",
    "workload_names",
]
