"""Fig. 8 — comparison with state-of-the-art solutions on DL workloads.

Runs ResNet-50, BERT and a GPT-3 proxy (FP32 inference) on five systems with
the same 256-lane FP32 MAC budget: Baseline-1 (CPU only), Baseline-2 (MACO
without the mapping scheme), a RASA-like tightly-coupled engine, a
Gemmini-like loosely-coupled accelerator, and MACO.  The harness prints the
throughput bars and asserts the paper's qualitative findings: MACO wins on
every benchmark, the ordering of the baselines holds, the average gains are in
the same range the paper reports (3.30x over Baseline-1, 1.45x over
Baseline-2, 1.35x over RASA, 1.30x over Gemmini), and MACO's best throughput
is around a TFLOPS at high efficiency.
"""

import pytest

from repro.analysis import format_gflops, render_table
from repro.baselines import (
    CPUOnlyBaseline,
    GemminiLikeBaseline,
    NoMappingBaseline,
    RASALikeBaseline,
)
from repro.core import MACOSystem, geometric_mean
from repro.gemm import Precision
from repro.workloads import dl_benchmark_suite

NUM_NODES = 8  # 256 FP32 MAC lanes, the paper's 16x16 PE budget


def run_comparison(config):
    """Run every system on every Fig. 8 workload; returns {system: {workload: gflops}}."""
    suite = dl_benchmark_suite()
    system = MACOSystem(config)
    results = {"maco": {}}
    for workload in suite:
        results["maco"][workload.name] = system.run_workload(workload, num_nodes=NUM_NODES)
    for model in (CPUOnlyBaseline(config), NoMappingBaseline(config),
                  RASALikeBaseline(config), GemminiLikeBaseline(config)):
        results[model.name] = {
            workload.name: model.run_workload(workload, num_nodes=NUM_NODES) for workload in suite
        }
    return suite, results


def test_fig8_dl_comparison(benchmark, fig8_config):
    suite, results = benchmark.pedantic(
        lambda: run_comparison(fig8_config), rounds=1, iterations=1, warmup_rounds=0
    )

    workload_names = [w.name for w in suite]
    ordered_systems = ["baseline-1", "baseline-2", "rasa-like", "gemmini-like", "maco"]
    rows = []
    for system in ordered_systems:
        rows.append([system] + [format_gflops(results[system][name].gflops) for name in workload_names])
    print("\n" + render_table(["system"] + workload_names, rows,
                              title="Fig. 8 - DL inference throughput (GFLOPS, FP32, 256 MAC lanes)"))

    gains = {}
    for system in ordered_systems[:-1]:
        ratios = [
            results["maco"][name].gflops / results[system][name].gflops for name in workload_names
        ]
        gains[system] = geometric_mean(ratios)
    print("average MACO gain:", {system: round(gain, 2) for system, gain in gains.items()})

    # MACO outperforms every other solution on every benchmark.
    for name in workload_names:
        maco_gflops = results["maco"][name].gflops
        for system in ordered_systems[:-1]:
            assert maco_gflops > results[system][name].gflops
    # The CPU-only baseline is the slowest system on every benchmark.
    for name in workload_names:
        assert results["baseline-1"][name].gflops == min(
            results[system][name].gflops for system in ordered_systems
        )
    # Average gains fall in the same range as the paper's 3.30x / 1.45x / 1.35x / 1.30x.
    assert 2.5 < gains["baseline-1"] < 5.0
    assert 1.1 < gains["baseline-2"] < 2.0
    assert 1.15 < gains["rasa-like"] < 1.7
    assert 1.1 < gains["gemmini-like"] < 1.6
    # Headline: MACO reaches on the order of 1.1 TFLOPS at high efficiency.
    best = max((results["maco"][name] for name in workload_names), key=lambda r: r.gflops)
    assert 0.9e3 < best.gflops < 1.28e3
    assert best.efficiency > 0.80
    assert best.peak_gflops == pytest.approx(fig8_config.peak_gflops(Precision.FP32))
