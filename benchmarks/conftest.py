"""Shared fixtures for the benchmark harness.

Every file in this directory regenerates one table or figure of the paper's
evaluation section.  Run them with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag shows the regenerated rows/series; the recorded numbers and
their comparison against the paper are kept in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.core import maco_default_config


@pytest.fixture(scope="session")
def paper_config():
    """The full 16-node MACO configuration used by Figs. 6 and 7."""
    return maco_default_config(num_nodes=16)


@pytest.fixture(scope="session")
def fig8_config():
    """The Fig. 8 configuration: 256 FP32 MAC lanes, i.e. 8 compute nodes.

    The paper states all systems use a 16x16 PE budget; a MACO node's 4x4
    FP64 array provides 32 FP32 lanes, so 8 nodes match that budget (and the
    published 1.1 TFLOPS @ 88% headline corresponds to a 1.28 TFLOPS FP32
    aggregate peak, i.e. 8 nodes).
    """
    return maco_default_config(num_nodes=8)
