"""Table I — architectural parameters of a CPU core.

Regenerates the parameter table from the configuration dataclass and checks
that the modelled CPU core actually honours the published geometry.
"""

from repro.analysis import render_table
from repro.core.config import CPUConfig
from repro.cpu.core import CPUCore


def build_table1(config: CPUConfig) -> str:
    rows = [
        ["instruction width", f"{config.instruction_width_bits}-bit"],
        ["data bus width", f"{config.data_bus_width_bits}-bit, CHI protocol"],
        ["instruction fetch width", f"{config.instruction_fetch_width_bits}-bit"],
        ["pipeline stages", f"{config.pipeline_stages}+"],
        ["instruction execution order", "out-of-order" if config.out_of_order else "in-order"],
        ["multi-issue ability", f"{config.issue_width}-issue"],
        ["L1 Instruction Cache (ICache)", f"{config.l1i_size_bytes // 1024}KB, {config.l1i_associativity}-way set associative"],
        ["L1 Data Cache (DCache)", f"{config.l1d_size_bytes // 1024}KB, {config.l1d_associativity}-way set associative"],
        ["L2 Cache", f"{config.l2_size_bytes // 1024}KB, private"],
        ["L1 ITLB/DTLB", f"{config.itlb_entries} entries, fully associative"],
        ["L2 TLB", f"{config.l2_tlb_entries} entries, fully associative"],
    ]
    return render_table(["Architectural Parameters", "Value"], rows,
                        title="Table I - architectural parameters of a CPU core")


def test_table1_cpu_parameters(benchmark):
    config = CPUConfig()

    def regenerate() -> str:
        # Building the core verifies the parameters are actually realisable in the model.
        core = CPUCore(
            frequency_hz=config.frequency_hz,
            fmac_lanes=config.fmac_lanes,
            issue_width=config.issue_width,
            l1i_size=config.l1i_size_bytes,
            l1d_size=config.l1d_size_bytes,
            l1_associativity=config.l1d_associativity,
            l2_size=config.l2_size_bytes,
            l2_associativity=config.l2_associativity,
            itlb_entries=config.itlb_entries,
            dtlb_entries=config.dtlb_entries,
            l2_tlb_entries=config.l2_tlb_entries,
        )
        assert core.l1d.config.num_sets == 192
        assert core.l2.config.size_bytes == 512 * 1024
        assert core.mmu.dtlb.l1.capacity == 48
        assert core.mmu.dtlb.l2.capacity == 1024
        return build_table1(config)

    table = benchmark(regenerate)
    print("\n" + table)
    assert "4-issue" in table
    assert "48KB" in table
    assert "1024 entries" in table
