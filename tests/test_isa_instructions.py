"""Tests for MPAIS instruction definitions and descriptor packing (paper Table II)."""

import pytest
from hypothesis import given, strategies as st

from repro.gemm.precision import Precision
from repro.isa.instructions import (
    GEMMDescriptor,
    INSTRUCTION_TABLE,
    InitDescriptor,
    Instruction,
    MoveDescriptor,
    Opcode,
    PARAMETER_REGISTERS,
    StashDescriptor,
)


class TestInstructionTable:
    def test_all_seven_instructions_present(self):
        assert set(INSTRUCTION_TABLE) == set(Opcode)
        assert len(INSTRUCTION_TABLE) == 7

    def test_functional_grouping_matches_table2(self):
        groups = {info.function for info in INSTRUCTION_TABLE.values()}
        assert groups == {"Data migration", "GEMM computing", "Task management"}
        migration = [op for op, info in INSTRUCTION_TABLE.items() if info.function == "Data migration"]
        assert set(migration) == {Opcode.MA_MOVE, Opcode.MA_INIT, Opcode.MA_STASH}
        management = [op for op, info in INSTRUCTION_TABLE.items() if info.function == "Task management"]
        assert set(management) == {Opcode.MA_READ, Opcode.MA_STATE, Opcode.MA_CLEAR}

    def test_usage_strings_mention_registers(self):
        for info in INSTRUCTION_TABLE.values():
            assert "Rn" in info.usage


class TestInstruction:
    def test_parameter_block_users(self):
        assert Instruction(Opcode.MA_CFG, 1, 2).uses_parameter_block
        assert Instruction(Opcode.MA_STASH, 1, 2).uses_parameter_block
        assert not Instruction(Opcode.MA_READ, 1, 2).uses_parameter_block

    def test_register_range_checked(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.MA_CFG, rd=32, rn=0)

    def test_str_formats(self):
        assert str(Instruction(Opcode.MA_CFG, 1, 2)) == "MA_CFG X1, X2"
        assert str(Instruction(Opcode.MA_CLEAR, 31, 3)) == "MA_CLEAR X3"


class TestGEMMDescriptor:
    def make(self, **overrides) -> GEMMDescriptor:
        defaults = dict(
            addr_a=0x10_0000, addr_b=0x20_0000, addr_c=0x30_0000,
            m=512, n=384, k=256, precision=Precision.FP32,
            tile_rows=256, tile_cols=256, ttr=64, ttc=64,
        )
        defaults.update(overrides)
        return GEMMDescriptor(**defaults)

    def test_pack_uses_six_registers(self):
        assert len(self.make().pack()) == PARAMETER_REGISTERS

    def test_pack_unpack_roundtrip(self):
        descriptor = self.make()
        assert GEMMDescriptor.unpack(descriptor.pack()) == descriptor

    def test_roundtrip_preserves_precision(self):
        for precision in Precision:
            descriptor = self.make(precision=precision)
            assert GEMMDescriptor.unpack(descriptor.pack()).precision is precision

    def test_default_leading_dimensions(self):
        descriptor = self.make(lda=0, ldb=0, ldc=0)
        assert descriptor.effective_lda == descriptor.k
        assert descriptor.effective_ldb == descriptor.n
        assert descriptor.effective_ldc == descriptor.n

    def test_flops(self):
        descriptor = self.make(m=10, n=20, k=30, tile_rows=32, tile_cols=32, ttr=8, ttc=8)
        assert descriptor.flops == 2 * 10 * 20 * 30

    def test_second_level_tile_must_fit_first_level(self):
        with pytest.raises(ValueError):
            self.make(tile_rows=32, ttr=64)

    def test_zero_dimension_rejected(self):
        with pytest.raises(ValueError):
            self.make(m=0)

    def test_wrong_register_count_rejected(self):
        with pytest.raises(ValueError):
            GEMMDescriptor.unpack([0, 1, 2])

    @given(
        m=st.integers(1, 0xFFFF), n=st.integers(1, 0xFFFF), k=st.integers(1, 0xFFFF),
        addr=st.integers(0, 2**48),
        precision=st.sampled_from(list(Precision)),
    )
    def test_roundtrip_property(self, m, n, k, addr, precision):
        descriptor = GEMMDescriptor(
            addr_a=addr, addr_b=addr + (1 << 50), addr_c=addr + (1 << 51),
            m=m, n=n, k=k, precision=precision,
            tile_rows=1024, tile_cols=1024, ttr=64, ttc=64,
        )
        recovered = GEMMDescriptor.unpack(descriptor.pack())
        assert (recovered.m, recovered.n, recovered.k) == (m, n, k)
        assert recovered.addr_a == addr
        assert recovered.precision is precision


class TestDataMigrationDescriptors:
    def test_move_roundtrip(self):
        descriptor = MoveDescriptor(src_addr=0x1000, dst_addr=0x9000, length_bytes=4096,
                                    element_bytes=4, src_stride_bytes=64, dst_stride_bytes=128)
        assert MoveDescriptor.unpack(descriptor.pack()) == descriptor

    def test_move_invalid_element_size(self):
        with pytest.raises(ValueError):
            MoveDescriptor(src_addr=0, dst_addr=0, length_bytes=10, element_bytes=3)

    def test_init_roundtrip(self):
        descriptor = InitDescriptor(dst_addr=0x4000, length_bytes=1 << 20, element_bytes=8)
        assert InitDescriptor.unpack(descriptor.pack()) == descriptor

    def test_stash_roundtrip_with_lock(self):
        descriptor = StashDescriptor(addr=0x8000, length_bytes=1 << 16, lock=True)
        recovered = StashDescriptor.unpack(descriptor.pack())
        assert recovered == descriptor
        assert recovered.lock is True

    def test_stash_zero_length_rejected(self):
        with pytest.raises(ValueError):
            StashDescriptor(addr=0, length_bytes=0)
