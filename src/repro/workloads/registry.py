"""Registry of benchmark workloads and parameterized scenario variants.

Two layers of naming coexist:

* the **Fig. 8 benchmark suite** — ``resnet50``, ``bert``, ``gpt3`` — the
  three fixed-shape networks the paper compares systems on
  (:func:`workload_names`, :func:`dl_benchmark_suite`);
* the **scenario catalog** — every registered variant, each of which builds a
  phase-aware :class:`~repro.workloads.graph.WorkloadGraph` and accepts
  parameter overrides in the name itself::

      llama-7b@decode              # decode-only LLM generation
      llama-7b@prefill,batch=4     # prompt ingest at batch 4
      resnet50-conv@batch=16       # conv stages only, batch 16
      moe-8x@experts=16,top_k=4    # wider expert fan-out
      bert@seq=512,fp16            # longer sequences, half precision

The grammar after ``@`` is a comma-separated list of ``key=value`` overrides
and bare tags (``prefill``/``decode`` select LLM phases, ``fp16``/``fp32``/
``fp64`` select precision).  Unknown base names and unknown parameter keys
raise ``ValueError`` naming the sorted alternatives, so typos fail loudly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.gemm.precision import Precision
from repro.gemm.workloads import GEMMWorkload
from repro.workloads.bert import BERT_LARGE, bert_graph
from repro.workloads.gpt3 import gpt3_graph
from repro.workloads.graph import WorkloadGraph
from repro.workloads.llm import llm_workload_graph
from repro.workloads.moe import moe_workload_graph
from repro.workloads.resnet50 import resnet50_graph

__all__ = [
    "WorkloadVariant",
    "catalog_entry",
    "workload_names",
    "workload_catalog",
    "workload_by_name",
    "workload_graph_by_name",
    "describe_workload",
    "dl_benchmark_suite",
]

#: The three Fig. 8 benchmarks, in paper order.
_SUITE: Tuple[str, ...] = ("resnet50", "bert", "gpt3")


@dataclass(frozen=True)
class WorkloadVariant:
    """One catalog entry: a graph builder plus its overridable parameters."""

    name: str
    summary: str
    build: Callable[..., WorkloadGraph]
    defaults: Tuple[Tuple[str, object], ...] = ()

    @property
    def params(self) -> List[str]:
        """Names of the parameters the variant accepts via ``@key=value``."""
        return [key for key, _ in self.defaults]


def _build_resnet50(precision: Precision, batch: int = 8) -> WorkloadGraph:
    return resnet50_graph(batch=batch, precision=precision)


def _build_resnet50_conv(precision: Precision, batch: int = 8) -> WorkloadGraph:
    return resnet50_graph(batch=batch, precision=precision, conv_only=True)


def _build_bert(precision: Precision, batch: int = 8, seq: int = 384) -> WorkloadGraph:
    return bert_graph(config=BERT_LARGE, batch=batch, seq_len=seq, precision=precision)


def _build_gpt3(
    precision: Precision, batch: int = 4, seq: int = 1024, layers: int = 8
) -> WorkloadGraph:
    return gpt3_graph(variant="gpt3-2.7b", batch=batch, seq_len=seq,
                      num_layers=layers, precision=precision)


def _llm_builder(variant: str) -> Callable[..., WorkloadGraph]:
    def build(
        precision: Precision,
        batch: int = 1,
        prompt: int = 512,
        decode: int = 64,
        block: int = 16,
        layers: int = 8,
        phases: Tuple[str, ...] = ("prefill", "decode"),
    ) -> WorkloadGraph:
        return llm_workload_graph(
            variant=variant, batch=batch, prompt_len=prompt, decode_tokens=decode,
            decode_block=block, num_layers=layers, precision=precision, phases=phases,
        )

    return build


def _build_moe(
    precision: Precision,
    experts: int = 8,
    top_k: int = 2,
    batch: int = 4,
    seq: int = 512,
    layers: int = 8,
) -> WorkloadGraph:
    return moe_workload_graph(experts=experts, top_k=top_k, batch=batch, seq_len=seq,
                              num_layers=layers, precision=precision)


_LLM_DEFAULTS: Tuple[Tuple[str, object], ...] = (
    ("batch", 1), ("prompt", 512), ("decode", 64), ("block", 16), ("layers", 8),
    ("phases", ("prefill", "decode")),
)

_CATALOG: Dict[str, WorkloadVariant] = {
    variant.name: variant
    for variant in (
        WorkloadVariant(
            "resnet50",
            "ResNet-50 inference, conv stages im2col-lowered plus the FC tail (Fig. 8)",
            _build_resnet50, (("batch", 8),),
        ),
        WorkloadVariant(
            "resnet50-conv",
            "ResNet-50 conv stages only (no FC classifier), one phase per stage",
            _build_resnet50_conv, (("batch", 8),),
        ),
        WorkloadVariant(
            "bert",
            "BERT-large encoder inference at SQuAD-style sequence length (Fig. 8)",
            _build_bert, (("batch", 8), ("seq", 384)),
        ),
        WorkloadVariant(
            "gpt3",
            "GPT-3 2.7B prefill at proxy depth (Fig. 8)",
            _build_gpt3, (("batch", 4), ("seq", 1024), ("layers", 8)),
        ),
        WorkloadVariant(
            "llama-7b",
            "LLaMA-7B inference: prefill plus KV-cache-growing decode blocks",
            _llm_builder("llama-7b"), _LLM_DEFAULTS,
        ),
        WorkloadVariant(
            "llama-13b",
            "LLaMA-13B inference: prefill plus KV-cache-growing decode blocks",
            _llm_builder("llama-13b"), _LLM_DEFAULTS,
        ),
        WorkloadVariant(
            "moe-8x",
            "Sparse mixture-of-experts encoder: dense attention + routed expert FFNs",
            _build_moe,
            (("experts", 8), ("top_k", 2), ("batch", 4), ("seq", 512), ("layers", 8)),
        ),
    )
}

#: Bare tags accepted after ``@`` and the parameter they set.
_PHASE_TAGS = ("prefill", "decode")
_PRECISION_TAGS = ("fp64", "fp32", "fp16")


def _coerce_value(base: str, key: str, raw: str):
    """Parse one ``key=value`` override to the type the builder expects."""
    if key == "precision":
        return Precision.from_string(raw)
    if key == "phases":
        selected = tuple(part for part in raw.split("+") if part)
        return selected
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"workload {base!r}: parameter {key}={raw!r} is not an integer"
        ) from None


def _parse_spec(base: str, spec: str, variant: WorkloadVariant) -> Dict[str, object]:
    """Parse the ``@...`` suffix into builder keyword overrides."""
    allowed = set(variant.params) | {"precision"}
    params: Dict[str, object] = {}
    for token in (part.strip() for part in spec.split(",")):
        if not token:
            continue
        if "=" in token:
            key, _, raw = token.partition("=")
            key = key.strip()
            if key not in allowed:
                raise ValueError(
                    f"workload {base!r} does not take parameter {key!r}; "
                    f"options: {sorted(allowed)}"
                )
            value = _coerce_value(base, key, raw.strip())
        elif token in _PHASE_TAGS:
            key, value = "phases", (token,)
        elif token in _PRECISION_TAGS:
            key, value = "precision", Precision.from_string(token)
        else:
            raise ValueError(
                f"workload {base!r}: unknown tag {token!r}; bare tags: "
                f"{sorted(_PHASE_TAGS + _PRECISION_TAGS)}, parameters: {sorted(allowed)}"
            )
        if key not in allowed:
            raise ValueError(
                f"workload {base!r} does not take parameter {key!r}; "
                f"options: {sorted(allowed)}"
            )
        if key in params:
            raise ValueError(f"workload {base!r}: parameter {key!r} given twice")
        params[key] = value
    return params


def workload_names() -> List[str]:
    """Names of the Fig. 8 benchmark suite workloads, sorted."""
    return sorted(_SUITE)


def workload_catalog() -> List[str]:
    """Every registered scenario variant name, sorted."""
    return sorted(_CATALOG)


def catalog_entry(name: str) -> WorkloadVariant:
    """The catalog entry for a base name (no ``@`` spec), or raise."""
    key = name.strip().lower()
    if key not in _CATALOG:
        raise ValueError(f"unknown workload {name!r}; options: {sorted(_CATALOG)}")
    return _CATALOG[key]


def _resolve(name: str) -> Tuple[str, str, WorkloadVariant, Dict[str, object]]:
    """Parse ``base[@spec]`` into the normalized name, base, variant and overrides."""
    requested = name.strip().lower()
    base, _, spec = requested.partition("@")
    base = base.strip()
    if base not in _CATALOG:
        raise ValueError(f"unknown workload {name!r}; options: {sorted(_CATALOG)}")
    variant = _CATALOG[base]
    return requested, base, variant, _parse_spec(base, spec, variant)


def workload_graph_by_name(name: str, precision: Precision = Precision.FP32) -> WorkloadGraph:
    """Build a phase-aware workload graph from a catalog name with overrides.

    ``name`` is ``base[@spec]`` (see the module docstring for the grammar);
    ``precision`` applies unless the spec overrides it (``@fp16`` or
    ``@precision=fp16``).
    """
    requested, _, variant, params = _resolve(name)
    build_precision = params.pop("precision", precision)
    graph = variant.build(precision=build_precision, **params)
    graph.params["registry_name"] = requested
    return graph


def workload_by_name(name: str, precision: Precision = Precision.FP32) -> GEMMWorkload:
    """Build a catalog workload by name, flattened to the legacy GEMM stream."""
    return workload_graph_by_name(name, precision).flatten()


def describe_workload(
    name: str,
    precision: Precision = Precision.FP32,
    graph: WorkloadGraph | None = None,
) -> dict:
    """A JSON-able description of one catalog entry (used by the CLI).

    ``parameters`` reports the values the graph was actually built with —
    the variant defaults overlaid with any ``@key=value`` overrides in
    ``name``.  Callers that already built the graph can pass it to avoid a
    second construction.
    """
    _, base, variant, overrides = _resolve(name)
    if graph is None:
        graph = workload_graph_by_name(name, precision)
    overrides.pop("precision", None)  # reflected in the phases' shapes
    return {
        "name": graph.name,
        "registry_name": graph.params.get("registry_name", base),
        "summary": variant.summary,
        "parameters": {key: overrides.get(key, default) for key, default in variant.defaults},
        "phases": [phase.to_dict() for phase in graph.phases],
        "gemm_flops": graph.gemm_flops,
        "total_flops": graph.total_flops,
        "footprint_bytes": graph.footprint_bytes,
        "peak_state_bytes": graph.peak_state_bytes,
    }


def dl_benchmark_suite(precision: Precision = Precision.FP32) -> List[GEMMWorkload]:
    """The three Fig. 8 benchmarks (ResNet-50, BERT, GPT-3) in paper order."""
    return [workload_by_name(name, precision) for name in _SUITE]
