"""Command-line interface for the MACO reproduction.

Usage (after ``pip install -e .``)::

    python -m repro.cli fig6                 # predictive-translation sweep
    python -m repro.cli fig7                 # scalability sweep
    python -m repro.cli fig8                 # DL workload comparison
    python -m repro.cli table4               # CPU vs MMAE area/power table
    python -m repro.cli gemm --size 4096 --nodes 8 --precision fp64

The CLI is a thin wrapper over the same APIs the benchmarks use, so its output
matches the rows recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import (
    compare_cpu_mmae,
    efficiency_by_size,
    efficiency_gap,
    format_gflops,
    format_percent,
    render_series,
    render_table,
)
from repro.baselines import (
    CPUOnlyBaseline,
    GemminiLikeBaseline,
    NoMappingBaseline,
    RASALikeBaseline,
)
from repro.core import MACOSystem, maco_default_config, sweep_prediction, sweep_scalability
from repro.gemm import GEMMShape, Precision
from repro.gemm.workloads import FIG6_MATRIX_SIZES, FIG7_MATRIX_SIZES
from repro.workloads import dl_benchmark_suite


def _cmd_gemm(args: argparse.Namespace) -> int:
    config = maco_default_config(num_nodes=args.nodes, prediction_enabled=not args.no_prediction)
    system = MACOSystem(config)
    shape = GEMMShape(args.size, args.size, args.size, Precision.from_string(args.precision))
    result = system.run_gemm(shape)
    print(f"GEMM {shape}: {result.seconds * 1e3:.2f} ms, "
          f"{format_gflops(result.gflops)} ({format_percent(result.efficiency)} of peak) "
          f"on {result.num_nodes} nodes")
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    config = maco_default_config()
    sizes = list(FIG6_MATRIX_SIZES)
    points = sweep_prediction(config, sizes)
    with_prediction = efficiency_by_size(points, prediction_enabled=True)
    without = efficiency_by_size(points, prediction_enabled=False)
    gaps = efficiency_gap(points)
    print(render_series(
        "matrix size", sizes,
        {
            "with prediction": [with_prediction[s] for s in sizes],
            "without prediction": [without[s] for s in sizes],
            "gap": [gaps[s] for s in sizes],
        },
        value_formatter=format_percent,
        title="Fig. 6 - efficiency with/without predictive address translation",
    ))
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    config = maco_default_config()
    sizes = list(FIG7_MATRIX_SIZES)
    node_counts = [1, 2, 4, 8, 16]
    points = sweep_scalability(config, sizes, node_counts)
    series = {
        f"{nodes}-core": [efficiency_by_size(points, active_nodes=nodes)[s] for s in sizes]
        for nodes in node_counts
    }
    print(render_series("matrix size", sizes, series, value_formatter=format_percent,
                        title="Fig. 7 - per-node efficiency vs active compute nodes"))
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    config = maco_default_config(num_nodes=args.nodes)
    system = MACOSystem(config)
    suite = dl_benchmark_suite()
    models = [CPUOnlyBaseline(config), NoMappingBaseline(config),
              RASALikeBaseline(config), GemminiLikeBaseline(config)]
    rows = []
    for model in models:
        rows.append([model.name] + [
            format_gflops(model.run_workload(w, num_nodes=args.nodes).gflops) for w in suite
        ])
    rows.append(["maco"] + [
        format_gflops(system.run_workload(w, num_nodes=args.nodes).gflops) for w in suite
    ])
    print(render_table(["system"] + [w.name for w in suite], rows,
                       title=f"Fig. 8 - DL inference throughput ({args.nodes} nodes, FP32)"))
    return 0


def _cmd_table4(args: argparse.Namespace) -> int:
    comparison = compare_cpu_mmae()
    print(render_table(
        ["", "Freq (GHz)", "Area (mm2)", "Power (W)", "FMACs", "Peak Perf (GFLOPS)"],
        [comparison.cpu.as_row(), comparison.mmae.as_row()],
        title="Table IV - comparison of the CPU core and MMAE",
    ))
    for key, value in comparison.summary().items():
        print(f"  {key}: {value:.2f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    subparsers = parser.add_subparsers(dest="command", required=True)

    gemm = subparsers.add_parser("gemm", help="time one square GEMM on MACO")
    gemm.add_argument("--size", type=int, default=4096)
    gemm.add_argument("--nodes", type=int, default=16)
    gemm.add_argument("--precision", default="fp64", choices=["fp64", "fp32", "fp16"])
    gemm.add_argument("--no-prediction", action="store_true",
                      help="disable predictive address translation")
    gemm.set_defaults(handler=_cmd_gemm)

    fig6 = subparsers.add_parser("fig6", help="regenerate the Fig. 6 sweep")
    fig6.set_defaults(handler=_cmd_fig6)

    fig7 = subparsers.add_parser("fig7", help="regenerate the Fig. 7 sweep")
    fig7.set_defaults(handler=_cmd_fig7)

    fig8 = subparsers.add_parser("fig8", help="regenerate the Fig. 8 comparison")
    fig8.add_argument("--nodes", type=int, default=8)
    fig8.set_defaults(handler=_cmd_fig8)

    table4 = subparsers.add_parser("table4", help="regenerate the Table IV comparison")
    table4.set_defaults(handler=_cmd_table4)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
