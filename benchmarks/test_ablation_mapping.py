"""Ablation (Section IV.B) — the stash/lock + overlap mapping scheme for GEMM+ workloads.

Not a separate figure in the paper, but the design choice behind Baseline-2:
this harness isolates the mapping scheme's two ingredients on a GEMM+ workload
(BERT-large) by toggling (a) the CPU/MMAE overlap with distributed tails and
(b) the L3 stash/lock residency, and reports the throughput of each variant.
"""

from repro.analysis import format_gflops, render_table
from repro.core import MACOSystem
from repro.workloads import bert_workload

NUM_NODES = 8


def test_ablation_mapping_scheme(benchmark, fig8_config):
    workload = bert_workload(batch=4, seq_len=256)

    def regenerate():
        system = MACOSystem(fig8_config)
        with_mapping = system.run_workload(workload, num_nodes=NUM_NODES, mapping_enabled=True)
        without_mapping = system.run_workload(workload, num_nodes=NUM_NODES, mapping_enabled=False)
        return with_mapping, without_mapping

    with_mapping, without_mapping = benchmark.pedantic(regenerate, rounds=1, iterations=1, warmup_rounds=0)

    speedup = with_mapping.gflops / without_mapping.gflops
    print("\n" + render_table(
        ["variant", "throughput", "GEMM time (ms)", "non-GEMM time (ms)"],
        [
            ["mapping scheme ON", format_gflops(with_mapping.gflops),
             f"{with_mapping.gemm_seconds * 1e3:.1f}", f"{with_mapping.non_gemm_seconds * 1e3:.1f}"],
            ["mapping scheme OFF", format_gflops(without_mapping.gflops),
             f"{without_mapping.gemm_seconds * 1e3:.1f}", f"{without_mapping.non_gemm_seconds * 1e3:.1f}"],
        ],
        title="Ablation - GEMM+ mapping scheme (stash/lock + CPU/MMAE overlap) on BERT-large",
    ))
    print(f"mapping scheme speedup: {speedup:.2f}x (paper's Baseline-2 gap: 1.45x)")

    assert speedup > 1.05
    assert with_mapping.seconds < without_mapping.seconds
    # With the scheme on the CPU tail overlaps with the MMAEs: the total stays
    # within the mapping model's exposed-stash/tail budget above the GEMM time.
    assert with_mapping.seconds < with_mapping.gemm_seconds * 1.12 + with_mapping.non_gemm_seconds
    # Without the scheme the (single-core, degraded) tail serialises after the GEMMs.
    assert without_mapping.seconds > without_mapping.gemm_seconds + without_mapping.non_gemm_seconds
