"""The 4x4 systolic array of the MMAE: functional and cycle models.

Two levels of fidelity are provided:

* :class:`SystolicArray` — the model used by the MMAE controller: it computes
  tile GEMMs numerically with NumPy in the selected precision (so functional
  results are exact for the datapath width) and returns a cycle count from the
  input-stationary schedule;
* :class:`SystolicArrayEmulator` — a cycle-stepped, PE-by-PE emulation of the
  wavefront for small tiles, used by tests to validate that the dataflow the
  cycle formula assumes actually produces the right answer and finishes in the
  predicted number of cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.gemm.precision import Precision
from repro.mmae.pe import ProcessingElement


@dataclass
class TileComputeResult:
    """Result of running one tile GEMM on the array."""

    output: np.ndarray
    cycles: int
    macs: int

    @property
    def macs_per_cycle(self) -> float:
        return self.macs / self.cycles if self.cycles else 0.0


class SystolicArray:
    """An ``rows x cols`` input-stationary systolic array (paper Fig. 1 / Fig. 2(b)).

    The stationary operand is the B sub-matrix.  In FP32 mode each PE packs two
    lanes and in FP16 mode four lanes (Fig. 2(c)/(d)), which multiplies the
    effective number of B columns the array holds per pass.
    """

    def __init__(self, rows: int = 4, cols: int = 4, frequency_hz: float = 2.5e9) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("array dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.frequency_hz = frequency_hz
        self.total_macs = 0
        self.total_cycles = 0
        # tile_cycles is pure in (tr, tc, tk, precision) but the controller
        # asks it for thousands of identically-shaped tiles per GEMM, so the
        # ceil arithmetic is memoized per array instance.
        self._tile_cycles_cache: Dict[Tuple[int, int, int, Precision], int] = {}

    # ------------------------------------------------------------------- rates
    def macs_per_cycle(self, precision: Precision = Precision.FP64) -> int:
        """MAC operations the array completes per cycle in the given mode."""
        return self.rows * self.cols * precision.simd_ways

    def peak_gflops(self, precision: Precision = Precision.FP64) -> float:
        """Theoretical peak (2 ops per MAC) in GFLOPS."""
        return 2.0 * self.macs_per_cycle(precision) * self.frequency_hz / 1e9

    # ------------------------------------------------------------------ timing
    def tile_cycles(self, tr: int, tc: int, tk: int, precision: Precision = Precision.FP64) -> int:
        """Cycles to compute a (tr x tk) @ (tk x tc) tile GEMM.

        The B tile is loaded block-by-block (``rows x cols*lanes`` stationary
        blocks); for each stationary block the A rows stream through for ``tr``
        cycles.  Weight loading of the next block is double-buffered behind the
        current block's streaming, so only the first fill and the final drain
        of the ``rows + cols`` deep wavefront are exposed.
        """
        key = (tr, tc, tk, precision)
        cycles = self._tile_cycles_cache.get(key)
        if cycles is not None:
            return cycles
        if tr <= 0 or tc <= 0 or tk <= 0:
            raise ValueError("tile dimensions must be positive")
        lanes = precision.simd_ways
        stationary_blocks = math.ceil(tk / self.rows) * math.ceil(tc / (self.cols * lanes))
        streaming_cycles = stationary_blocks * tr
        fill_drain = self.rows + self.cols
        cycles = streaming_cycles + fill_drain
        self._tile_cycles_cache[key] = cycles
        return cycles

    def ideal_tile_cycles(self, tr: int, tc: int, tk: int, precision: Precision = Precision.FP64) -> float:
        """Lower bound: MACs divided by the array's MAC rate."""
        return tr * tc * tk / self.macs_per_cycle(precision)

    def tile_utilization(self, tr: int, tc: int, tk: int, precision: Precision = Precision.FP64) -> float:
        """Fraction of peak the array sustains on one tile (<= 1)."""
        return self.ideal_tile_cycles(tr, tc, tk, precision) / self.tile_cycles(tr, tc, tk, precision)

    # --------------------------------------------------------------- functional
    def compute_tile(
        self,
        a_tile: np.ndarray,
        b_tile: np.ndarray,
        c_tile: Optional[np.ndarray] = None,
        precision: Precision = Precision.FP64,
    ) -> TileComputeResult:
        """Compute ``C += A @ B`` for one tile in the datapath precision.

        Inputs are cast to the mode's storage precision and accumulated in the
        accumulator precision, which reproduces the numerical behaviour of the
        FP16x4 mode (FP16 operands, FP32 accumulation).
        """
        if a_tile.ndim != 2 or b_tile.ndim != 2:
            raise ValueError("tiles must be 2-D")
        if a_tile.shape[1] != b_tile.shape[0]:
            raise ValueError(f"tile shapes do not agree: {a_tile.shape} @ {b_tile.shape}")
        in_dtype = precision.dtype
        acc_dtype = precision.accumulate_dtype
        a_cast = a_tile.astype(in_dtype).astype(acc_dtype)
        b_cast = b_tile.astype(in_dtype).astype(acc_dtype)
        result = a_cast @ b_cast
        if c_tile is not None:
            if c_tile.shape != result.shape:
                raise ValueError(f"C tile shape {c_tile.shape} does not match {result.shape}")
            result = result + c_tile.astype(acc_dtype)
        tr, tk = a_tile.shape
        tc = b_tile.shape[1]
        cycles = self.tile_cycles(tr, tc, tk, precision)
        macs = tr * tc * tk
        self.total_macs += macs
        self.total_cycles += cycles
        return TileComputeResult(output=result.astype(acc_dtype), cycles=cycles, macs=macs)

    def compute_gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: Optional[np.ndarray] = None,
        precision: Precision = Precision.FP64,
        level1=None,
        level2=None,
    ) -> TileComputeResult:
        """Compute a full GEMM through the two-level MACO tile schedule.

        The operands are blocked with :class:`~repro.gemm.tiling.TwoLevelTiling`
        and every second-level tile runs through :meth:`compute_tile` in the
        exact visit order ``tiled_gemm_trace`` records, accumulating into the
        output in the mode's accumulator precision.  This is the functional
        twin of the MMAE controller's tiled execution, small enough for the
        conformance harness to check against a plain NumPy golden.
        """
        from repro.gemm.tiling import PAPER_LEVEL1, PAPER_LEVEL2, TwoLevelTiling
        from repro.gemm.workloads import GEMMShape

        if a.ndim != 2 or b.ndim != 2:
            raise ValueError("operands must be 2-D")
        m, k = a.shape
        k2, n = b.shape
        if k != k2:
            raise ValueError(f"inner dimensions do not match: {a.shape} @ {b.shape}")
        level1 = PAPER_LEVEL1 if level1 is None else level1
        level2 = PAPER_LEVEL2 if level2 is None else level2
        tiling = TwoLevelTiling(GEMMShape(m, n, k, precision), level1, level2)
        acc_dtype = precision.accumulate_dtype
        out = np.zeros((m, n), dtype=acc_dtype)
        if c is not None:
            if c.shape != (m, n):
                raise ValueError(f"C has shape {c.shape}, expected {(m, n)}")
            out += c.astype(acc_dtype)
        cycles = 0
        macs = 0
        for tile1 in tiling.level1_tiles():
            for tile in tiling.level2_tiles(tile1):
                result = self.compute_tile(
                    a[tile.row_start : tile.row_end, tile.k_start : tile.k_end],
                    b[tile.k_start : tile.k_end, tile.col_start : tile.col_end],
                    precision=precision,
                )
                out[tile.row_start : tile.row_end, tile.col_start : tile.col_end] += (
                    result.output
                )
                cycles += result.cycles
                macs += result.macs
        return TileComputeResult(output=out, cycles=cycles, macs=macs)


class SystolicArrayEmulator:
    """Cycle-stepped emulation of the input-stationary wavefront.

    The emulator instantiates real :class:`ProcessingElement` objects and
    advances the array cycle by cycle: A elements enter from the west edge
    skewed by row, partial sums propagate south, and results exit the south
    edge skewed by column.  It is quadratic in tile size and therefore only
    used on small tiles in the test-suite, where it validates both the
    numerical result and the ``rows + cols + tr - 2``-cycle latency the
    analytical model assumes for a single stationary block.
    """

    def __init__(self, rows: int = 4, cols: int = 4, precision: Precision = Precision.FP64) -> None:
        self.rows = rows
        self.cols = cols
        self.precision = precision
        self.pes = [
            [ProcessingElement(row=r, col=c, precision=precision) for c in range(cols)]
            for r in range(rows)
        ]

    def run_block(self, a_block: np.ndarray, b_block: np.ndarray) -> TileComputeResult:
        """Run one stationary block: ``a_block (tr x rows) @ b_block (rows x cols)``.

        The B block must match the array dimensions exactly (one stationary
        element per PE, single-lane mode).
        """
        if self.precision.simd_ways != 1:
            raise NotImplementedError("the emulator models the single-lane (FP64) dataflow")
        tr, depth = a_block.shape
        if depth != self.rows or b_block.shape != (self.rows, self.cols):
            raise ValueError(
                f"expected A (tr x {self.rows}) and B ({self.rows} x {self.cols}), "
                f"got {a_block.shape} and {b_block.shape}"
            )
        # Load stationary operands.
        for r in range(self.rows):
            for c in range(self.cols):
                self.pes[r][c].load_weights([float(b_block[r, c])])

        acc_dtype = self.precision.accumulate_dtype
        output = np.zeros((tr, self.cols), dtype=acc_dtype)
        total_cycles = self.rows + self.cols + tr - 2
        # a_wavefront[r] holds the skewed stream of A values entering row r.
        # partial[r][c] holds the value travelling from PE (r-1, c) to PE (r, c).
        partial = np.zeros((self.rows + 1, self.cols), dtype=acc_dtype)
        a_in_flight = np.zeros((self.rows, self.cols + 1), dtype=acc_dtype)
        for cycle in range(total_cycles):
            new_partial = np.zeros_like(partial)
            new_a = np.zeros_like(a_in_flight)
            for r in range(self.rows):
                # A value entering row r this cycle (skewed injection).
                inject_index = cycle - r
                if 0 <= inject_index < tr:
                    new_a[r, 0] = a_block[inject_index, r]
                for c in range(self.cols):
                    # The value arriving at PE (r, c) travelled from the west;
                    # column 0 consumes this cycle's injection directly.
                    a_value = new_a[r, 0] if c == 0 else a_in_flight[r, c]
                    p_value = partial[r, c]
                    result = self.pes[r][c].mac([float(a_value)], [float(p_value)])[0]
                    new_partial[r + 1, c] = result
                    new_a[r, c + 1] = a_value
            partial = new_partial
            a_in_flight = new_a
            # Collect results leaving the south edge: row index of the output is
            # determined by the injection skew.
            for c in range(self.cols):
                out_index = cycle - (self.rows - 1) - c
                if 0 <= out_index < tr:
                    output[out_index, c] = partial[self.rows, c]
        return TileComputeResult(output=output, cycles=total_cycles, macs=tr * self.rows * self.cols)


class VectorizedSystolicArrayEmulator:
    """NumPy wavefront emulator: the whole array advances one cycle per step.

    Models the same input-stationary dataflow as :class:`SystolicArrayEmulator`
    but replaces the per-PE ``mac()`` calls with whole-array shifts: each cycle
    the skewed A injections enter the west edge as one vector, every PE's
    multiply-accumulate happens as one elementwise ``partial + a * w``, and the
    south-edge drain is collected with one fancy-indexed store.  The per-cycle
    cost is O(1) NumPy calls instead of O(rows x cols) Python MACs, so the
    emulator stops being quadratic-Python and can validate wavefronts far above
    the scalar emulator's toy sizes.

    Outputs, cycle counts and the aggregate MAC count are bit-identical to the
    scalar emulator: the elementwise operations are the same IEEE multiplies
    and adds, applied to the same operands in the same cycle order (the parity
    tests assert ``array_equal``, not closeness).
    """

    def __init__(self, rows: int = 4, cols: int = 4, precision: Precision = Precision.FP64) -> None:
        self.rows = rows
        self.cols = cols
        self.precision = precision
        self.macs_performed = 0

    def run_block(self, a_block: np.ndarray, b_block: np.ndarray) -> TileComputeResult:
        """Run one stationary block: ``a_block (tr x rows) @ b_block (rows x cols)``.

        The B block must match the array dimensions exactly (one stationary
        element per PE, single-lane mode), as in the scalar emulator.
        """
        if self.precision.simd_ways != 1:
            raise NotImplementedError("the emulator models the single-lane (FP64) dataflow")
        rows, cols = self.rows, self.cols
        tr, depth = a_block.shape
        if depth != rows or b_block.shape != (rows, cols):
            raise ValueError(
                f"expected A (tr x {rows}) and B ({rows} x {cols}), "
                f"got {a_block.shape} and {b_block.shape}"
            )
        acc_dtype = self.precision.accumulate_dtype
        # Stationary operands, cast through the input precision exactly as
        # ProcessingElement.load_weights does.
        weights = b_block.astype(self.precision.dtype).astype(acc_dtype)
        a_cast = np.asarray(a_block, dtype=acc_dtype)

        output = np.zeros((tr, cols), dtype=acc_dtype)
        total_cycles = rows + cols + tr - 2
        partial = np.zeros((rows + 1, cols), dtype=acc_dtype)
        a_in_flight = np.zeros((rows, cols + 1), dtype=acc_dtype)
        row_index = np.arange(rows)
        col_index = np.arange(cols)
        a_arriving = np.empty((rows, cols), dtype=acc_dtype)
        for cycle in range(total_cycles):
            # Skewed injection: row r consumes A[cycle - r, r] this cycle.
            inject_index = cycle - row_index
            inject_valid = (inject_index >= 0) & (inject_index < tr)
            inject = np.zeros(rows, dtype=acc_dtype)
            inject[inject_valid] = a_cast[inject_index[inject_valid], row_index[inject_valid]]
            # Column 0 consumes this cycle's injection; columns 1.. consume the
            # values that travelled from their west neighbour.
            a_arriving[:, 0] = inject
            a_arriving[:, 1:] = a_in_flight[:, 1:cols]
            # One MAC per PE: partial sums advance one row south.
            new_partial = np.empty_like(partial)
            new_partial[0, :] = 0.0
            new_partial[1:, :] = partial[:rows, :] + a_arriving * weights
            partial = new_partial
            # A values advance one column east.
            a_in_flight[:, 1:] = a_arriving
            self.macs_performed += rows * cols
            # Collect results leaving the south edge (skewed by column).
            out_index = cycle - (rows - 1) - col_index
            out_valid = (out_index >= 0) & (out_index < tr)
            output[out_index[out_valid], col_index[out_valid]] = partial[rows, out_valid]
        return TileComputeResult(output=output, cycles=total_cycles, macs=tr * rows * cols)
