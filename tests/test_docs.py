"""The documentation layer stays honest: snippets parse, paths exist.

Imports ``tools/check_docs.py`` (also run standalone by the CI docs job) and
runs it over the real documents, plus negative tests proving the checker
actually catches rot.
"""

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "tools" / "check_docs.py")
check_docs = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs)


class TestRealDocuments:
    @pytest.mark.parametrize("document", [
        "README.md", "DESIGN.md", "docs/ARCHITECTURE.md",
        "docs/PARALLELISM.md", "docs/TUTORIAL.md",
    ])
    def test_document_exists_and_is_clean(self, document):
        path = REPO_ROOT / document
        assert path.exists(), f"{document} is missing"
        assert check_docs.check_file(path) == []

    def test_readme_covers_every_cli_subcommand(self):
        """The README quickstart must show a worked example per subcommand."""
        from repro.cli import build_parser

        subcommands = build_parser()._subparsers._group_actions[0].choices
        readme = (REPO_ROOT / "README.md").read_text()
        for name in subcommands:
            assert f"repro.cli {name}" in readme, f"README lacks an example for {name!r}"

    def test_architecture_names_every_package(self):
        text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text()
        packages = [p.name for p in (REPO_ROOT / "src" / "repro").iterdir()
                    if p.is_dir() and not p.name.startswith("__")]
        for package in packages:
            assert f"repro.{package}" in text, f"ARCHITECTURE.md lacks repro.{package}"

    def test_tutorial_tours_the_four_stops(self):
        """The tutorial must walk explore → workloads → parallel → serve."""
        text = (REPO_ROOT / "docs" / "TUTORIAL.md").read_text()
        for subcommand in ("explore", "workloads", "parallel", "serve"):
            assert f"repro.cli {subcommand}" in text, \
                f"TUTORIAL.md lacks a worked 'repro.cli {subcommand}' command"

    def test_parallelism_doc_defines_the_model(self):
        text = (REPO_ROOT / "docs" / "PARALLELISM.md").read_text()
        for topic in ("Tensor parallel", "Pipeline parallel", "ring all-reduce",
                      "conservation", "Background groups"):
            assert topic in text, f"PARALLELISM.md lacks {topic!r}"

    def test_design_documents_serving_model(self):
        text = (REPO_ROOT / "DESIGN.md").read_text()
        for topic in ("Serving model", "Arrival processes", "Queueing assumptions",
                      "Context-switch cost", "TENANT_SWITCH_FLUSH_CYCLES"):
            assert topic in text, f"DESIGN.md serving section lacks {topic!r}"


class TestCheckerCatchesRot:
    def check(self, tmp_path, body):
        path = tmp_path / "doc.md"
        path.write_text(body)
        return check_docs.check_file(path)

    def test_flags_broken_python_block(self, tmp_path):
        problems = self.check(tmp_path, "```python\ndef broken(:\n```\n")
        assert any("does not compile" in problem for problem in problems)

    def test_flags_unknown_cli_flag(self, tmp_path):
        problems = self.check(tmp_path, "```sh\npython -m repro.cli gemm --no-such-flag\n```\n")
        assert any("does not parse" in problem for problem in problems)

    def test_flags_unknown_subcommand(self, tmp_path):
        problems = self.check(tmp_path, "```sh\npython -m repro.cli frobnicate\n```\n")
        assert any("does not parse" in problem for problem in problems)

    def test_flags_missing_path(self, tmp_path):
        problems = self.check(tmp_path, "see src/repro/no_such_module.py for details\n")
        assert any("does not exist" in problem for problem in problems)

    def test_accepts_valid_snippets(self, tmp_path):
        body = (
            "```python\nprint('ok')\n```\n"
            "```sh\nPYTHONPATH=src python -m repro.cli serve --tenants 2  # comment\n"
            "python -m repro.cli explore --sample lhs \\\n    --points 4\n```\n"
            "see src/repro/cli.py\n"
        )
        assert self.check(tmp_path, body) == []

    def test_joins_backslash_continuations(self):
        joined = check_docs._join_continuations("python -m repro.cli bench --quick \\\n  --repeat 3")
        assert joined == ["python -m repro.cli bench --quick --repeat 3"]
