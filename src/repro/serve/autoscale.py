"""Fleet autoscaling and capacity-derived KV budgets for the serving loop.

Two related pieces of the elasticity story live here:

* :class:`Autoscaler` — a windowed, hysteresis-guarded controller that decides
  when the step-batching event loop should grow or shrink its fleet of group
  servers.  Scale-out triggers on sustained queue-depth or SLO-attainment
  pressure; scale-in triggers on sustained idleness and *drains* a group
  (stop admitting, let residents finish, merge the capacity back).  New
  capacity pays a modeled provisioning delay before it serves.  The
  controller is a pure state machine over per-window observations, so the
  golden conformance corpus can replay it against an independently computed
  scale-event timeline (``tests/golden/autoscale-*.json``).
* :func:`derive_kv_budget` — sizes the per-server KV budget from the modeled
  hardware instead of a hand-picked knob: each node's DRAM capacity share
  (:meth:`repro.mem.dram.DRAMModel.node_capacity_bytes`) minus the resident
  model weights under the active :class:`~repro.parallel.ParallelismSpec`
  (``tp``/``tp2d`` sharding divides the weights across the group, so wider
  groups free more KV room per node).

See DESIGN.md section 11 for the pressure signals and their thresholds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.config import MACOConfig
from repro.gemm.precision import Precision
from repro.mem.dram import DRAMModel

__all__ = [
    "AutoscalePolicy",
    "WindowStats",
    "Autoscaler",
    "ScaleEvent",
    "AutoscaleStats",
    "KVBudget",
    "derive_kv_budget",
]


@dataclass(frozen=True)
class AutoscalePolicy:
    """The autoscaler's thresholds, windows and delays (all per *group* server).

    ``min_groups``/``max_groups`` bound the committed fleet at every instant.
    Pressure is evaluated once per ``window_s`` of simulated time and must
    persist for ``sustain_windows`` consecutive windows before the controller
    acts (the hysteresis guard); after any decision a ``cooldown_s`` quiet
    period suppresses further decisions so the fleet cannot flap.  A
    scaled-out group is *committed* immediately (it counts against
    ``max_groups`` and accrues node-seconds) but only starts serving after
    ``provision_delay_s``.
    """

    min_groups: int = 1
    max_groups: int = 1
    window_s: float = 0.25
    sustain_windows: int = 2
    scale_out_queue_depth: float = 4.0
    scale_out_attainment: float = 0.9
    scale_in_queue_depth: float = 0.5
    cooldown_s: float = 1.0
    provision_delay_s: float = 0.5

    def __post_init__(self) -> None:
        if self.min_groups < 1:
            raise ValueError(f"min_groups must be at least 1, got {self.min_groups}")
        if self.max_groups < self.min_groups:
            raise ValueError(
                f"max_groups ({self.max_groups}) cannot be below "
                f"min_groups ({self.min_groups})")
        if self.window_s <= 0:
            raise ValueError(f"window_s must be positive, got {self.window_s}")
        if self.sustain_windows < 1:
            raise ValueError(
                f"sustain_windows must be at least 1, got {self.sustain_windows}")
        if self.scale_out_queue_depth <= 0:
            raise ValueError("scale_out_queue_depth must be positive")
        if not 0.0 < self.scale_out_attainment <= 1.0:
            raise ValueError("scale_out_attainment must be in (0, 1]")
        if self.scale_in_queue_depth < 0:
            raise ValueError("scale_in_queue_depth cannot be negative")
        if self.scale_in_queue_depth >= self.scale_out_queue_depth:
            raise ValueError(
                "scale_in_queue_depth must sit below scale_out_queue_depth "
                "(the hysteresis band)")
        if self.cooldown_s < 0 or self.provision_delay_s < 0:
            raise ValueError("cooldown_s and provision_delay_s cannot be negative")


@dataclass(frozen=True)
class WindowStats:
    """What the event loop observed during one pressure window."""

    queue_depth_peak: int
    served: int
    slo_misses: int


class Autoscaler:
    """The pure decision state machine behind the fleet lifecycle.

    The event loop calls :meth:`evaluate` once per elapsed window with the
    window's :class:`WindowStats`, the committed group count (serving,
    draining or provisioning — everything that costs node-seconds) and how
    many of those are draining.  The return value is ``None`` or a
    ``(direction, reason)`` pair: ``("out", "queue-pressure")``,
    ``("out", "slo-pressure")`` or ``("in", "idle")``.  Scale-out is bounded
    by the *committed* count (draining capacity still occupies nodes, so the
    fleet can never exceed ``max_groups`` at any instant); scale-in is
    bounded by the *serving* count (committed minus draining), so stacked
    drains cannot sink the fleet below ``min_groups``.  Mechanics — which
    group to provision or drain, the provisioning delay, admissions — belong
    to the caller; keeping the controller pure makes it replayable by the
    golden conformance corpus.
    """

    def __init__(self, policy: AutoscalePolicy) -> None:
        self.policy = policy
        self._out_streak = 0
        self._slo_streak = 0
        self._in_streak = 0
        self._cooldown_until = -math.inf

    def evaluate(
        self,
        time_s: float,
        stats: WindowStats,
        committed_groups: int,
        draining_groups: int = 0,
    ) -> Optional[Tuple[str, str]]:
        """Digest one window; return a scale decision or ``None``."""
        policy = self.policy
        serving = committed_groups - draining_groups
        depth_pressure = (
            stats.queue_depth_peak > policy.scale_out_queue_depth * serving)
        attainment = (
            1.0 - stats.slo_misses / stats.served if stats.served else None)
        slo_pressure = attainment is not None and attainment < policy.scale_out_attainment
        if depth_pressure or slo_pressure:
            self._out_streak += 1
            self._slo_streak = self._slo_streak + 1 if slo_pressure else 0
            self._in_streak = 0
        elif stats.queue_depth_peak <= policy.scale_in_queue_depth * serving:
            self._in_streak += 1
            self._out_streak = 0
            self._slo_streak = 0
        else:
            # Inside the hysteresis band: neither streak advances.
            self._out_streak = 0
            self._slo_streak = 0
            self._in_streak = 0
        if time_s < self._cooldown_until:
            return None
        if self._out_streak >= policy.sustain_windows:
            if committed_groups < policy.max_groups:
                reason = (
                    "slo-pressure"
                    if self._slo_streak >= policy.sustain_windows
                    else "queue-pressure")
                self._reset(time_s)
                return ("out", reason)
            return None
        if self._in_streak >= policy.sustain_windows:
            if serving > policy.min_groups:
                self._reset(time_s)
                return ("in", "idle")
            return None
        return None

    def _reset(self, time_s: float) -> None:
        self._out_streak = 0
        self._slo_streak = 0
        self._in_streak = 0
        self._cooldown_until = time_s + self.policy.cooldown_s


@dataclass(frozen=True)
class ScaleEvent:
    """One fleet-size decision, with the pressure reading that drove it.

    ``groups_before``/``groups_after`` count *committed* groups.  A scale-out
    commits group ``group_id`` at ``time_s`` but the group serves only from
    ``serving_from_s`` (the provisioning delay); a scale-in marks group
    ``group_id`` draining at ``time_s`` and the capacity merges back at
    ``stopped_s``, once the residents finish (equal to ``time_s`` when the
    group was idle).
    """

    time_s: float
    direction: str  # "out" | "in"
    reason: str  # "queue-pressure" | "slo-pressure" | "idle"
    groups_before: int
    groups_after: int
    queue_depth: int
    group_id: Optional[int] = None
    serving_from_s: Optional[float] = None  # scale-out only
    stopped_s: Optional[float] = None  # scale-in only


@dataclass(frozen=True)
class AutoscaleStats:
    """The autoscale section of a :class:`~repro.serve.report.ServeReport`.

    ``timeline`` samples the committed group count at every change —
    ``(time_s, groups)`` pairs starting at the segment start — and
    ``node_seconds`` integrates it: every committed group is charged from
    commitment (including the provisioning delay) to stop, times the nodes
    per group.  ``goodput_per_node_second`` is SLO-met completions per
    node-second, the fleet-efficiency figure the fixed-fleet baseline cannot
    improve while idle.
    """

    min_groups: int
    max_groups: int
    nodes_per_group: int
    provision_delay_s: float
    node_seconds: float
    goodput_per_node_second: float
    events: Tuple[ScaleEvent, ...]
    timeline: Tuple[Tuple[float, int], ...]


@dataclass(frozen=True)
class KVBudget:
    """A resolved per-server KV budget and where it came from.

    ``source`` is ``"auto"`` (derived from the DRAM capacity model),
    ``"explicit"`` (the caller passed bytes) or ``"default"``
    (:data:`~repro.serve.simulator.DEFAULT_KV_BUDGET_BYTES`).  The provenance
    fields are populated for auto budgets so feasibility errors can explain
    the sizing.
    """

    budget_bytes: float
    source: str
    capacity_bytes: Optional[int] = None
    weight_bytes: Optional[int] = None
    sharers: int = 1
    workload: Optional[str] = None

    def describe(self) -> str:
        """One-line provenance, used by feasibility error messages."""
        if self.source != "auto":
            return f"{self.budget_bytes / 1e6:.1f} MB ({self.source})"
        return (
            f"{self.budget_bytes / 1e6:.1f} MB auto-derived: "
            f"{self.capacity_bytes / 1e6:.1f} MB node DRAM capacity - "
            f"{self.weight_bytes / 1e6:.1f} MB resident weights "
            f"({self.workload}, sharded {self.sharers}x)")


def derive_kv_budget(
    config: MACOConfig,
    pairs: Sequence[Tuple[str, Precision]],
    sharers: int = 1,
    num_nodes: int = 1,
) -> KVBudget:
    """Size the per-server KV budget from the DRAM capacity model.

    Each node's share of the aggregate DRAM capacity must hold the resident
    model weights plus the KV cache.  The weights come from the workload
    graph's :attr:`~repro.workloads.graph.WorkloadGraph.weight_bytes`; a
    tensor-parallel group of ``sharers`` nodes holds each model sharded, so
    the per-node weight share divides by the group degree (rounded up).
    Co-resident workloads share a server one batch at a time, so the budget
    subtracts the *largest* weight share among the trace's distinct
    ``(workload, precision)`` pairs, not their sum.  Raises ``ValueError``
    with full provenance when the weights alone exceed the capacity.
    """
    from repro.workloads.registry import workload_graph_by_name

    if sharers < 1:
        raise ValueError(f"sharers must be at least 1, got {sharers}")
    if not pairs:
        raise ValueError("derive_kv_budget needs at least one (workload, precision) pair")
    capacity = DRAMModel(config=config.memory.dram).node_capacity_bytes(num_nodes)
    weight_share = 0
    dominant = None
    for workload, precision in sorted(set(pairs), key=lambda p: (p[0], p[1].name)):
        graph = workload_graph_by_name(workload, precision)
        share = -(-graph.weight_bytes // sharers)  # ceil division
        if share > weight_share:
            weight_share = share
            dominant = workload
    budget = capacity - weight_share
    if budget <= 0:
        raise ValueError(
            f"model weights alone exceed the node DRAM capacity: workload "
            f"{dominant!r} keeps {weight_share / 1e6:.1f} MB resident per node "
            f"(sharded {sharers}x) but each of {num_nodes} nodes owns only "
            f"{capacity / 1e6:.1f} MB; widen the parallelism group or grow "
            "DRAMConfig.channel_capacity_bytes")
    return KVBudget(
        budget_bytes=float(budget),
        source="auto",
        capacity_bytes=capacity,
        weight_bytes=weight_share,
        sharers=sharers,
        workload=dominant,
    )
