"""Tests for the MOESI directory controller (the CCM)."""

from hypothesis import given, settings, strategies as st

from repro.mem.coherence import CoherenceState, DirectoryController


LINE = 0x4000


class TestReads:
    def test_first_read_fetches_from_memory_exclusive(self):
        ccm = DirectoryController()
        response = ccm.handle_read(0, LINE)
        assert response.data_from_memory
        assert ccm.lookup_state(LINE) is CoherenceState.EXCLUSIVE

    def test_second_reader_shares(self):
        ccm = DirectoryController()
        ccm.handle_read(0, LINE)
        response = ccm.handle_read(1, LINE)
        assert not response.data_from_memory
        assert response.forwarded_from_owner
        assert ccm.lookup_state(LINE) is CoherenceState.SHARED
        assert ccm.sharers_of(LINE) == {0, 1}

    def test_read_after_modified_goes_owned(self):
        ccm = DirectoryController()
        ccm.handle_write(0, LINE)
        ccm.handle_read(1, LINE)
        assert ccm.lookup_state(LINE) is CoherenceState.OWNED
        assert ccm.sharers_of(LINE) == {0, 1}

    def test_owner_re_read_is_silent(self):
        ccm = DirectoryController()
        ccm.handle_read(0, LINE)
        response = ccm.handle_read(0, LINE)
        assert not response.forwarded_from_owner
        assert ccm.lookup_state(LINE) is CoherenceState.EXCLUSIVE


class TestWrites:
    def test_write_invalidates_sharers(self):
        ccm = DirectoryController()
        for node in range(4):
            ccm.handle_read(node, LINE)
        response = ccm.handle_write(3, LINE)
        assert response.invalidations_sent == 3
        assert ccm.lookup_state(LINE) is CoherenceState.MODIFIED
        assert ccm.sharers_of(LINE) == {3}

    def test_write_to_invalid_fetches_memory(self):
        ccm = DirectoryController()
        response = ccm.handle_write(2, LINE)
        assert response.data_from_memory
        assert ccm.lookup_state(LINE) is CoherenceState.MODIFIED

    def test_write_after_write_transfers_ownership(self):
        ccm = DirectoryController()
        ccm.handle_write(0, LINE)
        response = ccm.handle_write(1, LINE)
        assert response.forwarded_from_owner
        assert response.invalidations_sent == 1
        assert ccm.sharers_of(LINE) == {1}

    def test_messages_account_for_invalidations(self):
        ccm = DirectoryController()
        ccm.handle_read(0, LINE)
        ccm.handle_read(1, LINE)
        response = ccm.handle_write(2, LINE)
        # data/ack + (inval + ack) per sharer.
        assert response.messages == 1 + 2 * response.invalidations_sent + (1 if response.forwarded_from_owner else 0)


class TestEvictions:
    def test_modified_eviction_writes_back(self):
        ccm = DirectoryController()
        ccm.handle_write(0, LINE)
        assert ccm.handle_eviction(0, LINE) is True
        assert ccm.lookup_state(LINE) is CoherenceState.INVALID

    def test_shared_eviction_no_writeback(self):
        ccm = DirectoryController()
        ccm.handle_read(0, LINE)
        ccm.handle_read(1, LINE)
        assert ccm.handle_eviction(1, LINE) is False
        assert ccm.lookup_state(LINE) is CoherenceState.SHARED

    def test_last_sharer_eviction_invalidates(self):
        ccm = DirectoryController()
        ccm.handle_read(0, LINE)
        ccm.handle_read(1, LINE)
        ccm.handle_eviction(0, LINE)
        ccm.handle_eviction(1, LINE)
        assert ccm.lookup_state(LINE) is CoherenceState.INVALID

    def test_eviction_of_untracked_line_is_noop(self):
        ccm = DirectoryController()
        assert ccm.handle_eviction(0, 0x9999) is False


class TestProtocolInvariants:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["read", "write", "evict"]),
                st.integers(min_value=0, max_value=7),   # node
                st.integers(min_value=0, max_value=3),   # line index
            ),
            min_size=1,
            max_size=100,
        )
    )
    def test_random_traffic_never_violates_moesi(self, operations):
        """Whatever the request interleaving, the directory invariants must hold."""
        ccm = DirectoryController()
        for op, node, line_index in operations:
            line = line_index * 64
            if op == "read":
                ccm.handle_read(node, line)
            elif op == "write":
                ccm.handle_write(node, line)
            else:
                ccm.handle_eviction(node, line)
            ccm.check_all_invariants()

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=2, max_size=20))
    def test_single_writer_invariant(self, writers):
        ccm = DirectoryController()
        for node in writers:
            ccm.handle_write(node, LINE)
            assert ccm.sharers_of(LINE) == {node}
