"""Request traces for the multi-tenant serving simulator.

A serving scenario starts from a :class:`RequestTrace`: a time-ordered list of
:class:`Request` arrivals, each tagged with a tenant and a model from the
workload registry (:mod:`repro.workloads.registry`).  Traces come from three
generators —

* :func:`poisson_trace` — independent Poisson arrivals per tenant (the
  classic open-loop serving assumption);
* :func:`bursty_trace` — an on/off modulated Poisson process (Lewis–Shedler
  thinning) that concentrates arrivals into periodic bursts while preserving
  the mean rate;
* :func:`replay_trace` — arrivals replayed from a JSON file or records, for
  reproducing production traces.

All generators are seeded and fully deterministic: every tenant draws from a
private ``random.Random`` seeded with a string (string seeding hashes through
SHA-512, so it is stable across processes and ``PYTHONHASHSEED`` values).

Storage is *columnar first*: the generators produce a :class:`TraceColumns`
record — parallel NumPy arrays of arrival times, tenant/workload ids,
priorities and SLO targets — so a million-request trace costs megabytes, not a
million dataclasses.  :class:`RequestTrace` wraps the columns and materialises
:class:`Request` objects lazily, only when someone actually iterates them.

The generators are vectorised but bit-equal to their per-request references
(:func:`poisson_trace_scalar` / :func:`bursty_trace_scalar`), which are kept
both as documentation and as the parity oracle for the tests.  Two facts make
exact equality possible: ``numpy``'s ``MT19937`` bit generator can be seeded
with the *state* of a ``random.Random`` and then reproduces its uniform stream
double for double, and ``np.log``/``np.cumsum`` evaluate element-wise
identically whether applied to one value or a chunk.  The scalar references
therefore route their single-value ``log`` through NumPy too, and the
vectorised paths consume the uniform stream in exactly the per-request order.
"""

from __future__ import annotations

import json
import math
import random
from bisect import bisect_right
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.gemm.precision import Precision
from repro.workloads.registry import workload_names

__all__ = [
    "Request",
    "TenantSpec",
    "TraceColumns",
    "RequestTrace",
    "default_tenants",
    "llm_tenants",
    "poisson_trace",
    "poisson_trace_scalar",
    "bursty_trace",
    "bursty_trace_scalar",
    "replay_trace",
]


@dataclass(frozen=True, slots=True)
class Request:
    """One inference request: a tenant asks for one model invocation.

    ``workload`` names an entry of the workload registry (``resnet50``,
    ``bert``, ``gpt3``); ``arrival_s`` is the arrival time in seconds from
    the start of the trace.  ``priority`` is the scheduling tier (larger is
    more important; the priority/slo policies serve higher tiers first and
    preempt lower ones), and ``ttft_slo_s``/``tpot_slo_s`` are the tenant's
    latency deadlines — time to first token and time per output token —
    against which the report scores SLO attainment and goodput (``None``
    means the request carries no deadline and always counts as met).
    """

    request_id: int
    tenant: str
    workload: str
    arrival_s: float
    precision: Precision = Precision.FP32
    priority: int = 0
    ttft_slo_s: Optional[float] = None
    tpot_slo_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError(f"arrival time cannot be negative, got {self.arrival_s}")
        if self.ttft_slo_s is not None and self.ttft_slo_s <= 0:
            raise ValueError(f"TTFT SLO must be positive, got {self.ttft_slo_s}")
        if self.tpot_slo_s is not None and self.tpot_slo_s <= 0:
            raise ValueError(f"TPOT SLO must be positive, got {self.tpot_slo_s}")


@dataclass(frozen=True)
class TenantSpec:
    """A tenant's traffic description: mean arrival rate and workload mix.

    ``mix`` is a tuple of ``(workload name, weight)`` pairs; weights are
    normalised when sampling, so they only need to be positive.
    ``priority`` and the TTFT/TPOT SLO targets are stamped onto every request
    the tenant generates (see :class:`Request`): priority tiers order
    admission and preemption under the priority/slo policies, and the
    deadlines feed the report's SLO-attainment and goodput figures.
    """

    name: str
    rate_rps: float = 8.0
    mix: Tuple[Tuple[str, float], ...] = (("bert", 1.0),)
    priority: int = 0
    ttft_slo_s: Optional[float] = None
    tpot_slo_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError(f"tenant {self.name!r}: rate must be positive, got {self.rate_rps}")
        if not self.mix:
            raise ValueError(f"tenant {self.name!r}: workload mix cannot be empty")
        if any(weight <= 0 for _, weight in self.mix):
            raise ValueError(f"tenant {self.name!r}: mix weights must be positive")
        if self.ttft_slo_s is not None and self.ttft_slo_s <= 0:
            raise ValueError(f"tenant {self.name!r}: TTFT SLO must be positive")
        if self.tpot_slo_s is not None and self.tpot_slo_s <= 0:
            raise ValueError(f"tenant {self.name!r}: TPOT SLO must be positive")

    def with_rate(self, rate_rps: float) -> "TenantSpec":
        """Copy of this spec with a different mean arrival rate."""
        return replace(self, rate_rps=rate_rps)

    def with_slo(
        self,
        ttft_slo_s: Optional[float] = None,
        tpot_slo_s: Optional[float] = None,
        priority: Optional[int] = None,
    ) -> "TenantSpec":
        """Copy of this spec with SLO deadlines (and optionally a priority tier)."""
        return replace(
            self,
            ttft_slo_s=ttft_slo_s,
            tpot_slo_s=tpot_slo_s,
            priority=self.priority if priority is None else priority,
        )

    def _cumulative_weights(self) -> List[float]:
        """The running mix-weight sums, accumulated left to right.

        Both sampling paths compare draws against these exact partial sums —
        the scalar scan and the vectorised ``searchsorted`` therefore pick
        identical workloads for identical uniforms.
        """
        cumulative, partials = 0.0, []
        for _, weight in self.mix:
            cumulative += weight
            partials.append(cumulative)
        return partials

    def pick_workload(self, rng: random.Random) -> str:
        """Draw one workload name from the (normalised) mix."""
        total = sum(weight for _, weight in self.mix)
        draw = rng.random() * total
        cumulative = 0.0
        for name, weight in self.mix:
            cumulative += weight
            if draw < cumulative:
                return name
        return self.mix[-1][0]

    def mean_mix_weights(self) -> List[Tuple[str, float]]:
        """The mix with weights normalised to sum to 1."""
        total = sum(weight for _, weight in self.mix)
        return [(name, weight / total) for name, weight in self.mix]


@dataclass(frozen=True)
class TraceColumns:
    """Columnar request storage: parallel arrays plus interning tables.

    Row ``i`` describes one request; ``tenant_id``/``workload_id``/
    ``precision_id`` index the ``tenants``/``workloads``/``precisions``
    tables.  SLO targets use ``nan`` for "no deadline".  ``request_id``
    carries the public ids (``arange(n)`` for generated traces, arbitrary for
    hand-built ones), so a trace round-trips through columns losslessly.
    """

    tenants: Tuple[str, ...]
    workloads: Tuple[str, ...]
    precisions: Tuple[Precision, ...]
    request_id: np.ndarray
    arrival_s: np.ndarray
    tenant_id: np.ndarray
    workload_id: np.ndarray
    precision_id: np.ndarray
    priority: np.ndarray
    ttft_slo_s: np.ndarray
    tpot_slo_s: np.ndarray

    def __len__(self) -> int:
        return len(self.arrival_s)

    @property
    def nbytes(self) -> int:
        """Total array payload — the reason a 1M-request trace fits in MBs."""
        return sum(
            getattr(self, column).nbytes
            for column in ("request_id", "arrival_s", "tenant_id", "workload_id",
                           "precision_id", "priority", "ttft_slo_s", "tpot_slo_s")
        )

    @classmethod
    def from_requests(cls, requests: Sequence[Request]) -> "TraceColumns":
        """Intern a request list into columns (row order preserved)."""
        tenants = tuple(sorted({request.tenant for request in requests}))
        workloads = tuple(sorted({request.workload for request in requests}))
        precisions = tuple(sorted({request.precision for request in requests},
                                  key=lambda p: p.name))
        tenant_index = {name: i for i, name in enumerate(tenants)}
        workload_index = {name: i for i, name in enumerate(workloads)}
        precision_index = {p: i for i, p in enumerate(precisions)}
        n = len(requests)
        return cls(
            tenants=tenants,
            workloads=workloads,
            precisions=precisions,
            request_id=np.fromiter((r.request_id for r in requests), np.int64, n),
            arrival_s=np.fromiter((r.arrival_s for r in requests), np.float64, n),
            tenant_id=np.fromiter((tenant_index[r.tenant] for r in requests), np.int32, n),
            workload_id=np.fromiter((workload_index[r.workload] for r in requests), np.int32, n),
            precision_id=np.fromiter((precision_index[r.precision] for r in requests), np.int16, n),
            priority=np.fromiter((r.priority for r in requests), np.int32, n),
            ttft_slo_s=np.fromiter(
                (math.nan if r.ttft_slo_s is None else r.ttft_slo_s for r in requests),
                np.float64, n),
            tpot_slo_s=np.fromiter(
                (math.nan if r.tpot_slo_s is None else r.tpot_slo_s for r in requests),
                np.float64, n),
        )

    def materialize(self) -> List[Request]:
        """Build the :class:`Request` objects for every row (O(n) dataclasses)."""
        ttft = self.ttft_slo_s
        tpot = self.tpot_slo_s
        return [
            Request(
                request_id=int(self.request_id[i]),
                tenant=self.tenants[self.tenant_id[i]],
                workload=self.workloads[self.workload_id[i]],
                arrival_s=float(self.arrival_s[i]),
                precision=self.precisions[self.precision_id[i]],
                priority=int(self.priority[i]),
                ttft_slo_s=None if math.isnan(ttft[i]) else float(ttft[i]),
                tpot_slo_s=None if math.isnan(tpot[i]) else float(tpot[i]),
            )
            for i in range(len(self))
        ]

    def to_records(self) -> List[dict]:
        """JSON-able arrival records, identical to the request-list rendering."""
        records = []
        ttft = self.ttft_slo_s
        tpot = self.tpot_slo_s
        for i in range(len(self)):
            record = {
                "tenant": self.tenants[self.tenant_id[i]],
                "workload": self.workloads[self.workload_id[i]],
                "arrival_s": float(self.arrival_s[i]),
                "precision": self.precisions[self.precision_id[i]].name.lower(),
            }
            if self.priority[i]:
                record["priority"] = int(self.priority[i])
            if not math.isnan(ttft[i]):
                record["ttft_slo_s"] = float(ttft[i])
            if not math.isnan(tpot[i]):
                record["tpot_slo_s"] = float(tpot[i])
            records.append(record)
        return records


class RequestTrace:
    """A time-ordered request arrival trace for one serving scenario.

    Holds either a :class:`Request` list, a :class:`TraceColumns` record, or
    both; each view is derived lazily from the other, so the array engines
    read columns without ever materialising a million dataclasses, while
    code that iterates requests keeps working unchanged.
    """

    def __init__(
        self,
        name: str,
        requests: Optional[List[Request]] = None,
        duration_s: float = 0.0,
        columns: Optional[TraceColumns] = None,
    ) -> None:
        if duration_s < 0:
            raise ValueError("trace duration cannot be negative")
        if requests is None and columns is None:
            requests = []
        self.name = name
        self.duration_s = duration_s
        self._requests = requests
        self._columns = columns

    @property
    def requests(self) -> List[Request]:
        """The materialised request list (built from columns on first use)."""
        if self._requests is None:
            self._requests = self._columns.materialize()
        return self._requests

    @property
    def columns(self) -> TraceColumns:
        """The columnar view (interned from the request list on first use)."""
        if self._columns is None:
            self._columns = TraceColumns.from_requests(self._requests)
        return self._columns

    def __len__(self) -> int:
        if self._columns is not None:
            return len(self._columns)
        return len(self._requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    @property
    def tenants(self) -> List[str]:
        """Tenant names appearing in the trace, sorted."""
        if self._columns is not None:
            used = np.unique(self._columns.tenant_id)
            return sorted(self._columns.tenants[i] for i in used)
        return sorted({request.tenant for request in self._requests})

    @property
    def workloads(self) -> List[str]:
        """Distinct workload names appearing in the trace, sorted."""
        if self._columns is not None:
            used = np.unique(self._columns.workload_id)
            return sorted(self._columns.workloads[i] for i in used)
        return sorted({request.workload for request in self._requests})

    def to_records(self) -> List[dict]:
        """JSON-able arrival records (the :func:`replay_trace` input format).

        Priority and SLO fields are emitted only when set, so traces recorded
        before those fields existed keep their byte-identical JSON form.
        """
        if self._requests is None:
            return self._columns.to_records()
        records = []
        for request in self._requests:
            record = {
                "tenant": request.tenant,
                "workload": request.workload,
                "arrival_s": request.arrival_s,
                "precision": request.precision.name.lower(),
            }
            if request.priority != 0:
                record["priority"] = request.priority
            if request.ttft_slo_s is not None:
                record["ttft_slo_s"] = request.ttft_slo_s
            if request.tpot_slo_s is not None:
                record["tpot_slo_s"] = request.tpot_slo_s
            records.append(record)
        return records

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as a JSON record list that :func:`replay_trace` reads back."""
        Path(path).write_text(json.dumps(self.to_records(), indent=2) + "\n")


#: Per-request scheduling metadata carried through trace generation:
#: ``(priority, ttft_slo_s, tpot_slo_s)``.
_SLOFields = Tuple[int, Optional[float], Optional[float]]

_NO_SLO: _SLOFields = (0, None, None)


def _slo_fields(spec: TenantSpec) -> _SLOFields:
    return (spec.priority, spec.ttft_slo_s, spec.tpot_slo_s)


def _finalize(name: str, pending: List[Tuple[float, str, int, str, Precision, _SLOFields]],
              duration_s: float) -> RequestTrace:
    """Sort merged per-tenant arrivals and assign stable request ids.

    The sort key ``(arrival, tenant, per-tenant sequence)`` breaks ties
    deterministically, so the same inputs always produce the same ids.
    """
    pending.sort(key=lambda item: (item[0], item[1], item[2]))
    requests = [
        Request(request_id=index, tenant=tenant, workload=workload,
                arrival_s=arrival, precision=precision,
                priority=slo[0], ttft_slo_s=slo[1], tpot_slo_s=slo[2])
        for index, (arrival, tenant, _seq, workload, precision, slo) in enumerate(pending)
    ]
    return RequestTrace(name=name, requests=requests, duration_s=duration_s)


def default_tenants(count: int, rate_rps: float = 8.0) -> List[TenantSpec]:
    """``count`` tenants with rotating workload mixes over the registry.

    Tenant ``i`` leans 70% on registry model ``i mod len(registry)`` with the
    remaining 30% spread over the other models, so multi-tenant traces mix
    models without any randomness in the specs themselves.
    """
    if count < 1:
        raise ValueError(f"tenant count must be >= 1, got {count}")
    names = workload_names()
    specs = []
    for index in range(count):
        dominant = names[index % len(names)]
        others = [name for name in names if name != dominant]
        mix = [(dominant, 0.7)] + [(name, 0.3 / len(others)) for name in others]
        specs.append(TenantSpec(name=f"tenant{index}", rate_rps=rate_rps, mix=tuple(mix)))
    return specs


def llm_tenants(count: int, rate_rps: float = 8.0, variant: str = "llama-7b") -> List[TenantSpec]:
    """``count`` LLM tenants alternating prefill-heavy and decode-heavy mixes.

    Even-indexed tenants lean 80% on the prompt-ingest phase graph
    (``variant@prefill``) and odd-indexed tenants 80% on token generation
    (``variant@decode``), so a multi-tenant trace exercises both ends of the
    prefill/decode spectrum against the same fleet.  The registry names are
    resolved through :func:`repro.workloads.workload_graph_by_name`, so any
    catalog LLM variant works.
    """
    if count < 1:
        raise ValueError(f"tenant count must be >= 1, got {count}")
    # ``variant`` may already carry an @spec (e.g. "llama-7b@layers=2"); the
    # phase tag then joins the existing parameter list instead.  It must not
    # already select phases, though — the tenants are defined by adding the
    # prefill/decode split on top.
    spec = variant.partition("@")[2]
    # The registry resolves names case-insensitively, so normalize before
    # matching phase tags.
    tokens = [token.strip().lower() for token in spec.split(",") if token.strip()]
    if any(token in ("prefill", "decode") or token.startswith("phases=") for token in tokens):
        raise ValueError(
            f"variant {variant!r} already selects phases; pass the base variant "
            f"(e.g. 'llama-7b' or 'llama-7b@layers=2') and llm_tenants will add "
            f"the prefill/decode split per tenant")
    separator = "," if "@" in variant else "@"
    prefill = f"{variant}{separator}prefill"
    decode = f"{variant}{separator}decode"
    specs = []
    for index in range(count):
        if index % 2 == 0:
            name, mix = f"tenant{index}-prefill", ((prefill, 0.8), (decode, 0.2))
        else:
            name, mix = f"tenant{index}-decode", ((decode, 0.8), (prefill, 0.2))
        specs.append(TenantSpec(name=name, rate_rps=rate_rps, mix=mix))
    return specs


# --------------------------------------------------------------- RNG plumbing
def _seeded_generator(seed_string: str) -> np.random.Generator:
    """A NumPy generator continuing ``random.Random(seed_string)``'s stream.

    ``random.Random`` and NumPy's ``MT19937`` share the same core generator
    and the same 53-bit uniform recipe, so installing the stdlib state into
    the bit generator makes ``Generator.random(n)`` reproduce the exact
    doubles ``rng.random()`` would have produced, one for one.  That is the
    bridge that lets the vectorised trace generators stay bit-identical to
    the scalar references while drawing whole arrays at once.
    """
    state = random.Random(seed_string).getstate()
    key = np.array(state[1][:-1], dtype=np.uint32)
    bit_generator = np.random.MT19937()
    bit_generator.state = {
        "bit_generator": "MT19937",
        "state": {"key": key, "pos": state[1][-1]},
    }
    return np.random.Generator(bit_generator)


def _exp_gap(uniform: float, rate: float) -> float:
    """One exponential inter-arrival gap from one uniform draw.

    Routed through ``np.log`` (not ``math.log``: the two can differ in the
    last ulp) so the scalar generators consume uniforms exactly like the
    vectorised ``-np.log(1 - u) / rate`` over a chunk.
    """
    return float(-np.log(1.0 - uniform) / rate)


def _merge_tenant_columns(
    name: str,
    duration_s: float,
    precision: Precision,
    per_tenant: List[Tuple[TenantSpec, np.ndarray, np.ndarray]],
) -> RequestTrace:
    """Merge per-tenant ``(spec, arrivals, workload ids)`` into a sorted trace.

    Reproduces :func:`_finalize`'s canonical ``(arrival, tenant name,
    per-tenant sequence)`` order with a single ``lexsort``, then assigns
    request ids by position.  Workload ids index each tenant's ``mix``; they
    are re-interned into the trace-wide sorted workload table here.
    """
    tenant_names = sorted({spec.name for spec, _, _ in per_tenant})
    tenant_rank = {tenant: rank for rank, tenant in enumerate(tenant_names)}
    workload_table = sorted({
        workload for spec, _, picks in per_tenant if len(picks) for workload, _ in spec.mix
    })
    workload_rank = {workload: rank for rank, workload in enumerate(workload_table)}

    chunks_arrival, chunks_tenant, chunks_workload = [], [], []
    chunks_sequence, chunks_priority, chunks_ttft, chunks_tpot = [], [], [], []
    for spec, arrivals, picks in per_tenant:
        count = len(arrivals)
        if not count:
            continue
        mix_ranks = np.array([workload_rank[w] for w, _ in spec.mix], dtype=np.int32)
        chunks_arrival.append(arrivals)
        chunks_tenant.append(np.full(count, tenant_rank[spec.name], dtype=np.int32))
        chunks_workload.append(mix_ranks[picks])
        chunks_sequence.append(np.arange(count, dtype=np.int64))
        chunks_priority.append(np.full(count, spec.priority, dtype=np.int32))
        ttft = math.nan if spec.ttft_slo_s is None else spec.ttft_slo_s
        tpot = math.nan if spec.tpot_slo_s is None else spec.tpot_slo_s
        chunks_ttft.append(np.full(count, ttft, dtype=np.float64))
        chunks_tpot.append(np.full(count, tpot, dtype=np.float64))

    if not chunks_arrival:
        columns = TraceColumns(
            tenants=(), workloads=(), precisions=(precision,),
            request_id=np.empty(0, np.int64), arrival_s=np.empty(0, np.float64),
            tenant_id=np.empty(0, np.int32), workload_id=np.empty(0, np.int32),
            precision_id=np.empty(0, np.int16), priority=np.empty(0, np.int32),
            ttft_slo_s=np.empty(0, np.float64), tpot_slo_s=np.empty(0, np.float64),
        )
        return RequestTrace(name=name, duration_s=duration_s, columns=columns)

    arrival = np.concatenate(chunks_arrival)
    tenant = np.concatenate(chunks_tenant)
    sequence = np.concatenate(chunks_sequence)
    order = np.lexsort((sequence, tenant, arrival))
    # Tenants that produced no arrivals drop out of the interning tables, so
    # the columns match what a per-request build would have seen.
    used = np.unique(tenant)
    if len(used) != len(tenant_names):
        remap = np.zeros(len(tenant_names), dtype=np.int32)
        remap[used] = np.arange(len(used), dtype=np.int32)
        tenant = remap[tenant]
        tenant_names = [tenant_names[i] for i in used]
    columns = TraceColumns(
        tenants=tuple(tenant_names),
        workloads=tuple(workload_table),
        precisions=(precision,),
        request_id=np.arange(len(arrival), dtype=np.int64),
        arrival_s=arrival[order],
        tenant_id=tenant[order],
        workload_id=np.concatenate(chunks_workload)[order],
        precision_id=np.zeros(len(arrival), dtype=np.int16),
        priority=np.concatenate(chunks_priority)[order],
        ttft_slo_s=np.concatenate(chunks_ttft)[order],
        tpot_slo_s=np.concatenate(chunks_tpot)[order],
    )
    return RequestTrace(name=name, duration_s=duration_s, columns=columns)


def _pick_workloads(spec: TenantSpec, uniforms: np.ndarray) -> np.ndarray:
    """Vectorised :meth:`TenantSpec.pick_workload` over a uniform array.

    ``searchsorted(side="right")`` against the exact running weight sums
    returns the first index whose cumulative weight exceeds the draw — the
    same comparison the scalar scan makes — and the clip reproduces its
    fall-through to the last mix entry.
    """
    cumulative = np.array(spec._cumulative_weights(), dtype=np.float64)
    total = sum(weight for _, weight in spec.mix)
    draws = uniforms * total
    picks = np.searchsorted(cumulative, draws, side="right")
    return np.minimum(picks, len(cumulative) - 1).astype(np.int32)


def poisson_trace(
    tenants: Sequence[TenantSpec],
    duration_s: float,
    seed: int = 0,
    precision: Precision = Precision.FP32,
) -> RequestTrace:
    """Independent Poisson arrivals per tenant over ``duration_s`` seconds.

    Vectorised: each tenant's whole uniform stream is drawn as one chunk
    (sized from the expected count plus six sigma of slack, doubled on the
    rare shortfall), split into the alternating gap/pick positions the scalar
    loop would have consumed, and turned into arrivals with one ``log``, one
    ``cumsum`` and one ``searchsorted``.  Bit-identical to
    :func:`poisson_trace_scalar` element for element.
    """
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    per_tenant = []
    for spec in tenants:
        expected = spec.rate_rps * duration_s
        draws = int(expected + 6.0 * math.sqrt(expected + 1.0)) + 16
        while True:
            rng = _seeded_generator(f"{seed}/poisson/{spec.name}")
            uniforms = rng.random(2 * draws)
            gaps = -np.log(1.0 - uniforms[0::2]) / spec.rate_rps
            arrivals = np.cumsum(gaps)
            # The scalar loop stops at the first clock >= duration; that
            # terminating draw must be inside the chunk or the count is a lie.
            count = int(np.searchsorted(arrivals, duration_s, side="left"))
            if count < len(gaps):
                break
            draws *= 2
        picks = _pick_workloads(spec, uniforms[1::2][:count])
        per_tenant.append((spec, arrivals[:count], picks))
    return _merge_tenant_columns(f"poisson-seed{seed}", duration_s, precision, per_tenant)


def poisson_trace_scalar(
    tenants: Sequence[TenantSpec],
    duration_s: float,
    seed: int = 0,
    precision: Precision = Precision.FP32,
) -> RequestTrace:
    """Per-request reference implementation of :func:`poisson_trace`.

    Kept as the parity oracle: the vectorised generator must reproduce this
    trace bit for bit (``to_records()`` equality) for every seed.
    """
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    pending: List[Tuple[float, str, int, str, Precision, _SLOFields]] = []
    for spec in tenants:
        rng = random.Random(f"{seed}/poisson/{spec.name}")
        slo = _slo_fields(spec)
        clock, sequence = 0.0, 0
        while True:
            clock += _exp_gap(rng.random(), spec.rate_rps)
            if clock >= duration_s:
                break
            pending.append((clock, spec.name, sequence, spec.pick_workload(rng), precision, slo))
            sequence += 1
    return _finalize(f"poisson-seed{seed}", pending, duration_s)


def _bursty_rates(spec: TenantSpec, burst_factor: float, burst_fraction: float) -> Tuple[float, float]:
    """(on rate, off rate) preserving the spec's mean rate exactly."""
    if burst_factor * burst_fraction >= 1.0:
        return spec.rate_rps / burst_fraction, 0.0
    on_rate = spec.rate_rps * burst_factor
    off_rate = spec.rate_rps * (1.0 - burst_factor * burst_fraction) / (1.0 - burst_fraction)
    return on_rate, off_rate


def bursty_trace(
    tenants: Sequence[TenantSpec],
    duration_s: float,
    seed: int = 0,
    precision: Precision = Precision.FP32,
    burst_factor: float = 8.0,
    burst_fraction: float = 0.2,
    cycle_s: float = 0.25,
) -> RequestTrace:
    """On/off modulated Poisson arrivals: periodic bursts, same mean rate.

    Each tenant's rate alternates between an elevated burst rate during the
    first ``burst_fraction`` of every ``cycle_s``-second cycle and a reduced
    off rate, chosen so the time-averaged rate equals ``rate_rps`` exactly:
    when ``burst_factor * burst_fraction >= 1`` all arrivals fall inside the
    bursts (burst rate ``rate / burst_fraction``), otherwise the burst rate is
    ``rate * burst_factor`` and the remainder spreads over the off phase.
    Sampling uses Lewis–Shedler thinning, which stays exact for any piecewise
    rate function and deterministic under the seeded generator.

    Thinning consumes a data-dependent number of uniforms per candidate (two,
    plus one more on acceptance), so the stream cannot be split into fixed
    positions like the Poisson case; instead the whole stream is drawn as one
    bulk chunk with every candidate gap ``-log(1-u)/on_rate`` precomputed in
    one vectorised pass, leaving only the accept/advance scan in Python.
    Bit-identical to :func:`bursty_trace_scalar`.
    """
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    if burst_factor < 1:
        raise ValueError(f"burst factor must be >= 1, got {burst_factor}")
    if not 0 < burst_fraction < 1:
        raise ValueError(f"burst fraction must be in (0, 1), got {burst_fraction}")
    if cycle_s <= 0:
        raise ValueError(f"cycle length must be positive, got {cycle_s}")
    per_tenant = []
    for spec in tenants:
        on_rate, off_rate = _bursty_rates(spec, burst_factor, burst_fraction)
        expected = on_rate * duration_s
        candidates = int(expected + 6.0 * math.sqrt(expected + 1.0)) + 16
        cumulative = spec._cumulative_weights()
        last_pick = len(spec.mix) - 1
        total = sum(weight for _, weight in spec.mix)
        while True:
            rng = _seeded_generator(f"{seed}/bursty/{spec.name}")
            uniforms = rng.random(3 * candidates)
            # Candidate gaps for *every* stream position: only the positions
            # the scan lands on are used, but precomputing all of them keeps
            # the log vectorised (and element-identical to the scalar calls).
            gaps = (-np.log(1.0 - uniforms) / on_rate).tolist()
            stream = uniforms.tolist()
            limit = len(stream)
            arrivals: List[float] = []
            picks: List[int] = []
            clock, position, exhausted = 0.0, 0, False
            while True:
                if position + 3 > limit:
                    exhausted = True
                    break
                clock += gaps[position]
                position += 1
                if clock >= duration_s:
                    break
                in_burst = (clock % cycle_s) / cycle_s < burst_fraction
                rate_now = on_rate if in_burst else off_rate
                accept = stream[position] * on_rate < rate_now  # thinning acceptance
                position += 1
                if accept:
                    draw = stream[position] * total
                    position += 1
                    arrivals.append(clock)
                    picks.append(min(bisect_right(cumulative, draw), last_pick))
            if not exhausted:
                break
            candidates *= 2
        per_tenant.append((spec,
                           np.array(arrivals, dtype=np.float64),
                           np.array(picks, dtype=np.int32)))
    return _merge_tenant_columns(f"bursty-seed{seed}", duration_s, precision, per_tenant)


def bursty_trace_scalar(
    tenants: Sequence[TenantSpec],
    duration_s: float,
    seed: int = 0,
    precision: Precision = Precision.FP32,
    burst_factor: float = 8.0,
    burst_fraction: float = 0.2,
    cycle_s: float = 0.25,
) -> RequestTrace:
    """Per-request reference implementation of :func:`bursty_trace`."""
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    if burst_factor < 1:
        raise ValueError(f"burst factor must be >= 1, got {burst_factor}")
    if not 0 < burst_fraction < 1:
        raise ValueError(f"burst fraction must be in (0, 1), got {burst_fraction}")
    if cycle_s <= 0:
        raise ValueError(f"cycle length must be positive, got {cycle_s}")
    pending: List[Tuple[float, str, int, str, Precision, _SLOFields]] = []
    for spec in tenants:
        rng = random.Random(f"{seed}/bursty/{spec.name}")
        slo = _slo_fields(spec)
        on_rate, off_rate = _bursty_rates(spec, burst_factor, burst_fraction)
        clock, sequence = 0.0, 0
        while True:
            clock += _exp_gap(rng.random(), on_rate)
            if clock >= duration_s:
                break
            in_burst = (clock % cycle_s) / cycle_s < burst_fraction
            rate_now = on_rate if in_burst else off_rate
            if rng.random() * on_rate < rate_now:  # thinning acceptance
                pending.append((clock, spec.name, sequence, spec.pick_workload(rng),
                                precision, slo))
                sequence += 1
    return _finalize(f"bursty-seed{seed}", pending, duration_s)


# ---------------------------------------------------------------- trace replay
def _iter_json_records(text: str) -> Iterator[object]:
    """Yield the elements of a top-level JSON array one at a time.

    An incremental ``raw_decode`` walk: each record is parsed and handed to
    the caller immediately, so a million-request replay file never exists as
    a simultaneous list-of-dicts in memory — the caller interns each record
    into column buffers and drops it.
    """
    decoder = json.JSONDecoder()
    position, end = 0, len(text)
    while position < end and text[position].isspace():
        position += 1
    if position >= end or text[position] != "[":
        raise ValueError("replay source must be a JSON list of arrival records")
    position += 1
    first = True
    while True:
        while position < end and text[position].isspace():
            position += 1
        if position >= end:
            raise ValueError("replay source ends before the closing ']'")
        if text[position] == "]":
            position += 1
            break
        if not first:
            if text[position] != ",":
                raise ValueError(f"malformed replay list near offset {position}")
            position += 1
            while position < end and text[position].isspace():
                position += 1
        record, position = decoder.raw_decode(text, position)
        first = False
        yield record
    while position < end and text[position].isspace():
        position += 1
    if position != end:
        raise ValueError("trailing data after the replay record list")


def replay_trace(source: Union[str, Path, Iterable[dict]], name: str = "replay") -> RequestTrace:
    """Rebuild a trace from a JSON file path or an iterable of arrival records.

    Each record needs ``tenant``, ``workload`` and ``arrival_s``;
    ``precision``, ``priority`` and the ``ttft_slo_s``/``tpot_slo_s``
    deadlines are optional (default fp32, priority 0, no deadlines), so
    traces recorded before those fields existed replay unchanged.  Records
    are re-sorted and re-numbered, so a hand-edited file stays valid — unless
    they carry explicit ``request_id`` fields, which must then be unique and
    increasing in file order (a duplicated or out-of-order id in a recorded
    trace means the file was corrupted or mis-merged, so it is an error, not
    something to silently renumber away).

    File input streams record by record straight into column buffers: no
    intermediate list of dicts is ever built, so replaying a million-request
    file costs the columns plus one parsed record at a time.
    """
    if isinstance(source, (str, Path)):
        records: Iterable[object] = _iter_json_records(Path(source).read_text())
        name = Path(source).stem
    else:
        records = source
        if isinstance(records, (dict, str, bytes)):
            raise ValueError("replay source must be a JSON list of arrival records")

    arrivals: List[float] = []
    tenant_ids: List[int] = []
    workload_ids: List[int] = []
    precision_ids: List[int] = []
    priorities: List[int] = []
    ttfts: List[float] = []
    tpots: List[float] = []
    tenant_index: dict = {}
    workload_index: dict = {}
    precision_index: dict = {}
    explicit_ids: List[int] = []
    last_id: Optional[int] = None

    for sequence, record in enumerate(records):
        if not isinstance(record, dict):
            raise ValueError(f"replay record {sequence} is malformed: {record!r}")
        try:
            arrival = float(record["arrival_s"])
            tenant = str(record["tenant"])
            workload = str(record["workload"])
            priority = int(record.get("priority", 0))
            ttft_slo = record.get("ttft_slo_s")
            tpot_slo = record.get("tpot_slo_s")
            ttft = math.nan if ttft_slo is None else float(ttft_slo)
            tpot = math.nan if tpot_slo is None else float(tpot_slo)
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(f"replay record {sequence} is malformed: {record!r}") from error
        if arrival < 0:
            raise ValueError(f"replay record {sequence}: arrival time cannot be negative")
        if (ttft_slo is not None and ttft <= 0) or (tpot_slo is not None and tpot <= 0):
            raise ValueError(f"replay record {sequence}: SLO targets must be positive")
        if "request_id" in record:
            request_id = int(record["request_id"])
            if last_id is not None and request_id <= last_id:
                kind = "duplicate" if request_id == last_id else "out-of-order"
                raise ValueError(
                    f"replay record {sequence}: {kind} request_id {request_id} "
                    f"(previous id {last_id}); recorded ids must be unique and increasing")
            last_id = request_id
            explicit_ids.append(request_id)
        elif explicit_ids:
            raise ValueError(
                f"replay record {sequence} is missing request_id but earlier records "
                f"carry one; ids must be present on all records or none")
        precision = Precision.from_string(record.get("precision", "fp32"))
        arrivals.append(arrival)
        tenant_ids.append(tenant_index.setdefault(tenant, len(tenant_index)))
        workload_ids.append(workload_index.setdefault(workload, len(workload_index)))
        precision_ids.append(precision_index.setdefault(precision, len(precision_index)))
        priorities.append(priority)
        ttfts.append(ttft)
        tpots.append(tpot)
    if explicit_ids and len(explicit_ids) != len(arrivals):
        raise ValueError("replay records mix explicit request_id with records lacking one")

    count = len(arrivals)
    arrival_array = np.array(arrivals, dtype=np.float64)
    # Canonical _finalize order: (arrival, tenant name, file sequence), then
    # ids by position.  Interning gave tenants first-seen ids, so sort the
    # table first and remap.
    tenants = sorted(tenant_index)
    tenant_rank = {tenant: rank for rank, tenant in enumerate(tenants)}
    remap_tenant = np.array([tenant_rank[t] for t in tenant_index], dtype=np.int32)
    tenant_array = remap_tenant[np.array(tenant_ids, dtype=np.int32)] if count else \
        np.empty(0, np.int32)
    workloads = sorted(workload_index)
    workload_rank = {workload: rank for rank, workload in enumerate(workloads)}
    remap_workload = np.array([workload_rank[w] for w in workload_index], dtype=np.int32)
    workload_array = remap_workload[np.array(workload_ids, dtype=np.int32)] if count else \
        np.empty(0, np.int32)
    precisions = tuple(precision_index) if precision_index else (Precision.FP32,)

    order = np.lexsort((np.arange(count, dtype=np.int64), tenant_array, arrival_array)) \
        if count else np.empty(0, np.int64)
    columns = TraceColumns(
        tenants=tuple(tenants),
        workloads=tuple(workloads),
        precisions=precisions,
        request_id=np.arange(count, dtype=np.int64),
        arrival_s=arrival_array[order],
        tenant_id=tenant_array[order],
        workload_id=workload_array[order],
        precision_id=np.array(precision_ids, dtype=np.int16)[order] if count else
        np.empty(0, np.int16),
        priority=np.array(priorities, dtype=np.int32)[order] if count else
        np.empty(0, np.int32),
        ttft_slo_s=np.array(ttfts, dtype=np.float64)[order] if count else
        np.empty(0, np.float64),
        tpot_slo_s=np.array(tpots, dtype=np.float64)[order] if count else
        np.empty(0, np.float64),
    )
    duration = float(arrival_array.max()) if count else 0.0
    return RequestTrace(name=name, duration_s=duration, columns=columns)
