"""Tests for the Fig. 8 baseline models and the comparison harness."""

import pytest

from repro.baselines import (
    BaselineComparison,
    CPUOnlyBaseline,
    GemminiLikeBaseline,
    NoMappingBaseline,
    RASALikeBaseline,
    compare_systems,
)
from repro.core import MACOSystem, maco_default_config
from repro.gemm import GEMMShape, GEMMWorkload, Precision
from repro.workloads import resnet50_workload

NODES = 8


@pytest.fixture(scope="module")
def config():
    return maco_default_config(num_nodes=NODES)


@pytest.fixture(scope="module")
def small_workload():
    """A small GEMM+ workload (keeps baseline tests fast)."""
    workload = GEMMWorkload(
        name="mini-dl",
        shapes=[
            GEMMShape(2048, 1024, 1024, Precision.FP32),
            GEMMShape(4096, 512, 2048, Precision.FP32),
            GEMMShape(1024, 4096, 1024, Precision.FP32),
        ],
        non_gemm_flops=40_000_000,
        non_gemm_bytes=160_000_000,
    )
    return workload


@pytest.fixture(scope="module")
def maco_result(config, small_workload):
    return MACOSystem(config).run_workload(small_workload, num_nodes=NODES)


class TestCPUOnlyBaseline:
    def test_throughput_below_cpu_peak(self, config, small_workload):
        result = CPUOnlyBaseline(config).run_workload(small_workload, num_nodes=NODES)
        assert 0 < result.gflops < config.cpu.peak_gflops_fp32 * NODES

    def test_much_slower_than_maco(self, config, small_workload, maco_result):
        """Paper: MACO gains ~3.3x over the CPU-only baseline."""
        result = CPUOnlyBaseline(config).run_workload(small_workload, num_nodes=NODES)
        ratio = maco_result.gflops / result.gflops
        assert 2.0 < ratio < 6.5

    def test_no_overlap_flag(self, config, small_workload):
        result = CPUOnlyBaseline(config).run_workload(small_workload, num_nodes=NODES)
        assert not result.overlap_enabled
        assert result.system == "baseline-1"


class TestNoMappingBaseline:
    def test_slower_than_maco(self, config, small_workload, maco_result):
        """Paper: the mapping scheme is worth ~1.45x; ours must show a clear gain."""
        result = NoMappingBaseline(config).run_workload(small_workload, num_nodes=NODES)
        ratio = maco_result.gflops / result.gflops
        assert 1.05 < ratio < 2.2

    def test_faster_than_cpu_only(self, config, small_workload):
        no_map = NoMappingBaseline(config).run_workload(small_workload, num_nodes=NODES)
        cpu = CPUOnlyBaseline(config).run_workload(small_workload, num_nodes=NODES)
        assert no_map.gflops > cpu.gflops


class TestRASALikeBaseline:
    def test_slower_than_maco(self, config, small_workload, maco_result):
        """Paper: MACO gains ~1.35x over the RASA-like TCA."""
        result = RASALikeBaseline(config).run_workload(small_workload, num_nodes=NODES)
        ratio = maco_result.gflops / result.gflops
        assert 1.1 < ratio < 1.8

    def test_engine_peak_uses_cpu_clock(self, config):
        baseline = RASALikeBaseline(config)
        # 16 PEs x 2 FP32 lanes x 2 ops at 2.2 GHz = 140.8 GFLOPS per core.
        assert baseline._engine_peak_gflops(Precision.FP32) == pytest.approx(140.8, rel=0.01)

    def test_faster_than_cpu_only(self, config, small_workload):
        rasa = RASALikeBaseline(config).run_workload(small_workload, num_nodes=NODES)
        cpu = CPUOnlyBaseline(config).run_workload(small_workload, num_nodes=NODES)
        assert rasa.gflops > cpu.gflops


class TestGemminiLikeBaseline:
    def test_slower_than_maco(self, config, small_workload, maco_result):
        """Paper: MACO gains ~1.30x over the Gemmini-like LCA."""
        result = GemminiLikeBaseline(config).run_workload(small_workload, num_nodes=NODES)
        ratio = maco_result.gflops / result.gflops
        assert 1.05 < ratio < 1.8

    def test_faster_than_cpu_only(self, config, small_workload):
        gemmini = GemminiLikeBaseline(config).run_workload(small_workload, num_nodes=NODES)
        cpu = CPUOnlyBaseline(config).run_workload(small_workload, num_nodes=NODES)
        assert gemmini.gflops > cpu.gflops

    def test_per_task_sync_overhead_counted(self, config):
        baseline = GemminiLikeBaseline(config)
        many_small = GEMMWorkload("many", [GEMMShape(256, 256, 256, Precision.FP32)] * 64)
        few_large = GEMMWorkload("few", [GEMMShape(1024, 1024, 1024, Precision.FP32)])
        # Same total FLOPs; the many-task workload pays 64 host round trips.
        assert many_small.gemm_flops == few_large.gemm_flops
        slow = baseline.run_workload(many_small, num_nodes=NODES)
        fast = baseline.run_workload(few_large, num_nodes=NODES)
        assert slow.seconds > fast.seconds


class TestComparisonHarness:
    def test_compare_systems_collects_all(self, config, small_workload):
        comparison = compare_systems(
            [CPUOnlyBaseline(config), RASALikeBaseline(config)], [small_workload], num_nodes=NODES
        )
        assert set(comparison.systems()) == {"baseline-1", "rasa-like"}
        assert comparison.workloads() == [small_workload.name]
        assert comparison.throughput("baseline-1", small_workload.name) > 0

    def test_average_speedup_geomean(self):
        from repro.core.metrics import WorkloadResult

        comparison = BaselineComparison()
        for system, gflops in (("a", 100.0), ("b", 50.0)):
            comparison.add(WorkloadResult(
                name="w", system=system, num_nodes=1, seconds=1.0,
                gemm_flops=int(gflops * 1e9), total_flops=int(gflops * 1e9), peak_gflops=200.0,
            ))
        assert comparison.average_speedup("a", "b") == pytest.approx(2.0)

    def test_paper_ordering_on_resnet(self, config):
        """On a real DL workload the throughput ordering of Fig. 8 must hold:
        Baseline-1 slowest, MACO fastest, accelerated baselines in between."""
        workload = resnet50_workload(batch=4)
        maco = MACOSystem(config).run_workload(workload, num_nodes=NODES)
        cpu = CPUOnlyBaseline(config).run_workload(workload, num_nodes=NODES)
        rasa = RASALikeBaseline(config).run_workload(workload, num_nodes=NODES)
        gemmini = GemminiLikeBaseline(config).run_workload(workload, num_nodes=NODES)
        nomap = NoMappingBaseline(config).run_workload(workload, num_nodes=NODES)
        assert cpu.gflops < min(rasa.gflops, gemmini.gflops, nomap.gflops)
        assert maco.gflops > max(rasa.gflops, gemmini.gflops, nomap.gflops)
