"""End-to-end integration tests: MPAIS instructions -> MTQ/STQ -> MMAE -> memory.

These tests run the full software-visible flow the paper describes: pack a
GEMM descriptor into registers, execute MA_CFG on the CPU core, let the MMAE
drain its Slave Task Queue (computing real data through the systolic-array
datapath), poll with MA_READ, release with MA_STATE, and handle exceptions
with MA_CLEAR — including across process switches.
"""

import numpy as np

from repro.core import MACORuntime, maco_default_config
from repro.cpu.exceptions import ExceptionType
from repro.cpu.mtq import MTQState, StatusWord
from repro.gemm import Precision
from repro.isa.assembler import assemble_program
from repro.isa.instructions import GEMMDescriptor


class TestFunctionalGEMMThroughMPAIS:
    def test_fp64_gemm_matches_numpy(self, single_node_system, rng):
        node = single_node_system.node(0)
        a = rng.standard_normal((80, 96))
        b = rng.standard_normal((96, 72))
        c = rng.standard_normal((80, 72))
        result, submission = node.run_gemm_functional(a, b, c, Precision.FP64)
        assert submission.completed
        assert submission.exception is ExceptionType.NONE
        np.testing.assert_allclose(result, a @ b + c, rtol=1e-10, atol=1e-10)

    def test_result_written_back_to_host_memory(self, single_node_system, rng):
        node = single_node_system.node(0)
        a = rng.standard_normal((64, 64))
        b = rng.standard_normal((64, 64))
        result, submission = node.run_gemm_functional(a, b, None)
        stored = node.host_memory.matrix_at(submission.descriptor.addr_c)
        np.testing.assert_array_equal(stored, result)

    def test_input_matrices_not_modified(self, single_node_system, rng):
        node = single_node_system.node(0)
        a = rng.standard_normal((64, 64))
        b = rng.standard_normal((64, 64))
        a_copy, b_copy = a.copy(), b.copy()
        node.run_gemm_functional(a, b, None)
        np.testing.assert_array_equal(a, a_copy)
        np.testing.assert_array_equal(b, b_copy)

    def test_mtq_entry_released_after_ma_state(self, single_node_system, rng):
        node = single_node_system.node(0)
        node.run_gemm_functional(rng.standard_normal((64, 64)), rng.standard_normal((64, 64)))
        assert node.cpu.mtq.outstanding_tasks() == 0
        assert node.cpu.mtq.free_entries() == len(node.cpu.mtq)

    def test_non_square_tiled_gemm(self, single_node_system, rng):
        node = single_node_system.node(0)
        a = rng.standard_normal((130, 70))
        b = rng.standard_normal((70, 50))
        result, _ = node.run_gemm_functional(a, b, None, ttr=32, ttc=32)
        np.testing.assert_allclose(result, a @ b, rtol=1e-10)

    def test_fp32_gemm_through_full_path(self, single_node_system, rng):
        node = single_node_system.node(0)
        a = rng.standard_normal((64, 64)).astype(np.float32)
        b = rng.standard_normal((64, 64)).astype(np.float32)
        result, _ = node.run_gemm_functional(a, b, None, precision=Precision.FP32)
        np.testing.assert_allclose(result, a.astype(np.float64) @ b.astype(np.float64),
                                   rtol=1e-3, atol=1e-3)

    def test_sequential_gemms_reuse_mtq_entries(self, single_node_system, rng):
        node = single_node_system.node(0)
        for _ in range(2 * len(node.cpu.mtq)):
            a = rng.standard_normal((32, 32))
            b = rng.standard_normal((32, 32))
            result, submission = node.run_gemm_functional(a, b, None, ttr=32, ttc=32)
            assert submission.completed
            np.testing.assert_allclose(result, a @ b, rtol=1e-10)


class TestAsyncRuntime:
    def test_async_submit_poll_wait(self, rng):
        runtime = MACORuntime(config=maco_default_config(num_nodes=1))
        a = rng.standard_normal((64, 64))
        b = rng.standard_normal((64, 64))
        handle = runtime.gemm_async(a, b)
        status = runtime.poll(handle)
        assert status.valid and not status.done          # still queued, MA_READ does not block
        result = runtime.wait(handle)
        np.testing.assert_allclose(result, a @ b, rtol=1e-10)
        assert runtime.outstanding_tasks() == 0

    def test_multiple_async_tasks_queue_in_stq(self, rng):
        runtime = MACORuntime(config=maco_default_config(num_nodes=1))
        handles = []
        expected = []
        for _ in range(3):
            a = rng.standard_normal((48, 48))
            b = rng.standard_normal((48, 48))
            handles.append(runtime.gemm_async(a, b, tile=48))
            expected.append(a @ b)
        for handle, reference in zip(handles, expected):
            np.testing.assert_allclose(runtime.wait(handle), reference, rtol=1e-10)

    def test_blocking_gemm_api(self, rng):
        runtime = MACORuntime(config=maco_default_config(num_nodes=2))
        a = rng.standard_normal((96, 64))
        b = rng.standard_normal((64, 32))
        np.testing.assert_allclose(runtime.gemm(a, b), a @ b, rtol=1e-10)


class TestExceptionsAndMultiprocess:
    def test_unmapped_operand_raises_page_fault_exception(self, single_node_system):
        node = single_node_system.node(0)
        descriptor = GEMMDescriptor(
            addr_a=0xDEAD_0000, addr_b=0xBEEF_0000, addr_c=0xFEED_0000,
            m=64, n=64, k=64, tile_rows=64, tile_cols=64, ttr=64, ttc=64,
        )
        submission = node.submit_gemm(descriptor)
        assert submission.status.done
        assert submission.status.exception_en
        assert submission.status.exception_type is ExceptionType.PAGE_FAULT
        # The entry stays allocated until MA_CLEAR.
        assert node.cpu.mtq.state_of(submission.maid) is MTQState.DONE_EXCEPTION
        node.cpu.registers.write(1, submission.maid)
        node.executor.execute_program(assemble_program("MA_CLEAR X1"))
        assert node.cpu.mtq.state_of(submission.maid) is MTQState.FREE

    def test_buffer_overflow_exception_through_full_path(self, single_node_system, rng):
        node = single_node_system.node(0)
        a = rng.standard_normal((256, 256))
        addr_a, _ = node.allocate_matrix(256, 256, data=a)
        addr_b, _ = node.allocate_matrix(256, 256, data=a)
        addr_c, _ = node.allocate_matrix(256, 256)
        descriptor = GEMMDescriptor(
            addr_a=addr_a, addr_b=addr_b, addr_c=addr_c, m=256, n=256, k=256,
            tile_rows=256, tile_cols=256, ttr=256, ttc=256,
        )
        submission = node.submit_gemm(descriptor)
        assert submission.status.exception_type is ExceptionType.BUFFER_OVERFLOW

    def test_two_processes_results_survive_context_switch(self, single_node_system, rng):
        node = single_node_system.node(0)
        process_a = node.default_process
        process_b = node.cpu.processes.create_process("second")
        node.cpu.mmu.register_page_table(process_b.address_space.page_table)

        a = rng.standard_normal((64, 64))
        b = rng.standard_normal((64, 64))
        addr_a, _ = node.allocate_matrix(64, 64, data=a)
        addr_b, _ = node.allocate_matrix(64, 64, data=b)
        addr_c, c_array = node.allocate_matrix(64, 64)
        descriptor = GEMMDescriptor(addr_a=addr_a, addr_b=addr_b, addr_c=addr_c,
                                    m=64, n=64, k=64, tile_rows=64, tile_cols=64, ttr=64, ttc=64)

        # Process A submits but does not wait.
        submission = node.submit_gemm(descriptor, execute=False)
        # Switch to process B, which does unrelated work.
        node.cpu.switch_process(process_b.asid)
        assert node.executor.asid == process_b.asid
        # The MMAE drains its queue while process B runs.
        node.mmae.execute_pending()
        # Back to process A: the MTQ entry still belongs to it and is done.
        node.cpu.switch_process(process_a.asid)
        node.cpu.registers.write(1, submission.maid)
        trace = node.executor.execute_program(assemble_program("MA_STATE X3, X1"))[0]
        status = StatusWord.unpack(trace.status_word)
        assert status.done and status.asid == process_a.asid
        np.testing.assert_allclose(c_array, a @ b, rtol=1e-10)

    def test_data_migration_instructions_through_path(self, single_node_system, rng):
        """MA_INIT zeroes a region and MA_MOVE copies one region to another."""
        from repro.isa.instructions import InitDescriptor, MoveDescriptor

        node = single_node_system.node(0)
        src = rng.standard_normal((32, 32))
        addr_src, _ = node.allocate_matrix(32, 32, data=src)
        addr_dst, dst_array = node.allocate_matrix(32, 32, data=rng.standard_normal((32, 32)))

        node.cpu.registers.write_block(2, MoveDescriptor(
            src_addr=addr_src, dst_addr=addr_dst, length_bytes=src.nbytes).pack())
        node.executor.execute_program(assemble_program("MA_MOVE X1, X2"))
        node.mmae.execute_pending()
        np.testing.assert_array_equal(dst_array, src)

        node.cpu.registers.write_block(2, InitDescriptor(
            dst_addr=addr_dst, length_bytes=src.nbytes).pack())
        node.executor.execute_program(assemble_program("MA_INIT X1, X2"))
        node.mmae.execute_pending()
        assert np.all(dst_array == 0)

    def test_stash_instruction_reaches_shared_l3(self, single_node_system):
        from repro.isa.instructions import StashDescriptor
        from repro.mem.address import AddressRange

        node = single_node_system.node(0)
        addr, _ = node.allocate_matrix(64, 64)
        node.cpu.registers.write_block(2, StashDescriptor(addr=addr, length_bytes=8192, lock=True).pack())
        node.executor.execute_program(assemble_program("MA_STASH X1, X2"))
        node.mmae.execute_pending()
        assert single_node_system.l3.residency_of(AddressRange(addr, 8192)) == 1.0
        assert single_node_system.l3.total_locked_lines > 0
