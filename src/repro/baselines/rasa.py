"""RASA-like baseline: a tightly-coupled matrix engine in the CPU pipeline.

RASA (Jeong et al., DAC 2021) integrates a systolic matrix engine into the CPU
core and mitigates its utilisation problems with sub-stage pipelining and
overlap.  The paper compares MACO against a MacSim configuration similar to
RASA with the same total PE count.  Following the trade-offs the MACO paper
attributes to tightly-coupled designs (Section II.A), the model differs from a
MACO node in three ways:

* the engine runs in the **CPU clock domain** (2.2 GHz instead of 2.5 GHz);
* the engine **shares the CPU's MMU and load/store path**, so its streaming
  bandwidth is the core's cache/memory bandwidth rather than dedicated DMA
  engines into the L3, and it suffers a resource-contention penalty whenever
  scalar work (address generation, loop control, tail operators) needs the
  same units;
* there is **no CPU/engine overlap** for the non-GEMM tail operators — the
  core cannot run them while it is busy feeding the engine.

``pipeline_utilization`` reflects the utilisation RASA's own optimisations
recover within these constraints; it is the one calibration constant and is
reported alongside the results in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.common import BaselineModel
from repro.core.mapping import partition_gemm
from repro.core.metrics import WorkloadResult
from repro.cpu.core import CPUCore
from repro.gemm.precision import Precision
from repro.gemm.workloads import GEMMShape, GEMMWorkload


class RASALikeBaseline(BaselineModel):
    """A tightly-coupled (TCA) matrix-engine CPU with MACO's PE count per core."""

    name = "rasa-like"

    #: Utilisation the in-pipeline engine sustains on well-blocked GEMMs once
    #: RASA's sub-stage pipelining hides most fill/drain bubbles.
    pipeline_utilization: float = 0.88
    #: Throughput lost to contention for the shared MMU/LSU with scalar work.
    resource_contention_penalty: float = 0.10

    def _engine_peak_gflops(self, precision: Precision) -> float:
        """Peak of one in-core engine: MACO's PE count at the CPU frequency."""
        lanes = self.config.mmae.sa_rows * self.config.mmae.sa_cols * precision.simd_ways
        return 2.0 * lanes * self.config.cpu.frequency_hz / 1e9

    def _gemm_seconds(self, shape: GEMMShape, core: CPUCore) -> float:
        peak = self._engine_peak_gflops(shape.precision) * 1e9
        sustained = peak * self.pipeline_utilization * (1.0 - self.resource_contention_penalty)
        compute_seconds = shape.flops / sustained
        # The engine streams operands through the core's cache hierarchy; the
        # same L2-blocked traffic model as the CPU GEMM bounds it.
        element = shape.precision.bytes_per_element
        block = max(64, min(512, int((core.l2.config.size_bytes / (3 * element)) ** 0.5)))
        effective_block = min(block, shape.m, shape.n, shape.k)
        bytes_moved = shape.flops / 2.0 * 3.0 * element / effective_block
        memory_seconds = bytes_moved / core.memory_bandwidth_bytes_per_s
        return max(compute_seconds, memory_seconds)

    def run_workload(self, workload: GEMMWorkload, num_nodes: Optional[int] = None) -> WorkloadResult:
        nodes = num_nodes if num_nodes is not None else self.config.num_nodes
        if not 1 <= nodes <= self.config.num_nodes:
            raise ValueError(f"num_nodes must be in 1..{self.config.num_nodes}")
        cpu_cfg = self.config.cpu
        core = CPUCore(
            core_id=0,
            frequency_hz=cpu_cfg.frequency_hz,
            fmac_lanes=cpu_cfg.fmac_lanes,
            l2_size=cpu_cfg.l2_size_bytes,
            memory_bandwidth_bytes_per_s=cpu_cfg.memory_bandwidth_bytes_per_s,
        )
        precision = workload.shapes[0].precision if workload.shapes else Precision.FP32

        gemm_seconds = 0.0
        gemm_flops = 0
        for shape in workload:
            plan = partition_gemm(shape, nodes)
            layer_seconds = max(
                self._gemm_seconds(assignment.shape, core) for assignment in plan.assignments
            )
            gemm_seconds += layer_seconds
            gemm_flops += shape.flops

        per_core_flops = int(workload.non_gemm_flops / nodes)
        per_core_bytes = int(workload.non_gemm_bytes / nodes)
        non_gemm_seconds = core.run_elementwise(per_core_flops, per_core_bytes).seconds

        total = gemm_seconds + non_gemm_seconds
        return WorkloadResult(
            name=workload.name,
            system=self.name,
            num_nodes=nodes,
            seconds=total,
            gemm_flops=gemm_flops,
            total_flops=workload.total_flops,
            peak_gflops=self._engine_peak_gflops(precision) * nodes,
            gemm_seconds=gemm_seconds,
            non_gemm_seconds=non_gemm_seconds,
            overlap_enabled=False,
        )
